"""The Section 3 constraint query language, end to end.

Run with::

    python examples/constraint_language.py

Shows the classical constraint-database route the paper starts from —
first-order formulas over a MOD, decided by quantifier elimination
(Proposition 1) — including the features FO(f) deliberately gives up
for efficiency: nested time quantifiers (Example 3's "entering"),
spatial regions, ``vel``/``unit`` atoms, and arbitrary boolean
structure.
"""

import math

from repro.constraints.evaluator import TimelineEvaluator
from repro.constraints.folq import (
    DistCompare,
    ExistsTime,
    FOAnd,
    FONot,
    FOOr,
    ForAllObject,
    ForAllTime,
    HeadingCompare,
    InRegion,
    TimeCompare,
    VelCompare,
)
from repro.constraints.regions import polygon
from repro.mod.database import MovingObjectDatabase
from repro.trajectory.builder import from_waypoints, linear_from, stationary


def build_harbor() -> MovingObjectDatabase:
    """A harbor scene: ships around a triangular anchorage zone."""
    db = MovingObjectDatabase()
    # Sails through the anchorage west to east.
    db.install("freighter", from_waypoints([(0, [-60.0, 10.0]), (60, [60.0, 10.0])]))
    # Anchored inside the zone the whole time.
    db.install("barge", stationary([0.0, 15.0]))
    # Patrols north of the zone, never enters.
    db.install("patrol", from_waypoints([(0, [-40.0, 60.0]), (60, [40.0, 60.0])]))
    # Speeds south-east, away from everything.
    db.install("speedboat", linear_from(0.0, [-20.0, -20.0], [3.0, -2.0]))
    return db


def main() -> None:
    db = build_harbor()
    anchorage = polygon(
        [(-30.0, 0.0), (30.0, 0.0), (0.0, 40.0)], name="anchorage"
    )
    evaluator = TimelineEvaluator(db)

    # -- Region membership over a window --------------------------------
    inside_sometime = ExistsTime(
        "t", InRegion("y", "t", anchorage), within=(0.0, 60.0)
    )
    print("In the anchorage at some time:", sorted(evaluator.answer(inside_sometime, "y")))

    always_inside = ForAllTime(
        "t", InRegion("y", "t", anchorage), within=(0.0, 60.0)
    )
    print("In the anchorage the whole time:", sorted(evaluator.answer(always_inside, "y")))

    # -- Example 3's 'entering' with nested time quantifiers --------------
    not_inside_just_before = ForAllTime(
        "ts",
        FOOr(
            FONot(FOAnd(TimeCompare("tp", "<", "ts"), TimeCompare("ts", "<", "t"))),
            FONot(InRegion("y", "ts", anchorage)),
        ),
    )
    entering = ExistsTime(
        "t",
        FOAnd(
            InRegion("y", "t", anchorage),
            ExistsTime("tp", FOAnd(TimeCompare("tp", "<", "t"), not_inside_just_before)),
        ),
        within=(0.0, 60.0),
    )
    print("Entering the anchorage:", sorted(evaluator.answer(entering, "y")))

    # -- vel and unit atoms -------------------------------------------------
    fast_souther = ExistsTime(
        "t", VelCompare("y", 1, "<", -1.0, "t"), within=(0.0, 60.0)
    )
    print("Moving south faster than 1:", sorted(evaluator.answer(fast_souther, "y")))

    heading_east = ForAllTime(
        "t",
        HeadingCompare("y", (1.0, 0.0), ">=", math.cos(math.radians(40)), "t"),
        within=(1.0, 59.0),
    )
    print("Heading east throughout:", sorted(evaluator.answer(heading_east, "y")))

    # -- Example 4's 1-NN via object quantification ------------------------
    evaluator.add_query_trajectory("q", stationary([0.0, 0.0]))
    nearest_sometime = ExistsTime(
        "t",
        ForAllObject("z", DistCompare("y", "q", "<=", ("z", "q"), "t")),
        within=(0.0, 60.0),
    )
    print(
        "Nearest to the harbor master at some time:",
        sorted(evaluator.answer(nearest_sometime, "y", env={"q": "q"})),
    )


if __name__ == "__main__":
    main()
