"""Live tracking: future queries, eager maintenance, and why periodic
re-search is not enough (Figure 2).

Run with::

    python examples/live_tracking.py

Part 1 replays Figure 2 of the paper with a continuous 1-NN session:
an intersection event predicted at time D is cancelled by one update
and replaced, by a later update, with an exchange at C < D.  The sweep
engine catches the exchange exactly; the Song-Roussopoulos-style
periodic re-search baseline [26] holds a stale answer through it.

Part 2 runs a larger randomized update stream and reports the sweep's
bookkeeping costs (Theorem 5 / Corollary 6 in action) next to the
baseline's staleness.
"""

from repro import ContinuousQuerySession, Interval, SquaredEuclideanDistance
from repro.baselines.naive import naive_knn_answer
from repro.baselines.periodic_knn import PeriodicKNNBaseline, staleness
from repro.workloads.generator import UpdateStream, random_linear_mod
from repro.workloads.paperfigures import figure2_scenario


def figure2_live() -> None:
    sc = figure2_scenario()
    session = ContinuousQuerySession.knn(
        sc.db, sc.query, k=1, start=0.0, until=sc.interval.hi
    )
    engine = session.engine

    print("Figure 2, live:")
    print(f"  t=0: nearest={sorted(session.members)}; "
          f"exchange predicted at D={engine._queue.peek_time():g}")

    sc.db.apply(sc.update_a)  # o1 stops: the predicted exchange vanishes
    print(f"  t={sc.update_a.time:g}: o1 stops; queued events: "
          f"{engine.queue_length}")

    sc.db.apply(sc.update_b)  # o2 flees: a new, earlier exchange appears
    print(f"  t={sc.update_b.time:g}: o2 flees; exchange now at "
          f"C={engine._queue.peek_time():g}")

    session.advance_to(9.0)
    print(f"  t=9: nearest={sorted(session.members)} (exchanged at C=8.4)")
    answer = session.close(at=sc.interval.hi)

    # The periodic baseline refreshes at both updates and still misses C.
    baseline = PeriodicKNNBaseline(sc.db, sc.query, k=1, period=100.0)
    stale = baseline.snapshot_answer(
        sc.interval, update_times=[sc.update_a.time, sc.update_b.time]
    )
    print(f"  baseline at t=9 says {sorted(stale.at(9.0))} "
          f"(stale for {staleness(stale, answer, sc.interval):.0%} of the interval)")


def randomized_stream(n_objects: int = 40, n_updates: int = 60) -> None:
    db = random_linear_mod(n_objects, seed=11, extent=60.0, speed=6.0)
    depot = [0.0, 0.0]
    horizon = 240.0
    session = ContinuousQuerySession.knn(db, depot, k=3, until=horizon)
    stream = UpdateStream(db, seed=12, mean_gap=2.0, extent=60.0, speed=6.0)
    stream.run(n_updates)
    end = min(db.last_update_time + 5.0, horizon)
    answer = session.close(at=end)
    stats = session.engine.stats

    print(f"\nRandomized stream: {n_objects} objects, {n_updates} updates")
    print(f"  support changes processed: {stats.support_changes} "
          f"(swaps={stats.swaps}, inserts={stats.insertions}, "
          f"removals={stats.removals})")
    print(f"  event-queue high-water mark: "
          f"{session.engine.max_queue_length} (Lemma 9 bound: "
          f"#objects = {n_objects + n_updates})")

    exact = naive_knn_answer(
        db, SquaredEuclideanDistance(depot), Interval(0.0, end), 3
    )
    agreement = answer.approx_equals(exact, atol=1e-6)
    print(f"  sweep answer equals O(N^2) naive recomputation: {agreement}")

    for period in (8.0, 2.0, 0.5):
        baseline = PeriodicKNNBaseline(db, session.engine.gdistance.query_trajectory, k=3, period=period)
        stale = baseline.snapshot_answer(Interval(0.0, end))
        rate = staleness(stale, exact, Interval(0.0, end))
        print(f"  periodic baseline, period {period:4g}: "
              f"stale {rate:.1%} of the time "
              f"({baseline.refresh_count} re-searches)")


def main() -> None:
    figure2_live()
    randomized_stream()


if __name__ == "__main__":
    main()
