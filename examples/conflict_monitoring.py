"""Collision discovery: Section 2's motivating application, live.

Run with::

    python examples/conflict_monitoring.py

An air-traffic control scene: aircraft on crossing airways, a
separation minimum, and a monitor that predicts every loss of
separation from the current flight plans — updating its predictions
the moment a plan changes, exactly the eager-maintenance posture the
paper advocates for future queries.
"""

from repro import Interval, MovingObjectDatabase
from repro.analysis import (
    ConflictMonitor,
    closest_approach,
    separation_conflicts,
)


def main() -> None:
    db = MovingObjectDatabase()
    # Four aircraft on crossing airways (positions in nautical miles,
    # times in minutes).
    db.create("AAL12", 0.1, position=[-80.0, 0.0], velocity=[8.0, 0.0])
    db.create("UAL77", 0.2, position=[0.0, -60.0], velocity=[0.0, 6.0])
    db.create("DAL31", 0.3, position=[100.0, 100.0], velocity=[-7.0, -7.0])
    db.create("SWA09", 0.4, position=[200.0, -50.0], velocity=[-9.0, 1.0])

    window = Interval(0.0, 30.0)
    minimum = 5.0  # required separation

    # ------------------------------------------------------------------
    # Batch analysis: every predicted loss of separation in 30 minutes.
    # ------------------------------------------------------------------
    print(f"Predicted losses of separation (< {minimum} nm) in {window}:")
    for conflict in separation_conflicts(db, minimum, window):
        a, b = sorted(conflict.pair)
        print(
            f"  {a} ~ {b}: violation during {conflict.intervals}, "
            f"closest {conflict.closest.distance:.2f} nm at "
            f"t={conflict.closest.time:.2f}"
        )

    pair = closest_approach(db.trajectory("AAL12"), db.trajectory("UAL77"), window)
    print(f"\nAAL12/UAL77 closest approach: {pair.distance:.2f} nm at t={pair.time:.2f}")

    # ------------------------------------------------------------------
    # Live monitoring: predictions follow the flight-plan updates.
    # ------------------------------------------------------------------
    monitor = ConflictMonitor(db, separation=minimum, horizon=30.0)
    upcoming = monitor.next_conflict_after(1.0)
    if upcoming:
        start, pair_ids = upcoming
        print(f"\nNext predicted conflict: {sorted(pair_ids)} at t={start:.2f}")

        # The controller vectors one aircraft off the airway.
        offender = sorted(pair_ids)[0]
        print(f"Vectoring {offender} north at t=2 ...")
        db.change_direction(offender, 2.0, [8.0, 4.0])

        resolved = monitor.next_conflict_after(2.0)
        if resolved is None:
            print("All conflicts resolved.")
        else:
            t, pair_ids = resolved
            print(f"Remaining conflict: {sorted(pair_ids)} at t={t:.2f}")


if __name__ == "__main__":
    main()
