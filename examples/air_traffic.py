"""Air traffic monitoring: the paper's flagship scenario.

Run with::

    python examples/air_traffic.py

Recreates the paper's running examples in one scenario:

- Example 1's three-piece airplane trajectory and Example 2's landing
  ``chdir``;
- Example 11's "flights within 50 km of Flight 623" as a continuous
  range query;
- Example 3's "aircraft entering the county" via the Section 3
  constraint language (nested time quantifiers and a polygonal region);
- the past/continuing/future classification of Definitions 4-5.
"""

from repro import (
    Interval,
    MovingObjectDatabase,
    SquaredEuclideanDistance,
    Vector,
    evaluate_knn,
    evaluate_within,
    from_waypoints,
    knn_query,
)
from repro.constraints.classify import classify_interval_query
from repro.constraints.evaluator import TimelineEvaluator
from repro.constraints.folq import (
    ExistsTime,
    FOAnd,
    FONot,
    FOOr,
    ForAllTime,
    InRegion,
    TimeCompare,
)
from repro.constraints.regions import box
from repro.geometry.intervals import Interval as I
from repro.trajectory.builder import linear_from
from repro.trajectory.linearpiece import LinearPiece
from repro.trajectory.trajectory import Trajectory


def example1_airplane() -> Trajectory:
    """Example 1's trajectory, verbatim from the paper."""
    return Trajectory(
        [
            LinearPiece(Vector.of(2, -1, 0), Vector.of(-40, 23, 30), I(0, 21)),
            LinearPiece(Vector.of(0, -1, -5), Vector.of(2, 23, 135), I(21, 22)),
            LinearPiece(
                Vector.of(0.5, 0, -1), Vector.of(-9, 1, 47), I.at_least(22)
            ),
        ]
    )


def main() -> None:
    # ------------------------------------------------------------------
    # Example 1 + 2: the airplane and its landing update.
    # ------------------------------------------------------------------
    db = MovingObjectDatabase(initial_time=22.0)  # past Example 1's last turn
    db.install("N4071K", example1_airplane())
    print("Example 1 airplane:")
    print(f"  turn at t=21 at position {db.position('N4071K', 21.0)}")
    print(f"  turn at t=22 at position {db.position('N4071K', 22.0)}")

    db.advance_clock(30.0)
    db.change_direction("N4071K", 47.0, [0.0, 0.0, 0.0])  # Example 2: landing
    print(f"  landed at t=47 at position {db.position('N4071K', 47.0)}")
    print(f"  still there at t=100: {db.position('N4071K', 100.0)}")

    # ------------------------------------------------------------------
    # Example 11: flights within 50 km of Flight 623.
    # ------------------------------------------------------------------
    traffic = MovingObjectDatabase()
    flight_623 = from_waypoints([(0, [0.0, 0.0]), (60, [600.0, 0.0])])
    traffic.install(
        "UA764", from_waypoints([(0, [0.0, 30.0]), (60, [600.0, 30.0])])
    )
    traffic.install(
        "crossing", from_waypoints([(0, [300.0, -250.0]), (60, [300.0, 350.0])])
    )
    traffic.install("remote", from_waypoints([(0, [0.0, 400.0]), (60, [100.0, 400.0])]))

    window = Interval(0.0, 60.0)
    near_623 = evaluate_within(traffic, flight_623, window, distance=50.0)
    print("\nFlights within 50 km of Flight 623 during [0, 60]:")
    for flight in sorted(near_623.objects):
        print(f"  {flight}: {near_623.intervals_for(flight)}")

    two_nearest = evaluate_knn(traffic, flight_623, window, k=2)
    print("2-NN to Flight 623 at t=30:", sorted(two_nearest.at(30.0)))

    # ------------------------------------------------------------------
    # Example 3: aircraft *entering* the county during [tau1, tau2].
    # ------------------------------------------------------------------
    county = box([250.0, -50.0], [350.0, 50.0], name="SB County")
    not_inside_between = ForAllTime(
        "ts",
        FOOr(
            FONot(FOAnd(TimeCompare("tp", "<", "ts"), TimeCompare("ts", "<", "t"))),
            FONot(InRegion("y", "ts", county)),
        ),
    )
    entering = ExistsTime(
        "t",
        FOAnd(
            InRegion("y", "t", county),
            ExistsTime(
                "tp", FOAnd(TimeCompare("tp", "<", "t"), not_inside_between)
            ),
        ),
        within=(0.0, 60.0),
    )
    evaluator = TimelineEvaluator(traffic)
    print(
        "\nAircraft entering SB County during [0, 60]:",
        sorted(evaluator.answer(entering, "y")),
    )

    # ------------------------------------------------------------------
    # Definitions 4-5: how much of an answer is valid vs predicted?
    # ------------------------------------------------------------------
    traffic.advance_clock(20.0)  # "now" is t=20; beyond that is prediction
    gdist = SquaredEuclideanDistance(flight_623)
    for lo, hi in [(0.0, 15.0), (5.0, 50.0), (30.0, 50.0)]:
        result = classify_interval_query(
            traffic, gdist, knn_query(Interval(lo, hi), 1)
        )
        print(
            f"1-NN over [{lo:g}, {hi:g}]: {result.query_class.value:10s} "
            f"valid={sorted(result.valid)} "
            f"predicted-only={sorted(result.predicted_only)}"
        )


if __name__ == "__main__":
    main()
