"""Police dispatch: the fastest-arrival queries of Examples 7 and 9.

Run with::

    python examples/police_dispatch.py

"Find the police car that can reach the target train fastest": every
car keeps its current speed but may redirect.  The *interception time*
``t_D`` is a generalized distance; ranking cars by it is a k-NN query
under that g-distance (Section 4).

Two evaluation routes are shown:

- the **perpendicular configuration** of Figure 1, where ``t_D^2`` is
  exactly quadratic (Example 9's claim) and the sweep runs on the exact
  curves, and
- the **general configuration**, where ``t_D`` is not polynomial and is
  polynomialized with a piecewise Chebyshev approximation (footnote 1's
  licence), with the approximation error measured.
"""

from repro import (
    ArrivalTimeGDistance,
    Interval,
    MovingObjectDatabase,
    PolynomialApproximation,
    SquaredArrivalTimeGDistance,
    evaluate_knn,
    linear_from,
)


def perpendicular_chase() -> None:
    """Figure 1's geometry: the train on a straight track, cars pacing
    it — Example 9's exact quadratic t_D^2."""
    train = linear_from(0.0, [0.0, 0.0], [1.0, 0.0])
    cars = MovingObjectDatabase()
    # Each car matches the train's along-track velocity, starts abeam
    # of it, and closes in laterally: the separation stays perpendicular
    # to the track (the Figure 1 configuration).
    cars.create("unit-12", 0.1, position=[0.1, -8.0], velocity=[1.0, 1.0])
    cars.create("unit-31", 0.2, position=[0.2, 6.0], velocity=[1.0, -2.0])
    cars.create("unit-44", 0.3, position=[0.3, -20.0], velocity=[1.0, 4.0])

    gdist = SquaredArrivalTimeGDistance(train)
    print("Perpendicular chase (exact quadratic t_D^2):")
    for car in cars.object_ids:
        curve = gdist(cars.trajectory(car))
        (_, poly) = curve.pieces[0]
        print(f"  {car}: t_D^2 = {poly!r}")

    window = Interval(1.0, 12.0)
    fastest = evaluate_knn(cars, gdist, window, k=1)
    print("Fastest responder over [1, 12]:")
    for car in sorted(fastest.objects):
        print(f"  {car}: fastest during {fastest.intervals_for(car)}")


def general_chase() -> None:
    """A general pursuit where t_D is not polynomial: approximate."""
    train = linear_from(0.0, [0.0, 0.0], [1.2, 0.3])
    cars = MovingObjectDatabase()
    cars.create("unit-07", 0.1, position=[30.0, -10.0], velocity=[-1.0, 1.4])
    cars.create("unit-19", 0.2, position=[-25.0, 12.0], velocity=[2.0, 0.0])
    cars.create("unit-23", 0.3, position=[10.0, 35.0], velocity=[0.0, -1.9])

    window = Interval(1.0, 20.0)
    exact = ArrivalTimeGDistance(train)
    approx = PolynomialApproximation(exact, window, degree=8, num_pieces=6)

    print("\nGeneral chase (Chebyshev-polynomialized t_D):")
    for car in cars.object_ids:
        err = approx.max_error(cars.trajectory(car))
        t_now = exact.evaluate_at(cars.trajectory(car), 1.0)
        print(f"  {car}: t_D(1) = {t_now:7.3f}  (approximation error {err:.2e})")

    fastest = evaluate_knn(cars, approx, window, k=1)
    print("Fastest responder over [1, 20]:")
    for car in sorted(fastest.objects):
        print(f"  {car}: fastest during {fastest.intervals_for(car)}")

    # Cross-check the sweep's verdict against exact pointwise evaluation.
    for t in (2.0, 10.0, 19.0):
        truth = min(
            cars.object_ids,
            key=lambda c: exact.evaluate_at(cars.trajectory(c), t),
        )
        swept = sorted(fastest.at(t))
        print(f"  at t={t:5.1f}: sweep={swept}  exact winner={truth!r}")


def main() -> None:
    perpendicular_chase()
    general_chase()


if __name__ == "__main__":
    main()
