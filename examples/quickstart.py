"""Quickstart: build a moving object database, ask distance queries.

Run with::

    python examples/quickstart.py

Demonstrates the core workflow of the library (and of the paper):
create moving objects, apply updates as their motion changes, and
evaluate k-NN / within-range queries whose answers are exact over whole
time intervals — not just at the instant the query was asked.
"""

from repro import (
    ContinuousQuerySession,
    Interval,
    MovingObjectDatabase,
    evaluate_knn,
    evaluate_within,
)


def main() -> None:
    # A dispatch center at the origin tracks three delivery vans.
    db = MovingObjectDatabase()
    db.create("van-1", time=0.5, position=[2.0, 1.0], velocity=[0.5, 0.0])
    db.create("van-2", time=1.0, position=[9.0, 3.0], velocity=[-1.0, 0.0])
    db.create("van-3", time=1.5, position=[-4.0, -4.0], velocity=[0.0, 0.5])

    depot = [0.0, 0.0]

    # --- A past-style query: who was nearest during [2, 20]? -------------
    answer = evaluate_knn(db, depot, Interval(2.0, 20.0), k=1)
    print("Nearest van to the depot during [2, 20]:")
    for van in sorted(answer.objects):
        print(f"  {van}: nearest during {answer.intervals_for(van)}")
    print(f"  nearest at t=3:  {sorted(answer.at(3.0))}")
    print(f"  nearest at t=15: {sorted(answer.at(15.0))}")

    # --- A range query: who comes within distance 5 of the depot? --------
    nearby = evaluate_within(db, depot, Interval(2.0, 20.0), distance=5.0)
    print("\nVans within distance 5 of the depot during [2, 20]:")
    for van in sorted(nearby.objects):
        print(f"  {van}: in range during {nearby.intervals_for(van)}")

    # --- A continuing query: maintain the answer as updates arrive -------
    session = ContinuousQuerySession.knn(db, depot, k=1)
    print(f"\nLive 1-NN at t={session.current_time:g}: {sorted(session.members)}")

    # van-2 turns toward the depot; the engine reacts to the update alone.
    db.change_direction("van-2", 3.0, [-1.0, -0.4])
    print(f"after van-2 turns (t=3): {sorted(session.members)}")

    members_at_8 = session.advance_to(8.0)
    print(f"at t=8 (no update needed): {sorted(members_at_8)}")

    history = session.close(at=10.0)
    print("\nFull 1-NN history of the session [%g, 10]:" % history.interval.lo)
    for van in sorted(history.objects):
        print(f"  {van}: {history.intervals_for(van)}")


if __name__ == "__main__":
    main()
