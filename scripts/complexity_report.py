#!/usr/bin/env python
"""Empirical complexity audit over recorded operation counters.

Checks the paper's complexity claims against *counted primitive
operations* (treap descend/rotation/rank steps, heap sift steps, flip
computations) — never wall-clock time:

- **Theorem 5 (init)** — building the sweep structures over N objects
  performs O(N log N) primitive operations;
- **Corollary 6 (updates)** — with bounded support changes between
  updates, per-update maintenance performs O(log N) amortized
  primitive operations;
- **Sharded maintenance** — hash partitioning across S shards keeps
  the banded per-update envelope at O(log N) (each update touches one
  shard's order of size N/S);
- **Cached lookups** — a warm answer cache serves an exact repeat
  with O(1) sweep work: the hit path must count *zero* new primitive
  operations regardless of N.

Also measures the overhead of the *enabled* metrics path (engine built
with ``observe=``) against the disabled path on the Theorem 5 workload;
the registry binds its gauges lazily and hot-path counters are plain
int adds, so the enabled run must stay within a few percent.

Exit status is non-zero when any audit fails (or, with ``--overhead``,
when instrumentation costs more than the budget), so CI can gate on it.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time

from repro.geometry.intervals import Interval
from repro.gdist.euclidean import SquaredEuclideanDistance
from repro.obs import ComplexityAudit, MetricsRegistry
from repro.sweep.engine import SweepEngine
from repro.workloads.generator import UpdateStream, banded_mod, random_linear_mod

FULL_INIT_SIZES = [128, 256, 512, 1024, 2048]
QUICK_INIT_SIZES = [64, 128, 256, 512]
FULL_UPDATE_SIZES = [64, 128, 256, 512, 1024]
QUICK_UPDATE_SIZES = [64, 128, 256, 512]


def build_engine(db, observe=None):
    return SweepEngine(
        db,
        SquaredEuclideanDistance([0.0, 0.0]),
        Interval(0.0, 300.0),
        observe=observe,
    )


def audit_theorem5_init(audit: ComplexityAudit, sizes) -> None:
    """Record init op counts per N (Theorem 5: O(N log N))."""
    for n in sizes:
        db = random_linear_mod(n, seed=n, extent=200.0, speed=5.0)
        engine = build_engine(db)
        audit.record("Thm 5 init ops", n, engine.primitive_ops())


def audit_corollary6_updates(audit: ComplexityAudit, sizes, updates=50) -> None:
    """Record per-update op counts per N (Corollary 6: O(log N)).

    The banded workload keeps ranks essentially static so support
    changes per update stay bounded — Corollary 6's precondition.
    """
    for n in sizes:
        db = banded_mod(n, seed=n + 1, band_gap=5.0, jitter_speed=0.2)
        engine = build_engine(db)
        db.subscribe(engine.on_update)
        stream = UpdateStream(
            db,
            seed=n + 2,
            mean_gap=0.25,
            periodic=True,
            speed=0.2,
            weights=(0.0, 0.0, 1.0),
        )
        before = engine.primitive_ops()
        stream.run(updates)
        audit.record(
            "Cor 6 per-update ops",
            n,
            (engine.primitive_ops() - before) / updates,
        )


def audit_sharded_updates(audit: ComplexityAudit, sizes, updates=50, shards=4) -> None:
    """Record sharded per-update op counts per N (O(log N) envelope).

    Same banded workload as the Corollary 6 audit, driven through a
    :class:`ShardedSweepEvaluator` with per-update flushes: partitioning
    must not break the amortized bound.
    """
    from repro.parallel.evaluator import ShardedSweepEvaluator

    for n in sizes:
        db = banded_mod(n, seed=n + 1, band_gap=5.0, jitter_speed=0.2)
        evaluator = ShardedSweepEvaluator.knn(
            db,
            SquaredEuclideanDistance([0.0, 0.0]),
            k=1,
            until=300.0,
            shards=shards,
            batch_size=1,
        )
        db.subscribe(evaluator.on_update)
        stream = UpdateStream(
            db,
            seed=n + 2,
            mean_gap=0.25,
            periodic=True,
            speed=0.2,
            weights=(0.0, 0.0, 1.0),
        )
        before = evaluator.primitive_ops()
        stream.run(updates)
        audit.record(
            "Sharded per-update ops",
            n,
            (evaluator.primitive_ops() - before) / updates,
        )
        evaluator.shutdown()


def audit_cached_hits(sizes) -> list:
    """Exact-repeat cache hits must cost zero new sweep operations.

    Returns ``(n, ops)`` rows; any nonzero entry is a failure — the
    hit path would be re-running part of the Theorem 5 work it exists
    to avoid.
    """
    from repro.cache import QueryCache
    from repro.core.api import evaluate_knn
    from repro.obs.explain import explain

    rows = []
    for n in sizes:
        db = random_linear_mod(n, seed=n, extent=200.0, speed=5.0)
        cache = QueryCache()
        evaluate_knn(db, [0.0, 0.0], Interval(0.0, 20.0), k=2, cache=cache)
        report = explain(
            db, [0.0, 0.0], Interval(0.0, 20.0), "knn", k=2, cache=cache
        )
        ops = 0
        for stage in report.to_dict()["stages"]:
            ops += stage.get("attrs", {}).get("ops", 0)
            for child in stage.get("children", []):
                ops += child.get("attrs", {}).get("ops", 0)
        rows.append((n, ops))
    return rows


def measure_overhead(n=512, updates=50, repeats=3):
    """Median wall-clock of the update loop, observed vs unobserved."""

    def run(observe):
        db = banded_mod(n, seed=n + 1, band_gap=5.0, jitter_speed=0.2)
        engine = build_engine(db, observe=observe)
        db.subscribe(engine.on_update)
        stream = UpdateStream(
            db,
            seed=n + 2,
            mean_gap=0.25,
            periodic=True,
            speed=0.2,
            weights=(0.0, 0.0, 1.0),
        )
        started = time.perf_counter()
        stream.run(updates)
        return time.perf_counter() - started

    disabled = []
    enabled = []
    for _ in range(repeats):
        disabled.append(run(None))
        enabled.append(run(MetricsRegistry()))
    return statistics.median(disabled), statistics.median(enabled)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Audit the paper's complexity claims from op counters."
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller sweeps and no overhead measurement (the CI gate)",
    )
    parser.add_argument(
        "--overhead",
        action="store_true",
        help="also measure enabled-vs-disabled instrumentation overhead",
    )
    parser.add_argument(
        "--overhead-budget",
        type=float,
        default=0.10,
        help="maximum tolerated relative overhead (default: 0.10)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    args = parser.parse_args(argv)

    init_sizes = QUICK_INIT_SIZES if args.quick else FULL_INIT_SIZES
    update_sizes = QUICK_UPDATE_SIZES if args.quick else FULL_UPDATE_SIZES
    updates = 30 if args.quick else 50

    audit = ComplexityAudit()
    audit_theorem5_init(audit, init_sizes)
    audit_corollary6_updates(audit, update_sizes, updates=updates)
    audit_sharded_updates(audit, update_sizes, updates=updates)
    init_result = audit.check("Thm 5 init ops", "n log n")
    update_result = audit.check("Cor 6 per-update ops", "log n")
    sharded_result = audit.check("Sharded per-update ops", "log n")
    cached_rows = audit_cached_hits(init_sizes)
    cached_ok = all(ops == 0 for _, ops in cached_rows)

    failed = not audit.all_passed or not cached_ok
    overhead = None
    if args.overhead and not args.quick:
        disabled, enabled = measure_overhead()
        overhead = enabled / disabled - 1.0
        if overhead > args.overhead_budget:
            failed = True

    if args.json:
        payload = {
            "results": [
                {
                    "quantity": r.quantity,
                    "envelope": r.envelope,
                    "constant": r.constant,
                    "r_squared": r.r_squared,
                    "best_model": r.best_fit.model,
                    "passed": r.passed,
                    "observations": list(r.observations),
                }
                for r in audit.results
            ],
            "cached_hit_ops": [
                {"n": n, "ops": ops} for n, ops in cached_rows
            ],
            "cached_hits_free": cached_ok,
            "overhead": overhead,
            "passed": not failed,
        }
        print(json.dumps(payload, indent=2))
    else:
        print(audit.report())
        print()
        print(init_result.describe())
        print(update_result.describe())
        print(sharded_result.describe())
        print(
            "cached exact-repeat hit ops: "
            + ", ".join(f"N={n}: {ops}" for n, ops in cached_rows)
            + ("  (free — OK)" if cached_ok else "  (NONZERO — FAILED)")
        )
        if overhead is not None:
            print(
                f"instrumentation overhead: {overhead:+.2%} "
                f"(budget {args.overhead_budget:.0%})"
            )
        print("complexity audit:", "FAILED" if failed else "passed")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
