#!/usr/bin/env python
"""CI smoke for the query profiler and EXPLAIN pipeline.

Runs :func:`repro.obs.explain` across the configuration matrix — all
three query kinds, sharded evaluation, the process-pool backend, and a
warm answer cache — printing each EXPLAIN report and asserting the
profiler's core invariants:

- the answer equals the plain (unprofiled) evaluation,
- top-level stage wall times account for >= 95% of the total,
- every captured span (worker-side included) carries the query id.

Exit status is non-zero on any violation, so CI can run this as a
cheap end-to-end gate on the observability layer.
"""

from __future__ import annotations

import sys

from repro.cache import QueryCache
from repro.core.api import evaluate_knn, evaluate_multiknn, evaluate_within
from repro.geometry.intervals import Interval
from repro.obs import QueryProfiler, SlowQueryLog, explain
from repro.workloads.generator import random_linear_mod

WINDOW = Interval(1.0, 30.0)


def check(report, plain, min_coverage=0.95, slack_seconds=0.0005):
    failures = []
    if report.answer != plain:
        failures.append("answer differs from plain evaluation")
    # Relative coverage for real evaluations; sub-millisecond cache
    # hits are dominated by fixed profiler bookkeeping, so a small
    # absolute slack covers them instead.
    unattributed = report.total_seconds * (1.0 - report.coverage)
    if report.coverage < min_coverage and unattributed > slack_seconds:
        failures.append(
            f"stage coverage {report.coverage:.3f} < {min_coverage} "
            f"with {unattributed * 1e6:.0f}us unattributed"
        )
    data = report.to_dict()
    for record in data["spans"]:
        if record["attrs"].get("query_id") != report.query_id:
            failures.append(f"uncorrelated span {record['name']}")
    for shard, snapshot in data.get("shards", {}).items():
        for record in snapshot.get("records", []):
            if record["attrs"].get("query_id") != report.query_id:
                failures.append(f"uncorrelated worker span (shard {shard})")
    return failures


def main() -> int:
    db = random_linear_mod(32, seed=13, extent=50.0, speed=3.0)
    cache = QueryCache()
    profiler = QueryProfiler(slow_log=SlowQueryLog(threshold_seconds=0.25))
    profiler.attribution.watch_cache(cache)

    cases = [
        (
            "knn, single engine",
            lambda: explain(
                db, [0.0, 0.0], WINDOW, "knn", k=3, profiler=profiler
            ),
            lambda: evaluate_knn(db, [0.0, 0.0], WINDOW, k=3),
        ),
        (
            "within, 4 shards",
            lambda: explain(
                db, [5.0, -5.0], WINDOW, "within", distance=25.0,
                shards=4, profiler=profiler,
            ),
            lambda: evaluate_within(db, [5.0, -5.0], WINDOW, distance=25.0),
        ),
        (
            "knn, 2 shards, process backend",
            lambda: explain(
                db, [0.0, 0.0], WINDOW, "knn", k=2, shards=2,
                backend="process", profiler=profiler,
            ),
            lambda: evaluate_knn(db, [0.0, 0.0], WINDOW, k=2),
        ),
        (
            "multiknn, cold cache",
            lambda: explain(
                db, [0.0, 0.0], WINDOW, "multiknn", ks=[1, 3],
                cache=cache, profiler=profiler,
            ),
            lambda: evaluate_multiknn(db, [0.0, 0.0], WINDOW, ks=[1, 3]),
        ),
        (
            "multiknn, warm cache",
            lambda: explain(
                db, [0.0, 0.0], WINDOW, "multiknn", ks=[1, 3],
                cache=cache, profiler=profiler,
            ),
            lambda: evaluate_multiknn(db, [0.0, 0.0], WINDOW, ks=[1, 3]),
        ),
    ]

    failed = False
    for title, run, plain in cases:
        report = run()
        print(f"=== {title} ===")
        print(report.text())
        failures = check(report, plain())
        for failure in failures:
            print(f"  !! {failure}")
            failed = True
        print()

    print("=== workload attribution ===")
    print(profiler.to_json(indent=2))
    if profiler.attribution.queries != len(cases):
        print("  !! attribution missed queries")
        failed = True
    print()
    print("explain smoke:", "FAILED" if failed else "passed")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
