#!/usr/bin/env python
"""Failover smoke test: chaos scenarios over the durable serving stack.

Run with no arguments (CI does).  Drives the seeded chaos harness in
:mod:`repro.workloads.chaos` through three fault families:

1. **primary kill + transparent failover** — a durable primary and a
   warm standby serve a failover-aware client; the primary is killed
   abruptly (no drain, no checkpoint) at a seeded update index, the
   standby auto-promotes, and the client finishes the session on the
   promoted replica.  Probe sets and the final answer must match an
   uninterrupted in-process mirror *and* the naive baseline.
2. **replication frame loss** — the standby's replication link is cut
   mid-stream before the kill; the pump must resume from its applied
   watermark (no record applied twice) and still survive the failover.
3. **torn WAL tail** — a crashed primary's server WAL is truncated at
   a seeded byte offset; recovery must succeed on the surviving prefix
   and match a mirror that only ever saw the surviving updates.

Exit status 0 means every seeded scenario's three-way differential
held.  Pass ``--seeds N`` to widen the sweep (CI default below keeps
the job under a minute).
"""

import argparse
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.workloads.chaos import (  # noqa: E402
    run_failover_chaos,
    run_truncation_chaos,
)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--seeds",
        type=int,
        default=4,
        help="scenarios per fault family (default 4)",
    )
    args = parser.parse_args()

    failures = 0
    for seed in range(args.seeds):
        report = run_failover_chaos(seed)
        status = "OK " if report.ok else "FAIL"
        print(
            f"[{status}] kill      seed={seed} mode={report.mode:8s} "
            f"kill@{report.kill_after}/{report.updates} "
            f"failovers={report.failovers} "
            f"promoted={report.promoted_seconds:.2f}s "
            f"probes={report.probes} (after kill {report.probes_after_kill})"
        )
        if not report.ok:
            failures += 1
            for mismatch in report.mismatches:
                print(f"        - {mismatch}")

    for seed in range(args.seeds):
        report = run_failover_chaos(seed, drop_link_every=2)
        status = "OK " if report.ok else "FAIL"
        print(
            f"[{status}] framedrop seed={seed} mode={report.mode:8s} "
            f"cuts={report.link_cuts} failovers={report.failovers}"
        )
        if not report.ok:
            failures += 1
            for mismatch in report.mismatches:
                print(f"        - {mismatch}")

    for seed in range(args.seeds * 2):
        report = run_truncation_chaos(seed)
        status = "OK " if report.ok else "FAIL"
        print(
            f"[{status}] torn-tail seed={seed} mode={report.mode:8s} "
            f"cut={report.cut_bytes}B survivors={report.records_after} "
            f"replayed={report.recovered_tail}"
        )
        if not report.ok:
            failures += 1
            for mismatch in report.mismatches:
                print(f"        - {mismatch}")

    if failures:
        print(f"failover smoke: {failures} scenario(s) FAILED")
        return 1
    print("failover smoke OK: every scenario matched mirror + naive")
    return 0


if __name__ == "__main__":
    sys.exit(main())
