#!/usr/bin/env python
"""CI perf-regression gate over deterministic cost measures.

Re-measures three headline experiments at CI-friendly scale and
compares each metric against the committed baselines under
``benchmarks/baselines/`` with per-metric tolerance bands:

- **E-SH** (``BENCH_ESH.json``) — sharded vs single-engine per-update
  primitive ops on a crossing-rich chdir stream (Theorem 5
  maintenance, hash-partitioned);
- **E-AC** (``BENCH_EAC.json``) — answer-cache hit rate and the
  cached-pass op fraction on a repeated/overlapping kNN workload
  (Theorem 5 init amortization);
- **T5** (``BENCH_T5.json``) — Theorem 5 initialization ops at fixed N
  and Corollary 6 per-update maintenance ops on a banded workload;
- **E-MQ** (``BENCH_EMQ.json``) — multi-tenant server fan-out: the
  per-update primitive-op ratio of 32 independent sessions vs one
  :class:`~repro.server.QueryServer` sharing sweeps across engine
  groups (answers are asserted equal inside the measure);
- **E-NET** (``BENCH_ENET.json``) — TCP frontend wire cost: requests,
  pushed answer changes, and bytes per direction for a fixed remote
  session mix over loopback (remote answers are asserted equal to an
  in-process twin inside the measure);
- **E-REC** (``BENCH_EREC.json``) — crash-recovery cost: journal
  records replayed at two checkpoint placements (exact counts) and
  recovery sweep ops relative to uninterrupted live ingestion
  (recovered answers are asserted equal to a live mirror inside the
  measure).

Every measure counts *primitive sweep operations*, hit rates, or wire
frames/bytes — never wall-clock — so the gate is deterministic across
machines; tolerances
exist to absorb intentional small algorithmic drift, not timer noise.
The cache/ops measures are taken through :func:`repro.obs.explain`,
so the gate also exercises the profiler's stage attribution end to
end.

Exit status is non-zero when any metric leaves its band.  After an
*intentional* performance change, regenerate the baselines with::

    PYTHONPATH=src python scripts/perf_gate.py --update-baselines

and commit the refreshed ``benchmarks/baselines/*.json`` alongside the
change (the diff documents the accepted shift).
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.cache import QueryCache
from repro.geometry.intervals import Interval
from repro.gdist.euclidean import SquaredEuclideanDistance
from repro.obs.explain import explain
from repro.parallel.evaluator import ShardedSweepEvaluator
from repro.sweep.engine import SweepEngine
from repro.workloads.generator import (
    UpdateStream,
    banded_mod,
    random_linear_mod,
)

BASELINE_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "benchmarks",
    "baselines",
)

ORIGIN = SquaredEuclideanDistance([0.0, 0.0])

# E-SH at gate scale: large enough that sharding's 1 - 1/S event
# reduction shows, small enough for seconds-not-minutes CI runs.
ESH_N = 1000
ESH_UPDATES = 60
ESH_SHARDS = 4
ESH_BATCH = 16
ESH_MEAN_GAP = 0.003
ESH_HORIZON = 500.0

EAC_N = 120
EAC_WINDOW = Interval(0.0, 12.0)
EAC_K = 3

T5_N = 512
T5_UPDATES = 80

EMQ_N = 64
EMQ_UPDATES = 40
EMQ_SESSIONS = 32
# Four knn ks + two multiknn mixes share one rank pool; two within
# thresholds add one engine group each -> 3 groups for any Q >= 7.
EMQ_SPEC_CYCLE = (
    ("knn", {"k": 1}),
    ("knn", {"k": 2}),
    ("multiknn", {"ks": (1, 3)}),
    ("within", {"threshold": 900.0}),
    ("knn", {"k": 3}),
    ("multiknn", {"ks": (2, 4)}),
    ("within", {"threshold": 2500.0}),
    ("knn", {"k": 4}),
)

ENET_N = 16
ENET_UPDATES = 8
ENET_SESSIONS = 8
ENET_SUBSCRIBE_EVERY = 4
ENET_SPEC_CYCLE = (
    ("knn", {"k": 1}),
    ("within", {"threshold": 900.0}),
    ("multiknn", {"ks": (1, 3)}),
    ("knn", {"k": 3}),
)

EREC_N = 48
EREC_UPDATES = 64
EREC_SEED = 29
EREC_TAIL_SHORT = 8
EREC_TAIL_LONG = 48
EREC_SPEC_CYCLE = (
    ("knn", {"k": 2}),
    ("within", {"threshold": 900.0}),
    ("multiknn", {"ks": (1, 3)}),
)


def _stage_ops(report, *names):
    """Summed ``ops`` annotations over the named top-level stages."""
    total = 0
    for stage in report.to_dict()["stages"]:
        if stage["name"] in names:
            total += stage.get("attrs", {}).get("ops", 0)
        for child in stage.get("children", []):
            if child["name"] in names:
                total += child.get("attrs", {}).get("ops", 0)
    return total


def measure_esh() -> dict:
    """Sharded vs single per-update maintenance ops (E-SH)."""

    def mod():
        return random_linear_mod(
            ESH_N, seed=ESH_N, extent=300.0, speed=2.0
        )

    def stream(db):
        return UpdateStream(
            db,
            seed=97,
            mean_gap=ESH_MEAN_GAP,
            periodic=True,
            extent=300.0,
            speed=2.0,
            weights=(0.0, 0.0, 1.0),
        )

    db = mod()
    engine = SweepEngine(db, ORIGIN, Interval(0.0, ESH_HORIZON))
    db.subscribe(engine.on_update)
    before = engine.primitive_ops()
    stream(db).run(ESH_UPDATES)
    engine.advance_to(db.last_update_time + ESH_MEAN_GAP)
    single = (engine.primitive_ops() - before) / ESH_UPDATES

    db = mod()
    evaluator = ShardedSweepEvaluator.knn(
        db,
        ORIGIN,
        k=1,
        until=ESH_HORIZON,
        shards=ESH_SHARDS,
        batch_size=ESH_BATCH,
    )
    db.subscribe(evaluator.on_update)
    before = evaluator.primitive_ops()
    stream(db).run(ESH_UPDATES)
    evaluator.advance_to(db.last_update_time + ESH_MEAN_GAP)
    sharded = (evaluator.primitive_ops() - before) / ESH_UPDATES
    evaluator.shutdown()

    return {
        "single_ops_per_update": single,
        "sharded_ops_per_update": sharded,
        "ops_ratio": sharded / single,
    }


def measure_eac() -> dict:
    """Answer-cache hit rate and cached-pass op fraction (E-AC)."""
    db = random_linear_mod(EAC_N, seed=EAC_N, extent=150.0, speed=3.0)
    # Repeats, a zoom, and two horizon extensions per query point.
    schedule = []
    for x in (-30.0, 0.0, 30.0):
        gd = SquaredEuclideanDistance([x, 0.0])
        schedule.append((gd, EAC_WINDOW))
        schedule.append((gd, EAC_WINDOW))
        schedule.append((gd, Interval(2.0, 8.0)))
        schedule.append((gd, Interval(0.0, EAC_WINDOW.hi + 2.0)))
        schedule.append((gd, Interval(0.0, EAC_WINDOW.hi + 4.0)))

    def run(cache):
        ops = 0
        for gd, interval in schedule:
            report = explain(db, gd, interval, "knn", k=EAC_K, cache=cache)
            ops += _stage_ops(report, "init", "sweep", "cache.extend")
        return ops

    cold_ops = run(None)
    cache = QueryCache()
    cached_ops = run(cache)
    stats = cache.stats()
    return {
        "answer_hit_rate": stats["answer_hit_rate"],
        "cold_ops": cold_ops,
        "cached_ops": cached_ops,
        "cached_ops_fraction": cached_ops / cold_ops,
    }


def measure_t5() -> dict:
    """Theorem 5 init ops and Corollary 6 per-update ops."""
    db = random_linear_mod(T5_N, seed=T5_N, extent=200.0, speed=5.0)
    engine = SweepEngine(db, ORIGIN, Interval(0.0, 300.0))
    init_ops = engine.primitive_ops()

    db = banded_mod(T5_N, seed=T5_N + 1, band_gap=5.0, jitter_speed=0.2)
    engine = SweepEngine(db, ORIGIN, Interval(0.0, 300.0))
    db.subscribe(engine.on_update)
    stream = UpdateStream(
        db,
        seed=T5_N + 2,
        mean_gap=0.25,
        periodic=True,
        speed=0.2,
        weights=(0.0, 0.0, 1.0),
    )
    before = engine.primitive_ops()
    stream.run(T5_UPDATES)
    per_update = (engine.primitive_ops() - before) / T5_UPDATES
    return {
        "init_ops": init_ops,
        "update_ops_per_update": per_update,
    }


def measure_emq() -> dict:
    """Shared-server fan-out vs per-session maintenance ops (E-MQ)."""
    from repro.core.api import ContinuousQuerySession, serve
    from repro.sweep.engine import SweepEngine
    from repro.sweep.multiknn import MultiKNN

    db = random_linear_mod(EMQ_N, seed=7, extent=80.0, speed=4.0)
    specs = [
        EMQ_SPEC_CYCLE[i % len(EMQ_SPEC_CYCLE)]
        for i in range(EMQ_SESSIONS)
    ]

    standalone = []
    for kind, params in specs:
        if kind == "knn":
            session = ContinuousQuerySession.knn(db, ORIGIN, k=params["k"])
            engine = session.engine
        elif kind == "within":
            session = ContinuousQuerySession.within(
                db, ORIGIN, params["threshold"]
            )
            engine = session.engine
        else:
            engine = SweepEngine(
                db, ORIGIN, Interval.at_least(db.last_update_time)
            )
            MultiKNN(engine, list(params["ks"]))
            db.subscribe(engine.on_update)
        standalone.append(engine)

    server = serve(db)
    sessions = []
    for kind, params in specs:
        if kind == "knn":
            sessions.append(server.register_knn(ORIGIN, k=params["k"]))
        elif kind == "within":
            sessions.append(
                server.register_within(ORIGIN, params["threshold"])
            )
        else:
            sessions.append(server.register_multiknn(ORIGIN, params["ks"]))

    alone_base = sum(e.primitive_ops() for e in standalone)
    server_base = server.primitive_ops()
    UpdateStream(
        db,
        seed=11,
        mean_gap=0.15,
        periodic=True,
        extent=80.0,
        speed=4.0,
        weights=(0.0, 0.0, 1.0),
    ).run(EMQ_UPDATES)
    alone_ops = sum(e.primitive_ops() for e in standalone) - alone_base
    server_ops = server.primitive_ops() - server_base
    for session in sessions:
        session.close(at=db.last_update_time + 1.0)
    server.shutdown()
    return {
        "per_session_ops_per_update": alone_ops / EMQ_UPDATES,
        "server_ops_per_update": server_ops / EMQ_UPDATES,
        "ops_ratio": alone_ops / server_ops,
    }


def measure_enet() -> dict:
    """Wire cost of the TCP serving frontend (E-NET).

    Every metric is a frame or byte count off :class:`repro.net.NetStats`
    for a fully deterministic session mix — request ids are fixed-width,
    the update stream is seeded, and pushes fire only on real answer
    changes — so the numbers are bit-stable across machines.
    """
    from repro.core.api import serve, serve_tcp
    from repro.geometry.vectors import Vector
    from repro.io import answer_to_dict
    from repro.mod.updates import New
    from repro.net import connect

    def build_db():
        db = random_linear_mod(ENET_N, seed=7, extent=60.0, speed=3.0)
        return db

    def stir(db):
        UpdateStream(
            db,
            seed=11,
            mean_gap=0.2,
            periodic=True,
            extent=60.0,
            speed=3.0,
            weights=(0.0, 0.0, 1.0),
        ).run(ENET_UPDATES)
        base = db.last_update_time
        for i in range(3):
            db.apply(
                New(
                    f"nb{i}",
                    base + 0.1 * (i + 1),
                    position=Vector.of(0.01 / (i + 1), 0.0),
                    velocity=Vector.of(0.0, 0.0),
                )
            )

    specs = [
        ENET_SPEC_CYCLE[i % len(ENET_SPEC_CYCLE)]
        for i in range(ENET_SESSIONS)
    ]
    db_local, db_remote = build_db(), build_db()
    local = serve(db_local)
    reference = []
    for kind, params in specs:
        if kind == "knn":
            reference.append(local.register_knn(ORIGIN, k=params["k"]))
        elif kind == "within":
            reference.append(
                local.register_within(ORIGIN, params["threshold"])
            )
        else:
            reference.append(
                local.register_multiknn(ORIGIN, params["ks"])
            )

    net = serve_tcp(db_remote)
    client = connect(*net.address)
    try:
        remote = []
        for kind, params in specs:
            if kind == "knn":
                remote.append(
                    client.open_knn([0.0, 0.0], k=params["k"])
                )
            elif kind == "within":
                remote.append(
                    client.open_within(
                        [0.0, 0.0], threshold=params["threshold"]
                    )
                )
            else:
                remote.append(
                    client.open_multiknn(
                        [0.0, 0.0], ks=list(params["ks"])
                    )
                )
        for session in remote[::ENET_SUBSCRIBE_EVERY]:
            session.subscribe()

        stir(db_local)
        stir(db_remote)

        horizon = db_remote.last_update_time + 1.0
        for (kind, _), rem, ref in zip(specs, remote, reference):
            got = rem.close(at=horizon)
            want = ref.close(at=horizon)
            if kind == "multiknn":
                assert set(got) == set(want)
                for k in want:
                    assert answer_to_dict(got[k]) == answer_to_dict(
                        want[k]
                    )
            else:
                assert answer_to_dict(got) == answer_to_dict(want)

        stats = net.stats
        return {
            "requests": float(stats.requests),
            "pushes": float(stats.pushes),
            "replays": float(stats.replays),
            "bytes_in_per_request": stats.bytes_in / stats.requests,
            "bytes_out_per_request": stats.bytes_out / stats.requests,
        }
    finally:
        client.close()
        net.close()
        local.shutdown()


def measure_erec() -> dict:
    """Crash-recovery replay cost vs checkpoint placement (E-REC).

    Every metric is a record or primitive-op count off seeded replays
    — never wall-clock.  The recovered servers' sessions are asserted
    to close to the same answers as an uninterrupted in-process
    mirror, so the gate re-proves the (snapshot, tail) reconstruction
    while it prices it.
    """
    import shutil
    import tempfile

    from repro.core.api import serve
    from repro.io import answer_to_dict
    from repro.replication import DurableQueryServer, recover_server

    def build_db():
        return random_linear_mod(
            EREC_N, seed=EREC_SEED, extent=80.0, speed=4.0
        )

    def register(server):
        sessions = []
        for kind, params in EREC_SPEC_CYCLE:
            if kind == "knn":
                sessions.append(server.register_knn(ORIGIN, k=params["k"]))
            elif kind == "within":
                sessions.append(
                    server.register_within(ORIGIN, params["threshold"])
                )
            else:
                sessions.append(
                    server.register_multiknn(ORIGIN, params["ks"])
                )
        return sessions

    scratch = build_db()
    updates = []
    scratch.subscribe(updates.append)
    UpdateStream(
        scratch, seed=EREC_SEED + 1, extent=80.0, speed=4.0
    ).run(EREC_UPDATES)
    horizon = scratch.last_update_time + 1.0

    def close_all(sessions):
        return [s.close(at=horizon) for s in sessions]

    mirror = serve(build_db())
    want = None
    live_ops = None
    try:
        mirror_sessions = register(mirror)
        for update in updates:
            mirror.db.apply(update)
        live_ops = mirror.primitive_ops()
        want = close_all(mirror_sessions)
    finally:
        mirror.shutdown()

    def recover_with_tail(tail, directory):
        server = DurableQueryServer(
            build_db(),
            directory=directory,
            sync="flush",
            checkpoint_interval=None,
        )
        register(server)
        cut = len(updates) - tail
        for i, update in enumerate(updates):
            server.db.apply(update)
            if i + 1 == cut:
                server.checkpoint()
        server.journal.close()  # simulated kill
        recovered = recover_server(directory, checkpoint_on_recover=False)
        replayed = recovered.recovered_tail
        ops = recovered.primitive_ops()
        got = close_all(recovered.sessions())
        for g, w in zip(got, want):
            if isinstance(w, dict):
                assert set(g) == set(w)
                for k in w:
                    assert answer_to_dict(g[k]) == answer_to_dict(w[k])
            else:
                assert answer_to_dict(g) == answer_to_dict(w)
        recovered.shutdown()
        return replayed, ops

    workdir = tempfile.mkdtemp(prefix="erec-gate-")
    try:
        _, restore_ops = recover_with_tail(
            0, os.path.join(workdir, "tail-0")
        )
        tail_short, ops_short = recover_with_tail(
            EREC_TAIL_SHORT, os.path.join(workdir, "tail-short")
        )
        tail_long, ops_long = recover_with_tail(
            EREC_TAIL_LONG, os.path.join(workdir, "tail-long")
        )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    return {
        "tail_short": float(tail_short),
        "tail_long": float(tail_long),
        "restore_only_ops": float(restore_ops),
        "recovery_ops_short": float(ops_short),
        "recovery_ops_long": float(ops_long),
        "recovery_vs_live_ratio": ops_long / live_ops,
    }


SUITES = {
    "esh": (measure_esh, "BENCH_ESH.json"),
    "eac": (measure_eac, "BENCH_EAC.json"),
    "t5": (measure_t5, "BENCH_T5.json"),
    "emq": (measure_emq, "BENCH_EMQ.json"),
    "enet": (measure_enet, "BENCH_ENET.json"),
    "erec": (measure_erec, "BENCH_EREC.json"),
}

# Per-metric gate policy: direction "max" fails when the current value
# exceeds baseline * (1 + tolerance) — lower is better; "min" fails
# below baseline * (1 - tolerance) — higher is better.
POLICY = {
    "esh": {
        "single_ops_per_update": ("max", 0.15),
        "sharded_ops_per_update": ("max", 0.15),
        "ops_ratio": ("max", 0.15),
    },
    "eac": {
        "answer_hit_rate": ("min", 0.05),
        "cold_ops": ("max", 0.15),
        "cached_ops": ("max", 0.15),
        "cached_ops_fraction": ("max", 0.15),
    },
    "t5": {
        "init_ops": ("max", 0.10),
        "update_ops_per_update": ("max", 0.15),
    },
    "emq": {
        "per_session_ops_per_update": ("max", 0.15),
        "server_ops_per_update": ("max", 0.15),
        # Higher is better: the fan-out amortization must not erode.
        "ops_ratio": ("min", 0.15),
    },
    "enet": {
        # More frames for the same session mix = chattier protocol.
        "requests": ("max", 0.10),
        "pushes": ("max", 0.25),
        # A clean loopback run must never need the retry path.
        "replays": ("max", 0.0),
        "bytes_in_per_request": ("max", 0.15),
        "bytes_out_per_request": ("max", 0.15),
    },
    "erec": {
        # Replayed-record counts are exact by construction: any drift
        # means checkpoint coverage accounting broke.
        "tail_short": ("max", 0.0),
        "tail_long": ("max", 0.0),
        "restore_only_ops": ("max", 0.15),
        "recovery_ops_short": ("max", 0.15),
        "recovery_ops_long": ("max", 0.15),
        # Recovery must keep costing ~live ingestion, not multiples
        # of it (the back-dated rebuild re-sweeps history once).
        "recovery_vs_live_ratio": ("max", 0.15),
    },
}


def compare(suite: str, current: dict, baseline: dict) -> list:
    """Per-metric verdicts for one suite; a row per gated metric."""
    rows = []
    for name, (direction, tolerance) in POLICY[suite].items():
        base = baseline["metrics"][name]
        value = current[name]
        if direction == "max":
            limit = base * (1.0 + tolerance)
            ok = value <= limit
        else:
            limit = base * (1.0 - tolerance)
            ok = value >= limit
        rows.append(
            {
                "suite": suite,
                "metric": name,
                "current": value,
                "baseline": base,
                "limit": limit,
                "direction": direction,
                "tolerance": tolerance,
                "ok": ok,
            }
        )
    return rows


def baseline_path(suite: str, directory: str) -> str:
    return os.path.join(directory, SUITES[suite][1])


def write_baseline(suite: str, current: dict, directory: str) -> None:
    os.makedirs(directory, exist_ok=True)
    payload = {
        "suite": suite,
        "metrics": current,
        "policy": {
            name: {"direction": d, "tolerance": t}
            for name, (d, t) in POLICY[suite].items()
        },
    }
    with open(baseline_path(suite, directory), "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def run_gate(suites, directory: str, update: bool = False):
    """Measure the requested suites; returns (rows, failed)."""
    rows = []
    failed = False
    for suite in suites:
        measure, filename = SUITES[suite]
        current = measure()
        if update:
            write_baseline(suite, current, directory)
            continue
        path = baseline_path(suite, directory)
        if not os.path.exists(path):
            raise SystemExit(
                f"missing baseline {path}; run with --update-baselines"
            )
        with open(path, "r", encoding="utf-8") as fh:
            baseline = json.load(fh)
        suite_rows = compare(suite, current, baseline)
        rows.extend(suite_rows)
        failed = failed or not all(r["ok"] for r in suite_rows)
    return rows, failed


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Gate CI on deterministic perf measures vs baselines."
    )
    parser.add_argument(
        "--suite",
        choices=sorted(SUITES),
        action="append",
        help="restrict to one suite (repeatable; default: all)",
    )
    parser.add_argument(
        "--baseline-dir",
        default=BASELINE_DIR,
        help="directory holding BENCH_*.json baselines",
    )
    parser.add_argument(
        "--update-baselines",
        action="store_true",
        help="rewrite the baselines from current measures (after an "
        "intentional perf change) instead of gating",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    args = parser.parse_args(argv)
    suites = args.suite or sorted(SUITES)

    rows, failed = run_gate(
        suites, args.baseline_dir, update=args.update_baselines
    )
    if args.update_baselines:
        print(f"baselines rewritten under {args.baseline_dir}")
        return 0

    if args.json:
        print(json.dumps({"rows": rows, "passed": not failed}, indent=2))
    else:
        width = max(len(r["metric"]) for r in rows)
        for row in rows:
            arrow = "<=" if row["direction"] == "max" else ">="
            print(
                f"[{'ok' if row['ok'] else 'FAIL':4}] "
                f"{row['suite']}/{row['metric']:<{width}}  "
                f"current {row['current']:12.4f}  {arrow} limit "
                f"{row['limit']:12.4f}  (baseline {row['baseline']:.4f} "
                f"±{row['tolerance']:.0%})"
            )
        print("perf gate:", "FAILED" if failed else "passed")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
