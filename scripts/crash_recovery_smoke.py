#!/usr/bin/env python
"""Crash-recovery smoke test: kill ingestion mid-stream, then recover.

Run with no arguments (CI does).  The script re-executes itself as a
child process that ingests a seeded update stream through the WAL-backed
repair pipeline and then hard-exits via ``os._exit`` mid-append,
leaving a truncated final WAL line — a real process death, not a
simulated one.  The parent then calls ``repro.resilience.recover`` on
the durability directory and asserts:

1. recovery survives the truncated tail (skips it, repairs the file);
2. the recovered database equals a clean from-scratch replay of the
   recovered log — byte-for-byte as dicts;
3. the recovered database equals the clean prefix of the original
   stream up to the recovered ``tau`` (nothing durable was lost,
   nothing phantom appeared).

Exit status 0 means all assertions held.
"""

import os
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.io import database_to_dict  # noqa: E402
from repro.mod.database import MovingObjectDatabase  # noqa: E402
from repro.resilience.ingest import IngestPipeline  # noqa: E402
from repro.resilience.wal import WAL_FILENAME, WriteAheadLog, recover  # noqa: E402
from repro.workloads.generator import recorded_future_workload  # noqa: E402

SEED = 21
OBJECTS = 8
UPDATES = 40
CHILD_EXIT = 42


def clean_stream():
    db, _ = recorded_future_workload(OBJECTS, UPDATES, seed=SEED)
    return db.log.updates


def child(directory):
    """Ingest ~60% of the stream, then die mid-append."""
    updates = clean_stream()
    cut = int(len(updates) * 0.6)
    wal = WriteAheadLog(directory)
    pipe = IngestPipeline(
        MovingObjectDatabase(initial_time=float("-inf")),
        policy="repair",
        window=1.0,
        wal=wal,
        checkpoint_every=10,
    )
    pipe.submit_all(updates[:cut])
    # The crash: start appending the next update and die before the
    # line is complete.  os._exit skips every flush/close path, exactly
    # like a SIGKILL at this instant.
    handle = open(os.path.join(directory, WAL_FILENAME), "a")
    handle.write('{"kind": "chdir", "oid": "n3", "ti')
    handle.flush()
    os._exit(CHILD_EXIT)


def parent():
    with tempfile.TemporaryDirectory(prefix="mod-wal-") as directory:
        proc = subprocess.run(
            [sys.executable, os.path.abspath(__file__), "--child", directory],
            env={**os.environ, "PYTHONPATH": os.path.join(REPO_ROOT, "src")},
        )
        assert proc.returncode == CHILD_EXIT, (
            f"child exited with {proc.returncode}, expected {CHILD_EXIT}"
        )
        wal_path = os.path.join(directory, WAL_FILENAME)
        raw = open(wal_path, "rb").read()
        assert not raw.endswith(b"\n"), "child did not leave a truncated tail"

        recovered, log = recover(directory)
        assert len(log.updates) > 0, "no updates recovered"

        # (1) the tail was repaired: the file now ends on a clean line.
        assert open(wal_path, "rb").read().endswith(b"}\n")

        # (2) replaying the recovered log reproduces the recovered
        # database exactly.
        replayed = MovingObjectDatabase(initial_time=float("-inf"))
        for update in log.updates:
            replayed.apply(update)
        recovered_dict = database_to_dict(recovered)
        assert database_to_dict(replayed) == recovered_dict, (
            "recovered database differs from a clean replay of its log"
        )

        # (3) recovery restored exactly the durable prefix of the clean
        # stream: every clean update up to the recovered tau, nothing
        # else.
        tau = recovered.last_update_time
        reference = MovingObjectDatabase(initial_time=float("-inf"))
        for update in clean_stream():
            if update.time <= tau:
                reference.apply(update)
        assert database_to_dict(reference) == recovered_dict, (
            "recovered database diverges from the clean update history"
        )

        print(
            "crash-recovery smoke OK: "
            f"{len(log.updates)} updates recovered, tau={tau:.3f}, "
            f"objects={sorted(map(str, recovered.object_ids))}"
        )


def main():
    if len(sys.argv) == 3 and sys.argv[1] == "--child":
        child(sys.argv[2])
    else:
        parent()


if __name__ == "__main__":
    main()
