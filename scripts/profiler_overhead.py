#!/usr/bin/env python
"""Measure the profiler's disabled-path (``observe=None``) overhead.

The acceptance bar for the observability layer is that the *disabled*
path stays free: every hook resolves to a null stage/counter, so an
unobserved evaluation must cost what it cost before the profiler
existed.  This script measures the E-SH-style maintenance workload
(single engine + sharded evaluator driving a chdir stream) three ways:

- ``disabled`` — current tree, ``observe=None`` (median of repeats);
- ``baseline`` — the same workload run in a *different source tree*
  (``--baseline-src``, e.g. a git worktree of the pre-profiler
  commit), via a subprocess with ``PYTHONPATH`` pointed there;
- ``profiled`` — current tree under a full :class:`QueryProfile`.

Results land in ``benchmarks/results/profiler_overhead.metrics.json``.
The workload deliberately uses only APIs that predate the profiler so
the subprocess runs unmodified in older trees (``--measure`` is the
subprocess entry point).
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import subprocess
import sys
import time

N = 1000
UPDATES = 60
SHARDS = 4
BATCH = 16
MEAN_GAP = 0.003
HORIZON = 500.0
REPEATS = 5

RESULTS = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "benchmarks",
    "results",
    "profiler_overhead.metrics.json",
)


def run_workload(observe=None) -> float:
    """One E-SH-style pass: single + sharded maintenance, wall seconds."""
    from repro.geometry.intervals import Interval
    from repro.gdist.euclidean import SquaredEuclideanDistance
    from repro.parallel.evaluator import ShardedSweepEvaluator
    from repro.sweep.engine import SweepEngine
    from repro.workloads.generator import UpdateStream, random_linear_mod

    origin = SquaredEuclideanDistance([0.0, 0.0])

    def stream(db):
        return UpdateStream(
            db,
            seed=97,
            mean_gap=MEAN_GAP,
            periodic=True,
            extent=300.0,
            speed=2.0,
            weights=(0.0, 0.0, 1.0),
        )

    started = time.perf_counter()
    db = random_linear_mod(N, seed=N, extent=300.0, speed=2.0)
    engine = SweepEngine(
        db, origin, Interval(0.0, HORIZON), observe=observe
    )
    db.subscribe(engine.on_update)
    stream(db).run(UPDATES)
    engine.advance_to(db.last_update_time + MEAN_GAP)

    db = random_linear_mod(N, seed=N, extent=300.0, speed=2.0)
    evaluator = ShardedSweepEvaluator.knn(
        db,
        origin,
        k=1,
        until=HORIZON,
        shards=SHARDS,
        batch_size=BATCH,
        observe=observe,
    )
    db.subscribe(evaluator.on_update)
    stream(db).run(UPDATES)
    evaluator.advance_to(db.last_update_time + MEAN_GAP)
    evaluator.shutdown()
    return time.perf_counter() - started


def median_disabled(repeats: int = REPEATS) -> float:
    return statistics.median(run_workload(None) for _ in range(repeats))


def median_profiled(repeats: int = REPEATS) -> float:
    from repro.obs.profile import QueryProfiler

    profiler = QueryProfiler()

    def once() -> float:
        with profiler.profile("esh-overhead") as prof:
            return run_workload(prof.observe)

    return statistics.median(once() for _ in range(repeats))


def subprocess_disabled(src: str, repeats: int = REPEATS) -> float:
    """The disabled-path median measured against another source tree."""
    env = dict(os.environ, PYTHONPATH=src)
    out = subprocess.run(
        [sys.executable, os.path.abspath(__file__), "--measure",
         "--repeats", str(repeats)],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    return json.loads(out.stdout)["seconds"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Measure observe=None overhead on the E-SH workload."
    )
    parser.add_argument(
        "--measure",
        action="store_true",
        help="(subprocess mode) print the disabled-path median and exit",
    )
    parser.add_argument(
        "--baseline-src",
        help="src directory of a pre-profiler tree (e.g. a git worktree) "
        "to measure the true before/after overhead",
    )
    parser.add_argument("--repeats", type=int, default=REPEATS)
    parser.add_argument(
        "--budget",
        type=float,
        default=0.02,
        help="max tolerated disabled-path overhead vs baseline "
        "(default 0.02 = 2%%)",
    )
    parser.add_argument("--out", default=RESULTS)
    args = parser.parse_args(argv)

    if args.measure:
        print(json.dumps({"seconds": median_disabled(args.repeats)}))
        return 0

    disabled = subprocess_disabled(
        os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "src",
        ),
        args.repeats,
    )
    profiled = median_profiled(args.repeats)
    payload = {
        "benchmark": "profiler_overhead",
        "workload": {
            "n": N,
            "updates": UPDATES,
            "shards": SHARDS,
            "batch": BATCH,
            "repeats": args.repeats,
        },
        "disabled_seconds": disabled,
        "profiled_seconds": profiled,
        "profiled_overhead": profiled / disabled - 1.0,
    }

    failed = False
    if args.baseline_src:
        baseline = subprocess_disabled(args.baseline_src, args.repeats)
        overhead = disabled / baseline - 1.0
        payload["baseline_seconds"] = baseline
        payload["disabled_overhead_vs_baseline"] = overhead
        payload["budget"] = args.budget
        failed = overhead > args.budget

    os.makedirs(os.path.dirname(args.out), exist_ok=True)
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(json.dumps(payload, indent=2, sort_keys=True))
    print(
        "profiler overhead:",
        "FAILED (disabled path regressed)" if failed else "recorded",
    )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
