#!/usr/bin/env python
"""Networked serving smoke test: remote sessions over a real socket.

Run with no arguments (CI does).  The script starts a
:func:`repro.core.api.serve_tcp` frontend on an ephemeral loopback
port, drives all three query kinds through
:class:`repro.net.RemoteQueryClient`, and asserts:

1. every remote answer is byte-identical (as dicts) to the answer an
   in-process :class:`~repro.server.QueryServer` produces for the same
   session over a twin database;
2. a subscribed session receives pushed ``answer_change`` events whose
   final membership matches a fresh ``members`` request;
3. remote EXPLAIN reports carry the ``net.decode`` / ``net.dispatch``
   / ``net.encode`` stages with ``server.close`` nested under
   dispatch;
4. graceful drain hands every still-open session its final answer.

Exit status 0 means all assertions held.
"""

import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.core.api import serve, serve_tcp  # noqa: E402
from repro.geometry.vectors import Vector  # noqa: E402
from repro.gdist.euclidean import SquaredEuclideanDistance  # noqa: E402
from repro.io import answer_to_dict  # noqa: E402
from repro.mod.updates import New  # noqa: E402
from repro.net import connect  # noqa: E402
from repro.workloads.generator import random_linear_mod  # noqa: E402

SEED = 7
OBJECTS = 10
POINT = [0.0, 0.0]
HORIZON = 6.0


def _db():
    return random_linear_mod(OBJECTS, seed=SEED, extent=30.0, speed=3.0)


def _newborns(db, times):
    for i, t in enumerate(times):
        db.apply(
            New(
                f"nb{i}",
                t,
                position=Vector.of(0.01 / (i + 1), 0.0),
                velocity=Vector.of(0.0, 0.0),
            )
        )


def main():
    db_remote, db_local = _db(), _db()
    gd = SquaredEuclideanDistance(POINT)
    local = serve(db_local)
    reference = {
        "knn": local.register_knn(gd, k=2),
        "within": local.register_within(gd, 60.0),
        "multiknn": local.register_multiknn(gd, (1, 3)),
    }

    net = serve_tcp(db_remote)
    client = connect(*net.address)
    remote = {
        "knn": client.open_knn(POINT, k=2),
        "within": client.open_within(POINT, threshold=60.0),
        "multiknn": client.open_multiknn(POINT, ks=[1, 3]),
    }

    # (2) live push stream on the knn session
    baseline = remote["knn"].subscribe()
    assert baseline == remote["knn"].members

    times = [1.0, 2.0, 3.0]
    _newborns(db_remote, times)
    _newborns(db_local, times)

    changes = [
        e
        for e in remote["knn"].changes(poll=0.5)
        if e["event"] == "answer_change"
    ]
    assert changes, "no answer_change events pushed"
    assert changes[-1]["members"] == remote["knn"].members

    # (3) EXPLAIN crosses the wire with the net stages attached
    report = remote["multiknn"].explain_close(at=HORIZON)
    names = {stage["name"] for stage in report.stages}
    assert {"net.decode", "net.dispatch", "net.encode"} <= names
    dispatch = next(
        s for s in report.stages if s["name"] == "net.dispatch"
    )
    assert "server.close" in {
        child["name"] for child in dispatch.get("children", [])
    }
    expected_multi = reference["multiknn"].close(at=HORIZON)
    assert {
        k: answer_to_dict(a) for k, a in report.answer.items()
    } == {k: answer_to_dict(a) for k, a in expected_multi.items()}

    # (1) remote ≡ in-process for the explicit closes
    for kind in ("knn", "within"):
        got = remote[kind].close(at=HORIZON)
        want = reference[kind].close(at=HORIZON)
        assert answer_to_dict(got) == answer_to_dict(want), kind

    # (4) drain a second wave of sessions mid-flight
    second = client.open_knn(POINT, k=1)
    drained = net.drain()
    assert set(drained) == {second.session_id}
    final = drained[second.session_id]
    ref2 = serve(db_local).register_knn(gd, k=1)
    assert answer_to_dict(final) == answer_to_dict(ref2.close())
    drain_events = [
        e for e in second.changes(poll=0.5) if e["event"] == "drain"
    ]
    assert len(drain_events) == 1
    assert answer_to_dict(drain_events[0]["answer"]) == answer_to_dict(
        final
    )

    stats = net.stats
    net.close()
    local.shutdown()
    print(
        "netserve smoke OK: "
        f"{stats.requests} requests, {stats.pushes} pushes, "
        f"{stats.bytes_in}B in / {stats.bytes_out}B out, "
        f"{stats.drained} drained, 0 replays needed"
    )


if __name__ == "__main__":
    main()
