"""Shared differential-testing oracle.

One seeded scenario — an initial MOD population plus a chronological
``new``/``terminate``/``chdir`` update stream — is driven identically
through four evaluation paths:

- the **naive baseline** (O(N^2) recomputation from trajectories),
- a **single** :class:`~repro.sweep.engine.SweepEngine`,
- a :class:`~repro.parallel.evaluator.ShardedSweepEvaluator` at any
  shard count / backend / batch size,
- a shared :class:`~repro.server.QueryServer` hosting the probed
  session *alongside co-tenant sessions of every other kind* (so the
  server path also checks that fan-out sharing never perturbs answers),

and each path reports the same two artifacts: the final snapshot
answer over the whole session and the instant answer sets at a fixed
probe schedule.  The differential tests assert all paths agree.

Probe instants sit at an *irrational* fraction between consecutive
update times, so they never coincide with an update timestamp or an
engineered crossing time — instant answers are then unambiguous (no
measure-zero boundary memberships) and set equality is exact.

The query is always passed as an explicit
:class:`~repro.gdist.euclidean.SquaredEuclideanDistance` and the
within threshold as a raw g-distance value, so every path compares
against bit-identical constants (no squaring on one side only).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.baselines.naive import naive_knn_answer, naive_within_answer
from repro.geometry.intervals import Interval
from repro.geometry.vectors import Vector
from repro.gdist.euclidean import SquaredEuclideanDistance
from repro.mod.database import MovingObjectDatabase
from repro.mod.updates import ChangeDirection, New, Terminate, Update
from repro.parallel.evaluator import ShardedSweepEvaluator
from repro.query.answers import SnapshotAnswer
from repro.sweep.engine import SweepEngine
from repro.sweep.knn import ContinuousKNN
from repro.sweep.multiknn import MultiKNN
from repro.sweep.within import ContinuousWithin

# Fraction of the gap between consecutive update times at which instant
# probes are placed: sqrt(2) - 1, irrational, so probes never land on
# update timestamps or rationally-engineered crossing instants.
PROBE_FRACTION = 0.41421356237309515

ANSWER_ATOL = 1e-5

KNN = "knn"
WITHIN = "within"
MULTIKNN = "multiknn"

ProbeRecord = Tuple[float, Union[Set, Dict[int, Set]]]


@dataclass
class Scenario:
    """One seeded differential scenario."""

    seed: int
    initial: List[New]
    stream: List[Update]
    start: float
    horizon: float
    point: Tuple[float, float]
    k: int
    ks: Tuple[int, ...]
    threshold: float

    def gdistance(self) -> SquaredEuclideanDistance:
        return SquaredEuclideanDistance(list(self.point))

    def build_db(self) -> MovingObjectDatabase:
        db = MovingObjectDatabase(initial_time=0.0)
        for update in self.initial:
            db.apply(update)
        return db

    def schedule(self) -> List[Tuple[Update, Optional[float]]]:
        """The stream, each update paired with the probe instant that
        follows it (before the next update / the horizon)."""
        out: List[Tuple[Update, Optional[float]]] = []
        for i, update in enumerate(self.stream):
            nxt = (
                self.stream[i + 1].time
                if i + 1 < len(self.stream)
                else self.horizon
            )
            probe = update.time + PROBE_FRACTION * (nxt - update.time)
            out.append((update, probe if probe < self.horizon else None))
        return out


def generate_scenario(seed: int) -> Scenario:
    """A reproducible random scenario: 5-8 objects, 6-10 updates."""
    rng = random.Random(seed)
    objects = rng.randint(5, 8)
    initial = [
        New(
            f"o{i}",
            0.001 * (i + 1),
            velocity=Vector.of(rng.uniform(-4, 4), rng.uniform(-4, 4)),
            position=Vector.of(rng.uniform(-20, 20), rng.uniform(-20, 20)),
        )
        for i in range(objects)
    ]
    live = [u.oid for u in initial]
    born = 0
    stream: List[Update] = []
    t = 1.0
    for _ in range(rng.randint(6, 10)):
        t += rng.uniform(0.4, 2.0)
        choice = rng.random()
        if choice < 0.22:
            born += 1
            oid = f"n{born}"
            stream.append(
                New(
                    oid,
                    t,
                    velocity=Vector.of(rng.uniform(-4, 4), rng.uniform(-4, 4)),
                    position=Vector.of(rng.uniform(-20, 20), rng.uniform(-20, 20)),
                )
            )
            live.append(oid)
        elif choice < 0.37 and len(live) > 2:
            oid = live.pop(rng.randrange(len(live)))
            stream.append(Terminate(oid, t))
        else:
            stream.append(
                ChangeDirection(
                    rng.choice(live),
                    t,
                    Vector.of(rng.uniform(-4, 4), rng.uniform(-4, 4)),
                )
            )
    return Scenario(
        seed=seed,
        initial=initial,
        stream=stream,
        start=0.001 * objects,
        horizon=t + rng.uniform(1.0, 3.0),
        point=(rng.uniform(-5, 5), rng.uniform(-5, 5)),
        k=rng.randint(1, 3),
        ks=tuple(sorted(rng.sample([1, 2, 3, 4], rng.randint(2, 3)))),
        threshold=rng.uniform(16.0, 400.0),
    )


# ---------------------------------------------------------------------------
# The three evaluation paths
# ---------------------------------------------------------------------------
def _naive_final(
    db: MovingObjectDatabase, sc: Scenario, mode: str
) -> Union[SnapshotAnswer, Dict[int, SnapshotAnswer]]:
    gd = sc.gdistance()
    window = Interval(sc.start, sc.horizon)
    if mode == KNN:
        return naive_knn_answer(db, gd, window, sc.k)
    if mode == WITHIN:
        return naive_within_answer(db, gd, window, sc.threshold)
    return {k: naive_knn_answer(db, gd, window, k) for k in sc.ks}


def _naive_instant(
    db: MovingObjectDatabase, sc: Scenario, mode: str, t: float
) -> Union[Set, Dict[int, Set]]:
    gd = sc.gdistance()
    instant = Interval(t, t)
    if mode == KNN:
        return naive_knn_answer(db, gd, instant, sc.k).at(t)
    if mode == WITHIN:
        return naive_within_answer(db, gd, instant, sc.threshold).at(t)
    return {k: naive_knn_answer(db, gd, instant, k).at(t) for k in sc.ks}


def run_naive(
    sc: Scenario, mode: str
) -> Tuple[
    Union[SnapshotAnswer, Dict[int, SnapshotAnswer]], List[ProbeRecord]
]:
    """Final answer + probe answers from the naive baseline."""
    db = sc.build_db()
    probes: List[ProbeRecord] = []
    for update, probe in sc.schedule():
        db.apply(update)
        if probe is not None:
            probes.append((probe, _naive_instant(db, sc, mode, probe)))
    return _naive_final(db, sc, mode), probes


def run_single(
    sc: Scenario, mode: str
) -> Tuple[
    Union[SnapshotAnswer, Dict[int, SnapshotAnswer]], List[ProbeRecord]
]:
    """Final answer + probe answers from one eager SweepEngine."""
    db = sc.build_db()
    gd = sc.gdistance()
    constants = [sc.threshold] if mode == WITHIN else []
    engine = SweepEngine(
        db, gd, Interval(sc.start, sc.horizon), constants=constants
    )
    if mode == KNN:
        view = ContinuousKNN(engine, sc.k)
    elif mode == WITHIN:
        view = ContinuousWithin(engine, sc.threshold)
    else:
        view = MultiKNN(engine, sc.ks)
    db.subscribe(engine.on_update)
    probes: List[ProbeRecord] = []
    for update, probe in sc.schedule():
        db.apply(update)
        if probe is not None:
            engine.advance_to(probe)
            if mode == MULTIKNN:
                probes.append((probe, {k: view.members(k) for k in sc.ks}))
            else:
                probes.append((probe, set(view.members)))
    engine.advance_to(sc.horizon)
    engine.finalize()
    final = view.answers() if mode == MULTIKNN else view.answer()
    return final, probes


def run_sharded(
    sc: Scenario,
    mode: str,
    shards: int,
    backend="sequential",
    batch_size: int = 1,
) -> Tuple[
    Union[SnapshotAnswer, Dict[int, SnapshotAnswer]], List[ProbeRecord]
]:
    """Final answer + probe answers from a ShardedSweepEvaluator."""
    db = sc.build_db()
    if mode == KNN:
        evaluator = ShardedSweepEvaluator.knn(
            db,
            sc.gdistance(),
            k=sc.k,
            until=sc.horizon,
            shards=shards,
            backend=backend,
            batch_size=batch_size,
        )
    elif mode == WITHIN:
        evaluator = ShardedSweepEvaluator.within(
            db,
            sc.gdistance(),
            sc.threshold,
            until=sc.horizon,
            shards=shards,
            backend=backend,
            batch_size=batch_size,
        )
    else:
        evaluator = ShardedSweepEvaluator.multiknn(
            db,
            sc.gdistance(),
            sc.ks,
            until=sc.horizon,
            shards=shards,
            backend=backend,
            batch_size=batch_size,
        )
    db.subscribe(evaluator.on_update)
    probes: List[ProbeRecord] = []
    try:
        for update, probe in sc.schedule():
            db.apply(update)
            if probe is not None:
                members = evaluator.advance_to(probe)
                if mode == MULTIKNN:
                    probes.append(
                        (probe, {k: evaluator.members_for(k) for k in sc.ks})
                    )
                else:
                    probes.append((probe, set(members)))
        evaluator.advance_to(sc.horizon)
        evaluator.finalize()
        final = evaluator.answers() if mode == MULTIKNN else evaluator.answer()
    finally:
        db.unsubscribe(evaluator.on_update)
        evaluator.shutdown()
    return final, probes


def run_server(
    sc: Scenario,
    mode: str,
    shards: int = 1,
    batch_size: int = 1,
) -> Tuple[
    Union[SnapshotAnswer, Dict[int, SnapshotAnswer]], List[ProbeRecord]
]:
    """Final answer + probe answers from a shared QueryServer session.

    The probed session is co-registered with one session of *each
    other* kind (same g-distance, so knn/multiknn co-tenant the probed
    session's rank pool and within adds a sentinel group): sharing the
    sweep with unrelated tenants must never change the probed answers.
    """
    from repro.core.api import serve
    from repro.server import ServerConfig

    db = sc.build_db()
    gd = sc.gdistance()
    server = serve(
        db, ServerConfig(shards=shards, batch_size=batch_size)
    )
    sessions = {
        KNN: server.register_knn(gd, k=sc.k),
        # gd is a GDistance, so the threshold is compared as-is — the
        # same bit-identical constant every other path uses.
        WITHIN: server.register_within(gd, sc.threshold),
        MULTIKNN: server.register_multiknn(gd, sc.ks),
    }
    session = sessions[mode]
    probes: List[ProbeRecord] = []
    try:
        for update, probe in sc.schedule():
            db.apply(update)
            if probe is not None:
                members = session.advance_to(probe)
                if mode == MULTIKNN:
                    probes.append(
                        (probe, {k: set(members[k]) for k in sc.ks})
                    )
                else:
                    probes.append((probe, set(members)))
        final = session.close(at=sc.horizon)
        for other in sessions.values():
            if other is not session:
                other.close(at=sc.horizon)
    finally:
        server.shutdown()
    return final, probes


def run_netserve(
    sc: Scenario,
    mode: str,
    shards: int = 1,
    batch_size: int = 1,
    drop_every: Optional[int] = None,
    force_heal: bool = False,
    stats_out: Optional[dict] = None,
) -> Tuple[
    Union[SnapshotAnswer, Dict[int, SnapshotAnswer]], List[ProbeRecord]
]:
    """Final answer + probe answers through the TCP serving frontend.

    Mirrors :func:`run_server` — the probed session is co-registered
    with one session of each other kind — but every verb crosses the
    wire: registration, probes, and the final close are issued by a
    :class:`~repro.net.RemoteQueryClient` against a
    :func:`~repro.core.api.serve_tcp` frontend, so this path also
    checks the protocol's answer encodings and the loop-thread
    ingestion marshaling.

    ``drop_every=n`` hard-closes the client's socket before every nth
    request — the client must reconnect and retry with the same
    request id, and the answers must still match.  ``force_heal``
    opens a decoy session in its own engine group (distinct
    g-distance), advances it far past the MOD clock mid-stream, and
    lets the next accepted update poison it — the server must heal
    the decoy's group without perturbing the probed answers.

    ``stats_out``, if given, receives server/net counters observed
    before shutdown (``rebuilds``, ``replays``, ``requests``).
    """
    from repro.core.api import serve_tcp
    from repro.net.client import RemoteQueryClient
    from repro.server import ServerConfig

    class _DroppyClient(RemoteQueryClient):
        """Drops its own socket before every nth request."""

        _sent = 0

        def request(self, verb, args=None, timeout=None):
            self._sent = self._sent + 1
            if drop_every and self._sent % drop_every == 0:
                self._drop_socket()
            return super().request(verb, args, timeout)

    db = sc.build_db()
    # The poisoned decoy group re-fails on every update after the
    # poison (its rebuilt clock stays past the MOD's), so the forced
    # heal run needs a budget that outlasts the stream.
    config = ServerConfig(
        shards=shards,
        batch_size=batch_size,
        quarantine_after=(
            len(sc.stream) + 1 if force_heal else ServerConfig.quarantine_after
        ),
    )
    net = serve_tcp(db, config=config)
    probes: List[ProbeRecord] = []
    try:
        client = _DroppyClient(*net.address, retries=4)
        sessions = {
            KNN: client.open_knn(list(sc.point), k=sc.k),
            # threshold= is raw g-distance units, compared as-is —
            # the same bit-identical constant every other path uses.
            WITHIN: client.open_within(
                list(sc.point), threshold=sc.threshold
            ),
            MULTIKNN: client.open_multiknn(list(sc.point), ks=list(sc.ks)),
        }
        session = sessions[mode]
        decoy = None
        if force_heal:
            # Its own group: a different g-distance fingerprint.
            decoy = client.open_knn(
                [sc.point[0] + 1000.0, sc.point[1] - 1000.0], k=1
            )
        for i, (update, probe) in enumerate(sc.schedule()):
            if decoy is not None and i == 2:
                # Push only the decoy's group far past the MOD clock;
                # the next accepted update is then in *its* past and
                # the server must heal that group in-line.
                decoy.advance_to(sc.horizon + 50.0)
            db.apply(update)
            if probe is not None:
                members = session.advance_to(probe)
                if mode == MULTIKNN:
                    probes.append(
                        (probe, {k: set(members[k]) for k in sc.ks})
                    )
                else:
                    probes.append((probe, set(members)))
        final = session.close(at=sc.horizon)
        for other in sessions.values():
            if other is not session:
                other.close(at=sc.horizon)
        if decoy is not None:
            decoy.close(at=sc.horizon)
        if stats_out is not None:
            stats_out["rebuilds"] = net.server.stats.rebuilds
            stats_out["replays"] = net.stats.replays
            stats_out["requests"] = net.stats.requests
        client.close()
    finally:
        net.close()
    return final, probes


def run_recovered_server(
    sc: Scenario,
    mode: str,
    crash_every: int = 3,
    shards: int = 1,
    checkpoint_interval: int = 4,
    sync: str = "flush",
) -> Tuple[
    Union[SnapshotAnswer, Dict[int, SnapshotAnswer]], List[ProbeRecord]
]:
    """Final answer + probe answers from a repeatedly *crashed and
    recovered* :class:`~repro.replication.DurableQueryServer`.

    Mirrors :func:`run_server` — the probed session is co-registered
    with one session of each other kind — but every ``crash_every``
    stream updates the server is abandoned mid-flight (no shutdown, no
    final checkpoint: exactly what a process kill leaves on disk) and
    rebuilt with :func:`~repro.replication.recover_server` from its
    (checkpoint, WAL-tail) pair.  Sessions are re-fetched by id on the
    recovered server and the stream resumes against the recovered MOD.
    Theorem 5 equivalence demands bit-for-bit the same probe sets and
    a final answer equal to the uninterrupted paths'.
    """
    import tempfile

    from repro.replication import DurableQueryServer
    from repro.server import ServerConfig

    with tempfile.TemporaryDirectory() as directory:
        db = sc.build_db()
        gd = sc.gdistance()
        server = DurableQueryServer(
            db,
            config=ServerConfig(shards=shards),
            directory=directory,
            sync=sync,
            checkpoint_interval=checkpoint_interval,
        )
        # The initial population predates the journal: checkpoint so
        # recovery starts from a snapshot that carries it.
        server.checkpoint()
        sessions = {
            KNN: server.register_knn(gd, k=sc.k),
            WITHIN: server.register_within(gd, sc.threshold),
            MULTIKNN: server.register_multiknn(gd, sc.ks),
        }
        sids = {kind: s.session_id for kind, s in sessions.items()}
        session = sessions[mode]
        probes: List[ProbeRecord] = []
        applied = 0
        for update, probe in sc.schedule():
            db.apply(update)
            applied += 1
            if probe is not None:
                members = session.advance_to(probe)
                if mode == MULTIKNN:
                    probes.append(
                        (probe, {k: set(members[k]) for k in sc.ks})
                    )
                else:
                    probes.append((probe, set(members)))
            if crash_every and applied % crash_every == 0:
                # Crash: drop the whole serving stack on the floor —
                # db included — and rebuild from disk alone.
                from repro.replication import recover_server

                server = recover_server(directory, sync=sync)
                db = server.db
                session = server.session(sids[mode])
        final = session.close(at=sc.horizon)
        from repro.server.session import ACTIVE as _ACTIVE
        from repro.server.session import QUEUED as _QUEUED

        for kind, sid in sids.items():
            if kind != mode:
                other = server.session(sid)
                if other.state in (_ACTIVE, _QUEUED):
                    other.close(at=sc.horizon)
        server.shutdown()
    return final, probes


# ---------------------------------------------------------------------------
# Comparison helpers
# ---------------------------------------------------------------------------
def answers_equal(a, b, atol: float = ANSWER_ATOL) -> bool:
    """approx-equality for answers or per-k answer dicts."""
    if isinstance(a, dict) or isinstance(b, dict):
        return set(a) == set(b) and all(
            a[k].approx_equals(b[k], atol=atol) for k in a
        )
    return a.approx_equals(b, atol=atol)


def assert_probes_equal(
    got: List[ProbeRecord], expected: List[ProbeRecord], label: str
) -> None:
    assert len(got) == len(expected), f"{label}: probe count mismatch"
    for (t1, m1), (t2, m2) in zip(got, expected):
        assert t1 == t2, f"{label}: probe schedule diverged ({t1} vs {t2})"
        assert m1 == m2, f"{label}: instant answer at t={t1}: {m1} != {m2}"
