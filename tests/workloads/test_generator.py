"""Tests for the synthetic workload generators."""

import math

import pytest

from repro.geometry.intervals import Interval
from repro.gdist.euclidean import SquaredEuclideanDistance
from repro.mod.updates import ChangeDirection, New, Terminate
from repro.sweep.engine import SweepEngine
from repro.workloads.generator import (
    UpdateStream,
    crossing_rich_mod,
    random_linear_mod,
    random_piecewise_mod,
    recorded_future_workload,
)


class TestRandomLinearMod:
    def test_count_and_dimension(self):
        db = random_linear_mod(25, seed=1, dimension=3)
        assert db.object_count == 25
        assert db.dimension == 3

    def test_deterministic_by_seed(self):
        a = random_linear_mod(5, seed=7)
        b = random_linear_mod(5, seed=7)
        for oid in a.object_ids:
            assert a.position(oid, 1.0) == b.position(oid, 1.0)

    def test_different_seeds_differ(self):
        a = random_linear_mod(5, seed=1)
        b = random_linear_mod(5, seed=2)
        assert any(
            a.position(oid, 1.0) != b.position(oid, 1.0)
            for oid in a.object_ids
        )

    def test_positions_within_extent(self):
        db = random_linear_mod(30, seed=3, extent=10.0, start_time=5.0)
        for oid in db.object_ids:
            for c in db.position(oid, 5.0):
                assert abs(c) <= 10.0

    def test_speeds_bounded(self):
        db = random_linear_mod(30, seed=4, speed=3.0)
        for oid in db.object_ids:
            assert db.trajectory(oid).speed(1.0) <= 3.0 + 1e-9


class TestRandomPiecewiseMod:
    def test_turn_counts(self):
        db = random_piecewise_mod(10, seed=5, turns=4, end_time=50.0)
        for oid in db.object_ids:
            assert len(db.trajectory(oid).turns) <= 4 + 1  # end waypoint may add one
            assert len(db.trajectory(oid).pieces) >= 2

    def test_turns_before_tau(self):
        db = random_piecewise_mod(10, seed=6, end_time=50.0)
        db.check_invariants()


class TestCrossingRichMod:
    def test_every_pair_crosses(self):
        db = crossing_rich_mod(6, seed=7)
        gd = SquaredEuclideanDistance([0.0, 0.0])
        eng = SweepEngine(db, gd, Interval(0.0, 500.0))
        eng.run_to_end()
        n = 6
        assert eng.stats.swaps >= n * (n - 1) // 2


class TestUpdateStream:
    def test_applies_chronologically(self):
        db = random_linear_mod(5, seed=8)
        stream = UpdateStream(db, seed=9, mean_gap=1.0)
        updates = stream.run(30)
        times = [u.time for u in updates]
        assert times == sorted(times)
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_periodic_gaps(self):
        db = random_linear_mod(5, seed=10)
        stream = UpdateStream(db, seed=11, mean_gap=2.0, periodic=True)
        updates = stream.run(10)
        gaps = [b.time - a.time for a, b in zip(updates, updates[1:])]
        assert all(g == pytest.approx(2.0) for g in gaps)

    def test_update_mix(self):
        db = random_linear_mod(10, seed=12)
        stream = UpdateStream(
            db, seed=13, mean_gap=0.5, weights=(0.3, 0.2, 0.5)
        )
        updates = stream.run(200)
        kinds = {type(u) for u in updates}
        assert kinds == {New, Terminate, ChangeDirection}

    def test_terminate_only_live_objects(self):
        db = random_linear_mod(4, seed=14)
        stream = UpdateStream(db, seed=15, mean_gap=0.5, weights=(0.1, 0.8, 0.1))
        for u in stream.run(100):
            if isinstance(u, Terminate):
                assert db.is_terminated(u.oid)

    def test_deterministic(self):
        a_db = random_linear_mod(5, seed=16)
        b_db = random_linear_mod(5, seed=16)
        a = UpdateStream(a_db, seed=17).run(20)
        b = UpdateStream(b_db, seed=17).run(20)
        assert [(type(x), x.time) for x in a] == [(type(y), y.time) for y in b]


class TestRecordedFutureWorkload:
    def test_replay_matches(self):
        db, updates = recorded_future_workload(6, 15, seed=18)
        assert len(updates) == 15
        clone = db.log.replay()
        assert sorted(map(str, clone.object_ids)) == sorted(
            map(str, db.object_ids)
        )
        t = db.last_update_time
        for oid in db.object_ids:
            assert clone.position(oid, t) == db.position(oid, t)
