"""Tests for the structured scenario generators."""

import math

import pytest

from repro.analysis.conflicts import separation_conflicts
from repro.baselines.naive import naive_knn_answer
from repro.core.api import evaluate_knn
from repro.geometry.intervals import Interval
from repro.gdist.euclidean import SquaredEuclideanDistance
from repro.workloads.scenarios import airway_mod, manhattan_grid_mod


class TestManhattanGrid:
    def test_count_and_shape(self):
        db = manhattan_grid_mod(12, seed=1, block=10.0, blocks=8, legs=5)
        items = dict(db.all_items())
        # Bounded trajectories count as already-ended objects: they are
        # reachable via all_items(), not the live set.
        assert len(items) == 12
        for oid, traj in items.items():
            assert len(traj.pieces) == 5
            # Axis-aligned motion: one velocity component is zero.
            for piece in traj.pieces:
                vx, vy = piece.velocity
                assert vx == pytest.approx(0.0) or vy == pytest.approx(0.0)
                assert piece.speed == pytest.approx(5.0)

    def test_positions_stay_on_grid_lines(self):
        db = manhattan_grid_mod(10, seed=2, block=10.0, blocks=6, legs=6)
        for oid, traj in db.all_items():
            for piece in traj.pieces:
                start = piece.position(piece.interval.lo)
                # At an intersection both coordinates are multiples of
                # the block size.
                for c in start:
                    assert c / 10.0 == pytest.approx(round(c / 10.0), abs=1e-9)

    def test_stays_inside_grid(self):
        db = manhattan_grid_mod(15, seed=3, block=10.0, blocks=5, legs=8)
        for oid, traj in db.all_items():
            for t in traj.domain.sample_points(17):
                for c in traj.position(t):
                    assert -1e-9 <= c <= 50.0 + 1e-9

    def test_deterministic(self):
        a = manhattan_grid_mod(5, seed=9)
        b = manhattan_grid_mod(5, seed=9)
        for oid, _ in a.all_items():
            assert a.position(oid, 2.0) == b.position(oid, 2.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            manhattan_grid_mod(1, blocks=0)
        with pytest.raises(ValueError):
            manhattan_grid_mod(1, legs=0)

    def test_queryable(self):
        # speed_jitter breaks the grid's exact mirror-route ties, where
        # 2-NN answers are legitimately ambiguous (any member of a tied
        # equivalence class may fill the boundary slot).
        db = manhattan_grid_mod(8, seed=4, legs=5, speed_jitter=0.1)
        gd = SquaredEuclideanDistance([25.0, 25.0])
        interval = Interval(0.0, 8.0)
        sweep = evaluate_knn(db, gd, interval, 2)
        naive = naive_knn_answer(db, gd, interval, 2)
        assert sweep.approx_equals(naive, atol=1e-6)

    def test_tied_routes_answers_equivalent_up_to_ties(self):
        """Without jitter, the sweep and the baseline may break exact
        ties differently; the answers agree wherever the boundary pair
        is untied, and tied substitutes have equal g-distance."""
        db = manhattan_grid_mod(8, seed=4, legs=5)
        gd = SquaredEuclideanDistance([25.0, 25.0])
        interval = Interval(0.0, 8.0)
        sweep = evaluate_knn(db, gd, interval, 2)
        naive = naive_knn_answer(db, gd, interval, 2)
        curves = {oid: gd(traj) for oid, traj in db.all_items()}
        for t in interval.sample_points(33):
            a, b = sweep.at(t), naive.at(t)
            if a == b:
                continue
            # Substituted members must have identical distance values.
            for left, right in zip(sorted(a - b, key=str), sorted(b - a, key=str)):
                assert curves[left](t) == pytest.approx(curves[right](t), abs=1e-6)


class TestAirways:
    def test_chords_inside_sector(self):
        db = airway_mod(10, seed=5, radius=300.0)
        for oid, traj in db.all_items():
            for t in traj.domain.sample_points(9):
                assert traj.position(t).norm() <= 300.0 + 1e-6

    def test_constant_speed(self):
        db = airway_mod(10, seed=6, speed=8.0)
        for oid, traj in db.all_items():
            probe = traj.domain.lo + 0.1
            assert traj.speed(probe) == pytest.approx(8.0)

    def test_conflicts_exist_in_dense_sector(self):
        db = airway_mod(14, seed=7, radius=200.0)
        domains = [traj.domain for _, traj in db.all_items()]
        lo = min(d.lo for d in domains)
        hi = max(d.hi for d in domains)
        conflicts = separation_conflicts(db, 15.0, Interval(lo, hi))
        assert conflicts, "a dense sector should produce conflicts"
