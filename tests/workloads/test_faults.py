"""Tests for the seeded fault-injection harness."""

import math

import pytest

from repro.mod.database import MovingObjectDatabase
from repro.mod.log import RecordingDatabase
from repro.resilience.ingest import validation_error
from repro.workloads.faults import FaultInjector, FaultReport, inject_faults
from repro.workloads.generator import UpdateStream, recorded_future_workload


def clean_stream(objects=6, updates=25, seed=11):
    db, _ = recorded_future_workload(objects, updates, seed=seed)
    return db.log.updates


class TestFaultReport:
    def test_total_sums_all_classes(self):
        report = FaultReport(
            dropped=1, duplicated=2, reordered=3, jittered=4, corrupted=5,
            spurious=6,
        )
        assert report.total == 21


class TestDeterminism:
    def test_same_seed_same_output(self):
        updates = clean_stream()
        inj = dict(
            duplicate_rate=0.2, reorder_rate=0.3, drop_rate=0.1,
            corrupt_rate=0.05, spurious_rate=0.05,
        )
        a, ra = FaultInjector(seed=4, **inj).perturb(updates)
        b, rb = FaultInjector(seed=4, **inj).perturb(updates)
        assert a == b
        assert ra == rb

    def test_different_seed_different_output(self):
        updates = clean_stream()
        a, _ = FaultInjector(seed=1, reorder_rate=0.5).perturb(updates)
        b, _ = FaultInjector(seed=2, reorder_rate=0.5).perturb(updates)
        assert a != b


class TestFaultClasses:
    def test_zero_rates_identity(self):
        updates = clean_stream()
        arrival, report = FaultInjector(seed=0).perturb(updates)
        assert arrival == list(updates)
        assert report.total == 0
        assert report.max_time_displacement == 0.0

    def test_drops_shrink_stream(self):
        updates = clean_stream()
        arrival, report = FaultInjector(seed=3, drop_rate=0.3).perturb(updates)
        assert report.dropped > 0
        assert len(arrival) == len(updates) - report.dropped

    def test_duplicates_are_exact_copies(self):
        updates = clean_stream()
        arrival, report = FaultInjector(
            seed=3, duplicate_rate=0.4
        ).perturb(updates)
        assert report.duplicated > 0
        assert len(arrival) == len(updates) + report.duplicated
        # Every arrival is a clean update; the multiset only gains copies.
        for update in arrival:
            assert update in updates

    def test_reordering_preserves_content(self):
        updates = clean_stream()
        arrival, report = FaultInjector(
            seed=5, reorder_rate=0.4, reorder_depth=4
        ).perturb(updates)
        assert report.reordered > 0
        assert sorted(arrival, key=lambda u: u.time) == list(updates)
        assert arrival != list(updates)

    def test_max_time_displacement_bounds_lateness(self):
        updates = clean_stream()
        arrival, report = FaultInjector(
            seed=5, reorder_rate=0.4, reorder_depth=4
        ).perturb(updates)
        assert report.max_time_displacement > 0.0
        high = -math.inf
        for update in arrival:
            assert high - update.time <= report.max_time_displacement + 1e-12
            high = max(high, update.time)

    def test_jitter_moves_timestamps(self):
        updates = clean_stream()
        arrival, report = FaultInjector(
            seed=9, jitter=0.5, jitter_rate=0.5
        ).perturb(updates)
        assert report.jittered > 0
        moved = [
            (a, c) for a, c in zip(arrival, updates) if a.time != c.time
        ]
        assert len(moved) == report.jittered
        for jittered, clean in moved:
            assert abs(jittered.time - clean.time) <= 0.5

    def test_corruption_replaces_with_invalid_updates(self):
        updates = clean_stream()
        arrival, report = FaultInjector(
            seed=7, corrupt_rate=0.3
        ).perturb(updates)
        assert report.corrupted > 0
        assert len(arrival) == len(updates)
        # Replay the clean prefix; every corrupted arrival must fail
        # validation against some database state built from the stream.
        corrupt = [u for u in arrival if u not in updates]
        assert len(corrupt) == report.corrupted
        db = MovingObjectDatabase(initial_time=-math.inf)
        for update in updates:
            db.apply(update)
        for update in corrupt:
            assert validation_error(db, update) is not None

    def test_spurious_preserves_clean_content(self):
        updates = clean_stream()
        arrival, report = FaultInjector(
            seed=7, spurious_rate=0.3
        ).perturb(updates)
        assert report.spurious > 0
        assert len(arrival) == len(updates) + report.spurious
        # Every clean update still arrives, in order.
        kept = [u for u in arrival if u in updates]
        assert kept == list(updates)


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"drop_rate": -0.1},
        {"duplicate_rate": 1.5},
        {"reorder_rate": 2.0},
        {"jitter_rate": -1.0},
        {"corrupt_rate": 7.0},
        {"spurious_rate": -0.5},
        {"reorder_depth": 0},
        {"jitter": -1.0},
    ])
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultInjector(seed=0, **kwargs)


class TestConvenienceWrapper:
    def test_inject_faults_matches_class(self):
        updates = clean_stream()
        a, ra = inject_faults(updates, seed=2, duplicate_rate=0.2)
        b, rb = FaultInjector(seed=2, duplicate_rate=0.2).perturb(updates)
        assert a == b and ra == rb
