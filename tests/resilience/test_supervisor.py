"""Tests for self-healing supervised continuous query sessions."""

import pytest

from repro.core.api import ContinuousQuerySession
from repro.mod.database import MovingObjectDatabase
from repro.resilience.supervisor import SupervisedQuerySession
from repro.workloads.generator import UpdateStream, random_linear_mod


def twin_dbs(count=8, seed=7):
    """Two identical databases fed by identical seeded streams."""
    return (
        random_linear_mod(count, seed=seed, extent=40.0, speed=5.0),
        random_linear_mod(count, seed=seed, extent=40.0, speed=5.0),
    )


class TestFailureHandling:
    def test_plain_session_wedges_on_probe_race(self):
        db = random_linear_mod(6, seed=1)
        session = ContinuousQuerySession.knn(db, [0.0, 0.0], k=1)
        session.advance_to(10.0)
        # Valid for the database (tau = 0), in the past for the engine.
        with pytest.raises(ValueError):
            db.create("late", 5.0, position=[1.0, 0.0], velocity=[0.0, 0.0])
        session.close()

    def test_supervised_session_rebuilds_instead(self):
        db = MovingObjectDatabase()
        db.create("far", 0.5, position=[100.0, 0.0], velocity=[0.0, 0.0])
        session = SupervisedQuerySession.knn(db, [0.0, 0.0], k=1)
        session.advance_to(10.0)
        db.create("late", 5.0, position=[1.0, 0.0], velocity=[0.0, 0.0])
        assert session.stats.failures == 1
        assert session.stats.rebuilds == 1
        # The rebuilt engine tracks subsequent updates normally.
        db.create("later", 6.0, position=[0.5, 0.0], velocity=[0.0, 0.0])
        assert session.stats.failures == 1
        assert session.advance_to(7.0) == {"later"}
        session.close()

    def test_engine_property_changes_across_rebuild(self):
        db = random_linear_mod(4, seed=2)
        session = SupervisedQuerySession.knn(db, [0.0, 0.0], k=1)
        first = session.engine
        session.advance_to(10.0)
        db.create("late", 5.0, position=[1.0, 0.0], velocity=[0.0, 0.0])
        assert session.engine is not first
        session.close()

    def test_salvage_loss_counted_when_view_is_broken(self):
        db = random_linear_mod(4, seed=3)
        session = SupervisedQuerySession.knn(db, [0.0, 0.0], k=1)

        class BrokenView:
            members = frozenset()

            def answer(self):
                raise RuntimeError("view corrupted")

        session._view = BrokenView()
        session.advance_to(10.0)
        db.create("late", 5.0, position=[1.0, 0.0], velocity=[0.0, 0.0])
        assert session.stats.salvage_losses == 1
        assert session.stats.rebuilds == 1
        session.close()


class TestStitchedAnswers:
    def test_matches_unsupervised_run_despite_rebuild(self):
        """A supervised session hit by a probe/update race produces the
        same whole-session answer as a clean uninterrupted session."""
        db_clean, db_faulty = twin_dbs()
        clean = ContinuousQuerySession.knn(db_clean, [0.0, 0.0], k=2)
        supervised = SupervisedQuerySession.knn(db_faulty, [0.0, 0.0], k=2)

        stream_clean = UpdateStream(
            db_clean, seed=8, mean_gap=1.0, extent=40.0, speed=5.0
        )
        stream_faulty = UpdateStream(
            db_faulty, seed=8, mean_gap=1.0, extent=40.0, speed=5.0
        )
        probe_time = None
        for step in range(40):
            stream_clean.step()
            if step == 14:
                # Probe far ahead: the next update lands in the engine's
                # past and would wedge an unsupervised session.
                probe_time = db_faulty.last_update_time + 50.0
                supervised.advance_to(probe_time)
            stream_faulty.step()

        assert supervised.stats.failures >= 1
        assert supervised.stats.rebuilds >= 1
        end = max(db_clean.last_update_time + 5.0, probe_time + 1.0)
        answer_clean = clean.close(at=end)
        answer_supervised = supervised.close(at=end)
        assert answer_supervised.approx_equals(answer_clean, atol=1e-6)

    def test_no_failures_matches_plain_session(self):
        db_clean, db_super = twin_dbs(count=6, seed=9)
        clean = ContinuousQuerySession.knn(db_clean, [0.0, 0.0], k=2)
        supervised = SupervisedQuerySession.knn(db_super, [0.0, 0.0], k=2)
        UpdateStream(db_clean, seed=4, mean_gap=1.0, extent=40.0).run(20)
        UpdateStream(db_super, seed=4, mean_gap=1.0, extent=40.0).run(20)
        end = db_clean.last_update_time + 2.0
        assert supervised.stats.failures == 0
        answer_clean = clean.close(at=end)
        answer_supervised = supervised.close(at=end)
        assert answer_supervised.approx_equals(answer_clean, atol=1e-6)

    def test_within_sessions_supervised(self):
        db_clean, db_super = twin_dbs(count=6, seed=12)
        clean = ContinuousQuerySession.within(db_clean, [0.0, 0.0], distance=25.0)
        supervised = SupervisedQuerySession.within(
            db_super, [0.0, 0.0], distance=25.0
        )
        stream_clean = UpdateStream(db_clean, seed=5, mean_gap=1.0, extent=40.0)
        stream_super = UpdateStream(db_super, seed=5, mean_gap=1.0, extent=40.0)
        probe_time = None
        for step in range(20):
            stream_clean.step()
            if step == 8:
                probe_time = db_super.last_update_time + 50.0
                supervised.advance_to(probe_time)
            stream_super.step()
        assert supervised.stats.rebuilds >= 1
        end = max(db_clean.last_update_time + 2.0, probe_time + 1.0)
        answer_clean = clean.close(at=end)
        answer_supervised = supervised.close(at=end)
        assert answer_supervised.approx_equals(answer_clean, atol=1e-6)


class TestLifecycle:
    def test_close_twice_rejected(self):
        db = random_linear_mod(3, seed=1)
        session = SupervisedQuerySession.knn(db, [0.0, 0.0], k=1)
        session.close(at=1.0)
        with pytest.raises(RuntimeError):
            session.close()

    def test_close_detaches_even_if_finalize_raises(self):
        db = random_linear_mod(3, seed=1)
        session = SupervisedQuerySession.knn(db, [0.0, 0.0], k=1)

        def explode():
            raise RuntimeError("finalize failed")

        session._engine.finalize = explode
        with pytest.raises(RuntimeError):
            session.close(at=1.0)
        # The guard is gone: new updates cause no failures.
        db.create("x", 1.0, position=[1.0, 0.0], velocity=[0.0, 0.0])
        assert session.stats.failures == 0

    def test_closed_session_ignores_updates(self):
        db = random_linear_mod(3, seed=1)
        session = SupervisedQuerySession.knn(db, [0.0, 0.0], k=1)
        session.close(at=1.0)
        db.create("x", 2.0, position=[1.0, 0.0], velocity=[0.0, 0.0])
        assert session.stats.failures == 0
        assert session.stats.rebuilds == 0
