"""The full resilience acceptance scenario.

A seeded faulty stream (duplicates, bounded reordering, spurious
garbage) is ingested under the repair policy with a write-ahead log.
Mid-stream the process "crashes", leaving a truncated WAL tail.
Recovery rebuilds the database, ingestion resumes (the producer resends
from the start — at-least-once delivery), and a supervised continuous
k-NN session runs over the recovered MOD while a probe/update race
forces an engine rebuild.  The stitched final answer must equal a clean
uninterrupted run over the same interval, and the quarantine / dedup /
rebuild counters must all have fired.
"""

import math
import os

from repro.core.api import ContinuousQuerySession
from repro.io import database_to_dict
from repro.mod.database import MovingObjectDatabase
from repro.resilience.ingest import IngestPipeline
from repro.resilience.supervisor import SupervisedQuerySession
from repro.resilience.wal import WAL_FILENAME, WriteAheadLog, recover
from repro.workloads.faults import FaultInjector
from repro.workloads.generator import recorded_future_workload

ORIGIN = [0.0, 0.0]


def test_crash_recover_supervise_equivalence(tmp_path):
    wal_dir = str(tmp_path)

    # -- the clean truth and its faulty arrival order ----------------------
    clean_db, _ = recorded_future_workload(8, 40, seed=5)
    clean = clean_db.log.updates
    faulty, report = FaultInjector(
        seed=7,
        duplicate_rate=0.15,
        reorder_rate=0.25,
        reorder_depth=3,
        spurious_rate=0.1,
    ).perturb(clean)
    assert report.duplicated > 0
    assert report.reordered > 0
    assert report.spurious > 0
    window = report.max_time_displacement + 1.0

    # -- phase 1: ingest, then crash mid-stream ----------------------------
    wal1 = WriteAheadLog(wal_dir)
    db1 = MovingObjectDatabase(initial_time=-math.inf)
    pipe1 = IngestPipeline(
        db1, policy="repair", window=window, wal=wal1, checkpoint_every=8
    )
    cut = int(len(faulty) * 0.6)
    pipe1.submit_all(faulty[:cut])
    assert pipe1.stats.accepted > 0
    wal1.close()
    # The crash: no flush, no final checkpoint, and the last WAL append
    # was cut short mid-line.
    wal_path = os.path.join(wal_dir, WAL_FILENAME)
    with open(wal_path, "ab") as handle:
        handle.write(b'{"kind": "chdir", "oid": "n')
    del pipe1, db1

    # -- phase 2: recover and resume ---------------------------------------
    db2, recovered_log = recover(wal_dir)
    tau = db2.last_update_time
    assert recovered_log.updates, "recovery found no intact WAL entries"
    assert math.isfinite(tau)

    # The recovered state is exactly the clean history up to its tau.
    reference = MovingObjectDatabase(initial_time=-math.inf)
    for update in clean:
        if update.time <= tau:
            reference.apply(update)
    assert database_to_dict(db2) == database_to_dict(reference)

    # Clean comparison run: an uninterrupted session over the same
    # suffix of the clean stream.
    clean_session = ContinuousQuerySession.knn(reference, ORIGIN, k=2)

    supervised = SupervisedQuerySession.knn(db2, ORIGIN, k=2)

    wal2 = WriteAheadLog(wal_dir)
    pipe2 = IngestPipeline(db2, policy="repair", window=window, wal=wal2)

    # At-least-once delivery: the producer resends the whole faulty
    # stream.  Everything at or before tau is already durable and gets
    # quarantined as late (or deduped); the suffix is repaired and
    # applied.  Mid-resend, a probe far ahead of the stream forces the
    # supervised engine into a rebuild.
    probe_at = cut + (len(faulty) - cut) // 2
    probe_time = None
    clean_iter = iter([u for u in clean if u.time > tau])
    applied_before = 0
    for i, update in enumerate(faulty):
        pipe2.submit(update)
        # Keep the clean session fed in lockstep with what the repair
        # pipeline has actually applied.
        while applied_before < pipe2.stats.accepted:
            reference.apply(next(clean_iter))
            applied_before += 1
        if i == probe_at:
            probe_time = db2.last_update_time + 50.0
            supervised.advance_to(probe_time)
    pipe2.flush()
    while applied_before < pipe2.stats.accepted:
        reference.apply(next(clean_iter))
        applied_before += 1
    pipe2.close(checkpoint=True)
    wal2.close()

    # -- the acceptance assertions -----------------------------------------
    assert pipe2.stats.quarantined > 0, "spurious/late updates must quarantine"
    assert pipe2.stats.deduped > 0
    assert supervised.stats.failures >= 1
    assert supervised.stats.rebuilds >= 1

    # Both databases hold the full clean history now.
    assert database_to_dict(db2) == database_to_dict(reference)
    assert db2.last_update_time == clean_db.last_update_time

    end = max(reference.last_update_time + 5.0, probe_time + 1.0)
    answer_clean = clean_session.close(at=end)
    answer_supervised = supervised.close(at=end)
    assert answer_supervised.approx_equals(answer_clean, atol=1e-6)

    # And the durability directory is still coherent: one more recovery
    # reproduces the final state.
    db3, _ = recover(wal_dir)
    assert database_to_dict(db3) == database_to_dict(db2)
