"""Tests for write-ahead logging, checkpointing, and crash recovery."""

import json
import math
import os

import pytest

from repro.geometry.vectors import Vector
from repro.io import database_to_dict
from repro.mod.database import MovingObjectDatabase
from repro.mod.updates import ChangeDirection, New, Terminate
from repro.resilience.wal import (
    CHECKPOINT_FILENAME,
    WAL_FILENAME,
    WalCorruptionError,
    WriteAheadLog,
    recover,
)


def sample_updates():
    return [
        New("a", 1.0, Vector([1.0, 0.0]), Vector([0.0, 0.0])),
        New("b", 2.0, Vector([0.0, 1.0]), Vector([5.0, 5.0])),
        ChangeDirection("a", 3.0, Vector([0.0, -1.0])),
        Terminate("b", 4.0),
    ]


def logged_db(directory, updates=None, checkpoint_after=None):
    """Apply updates through a WAL, optionally checkpointing mid-stream."""
    db = MovingObjectDatabase(initial_time=-math.inf)
    with WriteAheadLog(directory) as wal:
        for i, update in enumerate(updates or sample_updates()):
            wal.append(update)
            db.apply(update)
            if checkpoint_after is not None and i == checkpoint_after:
                wal.checkpoint(db)
    return db


class TestAppendAndRecover:
    def test_round_trip_without_checkpoint(self, tmp_path):
        db = logged_db(str(tmp_path))
        recovered, log = recover(str(tmp_path))
        assert database_to_dict(recovered) == database_to_dict(db)
        assert log.updates == sample_updates()

    def test_round_trip_with_checkpoint(self, tmp_path):
        db = logged_db(str(tmp_path), checkpoint_after=1)
        recovered, log = recover(str(tmp_path))
        assert database_to_dict(recovered) == database_to_dict(db)
        # The log still exposes every intact entry, pre-checkpoint ones
        # included, so any prefix state can be re-derived.
        assert log.updates == sample_updates()

    def test_recover_empty_directory(self, tmp_path):
        recovered, log = recover(str(tmp_path))
        assert list(recovered.object_ids) == []
        assert log.updates == []

    def test_append_counter(self, tmp_path):
        with WriteAheadLog(str(tmp_path)) as wal:
            for update in sample_updates():
                wal.append(update)
            assert wal.appended == 4

    def test_closed_wal_rejects_appends(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.close()
        wal.close()  # idempotent
        with pytest.raises(RuntimeError):
            wal.append(sample_updates()[0])

    def test_no_fsync_mode_still_recovers(self, tmp_path):
        db = MovingObjectDatabase(initial_time=-math.inf)
        with WriteAheadLog(str(tmp_path), fsync=False) as wal:
            for update in sample_updates():
                wal.append(update)
                db.apply(update)
        recovered, _ = recover(str(tmp_path))
        assert database_to_dict(recovered) == database_to_dict(db)


class TestCheckpointAtomicity:
    def test_no_temp_file_left_behind(self, tmp_path):
        logged_db(str(tmp_path), checkpoint_after=3)
        names = set(os.listdir(str(tmp_path)))
        assert names == {WAL_FILENAME, CHECKPOINT_FILENAME}

    def test_checkpoint_is_valid_snapshot(self, tmp_path):
        db = logged_db(str(tmp_path), checkpoint_after=3)
        with open(str(tmp_path / CHECKPOINT_FILENAME)) as handle:
            data = json.load(handle)
        assert data["tau"] == db.last_update_time


class TestCrashArtifacts:
    def test_truncated_final_line_skipped(self, tmp_path):
        db = logged_db(str(tmp_path))
        wal_path = str(tmp_path / WAL_FILENAME)
        with open(wal_path, "r+b") as handle:
            handle.truncate(os.path.getsize(wal_path) - 9)
        recovered, log = recover(str(tmp_path))
        # The last update was cut mid-line: three survive.
        assert log.updates == sample_updates()[:3]
        assert not recovered.is_terminated("b")

    def test_repair_truncates_partial_line(self, tmp_path):
        logged_db(str(tmp_path))
        wal_path = str(tmp_path / WAL_FILENAME)
        with open(wal_path, "ab") as handle:
            handle.write(b'{"kind": "terminate", "oid"')  # killed mid-append
        recover(str(tmp_path), repair=True)
        # The partial line is gone: appending resumes on a clean log.
        with open(wal_path, "rb") as handle:
            assert handle.read().endswith(b"}\n")
        db2 = MovingObjectDatabase(initial_time=-math.inf)
        with WriteAheadLog(str(tmp_path)) as wal:
            wal.append(Terminate("a", 9.0))
        recovered, log = recover(str(tmp_path))
        assert len(log.updates) == 5
        assert recovered.is_terminated("a")

    def test_repair_false_leaves_file_untouched(self, tmp_path):
        logged_db(str(tmp_path))
        wal_path = str(tmp_path / WAL_FILENAME)
        with open(wal_path, "ab") as handle:
            handle.write(b"garbage")
        before = open(wal_path, "rb").read()
        _, log = recover(str(tmp_path), repair=False)
        assert len(log.updates) == 4
        assert open(wal_path, "rb").read() == before

    def test_mid_file_corruption_raises(self, tmp_path):
        logged_db(str(tmp_path))
        wal_path = str(tmp_path / WAL_FILENAME)
        lines = open(wal_path, "rb").read().splitlines(keepends=True)
        lines[1] = b"{corrupt!}\n"
        with open(wal_path, "wb") as handle:
            handle.write(b"".join(lines))
        with pytest.raises(WalCorruptionError):
            recover(str(tmp_path))

    def test_recovered_log_replays_to_recovered_state(self, tmp_path):
        """The WAL contract: replaying the recovered log from scratch
        reproduces the recovered database exactly."""
        logged_db(str(tmp_path), checkpoint_after=1)
        wal_path = str(tmp_path / WAL_FILENAME)
        with open(wal_path, "ab") as handle:
            handle.write(b'{"kind":')  # crash artifact
        recovered, log = recover(str(tmp_path))
        replayed = MovingObjectDatabase(initial_time=-math.inf)
        for update in log.updates:
            replayed.apply(update)
        assert database_to_dict(replayed) == database_to_dict(recovered)

    def test_garbled_binary_tail_is_repairable(self, tmp_path):
        """Regression: a crash can flush arbitrary bytes — including
        invalid UTF-8 — into the tail.  A text-mode read died with
        UnicodeDecodeError before the repair logic ever ran; the WAL is
        now read as bytes and the garbled tail is treated exactly like
        a truncated line."""
        import random

        db = logged_db(str(tmp_path))
        wal_path = str(tmp_path / WAL_FILENAME)
        rng = random.Random(0xBAD)
        garbage = bytes(rng.randrange(256) for _ in range(256))
        with open(wal_path, "ab") as handle:
            handle.write(garbage)  # os.urandom-style crash splatter
        recovered, log = recover(str(tmp_path), repair=True)
        assert log.updates == sample_updates()
        assert database_to_dict(recovered) == database_to_dict(db)
        # Repair truncated the splatter: appends resume cleanly.
        with WriteAheadLog(str(tmp_path)) as wal:
            wal.append(Terminate("a", 9.0))
        recovered2, log2 = recover(str(tmp_path))
        assert len(log2.updates) == 5
        assert recovered2.is_terminated("a")

    def test_os_urandom_tail(self, tmp_path):
        """The literal issue reproducer: os.urandom bytes after the
        last intact line must not crash recovery."""
        logged_db(str(tmp_path))
        wal_path = str(tmp_path / WAL_FILENAME)
        with open(wal_path, "ab") as handle:
            handle.write(os.urandom(128))
        recovered, log = recover(str(tmp_path), repair=True)
        assert len(log.updates) == 4


class TestRecoveryCacheWarming:
    def test_recover_warms_curve_store(self, tmp_path):
        from repro.cache import QueryCache
        from repro.gdist.euclidean import SquaredEuclideanDistance

        logged_db(str(tmp_path))
        gd = SquaredEuclideanDistance([0.0, 0.0])
        cache = QueryCache()
        recovered, _ = recover(str(tmp_path), cache=cache, gdistances=[gd])
        assert cache.db is recovered
        assert len(cache.curves) == recovered.object_count
        # A post-recovery engine re-hits every warmed curve.
        from repro.geometry.intervals import Interval
        from repro.sweep.engine import SweepEngine

        engine = SweepEngine(
            recovered,
            gd,
            Interval(recovered.last_update_time, 10.0),
            curve_store=cache.curves,
        )
        assert cache.curves.hits == recovered.object_count


class TestRecoveryCorrelation:
    def test_recover_span_carries_query_id(self, tmp_path):
        """A recovery run under a QueryProfile correlates like any
        other stage: its ``wal.recover`` span is stamped with the
        owning query id, no WAL-side changes required."""
        from repro.obs.profile import QueryProfile

        logged_db(str(tmp_path))
        prof = QueryProfile("q-recovery", "recover")
        with prof:
            recover(str(tmp_path), observe=prof.observe)
        spans = [r for r in prof.spans if r["name"] == "wal.recover"]
        assert len(spans) == 1
        assert spans[0]["attrs"]["query_id"] == "q-recovery"
        assert spans[0]["attrs"]["recovered"] == 4
