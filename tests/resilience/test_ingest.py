"""Tests for policy-driven ingest (strict / repair / quarantine)."""

import math

import pytest

from repro.geometry.vectors import Vector
from repro.mod.database import MovingObjectDatabase
from repro.mod.updates import ChangeDirection, New, Terminate
from repro.resilience.ingest import (
    APPLIED,
    BUFFERED,
    DEDUPED,
    QUARANTINED,
    REASON_ALREADY_EXISTS,
    REASON_DIMENSION_MISMATCH,
    REASON_LATE,
    REASON_MALFORMED,
    REASON_OUT_OF_ORDER,
    REASON_UNDEFINED_AT_TIME,
    REASON_UNKNOWN_OBJECT,
    IngestPipeline,
    validation_error,
)
from repro.resilience.wal import WriteAheadLog, recover
from repro.trajectory.builder import linear_from
from repro.workloads.faults import FaultInjector
from repro.workloads.generator import recorded_future_workload


def new(oid, t, pos=(0.0, 0.0), vel=(1.0, 0.0)):
    return New(oid, t, Vector(list(vel)), Vector(list(pos)))


class TestConstruction:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            IngestPipeline(MovingObjectDatabase(), policy="yolo")

    def test_negative_window_rejected(self):
        with pytest.raises(ValueError):
            IngestPipeline(MovingObjectDatabase(), policy="repair", window=-1.0)

    def test_negative_checkpoint_every_rejected(self):
        with pytest.raises(ValueError):
            IngestPipeline(MovingObjectDatabase(), checkpoint_every=-1)


class TestValidationError:
    def test_valid_update_passes(self):
        db = MovingObjectDatabase()
        assert validation_error(db, new("a", 1.0)) is None

    def test_out_of_order(self):
        db = MovingObjectDatabase()
        db.apply(new("a", 5.0))
        reason, _ = validation_error(db, new("b", 5.0))
        assert reason == REASON_OUT_OF_ORDER

    def test_already_exists(self):
        db = MovingObjectDatabase()
        db.apply(new("a", 1.0))
        reason, _ = validation_error(db, new("a", 2.0))
        assert reason == REASON_ALREADY_EXISTS

    def test_terminated_oid_cannot_be_recreated(self):
        db = MovingObjectDatabase()
        db.apply(new("a", 1.0))
        db.apply(Terminate("a", 2.0))
        reason, _ = validation_error(db, new("a", 3.0))
        assert reason == REASON_ALREADY_EXISTS

    def test_unknown_object(self):
        db = MovingObjectDatabase()
        db.apply(new("a", 1.0))
        reason, _ = validation_error(db, Terminate("ghost", 2.0))
        assert reason == REASON_UNKNOWN_OBJECT

    def test_dimension_mismatch(self):
        db = MovingObjectDatabase()
        db.apply(new("a", 1.0))
        bad = New("b", 2.0, Vector([1.0, 0.0, 0.0]), Vector([0.0, 0.0, 0.0]))
        reason, _ = validation_error(db, bad)
        assert reason == REASON_DIMENSION_MISMATCH

    def test_undefined_at_time(self):
        db = MovingObjectDatabase(initial_time=0.0)
        # Live object whose trajectory only starts at t=5: a chdir in
        # (tau, 5) is chronologically fine but hits undefined history.
        db.install("late", linear_from(5.0, [0.0, 0.0], [1.0, 0.0]))
        bad = ChangeDirection("late", 2.0, Vector([0.0, 1.0]))
        reason, _ = validation_error(db, bad)
        assert reason == REASON_UNDEFINED_AT_TIME

    def test_malformed_not_an_update(self):
        reason, _ = validation_error(MovingObjectDatabase(), {"kind": "new"})
        assert reason == REASON_MALFORMED

    def test_malformed_non_finite_time(self):
        reason, _ = validation_error(
            MovingObjectDatabase(), Terminate("a", math.nan)
        )
        assert reason == REASON_MALFORMED


class TestStrictPolicy:
    def test_valid_stream_applies(self):
        db = MovingObjectDatabase()
        pipe = IngestPipeline(db, policy="strict")
        assert pipe.submit(new("a", 1.0)) == APPLIED
        assert pipe.submit(ChangeDirection("a", 2.0, Vector([0.0, 1.0]))) == APPLIED
        assert pipe.stats.accepted == 2
        assert db.last_update_time == 2.0

    def test_invalid_update_raises_with_reason(self):
        db = MovingObjectDatabase()
        pipe = IngestPipeline(db, policy="strict")
        pipe.submit(new("a", 5.0))
        with pytest.raises(ValueError, match=REASON_OUT_OF_ORDER):
            pipe.submit(new("b", 4.0))
        assert "b" not in db


class TestQuarantinePolicy:
    def test_invalid_updates_recorded_not_raised(self):
        db = MovingObjectDatabase()
        pipe = IngestPipeline(db, policy="quarantine")
        pipe.submit(new("a", 5.0))
        assert pipe.submit(new("b", 4.0)) == QUARANTINED
        assert pipe.submit(Terminate("ghost", 6.0)) == QUARANTINED
        assert pipe.submit(new("c", 7.0)) == APPLIED
        assert pipe.stats.accepted == 2
        assert pipe.stats.quarantined == 2
        assert pipe.stats.by_reason == {
            REASON_OUT_OF_ORDER: 1,
            REASON_UNKNOWN_OBJECT: 1,
        }
        reasons = [r.reason for r in pipe.rejected]
        assert reasons == [REASON_OUT_OF_ORDER, REASON_UNKNOWN_OBJECT]
        # Rejected records carry the offending update and arrival index.
        assert pipe.rejected[0].update.oid == "b"
        assert pipe.rejected[0].sequence == 2


class TestRepairPolicy:
    def test_reorders_within_window(self):
        db = MovingObjectDatabase()
        pipe = IngestPipeline(db, policy="repair", window=5.0)
        for t in (1.0, 3.0, 2.0):
            assert pipe.submit(new(f"o{t}", t)) == BUFFERED
        assert pipe.stats.reordered == 1
        assert pipe.flush() == 3
        # Applied in timestamp order despite arrival order.
        assert db.last_update_time == 3.0
        assert set(db.object_ids) == {"o1.0", "o2.0", "o3.0"}
        assert pipe.stats.accepted == 3

    def test_watermark_drains_buffer(self):
        db = MovingObjectDatabase()
        pipe = IngestPipeline(db, policy="repair", window=2.0)
        pipe.submit(new("a", 1.0))
        assert pipe.pending == 1
        pipe.submit(new("b", 10.0))  # watermark -> 8: "a" drains
        assert pipe.pending == 1
        assert "a" in db
        assert pipe.watermark == 8.0

    def test_exact_duplicates_deduped(self):
        db = MovingObjectDatabase()
        pipe = IngestPipeline(db, policy="repair", window=5.0)
        u = new("a", 1.0)
        assert pipe.submit(u) == BUFFERED
        assert pipe.submit(u) == DEDUPED          # still pending
        pipe.submit(new("b", 10.0))               # drains "a"
        assert pipe.submit(u) == DEDUPED          # already applied
        pipe.flush()
        assert pipe.stats.deduped == 2
        assert pipe.stats.accepted == 2

    def test_update_older_than_watermark_quarantined_late(self):
        db = MovingObjectDatabase()
        pipe = IngestPipeline(db, policy="repair", window=1.0)
        pipe.submit(new("a", 1.0))
        pipe.submit(new("b", 10.0))  # watermark 9, "a" applied, tau = 1
        assert pipe.submit(new("c", 0.5)) == QUARANTINED
        assert pipe.rejected[-1].reason == REASON_LATE

    def test_malformed_quarantined_immediately(self):
        db = MovingObjectDatabase()
        pipe = IngestPipeline(db, policy="repair", window=5.0)
        assert pipe.submit(Terminate("a", math.inf)) == QUARANTINED
        assert pipe.rejected[-1].reason == REASON_MALFORMED

    def test_garbage_in_buffer_quarantined_at_drain(self):
        db = MovingObjectDatabase()
        pipe = IngestPipeline(db, policy="repair", window=5.0)
        pipe.submit(new("a", 1.0))
        pipe.submit(ChangeDirection("ghost", 2.0, Vector([1.0, 0.0])))
        pipe.flush()
        assert "a" in db
        assert pipe.stats.quarantined == 1
        assert pipe.rejected[-1].reason == REASON_UNKNOWN_OBJECT


class TestWalIntegration:
    def test_accepted_updates_logged_and_checkpointed(self, tmp_path):
        db = MovingObjectDatabase()
        with WriteAheadLog(str(tmp_path)) as wal:
            pipe = IngestPipeline(
                db, policy="strict", wal=wal, checkpoint_every=2
            )
            for t in (1.0, 2.0, 3.0):
                pipe.submit(new(f"o{t}", t))
            assert wal.appended == 3
            assert pipe.stats.checkpoints == 1  # after the 2nd accept
            pipe.close(checkpoint=True)
            assert pipe.stats.checkpoints == 2
        recovered, log = recover(str(tmp_path))
        assert set(recovered.object_ids) == set(db.object_ids)
        assert len(log.updates) == 3

    def test_quarantined_updates_not_logged(self, tmp_path):
        db = MovingObjectDatabase()
        with WriteAheadLog(str(tmp_path)) as wal:
            pipe = IngestPipeline(db, policy="quarantine", wal=wal)
            pipe.submit(new("a", 2.0))
            pipe.submit(new("b", 1.0))  # out of order -> quarantined
            assert wal.appended == 1


class TestRandomizedEquivalence:
    """The satellite acceptance test: a seeded faulty stream (duplicates
    plus bounded reordering) repaired by the ingest pipeline yields a MOD
    whose snapshots match the clean stream's; strict mode raises."""

    @pytest.mark.parametrize("seed", [5, 17, 42])
    def test_repair_matches_clean(self, seed):
        clean_db, _ = recorded_future_workload(8, 40, seed=seed)
        clean = clean_db.log.updates
        faulty, report = FaultInjector(
            seed=seed + 1,
            duplicate_rate=0.15,
            reorder_rate=0.25,
            reorder_depth=3,
        ).perturb(clean)
        assert report.duplicated > 0 and report.reordered > 0

        repaired = MovingObjectDatabase(initial_time=-math.inf)
        pipe = IngestPipeline(
            repaired,
            policy="repair",
            window=report.max_time_displacement + 1.0,
        )
        pipe.submit_all(faulty)
        pipe.flush()

        assert pipe.stats.deduped > 0
        assert pipe.stats.quarantined == 0
        assert pipe.stats.accepted == len(clean)
        assert repaired.last_update_time == clean_db.last_update_time
        tau = clean_db.last_update_time
        for frac in (0.25, 0.5, 0.75, 1.0):
            t = tau * frac
            assert repaired.snapshot(t) == clean_db.snapshot(t)

    @pytest.mark.parametrize("seed", [5, 17])
    def test_strict_raises_on_same_stream(self, seed):
        clean_db, _ = recorded_future_workload(8, 40, seed=seed)
        faulty, _ = FaultInjector(
            seed=seed + 1,
            duplicate_rate=0.15,
            reorder_rate=0.25,
            reorder_depth=3,
        ).perturb(clean_db.log.updates)
        pipe = IngestPipeline(
            MovingObjectDatabase(initial_time=-math.inf), policy="strict"
        )
        with pytest.raises(ValueError, match=REASON_OUT_OF_ORDER):
            pipe.submit_all(faulty)


class TestIngestCorrelation:
    def test_quarantine_event_carries_query_id(self):
        """An ingest pipeline run under a QueryProfile stamps its
        quarantine events with the owning query id, like every other
        observed layer."""
        from repro.obs.profile import QueryProfile

        db = MovingObjectDatabase()
        prof = QueryProfile("q-ingest", "session")
        pipe = IngestPipeline(db, policy="quarantine", observe=prof.observe)
        pipe.submit(new("a", 1.0))
        assert pipe.submit(new("a", 2.0)) == QUARANTINED
        events = [r for r in prof.spans if r["name"] == "ingest.quarantine"]
        assert len(events) == 1
        assert events[0]["attrs"]["query_id"] == "q-ingest"
        assert events[0]["attrs"]["reason"] == REASON_ALREADY_EXISTS

    def test_unobserved_quarantine_emits_nothing(self):
        db = MovingObjectDatabase()
        pipe = IngestPipeline(db, policy="quarantine")
        pipe.submit(new("a", 1.0))
        assert pipe.submit(new("a", 2.0)) == QUARANTINED
        assert pipe.stats.quarantined == 1
