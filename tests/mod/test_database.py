"""Tests for the MOD triple and Definition 3's update semantics."""

import pytest

from repro.geometry.vectors import Vector
from repro.mod.database import MovingObjectDatabase
from repro.mod.updates import ChangeDirection, New, Terminate
from repro.trajectory.builder import from_waypoints


def make_db():
    db = MovingObjectDatabase(initial_time=0.0)
    db.create("a", 1.0, position=[0, 0], velocity=[1, 0])
    db.create("b", 2.0, position=[10, 0], velocity=[-1, 0])
    return db


class TestTriple:
    def test_object_set(self):
        db = make_db()
        assert sorted(db.object_ids) == ["a", "b"]
        assert db.object_count == 2
        assert "a" in db and "c" not in db

    def test_last_update_time(self):
        db = make_db()
        assert db.last_update_time == 2.0

    def test_dimension(self):
        assert make_db().dimension == 2

    def test_iteration(self):
        db = make_db()
        assert {oid for oid, _ in db} == {"a", "b"}
        assert len(db) == 2

    def test_trajectory_lookup(self):
        db = make_db()
        assert db.trajectory("a").position(3.0) == Vector.of(2, 0)

    def test_unknown_object_rejected(self):
        with pytest.raises(KeyError):
            make_db().trajectory("zzz")


class TestNew:
    def test_creates_anchored_trajectory(self):
        db = make_db()
        assert db.position("a", 1.0) == Vector.of(0, 0)
        assert db.position("a", 5.0) == Vector.of(4, 0)

    def test_undefined_before_creation(self):
        db = make_db()
        assert not db.trajectory("a").defined_at(0.5)

    def test_duplicate_oid_rejected(self):
        db = make_db()
        with pytest.raises(ValueError):
            db.create("a", 3.0, position=[0, 0], velocity=[0, 0])

    def test_reuse_of_terminated_oid_rejected(self):
        db = make_db()
        db.terminate("a", 3.0)
        with pytest.raises(ValueError):
            db.create("a", 4.0, position=[0, 0], velocity=[0, 0])

    def test_dimension_mismatch_rejected(self):
        db = make_db()
        with pytest.raises(ValueError):
            db.create("c", 3.0, position=[0, 0, 0], velocity=[0, 0, 0])

    def test_velocity_position_mismatch_rejected(self):
        with pytest.raises(ValueError):
            New("x", 1.0, Vector.of(1), Vector.of(1, 2))


class TestTerminate:
    def test_removes_from_live_set(self):
        db = make_db()
        db.terminate("a", 5.0)
        assert "a" not in db
        assert db.is_terminated("a")

    def test_trajectory_truncated(self):
        db = make_db()
        db.terminate("a", 5.0)
        traj = db.trajectory("a")
        assert traj.domain.hi == 5.0
        assert traj.position(5.0) == Vector.of(4, 0)

    def test_unknown_object_rejected(self):
        db = make_db()
        with pytest.raises(ValueError):
            db.terminate("zzz", 5.0)

    def test_double_terminate_rejected(self):
        db = make_db()
        db.terminate("a", 5.0)
        with pytest.raises(ValueError):
            db.terminate("a", 6.0)


class TestChangeDirection:
    def test_future_replaced_past_kept(self):
        db = make_db()
        db.change_direction("a", 5.0, [0, 1])
        assert db.position("a", 3.0) == Vector.of(2, 0)
        assert db.position("a", 7.0).approx_equals(Vector.of(4, 2))

    def test_turn_recorded(self):
        db = make_db()
        db.change_direction("a", 5.0, [0, 1])
        assert db.trajectory("a").turns == [5.0]

    def test_unknown_object_rejected(self):
        db = make_db()
        with pytest.raises(ValueError):
            db.change_direction("zzz", 5.0, [0, 0])

    def test_after_terminate_rejected(self):
        db = make_db()
        db.terminate("a", 5.0)
        with pytest.raises(ValueError):
            db.change_direction("a", 6.0, [0, 0])


class TestChronology:
    def test_non_monotonic_update_rejected(self):
        db = make_db()
        with pytest.raises(ValueError):
            db.create("c", 1.5, position=[0, 0], velocity=[0, 0])

    def test_equal_time_rejected(self):
        db = make_db()
        with pytest.raises(ValueError):
            db.terminate("a", 2.0)

    def test_invariant_all_turns_before_tau(self):
        db = make_db()
        db.change_direction("a", 5.0, [0, 1])
        db.check_invariants()

    def test_advance_clock(self):
        db = make_db()
        db.advance_clock(10.0)
        assert db.last_update_time == 10.0
        with pytest.raises(ValueError):
            db.advance_clock(5.0)


class TestSnapshotAndListeners:
    def test_snapshot_excludes_not_yet_created(self):
        db = MovingObjectDatabase()
        db.create("a", 1.0, position=[0], velocity=[1])
        db.create("b", 5.0, position=[0], velocity=[1])
        snap = db.snapshot(3.0)
        assert set(snap) == {"a"}

    def test_snapshot_includes_terminated_during_life(self):
        db = make_db()
        db.terminate("a", 5.0)
        assert "a" in db.snapshot(3.0)
        assert "a" not in db.snapshot(6.0)

    def test_listener_receives_updates(self):
        db = make_db()
        seen = []
        db.subscribe(seen.append)
        db.change_direction("a", 3.0, [0, 1])
        db.terminate("b", 4.0)
        assert len(seen) == 2
        assert isinstance(seen[0], ChangeDirection)
        assert isinstance(seen[1], Terminate)

    def test_unsubscribe(self):
        db = make_db()
        seen = []
        db.subscribe(seen.append)
        db.unsubscribe(seen.append)
        db.change_direction("a", 3.0, [0, 1])
        assert seen == []


class TestInstall:
    def test_install_historical_trajectory(self):
        db = MovingObjectDatabase()
        traj = from_waypoints([(0, [0, 0]), (5, [5, 0])])
        db.install("hist", traj)
        assert "hist" in db
        assert db.position("hist", 2.0) == Vector.of(2, 0)

    def test_install_finite_trajectory_counts_as_terminated(self):
        db = MovingObjectDatabase()
        traj = from_waypoints([(0, [0]), (5, [5])], extend=False)
        db.install("gone", traj)
        assert db.is_terminated("gone")

    def test_install_duplicate_rejected(self):
        db = MovingObjectDatabase()
        traj = from_waypoints([(0, [0]), (5, [5])])
        db.install("x", traj)
        with pytest.raises(ValueError):
            db.install("x", traj)

    def test_install_future_turn_rejected(self):
        # Definition 2: every turn must be at or before tau.  A clock at
        # 0 cannot accept a history that turns at 5.
        db = MovingObjectDatabase(initial_time=0.0)
        traj = from_waypoints([(0, [0, 0]), (5, [5, 0]), (10, [5, 5])])
        with pytest.raises(ValueError):
            db.install("early", traj)

    def test_install_turn_at_tau_accepted(self):
        db = MovingObjectDatabase(initial_time=5.0)
        traj = from_waypoints([(0, [0, 0]), (5, [5, 0]), (10, [5, 5])])
        db.install("ok", traj)
        db.check_invariants()

    def test_install_turn_within_tolerance_accepted(self):
        from repro.geometry.tolerance import DEFAULT_ATOL

        db = MovingObjectDatabase(initial_time=5.0)
        traj = from_waypoints(
            [(0, [0, 0]), (5.0 + DEFAULT_ATOL / 2, [5, 0]), (10, [5, 5])]
        )
        db.install("edge", traj)
        db.check_invariants()


class TestUnsubscribe:
    def test_unknown_listener_is_noop(self):
        db = make_db()
        db.unsubscribe(lambda u: None)  # never subscribed: no error

    def test_double_unsubscribe_is_noop(self):
        db = make_db()
        seen = []
        db.subscribe(seen.append)
        db.unsubscribe(seen.append)
        db.unsubscribe(seen.append)
        db.change_direction("a", 3.0, [0, 1])
        assert seen == []
