"""Tests for update logs, replay, and time travel."""

import pytest

from repro.geometry.vectors import Vector
from repro.mod.log import RecordingDatabase, UpdateLog
from repro.mod.updates import ChangeDirection, New, Terminate


def sample_updates():
    return [
        New("a", 1.0, Vector.of(1, 0), Vector.of(0, 0)),
        New("b", 2.0, Vector.of(-1, 0), Vector.of(10, 0)),
        ChangeDirection("a", 3.0, Vector.of(0, 1)),
        Terminate("b", 4.0),
    ]


class TestUpdateLog:
    def test_append_and_iterate(self):
        log = UpdateLog(sample_updates())
        assert len(log) == 4
        assert [u.time for u in log] == [1.0, 2.0, 3.0, 4.0]

    def test_non_chronological_rejected(self):
        log = UpdateLog(sample_updates())
        with pytest.raises(ValueError):
            log.append(Terminate("a", 3.5))

    def test_updates_until(self):
        log = UpdateLog(sample_updates())
        assert [u.time for u in log.updates_until(2.5)] == [1.0, 2.0]

    def test_updates_between(self):
        log = UpdateLog(sample_updates())
        assert [u.time for u in log.updates_between(1.0, 3.0)] == [2.0, 3.0]

    def test_replay_full(self):
        log = UpdateLog(sample_updates())
        db = log.replay()
        assert db.object_ids == ["a"]
        assert db.is_terminated("b")
        assert db.last_update_time == 4.0

    def test_replay_prefix(self):
        log = UpdateLog(sample_updates())
        db = log.replay(until=2.0)
        assert sorted(db.object_ids) == ["a", "b"]
        assert db.last_update_time == 2.0
        # chdir not yet applied
        assert db.trajectory("a").turns == []


class TestRecordingDatabase:
    def test_records_applied_updates(self):
        db = RecordingDatabase()
        db.create("x", 1.0, position=[0], velocity=[1])
        db.change_direction("x", 2.0, [0])
        assert len(db.log) == 2

    def test_replay_reproduces_state(self):
        db = RecordingDatabase()
        db.create("x", 1.0, position=[0], velocity=[1])
        db.change_direction("x", 2.0, [2])
        clone = db.log.replay()
        assert clone.position("x", 4.0) == db.position("x", 4.0)
