"""Tests for the benchmark report collector."""

import pathlib

import pytest

from repro.bench.report import (
    PREFERRED_ORDER,
    collect_results,
    main,
    ordered_names,
    render_report,
)


@pytest.fixture
def results_dir(tmp_path):
    d = tmp_path / "results"
    d.mkdir()
    (d / "theorem4_past.txt").write_text("T4 TABLE\nrow\n")
    (d / "fig2_scenario.txt").write_text("FIG2 TABLE\nrow\n")
    (d / "custom_extra.txt").write_text("EXTRA TABLE\n")
    return d


class TestCollect:
    def test_reads_all_tables(self, results_dir):
        tables = collect_results(results_dir)
        assert set(tables) == {"theorem4_past", "fig2_scenario", "custom_extra"}
        assert tables["theorem4_past"].startswith("T4 TABLE")

    def test_missing_dir_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            collect_results(tmp_path / "nope")


class TestOrdering:
    def test_index_order_respected(self, results_dir):
        names = ordered_names(collect_results(results_dir))
        assert names.index("fig2_scenario") < names.index("theorem4_past")
        assert names[-1] == "custom_extra"

    def test_preferred_order_covers_experiment_index(self):
        # Every table the benchmark suite writes has a slot.
        assert "lemma9_queue" in PREFERRED_ORDER
        assert "multiquery_amortization" in PREFERRED_ORDER


class TestRender:
    def test_render_contains_all_tables(self, results_dir):
        text = render_report(results_dir)
        assert "T4 TABLE" in text
        assert "FIG2 TABLE" in text
        assert "EXTRA TABLE" in text

    def test_render_empty_dir(self, tmp_path):
        d = tmp_path / "results"
        d.mkdir()
        assert "no benchmark results" in render_report(d)

    def test_custom_title(self, results_dir):
        text = render_report(results_dir, title="My Title")
        assert text.startswith("My Title")


class TestCli:
    def test_main_prints_report(self, results_dir, capsys):
        assert main([str(results_dir)]) == 0
        out = capsys.readouterr().out
        assert "T4 TABLE" in out

    def test_main_missing_dir(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope")]) == 1

    def test_main_against_repo_results(self, capsys):
        """The repo's own results directory renders (benchmarks have
        been run at least once in this workspace)."""
        repo_results = (
            pathlib.Path(__file__).parent.parent / "benchmarks" / "results"
        )
        if not repo_results.is_dir():
            pytest.skip("benchmarks not yet run")
        assert main([str(repo_results)]) == 0
