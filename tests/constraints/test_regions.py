"""Tests for convex regions."""

import pytest

from repro.constraints.regions import HalfPlane, Region, box, halfplane_region, polygon


class TestHalfPlane:
    def test_contains(self):
        h = HalfPlane((1.0, 0.0), 5.0)  # x <= 5
        assert h.contains([4.0, 100.0])
        assert h.contains([5.0, 0.0])
        assert not h.contains([6.0, 0.0])

    def test_boundary_value(self):
        h = HalfPlane((1.0, 0.0), 5.0)
        assert h.boundary_value([3.0, 0.0]) == -2.0

    def test_as_constraint(self):
        h = HalfPlane((2.0, -1.0), 4.0)
        c = h.as_constraint(["x0", "x1"])
        assert c.holds({"x0": 1.0, "x1": 0.0})
        assert not c.holds({"x0": 3.0, "x1": 0.0})


class TestBox:
    def test_membership(self):
        b = box([0.0, 0.0], [10.0, 5.0])
        assert b.contains([5.0, 2.5])
        assert b.contains([0.0, 0.0])
        assert b.contains([10.0, 5.0])
        assert not b.contains([11.0, 2.0])
        assert not b.contains([5.0, -0.1])

    def test_degenerate_box(self):
        b = box([1.0, 1.0], [1.0, 1.0])
        assert b.contains([1.0, 1.0])
        assert not b.is_empty()

    def test_invalid_box(self):
        with pytest.raises(ValueError):
            box([5.0], [1.0])
        with pytest.raises(ValueError):
            box([0.0], [1.0, 2.0])

    def test_3d_box(self):
        b = box([0, 0, 0], [1, 1, 1])
        assert b.contains([0.5, 0.5, 0.5])
        assert b.dimension == 3


class TestPolygon:
    def test_triangle(self):
        t = polygon([(0, 0), (10, 0), (5, 10)])
        assert t.contains([5.0, 3.0])
        assert t.contains([0.0, 0.0])
        assert not t.contains([0.0, 5.0])

    def test_clockwise_rejected(self):
        with pytest.raises(ValueError):
            polygon([(0, 0), (5, 10), (10, 0)])

    def test_too_few_vertices(self):
        with pytest.raises(ValueError):
            polygon([(0, 0), (1, 1)])

    def test_non_planar_rejected(self):
        with pytest.raises(ValueError):
            polygon([(0, 0, 0), (1, 0, 0), (0, 1, 0)])


class TestEmptiness:
    def test_nonempty_box(self):
        assert not box([0.0], [1.0]).is_empty()

    def test_empty_intersection(self):
        region = Region(
            (
                HalfPlane((1.0,), 0.0),  # x <= 0
                HalfPlane((-1.0,), -1.0),  # x >= 1
            )
        )
        assert region.is_empty()

    def test_halfplane_region(self):
        r = halfplane_region([1.0, 1.0], 2.0, name="diag")
        assert r.contains([1.0, 1.0])
        assert not r.contains([2.0, 1.0])
        assert "diag" in repr(r)
