"""Tests for the heading (unit-vector) atoms of the Section 3 language."""

import math

import pytest

from repro.constraints.evaluator import TimelineEvaluator
from repro.constraints.folq import ExistsTime, FOAnd, ForAllTime, HeadingCompare
from repro.mod.database import MovingObjectDatabase
from repro.trajectory.builder import from_waypoints, linear_from, stationary

EAST = (1.0, 0.0)
NORTH = (0.0, 1.0)


def compass_db():
    db = MovingObjectDatabase()
    db.install("eastbound", linear_from(0.0, [0, 0], [3.0, 0.0]))
    db.install("northeast", linear_from(0.0, [0, 0], [1.0, 1.0]))
    db.install("westbound", linear_from(0.0, [0, 0], [-2.0, 0.0]))
    db.install("parked", stationary([5.0, 5.0]))
    return db


class TestHeadingCompare:
    def test_heading_east(self):
        ev = TimelineEvaluator(compass_db())
        f = ExistsTime(
            "t",
            HeadingCompare("y", EAST, ">=", math.cos(math.radians(30)), "t"),
            within=(0.0, 10.0),
        )
        assert ev.answer(f, "y") == {"eastbound"}

    def test_wider_cone_includes_diagonal(self):
        ev = TimelineEvaluator(compass_db())
        f = ExistsTime(
            "t",
            HeadingCompare("y", EAST, ">=", math.cos(math.radians(50)), "t"),
            within=(0.0, 10.0),
        )
        assert ev.answer(f, "y") == {"eastbound", "northeast"}

    def test_heading_away(self):
        ev = TimelineEvaluator(compass_db())
        f = ExistsTime(
            "t", HeadingCompare("y", EAST, "<", 0.0, "t"), within=(0.0, 10.0)
        )
        assert ev.answer(f, "y") == {"westbound"}

    def test_stationary_has_no_heading(self):
        ev = TimelineEvaluator(compass_db())
        # parked satisfies no heading atom, not even the trivial cone.
        f = ExistsTime(
            "t", HeadingCompare("y", EAST, ">=", -1.0, "t"), within=(0.0, 10.0)
        )
        assert "parked" not in ev.answer(f, "y")

    def test_direction_normalized(self):
        """Scaling the direction vector must not change the answer."""
        ev = TimelineEvaluator(compass_db())
        threshold = math.cos(math.radians(30))
        small = ExistsTime(
            "t", HeadingCompare("y", (0.001, 0.0), ">=", threshold, "t"),
            within=(0.0, 10.0),
        )
        big = ExistsTime(
            "t", HeadingCompare("y", (1000.0, 0.0), ">=", threshold, "t"),
            within=(0.0, 10.0),
        )
        assert ev.answer(small, "y") == ev.answer(big, "y")

    def test_turning_object_changes_heading(self):
        db = MovingObjectDatabase(initial_time=10.0)
        db.install(
            "turner",
            from_waypoints([(0, [0, 0]), (5, [5, 0]), (10, [5, 5])]),
        )
        ev = TimelineEvaluator(db)
        heading_north = HeadingCompare("y", NORTH, ">=", 0.9, "t")
        early = ExistsTime("t", heading_north, within=(0.0, 4.0))
        late = ExistsTime("t", heading_north, within=(6.0, 9.0))
        assert ev.answer(early, "y") == set()
        assert ev.answer(late, "y") == {"turner"}

    def test_always_heading_east(self):
        db = MovingObjectDatabase(initial_time=10.0)
        db.install("steady", linear_from(0.0, [0, 0], [2.0, 0.0]))
        db.install(
            "wobbler",
            from_waypoints([(0, [0, 0]), (5, [5, 0]), (10, [5, 5])]),
        )
        ev = TimelineEvaluator(db)
        f = ForAllTime(
            "t", HeadingCompare("y", EAST, ">=", 0.99, "t"), within=(1.0, 9.0)
        )
        assert ev.answer(f, "y") == {"steady"}

    def test_zero_direction_rejected(self):
        with pytest.raises(ValueError):
            HeadingCompare("y", (0.0, 0.0), ">=", 0.5, "t")

    def test_bad_predicate_rejected(self):
        with pytest.raises(ValueError):
            HeadingCompare("y", EAST, "!=", 0.5, "t")

    def test_combined_with_region_atoms(self):
        """Objects heading east while inside a corridor."""
        from repro.constraints.regions import box
        from repro.constraints.folq import InRegion

        db = MovingObjectDatabase()
        db.install("through", linear_from(0.0, [-10.0, 0.0], [2.0, 0.0]))
        db.install("crossing", linear_from(0.0, [0.0, -10.0], [0.0, 2.0]))
        ev = TimelineEvaluator(db)
        corridor = box([-5.0, -5.0], [5.0, 5.0])
        f = ExistsTime(
            "t",
            FOAnd(
                InRegion("y", "t", corridor),
                HeadingCompare("y", EAST, ">=", 0.9, "t"),
            ),
            within=(0.0, 20.0),
        )
        assert ev.answer(f, "y") == {"through"}
