"""Tests for linear expressions and constraints."""

import pytest

from repro.constraints.linear import (
    LinearConstraint,
    LinearExpr,
    conjunction_holds,
)


class TestLinearExpr:
    def test_build_drops_zero_coeffs(self):
        e = LinearExpr.build({"x": 0.0, "y": 2.0})
        assert e.variables == ["y"]

    def test_variable_and_const(self):
        assert LinearExpr.variable("x").evaluate({"x": 3.0}) == 3.0
        assert LinearExpr.const(5.0).evaluate({}) == 5.0
        assert LinearExpr.const(5.0).is_constant

    def test_evaluate(self):
        e = LinearExpr.build({"x": 2.0, "y": -1.0}, 3.0)
        assert e.evaluate({"x": 1.0, "y": 4.0}) == 1.0

    def test_add_sub(self):
        a = LinearExpr.build({"x": 1.0}, 1.0)
        b = LinearExpr.build({"x": 2.0, "y": 1.0}, -1.0)
        assert (a + b).evaluate({"x": 1.0, "y": 1.0}) == 4.0
        assert (a - b).coefficient("x") == -1.0

    def test_add_cancels(self):
        a = LinearExpr.build({"x": 1.0})
        b = LinearExpr.build({"x": -1.0})
        assert (a + b).is_constant

    def test_scaled(self):
        e = LinearExpr.build({"x": 2.0}, 1.0).scaled(3.0)
        assert e.coefficient("x") == 6.0
        assert e.constant == 3.0

    def test_substitute(self):
        # x + 2y with x := 3z - 1  ->  3z + 2y - 1
        e = LinearExpr.build({"x": 1.0, "y": 2.0})
        sub = LinearExpr.build({"z": 3.0}, -1.0)
        result = e.substitute("x", sub)
        assert result.coefficient("z") == 3.0
        assert result.coefficient("y") == 2.0
        assert result.constant == -1.0

    def test_substitute_absent_var_is_noop(self):
        e = LinearExpr.build({"y": 2.0})
        assert e.substitute("x", LinearExpr.const(1.0)) is e


class TestLinearConstraint:
    def test_normalization_of_ge(self):
        c = LinearConstraint.make(LinearExpr.build({"x": 1.0}, -5.0), ">=")
        # x - 5 >= 0  ->  -(x - 5) <= 0
        assert c.predicate == "<="
        assert c.holds({"x": 6.0})
        assert not c.holds({"x": 4.0})

    def test_normalization_of_gt(self):
        c = LinearConstraint.make(LinearExpr.build({"x": 1.0}), ">")
        assert c.predicate == "<"
        assert c.holds({"x": 1.0})
        assert not c.holds({"x": -1.0})

    def test_equality(self):
        c = LinearConstraint.make(LinearExpr.build({"x": 1.0}, -2.0), "=")
        assert c.holds({"x": 2.0})
        assert not c.holds({"x": 2.1})

    def test_invalid_predicate(self):
        with pytest.raises(ValueError):
            LinearConstraint.make(LinearExpr.const(0.0), "!=")
        with pytest.raises(ValueError):
            LinearConstraint(LinearExpr.const(0.0), ">")

    def test_conjunction_holds(self):
        cs = [
            LinearConstraint.make(LinearExpr.build({"x": 1.0}, -5.0), "<="),
            LinearConstraint.make(LinearExpr.build({"x": -1.0}, 1.0), "<="),
        ]
        assert conjunction_holds(cs, {"x": 3.0})  # 1 <= x <= 5
        assert not conjunction_holds(cs, {"x": 0.0})
