"""Tests for past/continuing/future classification (Definitions 4-5,
Theorem 2's boundary)."""

import pytest

from repro.constraints.classify import QueryClass, classify_interval_query
from repro.geometry.intervals import Interval
from repro.gdist.euclidean import SquaredEuclideanDistance
from repro.mod.database import MovingObjectDatabase
from repro.query.query import knn_query, within_query
from repro.trajectory.builder import linear_from, stationary


def make_db(tau=10.0):
    """Two objects, last update at tau."""
    db = MovingObjectDatabase(initial_time=0.0)
    db.create("near", 0.5, position=[1.0, 0.0], velocity=[0.0, 0.0])
    db.create("far", 1.0, position=[50.0, 0.0], velocity=[-1.0, 0.0])
    db.advance_clock(tau)
    return db


def gd():
    return SquaredEuclideanDistance([0.0, 0.0])


class TestPast:
    def test_interval_entirely_committed(self):
        db = make_db(tau=10.0)
        q = knn_query(Interval(2.0, 8.0), 1)
        result = classify_interval_query(db, gd(), q)
        assert result.query_class is QueryClass.PAST
        assert result.predicted == result.valid == frozenset({"near"})
        assert result.predicted_only == frozenset()

    def test_future_interval_but_membership_already_witnessed(self):
        """Even with interval.hi > tau, if the full-interval answer
        equals the committed-part answer the query behaves as past."""
        db = make_db(tau=10.0)
        # far reaches distance 1 at t=49; horizon stops before that.
        q = knn_query(Interval(2.0, 20.0), 1)
        result = classify_interval_query(db, gd(), q)
        assert result.query_class is QueryClass.PAST
        assert result.valid == frozenset({"near"})


class TestFuture:
    def test_interval_entirely_ahead(self):
        db = make_db(tau=10.0)
        q = knn_query(Interval(15.0, 20.0), 1)
        result = classify_interval_query(db, gd(), q)
        assert result.query_class is QueryClass.FUTURE
        assert result.valid == frozenset()
        assert result.predicted == frozenset({"near"})

    def test_prediction_can_be_revoked(self):
        """The predicted-only member is exactly the object whose
        membership depends on uncommitted motion: a future chdir
        removes it, demonstrating Definition 4's validity notion."""
        db = make_db(tau=10.0)
        q = knn_query(Interval(15.0, 60.0), 1)
        result = classify_interval_query(db, gd(), q)
        assert "far" in result.predicted_only  # predicted to take over at t=49
        # Now 'far' actually turns away before overtaking:
        db.change_direction("far", 20.0, [1.0, 0.0])
        after = classify_interval_query(db, gd(), q)
        assert "far" not in after.predicted


class TestContinuing:
    def test_straddling_interval(self):
        db = make_db(tau=10.0)
        # Interval [2, 60]: 'near' already witnessed (valid); 'far'
        # only predicted (overtakes at t=49 if nothing changes).
        q = knn_query(Interval(2.0, 60.0), 1)
        result = classify_interval_query(db, gd(), q)
        assert result.query_class is QueryClass.CONTINUING
        assert result.valid == frozenset({"near"})
        assert result.predicted_only == frozenset({"far"})


class TestWithinQueries:
    def test_within_future(self):
        db = make_db(tau=10.0)
        q = within_query(Interval(40.0, 60.0), 25.0)  # dist <= 5
        result = classify_interval_query(db, gd(), q)
        # The interval is entirely ahead of tau: nothing is valid yet.
        # 'near' sits at distance 1 (predicted to stay within range);
        # 'far' is predicted to pass through range around t in [46, 56].
        assert result.query_class is QueryClass.FUTURE
        assert result.predicted == frozenset({"near", "far"})
        assert result.valid == frozenset()

    def test_within_continuing(self):
        db = make_db(tau=10.0)
        q = within_query(Interval(0.0, 60.0), 25.0)
        result = classify_interval_query(db, gd(), q)
        assert result.query_class is QueryClass.CONTINUING
        assert result.valid == frozenset({"near"})


class TestLimits:
    def test_unbounded_interval_rejected(self):
        db = make_db()
        q = knn_query(Interval(0.0, 10.0), 1)
        object.__setattr__(q, "interval", Interval.at_least(0.0))
        with pytest.raises(ValueError):
            classify_interval_query(db, gd(), q)

    def test_theorem2_caveat_documented(self):
        """Theorem 2: exact classification is undecidable in general —
        the classifier handles interval-bounded FO(f) queries, whose
        validity is determined by the committed/predicted split.  This
        test documents the boundary: the classifier never inspects
        update *sequences* (it cannot), only the committed history."""
        db = make_db(tau=10.0)
        q = knn_query(Interval(2.0, 8.0), 1)
        result = classify_interval_query(db, gd(), q)
        # Soundness: valid answers are genuinely immutable.  Apply an
        # arbitrary adversarial update sequence; the valid set persists.
        db.create("intruder", 11.0, position=[0.1, 0.0], velocity=[0.0, 0.0])
        db.change_direction("near", 12.0, [100.0, 0.0])
        after = classify_interval_query(db, gd(), q)
        assert result.valid <= after.predicted
