"""Tests for Fourier-Motzkin elimination."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints.fourier_motzkin import (
    eliminate_variable,
    eliminate_variables,
    is_satisfiable,
    solution_interval_for,
)
from repro.constraints.linear import LinearConstraint, LinearExpr


def le(coeffs, const):
    return LinearConstraint.make(LinearExpr.build(coeffs, const), "<=")


def lt(coeffs, const):
    return LinearConstraint.make(LinearExpr.build(coeffs, const), "<")


def eq(coeffs, const):
    return LinearConstraint.make(LinearExpr.build(coeffs, const), "=")


class TestEliminateVariable:
    def test_simple_projection(self):
        # 1 <= x <= y  projects onto  1 <= y.
        constraints = [
            le({"x": -1.0}, 1.0),  # 1 - x <= 0
            le({"x": 1.0, "y": -1.0}, 0.0),  # x - y <= 0
        ]
        projected = eliminate_variable(constraints, "x")
        assert len(projected) == 1
        assert projected[0].holds({"y": 2.0})
        assert not projected[0].holds({"y": 0.5})

    def test_strictness_propagates(self):
        # 1 < x and x <= y  ->  1 < y.
        constraints = [
            lt({"x": -1.0}, 1.0),
            le({"x": 1.0, "y": -1.0}, 0.0),
        ]
        (projected,) = eliminate_variable(constraints, "x")
        assert projected.predicate == "<"

    def test_equality_substitution(self):
        # x = 2y + 1 and x <= 5  ->  2y + 1 <= 5.
        constraints = [
            eq({"x": 1.0, "y": -2.0}, -1.0),  # x - 2y - 1 = 0
            le({"x": 1.0}, -5.0),  # x - 5 <= 0
        ]
        (projected,) = eliminate_variable(constraints, "x")
        assert projected.holds({"y": 1.0})  # x = 3 <= 5
        assert not projected.holds({"y": 3.0})  # x = 7 > 5

    def test_no_bound_side_drops_constraints(self):
        # Only a lower bound on x: projection is unconstrained.
        constraints = [le({"x": -1.0}, 0.0)]
        assert eliminate_variable(constraints, "x") == []

    def test_variable_absent(self):
        constraints = [le({"y": 1.0}, -1.0)]
        assert eliminate_variable(constraints, "x") == constraints


class TestSatisfiability:
    def test_satisfiable_box(self):
        constraints = [
            le({"x": 1.0}, -5.0),
            le({"x": -1.0}, 1.0),
            le({"y": 1.0}, -5.0),
            le({"y": -1.0}, 1.0),
        ]
        assert is_satisfiable(constraints)

    def test_unsatisfiable(self):
        constraints = [
            le({"x": 1.0}, -1.0),  # x <= 1
            le({"x": -1.0}, 2.0),  # x >= 2
        ]
        assert not is_satisfiable(constraints)

    def test_strict_boundary_unsatisfiable(self):
        constraints = [
            lt({"x": 1.0}, -1.0),  # x < 1
            le({"x": -1.0}, 1.0),  # x >= 1
        ]
        assert not is_satisfiable(constraints)

    def test_chained_elimination(self):
        # x <= y, y <= z, z <= x - 1: a cycle with slack -1: unsat.
        constraints = [
            le({"x": 1.0, "y": -1.0}, 0.0),
            le({"y": 1.0, "z": -1.0}, 0.0),
            le({"z": 1.0, "x": -1.0}, 1.0),
        ]
        assert not is_satisfiable(constraints)

    def test_empty_conjunction_satisfiable(self):
        assert is_satisfiable([])

    @given(
        st.lists(
            st.tuples(
                st.floats(-5, 5, allow_nan=False).map(lambda v: round(v, 2)),
                st.floats(-5, 5, allow_nan=False).map(lambda v: round(v, 2)),
                st.floats(-10, 10, allow_nan=False).map(lambda v: round(v, 2)),
            ),
            min_size=1,
            max_size=8,
        )
    )
    @settings(max_examples=50)
    def test_projection_preserves_satisfiability_witnesses(self, rows):
        """If a point satisfies the system with slack, the projection is
        satisfied by the same point (soundness direction of FM).

        Coefficients with magnitude below 0.01 are dropped to keep the
        combined bounds numerically well-conditioned (FM divides by the
        eliminated variable's coefficient), and the witness must satisfy
        each constraint with real slack.
        """
        rows = [
            (a if abs(a) >= 0.01 else 0.0, b if abs(b) >= 0.01 else 0.0, c)
            for a, b, c in rows
        ]
        constraints = [le({"x": a, "y": b}, c) for a, b, c in rows]
        witness = {"x": 1.3, "y": -0.7}
        slack_ok = all(c.expr.evaluate(witness) <= -1e-6 for c in constraints)
        if slack_ok:
            projected = eliminate_variable(constraints, "x")
            assert all(c.holds(witness) for c in projected)

    def test_random_systems_against_sampling(self):
        rng = random.Random(5)
        for trial in range(60):
            constraints = [
                le(
                    {"x": rng.uniform(-3, 3), "y": rng.uniform(-3, 3)},
                    rng.uniform(-5, 5),
                )
                for _ in range(rng.randint(1, 6))
            ]
            fm = is_satisfiable(constraints)
            hit = False
            for _ in range(3000):
                point = {"x": rng.uniform(-50, 50), "y": rng.uniform(-50, 50)}
                if all(c.holds(point) for c in constraints):
                    hit = True
                    break
            # Sampling finding a point implies FM must agree.
            if hit:
                assert fm


class TestSolutionInterval:
    def test_bounds_reported(self):
        constraints = [
            le({"x": 1.0}, -5.0),  # x <= 5
            le({"x": -1.0}, 1.0),  # x >= 1
        ]
        assert solution_interval_for(constraints, "x") == (1.0, 5.0)

    def test_after_eliminating_others(self):
        # x <= y <= 3 and x >= 0: x in [0, 3].
        constraints = [
            le({"x": 1.0, "y": -1.0}, 0.0),
            le({"y": 1.0}, -3.0),
            le({"x": -1.0}, 0.0),
        ]
        lo, hi = solution_interval_for(constraints, "x")
        assert (lo, hi) == (0.0, 3.0)

    def test_unsatisfiable_returns_none(self):
        constraints = [
            le({"x": 1.0}, -1.0),
            le({"x": -1.0}, 2.0),
        ]
        assert solution_interval_for(constraints, "x") is None

    def test_eliminate_variables_sequence(self):
        constraints = [
            le({"x": 1.0, "y": 1.0, "z": 1.0}, -3.0),
            le({"x": -1.0}, 0.0),
            le({"y": -1.0}, 0.0),
            le({"z": -1.0}, 0.0),
        ]
        remaining = eliminate_variables(constraints, ["x", "y", "z"])
        assert all(not c.variables for c in remaining)
