"""Tests for the Section 3 decision procedure, including Example 3."""

import pytest

from repro.baselines.naive import naive_knn_answer, naive_within_answer
from repro.baselines.qe_eval import qe_one_nn, qe_within
from repro.constraints.evaluator import TimelineEvaluator
from repro.constraints.folq import (
    DistCompare,
    ExistsAt,
    ExistsObject,
    ExistsTime,
    FOAnd,
    FONot,
    FOOr,
    ForAllObject,
    ForAllTime,
    InRegion,
    ObjectEquals,
    TimeCompare,
    VelCompare,
)
from repro.constraints.regions import box
from repro.geometry.intervals import Interval
from repro.gdist.euclidean import SquaredEuclideanDistance
from repro.mod.database import MovingObjectDatabase
from repro.trajectory.builder import from_waypoints, linear_from, stationary
from repro.workloads.generator import random_linear_mod


def simple_db():
    db = MovingObjectDatabase()
    db.install("mover", linear_from(0.0, [0.0, 0.0], [1.0, 0.0]))
    db.install("sitter", stationary([100.0, 100.0]))
    return db


class TestBasicAtoms:
    def test_exists_at(self):
        db = simple_db()
        ev = TimelineEvaluator(db)
        f = ExistsAt("y", 5.0)
        assert ev.answer(f, "y") == {"mover", "sitter"}
        f_before = ExistsAt("y", -5.0)
        assert ev.answer(f_before, "y") == {"sitter"}

    def test_in_region_at_constant_time(self):
        db = simple_db()
        ev = TimelineEvaluator(db)
        strip = box([4.0, -1.0], [6.0, 1.0])
        assert ev.answer(InRegion("y", 5.0, strip), "y") == {"mover"}
        assert ev.answer(InRegion("y", 20.0, strip), "y") == set()

    def test_dist_compare_against_constant(self):
        db = simple_db()
        ev = TimelineEvaluator(db)
        ev.add_query_trajectory("q", stationary([0.0, 0.0]))
        near = DistCompare("y", "q", "<=", 100.0, 5.0)  # within 10 at t=5
        assert ev.answer(near, "y", env={"q": "q"}) == {"mover"}

    def test_vel_compare(self):
        db = simple_db()
        ev = TimelineEvaluator(db)
        moving_east = VelCompare("y", 0, ">", 0.5, 5.0)
        assert ev.answer(moving_east, "y") == {"mover"}

    def test_object_equals(self):
        db = simple_db()
        ev = TimelineEvaluator(db)
        # exists z: z == y and z in region  <=>  y in region
        strip = box([4.0, -1.0], [6.0, 1.0])
        f = ExistsObject("z", FOAnd(ObjectEquals("z", "y"), InRegion("z", 5.0, strip)))
        assert ev.answer(f, "y") == {"mover"}

    def test_unbound_variable_rejected(self):
        db = simple_db()
        ev = TimelineEvaluator(db)
        with pytest.raises(ValueError):
            ev.truth(ExistsAt("y", 0.0))

    def test_free_time_variable_rejected(self):
        db = simple_db()
        ev = TimelineEvaluator(db)
        with pytest.raises(ValueError):
            ev.truth(ExistsAt("y", "t"), env={"y": "mover"})

    def test_duplicate_query_trajectory_rejected(self):
        db = simple_db()
        ev = TimelineEvaluator(db)
        with pytest.raises(ValueError):
            ev.add_query_trajectory("mover", stationary([0.0, 0.0]))


class TestTimeQuantifiers:
    def test_exists_time_window(self):
        db = simple_db()
        ev = TimelineEvaluator(db)
        strip = box([40.0, -1.0], [60.0, 1.0])
        inside_sometime = ExistsTime(
            "t", InRegion("y", "t", strip), within=(0.0, 100.0)
        )
        assert ev.answer(inside_sometime, "y") == {"mover"}
        inside_early = ExistsTime(
            "t", InRegion("y", "t", strip), within=(0.0, 30.0)
        )
        assert ev.answer(inside_early, "y") == set()

    def test_forall_time_window(self):
        db = MovingObjectDatabase()
        db.install("inside", stationary([5.0, 0.0]))
        db.install("visitor", linear_from(0.0, [-100.0, 0.0], [10.0, 0.0]))
        ev = TimelineEvaluator(db)
        big = box([-20.0, -1.0], [20.0, 1.0])
        always = ForAllTime("t", InRegion("y", "t", big), within=(0.0, 5.0))
        assert ev.answer(always, "y") == {"inside"}

    def test_nested_time_order(self):
        """exists t1 < t2 with y inside at t1 and outside at t2."""
        db = MovingObjectDatabase()
        db.install("leaver", linear_from(0.0, [0.0, 0.0], [1.0, 0.0]))
        db.install("stayer", stationary([0.0, 0.0]))
        ev = TimelineEvaluator(db)
        region = box([-5.0, -5.0], [5.0, 5.0])
        f = ExistsTime(
            "t1",
            ExistsTime(
                "t2",
                FOAnd(
                    TimeCompare("t1", "<", "t2"),
                    InRegion("y", "t1", region),
                    FONot(InRegion("y", "t2", region)),
                ),
                within=(0.0, 100.0),
            ),
            within=(0.0, 100.0),
        )
        assert ev.answer(f, "y") == {"leaver"}


class TestExample3Entering:
    """Example 3: find objects *entering* a region during [tau1, tau2].

    An object enters at time t if it is in the region at t and not in
    the region at every instant just before t:
    exists t' < t, forall t'' in (t', t): not inside."""

    def entering_formula(self, region, tau1, tau2):
        not_inside_between = ForAllTime(
            "ts",
            FOOr(
                FONot(
                    FOAnd(
                        TimeCompare("tp", "<", "ts"),
                        TimeCompare("ts", "<", "t"),
                    )
                ),
                FONot(InRegion("y", "ts", region)),
            ),
        )
        return ExistsTime(
            "t",
            FOAnd(
                InRegion("y", "t", region),
                ExistsTime("tp", FOAnd(TimeCompare("tp", "<", "t"), not_inside_between)),
            ),
            within=(tau1, tau2),
        )

    def test_enterer_vs_resident_vs_outsider(self):
        db = MovingObjectDatabase()
        county = box([0.0, 0.0], [10.0, 10.0], name="SB County")
        # Flies into the county at t=5.
        db.install("arriving", linear_from(0.0, [-5.0, 5.0], [1.0, 0.0]))
        # Has always been inside.
        db.install("resident", stationary([5.0, 5.0]))
        # Never gets near.
        db.install("outsider", stationary([50.0, 50.0]))
        ev = TimelineEvaluator(db)
        f = self.entering_formula(county, 0.0, 20.0)
        assert ev.answer(f, "y") == {"arriving"}

    def test_reentry_counts(self):
        db = MovingObjectDatabase(initial_time=20.0)
        county = box([0.0, -1.0], [10.0, 1.0])
        # Crosses the region, leaves, comes back.
        db.install(
            "bouncer",
            from_waypoints(
                [(0, [-5.0, 0.0]), (10, [15.0, 0.0]), (20, [5.0, 0.0])]
            ),
        )
        ev = TimelineEvaluator(db)
        f = self.entering_formula(county, 12.0, 20.0)
        # Within [12, 20] the object re-enters (it is outside at 12).
        assert ev.answer(f, "y") == {"bouncer"}


class TestAgainstSweepAnswers:
    """The QE route and the sweep agree on accumulative answers."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_one_nn(self, seed):
        db = random_linear_mod(6, seed=seed, extent=25.0, speed=5.0)
        q = stationary([0.0, 0.0])
        interval = Interval(0.0, 15.0)
        qe = qe_one_nn(db, q, interval)
        naive = naive_knn_answer(
            db, SquaredEuclideanDistance(q), interval, 1
        ).accumulative()
        assert qe == naive

    @pytest.mark.parametrize("seed", [3, 4])
    def test_within(self, seed):
        db = random_linear_mod(6, seed=seed, extent=25.0, speed=5.0)
        q = stationary([0.0, 0.0])
        interval = Interval(0.0, 15.0)
        qe = qe_within(db, q, interval, 400.0)
        naive = naive_within_answer(
            db, SquaredEuclideanDistance(q), interval, 400.0
        ).accumulative()
        assert qe == naive

    def test_moving_query_one_nn(self):
        db = random_linear_mod(5, seed=9, extent=20.0, speed=4.0)
        q = from_waypoints([(0, [-10.0, 0.0]), (15, [10.0, 0.0])])
        interval = Interval(0.0, 15.0)
        qe = qe_one_nn(db, q, interval)
        naive = naive_knn_answer(
            db, SquaredEuclideanDistance(q), interval, 1
        ).accumulative()
        assert qe == naive


class TestObjectQuantifiers:
    def test_forall_object(self):
        db = MovingObjectDatabase()
        db.install("a", stationary([1.0, 0.0]))
        db.install("b", stationary([2.0, 0.0]))
        ev = TimelineEvaluator(db)
        ev.add_query_trajectory("q", stationary([0.0, 0.0]))
        nearest = ForAllObject(
            "z", DistCompare("y", "q", "<=", ("z", "q"), 0.0)
        )
        assert ev.answer(nearest, "y", env={"q": "q"}) == {"a"}

    def test_exists_object_witness(self):
        db = MovingObjectDatabase()
        db.install("a", stationary([1.0, 0.0]))
        db.install("b", stationary([2.0, 0.0]))
        ev = TimelineEvaluator(db)
        ev.add_query_trajectory("q", stationary([0.0, 0.0]))
        someone_farther = ExistsObject(
            "z", DistCompare("z", "q", ">", ("y", "q"), 0.0)
        )
        assert ev.answer(someone_farther, "y", env={"q": "q"}) == {"a"}
