"""Unit tests for the Section 3 formula AST (metadata and validation)."""

import pytest

from repro.constraints.folq import (
    DistCompare,
    ExistsAt,
    ExistsObject,
    ExistsTime,
    FOAnd,
    FONot,
    FOOr,
    ForAllObject,
    ForAllTime,
    HeadingCompare,
    InRegion,
    ObjectEquals,
    TimeCompare,
    VelCompare,
)
from repro.constraints.regions import box


REGION = box([0.0, 0.0], [1.0, 1.0])


class TestAtomMetadata:
    def test_exists_at(self):
        atom = ExistsAt("y", "t")
        assert atom.free_object_vars() == frozenset({"y"})
        assert atom.free_time_vars() == frozenset({"t"})
        assert atom.time_constants() == frozenset()

    def test_exists_at_constant_time(self):
        atom = ExistsAt("y", 5.0)
        assert atom.free_time_vars() == frozenset()
        assert atom.time_constants() == frozenset({5.0})

    def test_in_region(self):
        atom = InRegion("y", "t1", REGION)
        assert atom.free_object_vars() == frozenset({"y"})
        assert atom.free_time_vars() == frozenset({"t1"})

    def test_dist_compare_pair_rhs(self):
        atom = DistCompare("a", "b", "<=", ("c", "d"), "t")
        assert atom.free_object_vars() == frozenset({"a", "b", "c", "d"})

    def test_dist_compare_constant_rhs(self):
        atom = DistCompare("a", "q", "<", 25.0, 3.0)
        assert atom.free_object_vars() == frozenset({"a", "q"})
        assert atom.time_constants() == frozenset({3.0})

    def test_dist_compare_bad_predicate(self):
        with pytest.raises(ValueError):
            DistCompare("a", "b", "~", 1.0, "t")

    def test_vel_compare(self):
        atom = VelCompare("y", 0, ">", 2.0, "t")
        assert atom.free_object_vars() == frozenset({"y"})
        with pytest.raises(ValueError):
            VelCompare("y", 0, "!!", 2.0, "t")

    def test_heading_compare_metadata(self):
        atom = HeadingCompare("y", (1.0, 0.0), ">=", 0.5, "t")
        assert atom.free_object_vars() == frozenset({"y"})
        assert atom.free_time_vars() == frozenset({"t"})

    def test_time_compare(self):
        atom = TimeCompare("t1", "<", "t2")
        assert atom.free_time_vars() == frozenset({"t1", "t2"})
        mixed = TimeCompare("t1", "<=", 7.0)
        assert mixed.time_constants() == frozenset({7.0})
        with pytest.raises(ValueError):
            TimeCompare("t1", "<>", "t2")

    def test_object_equals(self):
        atom = ObjectEquals("y", "z")
        assert atom.free_object_vars() == frozenset({"y", "z"})
        assert atom.free_time_vars() == frozenset()


class TestCompoundMetadata:
    def test_connectives_union_vars(self):
        f = FOAnd(ExistsAt("y", "t"), InRegion("z", "u", REGION))
        assert f.free_object_vars() == frozenset({"y", "z"})
        assert f.free_time_vars() == frozenset({"t", "u"})

    def test_not_passthrough(self):
        f = FONot(ExistsAt("y", "t"))
        assert f.free_object_vars() == frozenset({"y"})

    def test_empty_connective_rejected(self):
        with pytest.raises(ValueError):
            FOAnd()
        with pytest.raises(ValueError):
            FOOr()

    def test_operator_sugar(self):
        a = ExistsAt("y", "t")
        b = InRegion("y", "t", REGION)
        assert isinstance(a & b, FOAnd)
        assert isinstance(a | b, FOOr)
        assert isinstance(~a, FONot)


class TestQuantifierMetadata:
    def test_time_quantifier_binds(self):
        f = ExistsTime("t", ExistsAt("y", "t"))
        assert f.free_time_vars() == frozenset()
        assert f.free_object_vars() == frozenset({"y"})

    def test_time_quantifier_within_adds_constants(self):
        f = ForAllTime("t", ExistsAt("y", "t"), within=(2.0, 9.0))
        assert f.time_constants() >= {2.0, 9.0}

    def test_object_quantifier_binds(self):
        f = ForAllObject("z", DistCompare("y", "q", "<=", ("z", "q"), "t"))
        assert f.free_object_vars() == frozenset({"y", "q"})

    def test_nested_binding(self):
        inner = FOAnd(
            TimeCompare("t1", "<", "t2"),
            InRegion("y", "t2", REGION),
        )
        f = ExistsTime("t1", ExistsTime("t2", inner))
        assert f.free_time_vars() == frozenset()

    def test_partial_binding_leaves_frees(self):
        inner = TimeCompare("t1", "<", "t2")
        f = ExistsTime("t1", inner)
        assert f.free_time_vars() == frozenset({"t2"})
