"""Tests for the high-level public API (repro.core)."""

import pytest

from repro import (
    ContinuousQuerySession,
    Interval,
    MovingObjectDatabase,
    SquaredEuclideanDistance,
    evaluate_knn,
    evaluate_query,
    evaluate_within,
    from_waypoints,
    knn_query,
    linear_from,
    stationary,
)
from repro.baselines.naive import naive_knn_answer, naive_within_answer
from repro.gdist.coordinate import CoordinateValue
from repro.workloads.generator import UpdateStream, random_linear_mod


class TestEvaluateKnn:
    def test_point_query(self):
        db = MovingObjectDatabase()
        db.create("cab-7", 1.0, position=[2.0, 1.0], velocity=[0.5, 0.0])
        db.create("cab-9", 2.0, position=[9.0, 3.0], velocity=[-1.0, 0.0])
        answer = evaluate_knn(db, [0.0, 0.0], Interval(2.0, 20.0), k=1)
        assert answer.objects  # someone is always nearest
        naive = naive_knn_answer(
            db, SquaredEuclideanDistance([0.0, 0.0]), Interval(2.0, 20.0), 1
        )
        assert answer.approx_equals(naive, atol=1e-6)

    def test_trajectory_query(self):
        db = random_linear_mod(6, seed=1)
        q = from_waypoints([(0, [0.0, 0.0]), (10, [10.0, 0.0])])
        answer = evaluate_knn(db, q, Interval(0.0, 10.0), k=2)
        naive = naive_knn_answer(
            db, SquaredEuclideanDistance(q), Interval(0.0, 10.0), 2
        )
        assert answer.approx_equals(naive, atol=1e-6)

    def test_custom_gdistance_ranking(self):
        """Ranking by altitude: k-NN over CoordinateValue(2)."""
        db = MovingObjectDatabase()
        db.install("low", stationary([0.0, 0.0, 100.0]))
        db.install("high", stationary([0.0, 0.0, 10000.0]))
        answer = evaluate_knn(db, CoordinateValue(2), Interval(0.0, 10.0), k=1)
        assert answer.objects == {"low"}


class TestEvaluateWithin:
    def test_distance_squared_internally(self):
        db = MovingObjectDatabase()
        db.install("at_4", stationary([4.0, 0.0]))
        db.install("at_6", stationary([6.0, 0.0]))
        answer = evaluate_within(db, [0.0, 0.0], Interval(0.0, 10.0), 5.0)
        assert answer.objects == {"at_4"}

    def test_matches_naive(self):
        db = random_linear_mod(8, seed=3, extent=40.0, speed=6.0)
        answer = evaluate_within(db, [0.0, 0.0], Interval(0.0, 15.0), 25.0)
        naive = naive_within_answer(
            db,
            SquaredEuclideanDistance([0.0, 0.0]),
            Interval(0.0, 15.0),
            625.0,
        )
        assert answer.approx_equals(naive, atol=1e-6)

    def test_gdistance_threshold_taken_verbatim(self):
        db = MovingObjectDatabase()
        db.install("low", stationary([0.0, 0.0, 100.0]))
        db.install("high", stationary([0.0, 0.0, 10000.0]))
        answer = evaluate_within(
            db, CoordinateValue(2), Interval(0.0, 10.0), 500.0
        )
        assert answer.objects == {"low"}


class TestEvaluateQuery:
    def test_knn_query_roundtrip(self):
        db = random_linear_mod(6, seed=5, extent=25.0, speed=5.0)
        q = knn_query(Interval(0.0, 12.0), 1)
        gd = SquaredEuclideanDistance([0.0, 0.0])
        answer = evaluate_query(db, gd, q)
        expected = evaluate_knn(db, [0.0, 0.0], Interval(0.0, 12.0), 1)
        assert answer.approx_equals(expected, atol=1e-6)


class TestContinuousSession:
    def test_knn_session_follows_updates(self):
        db = MovingObjectDatabase()
        db.create("a", 1.0, position=[5.0, 0.0], velocity=[0.0, 0.0])
        db.create("b", 2.0, position=[50.0, 0.0], velocity=[0.0, 0.0])
        session = ContinuousQuerySession.knn(db, [0.0, 0.0], k=1)
        assert session.members == {"a"}
        # b dives toward the origin, is nearest while passing through
        # (t in (7.5, 8.5)), then flies out the far side.
        db.change_direction("b", 3.0, [-10.0, 0.0])
        session.advance_to(8.0)
        assert session.members == {"b"}
        session.advance_to(10.0)
        assert session.members == {"a"}

    def test_session_close_returns_history(self):
        db = MovingObjectDatabase()
        db.create("a", 1.0, position=[5.0, 0.0], velocity=[0.0, 0.0])
        session = ContinuousQuerySession.knn(db, [0.0, 0.0], k=1)
        db.create("c", 2.0, position=[1.0, 0.0], velocity=[0.0, 0.0])
        answer = session.close(at=5.0)
        assert answer.holds_at("a", 1.5)
        assert answer.holds_at("c", 3.0)
        assert not answer.holds_at("a", 3.0)

    def test_close_twice_rejected(self):
        db = MovingObjectDatabase()
        db.create("a", 1.0, position=[5.0, 0.0], velocity=[0.0, 0.0])
        session = ContinuousQuerySession.knn(db, [0.0, 0.0], k=1)
        session.close(at=2.0)
        with pytest.raises(RuntimeError):
            session.close()

    def test_closed_session_ignores_updates(self):
        db = MovingObjectDatabase()
        db.create("a", 1.0, position=[5.0, 0.0], velocity=[0.0, 0.0])
        session = ContinuousQuerySession.knn(db, [0.0, 0.0], k=1)
        session.close(at=2.0)
        # After close the engine is detached: this update must not reach it.
        db.create("late", 3.0, position=[0.1, 0.0], velocity=[0.0, 0.0])
        assert session.engine.stats.updates_applied == 0

    def test_within_session(self):
        db = MovingObjectDatabase()
        db.create("near", 1.0, position=[3.0, 0.0], velocity=[0.0, 0.0])
        db.create("far", 2.0, position=[30.0, 0.0], velocity=[0.0, 0.0])
        session = ContinuousQuerySession.within(db, [0.0, 0.0], distance=5.0)
        assert session.members == {"near"}
        # far dives through range (inside for t in [8, 10]) and leaves.
        db.change_direction("far", 3.0, [-5.0, 0.0])
        session.advance_to(9.0)
        assert session.members == {"near", "far"}
        session.advance_to(20.0)
        assert session.members == {"near"}

    def test_random_stream_consistency(self):
        db = random_linear_mod(8, seed=7, extent=40.0, speed=5.0)
        session = ContinuousQuerySession.knn(db, [0.0, 0.0], k=2, until=100.0)
        UpdateStream(db, seed=8, mean_gap=3.0, extent=40.0, speed=5.0).run(20)
        answer = session.close(at=min(db.last_update_time + 5.0, 100.0))
        naive = naive_knn_answer(
            db,
            SquaredEuclideanDistance([0.0, 0.0]),
            Interval(0.0, session.engine.current_time),
            2,
        )
        assert answer.approx_equals(naive, atol=1e-6)


class TestSessionTeardownRobustness:
    def test_close_unsubscribes_even_if_finalize_raises(self):
        db = MovingObjectDatabase()
        db.create("a", 1.0, position=[5.0, 0.0], velocity=[0.0, 0.0])
        session = ContinuousQuerySession.knn(db, [0.0, 0.0], k=1)

        def explode():
            raise RuntimeError("finalize failed")

        session._engine.finalize = explode
        with pytest.raises(RuntimeError):
            session.close(at=2.0)
        # The engine must be detached regardless: later updates cannot
        # reach it (and in particular cannot raise out of db.apply).
        db.create("late", 3.0, position=[0.1, 0.0], velocity=[0.0, 0.0])
        assert session.engine.stats.updates_applied == 0

    def test_close_after_failed_close_still_rejected(self):
        db = MovingObjectDatabase()
        db.create("a", 1.0, position=[5.0, 0.0], velocity=[0.0, 0.0])
        session = ContinuousQuerySession.knn(db, [0.0, 0.0], k=1)
        session._engine.finalize = lambda: (_ for _ in ()).throw(RuntimeError())
        with pytest.raises(RuntimeError):
            session.close(at=2.0)
        with pytest.raises(RuntimeError):
            session.close()
