"""Tests for the Song-Roussopoulos-style periodic re-search baseline,
including the Figure 2 staleness the paper criticizes."""

import pytest

from repro.baselines.periodic_knn import (
    PeriodicKNNBaseline,
    UniformGridIndex,
    staleness,
)
from repro.core.api import evaluate_knn
from repro.geometry.intervals import Interval
from repro.geometry.vectors import Vector
from repro.gdist.euclidean import SquaredEuclideanDistance
from repro.mod.database import MovingObjectDatabase
from repro.trajectory.builder import stationary
from repro.workloads.generator import random_linear_mod
from repro.workloads.paperfigures import figure2_scenario


class TestUniformGridIndex:
    def test_knn_basic(self):
        points = {
            "a": Vector.of(1.0, 0.0),
            "b": Vector.of(5.0, 0.0),
            "c": Vector.of(30.0, 0.0),
        }
        index = UniformGridIndex(points, cell_size=4.0)
        assert index.knn(Vector.of(0.0, 0.0), 2) == ["a", "b"]
        assert len(index) == 3

    def test_knn_more_than_population(self):
        index = UniformGridIndex({"a": Vector.of(0.0, 0.0)}, cell_size=4.0)
        assert index.knn(Vector.of(10.0, 10.0), 5) == ["a"]

    def test_knn_empty(self):
        index = UniformGridIndex({}, cell_size=4.0)
        assert index.knn(Vector.of(0.0, 0.0), 1) == []

    def test_invalid_cell_size(self):
        with pytest.raises(ValueError):
            UniformGridIndex({}, cell_size=0.0)

    def test_matches_brute_force(self):
        import random

        rng = random.Random(3)
        points = {
            f"p{i}": Vector.of(rng.uniform(-50, 50), rng.uniform(-50, 50))
            for i in range(40)
        }
        index = UniformGridIndex(points, cell_size=7.0)
        for _ in range(20):
            center = Vector.of(rng.uniform(-50, 50), rng.uniform(-50, 50))
            expected = sorted(
                points, key=lambda o: (points[o].distance_to(center), o)
            )[:5]
            assert index.knn(center, 5) == expected


class TestPeriodicBaseline:
    def test_invalid_period(self):
        db = MovingObjectDatabase()
        with pytest.raises(ValueError):
            PeriodicKNNBaseline(db, stationary([0.0, 0.0]), 1, period=0.0)

    def test_correct_at_refresh_instants(self):
        db = random_linear_mod(8, seed=2, extent=30.0, speed=5.0)
        query = stationary([0.0, 0.0])
        baseline = PeriodicKNNBaseline(db, query, k=1, period=2.0)
        interval = Interval(0.0, 20.0)
        answer = baseline.snapshot_answer(interval)
        exact = evaluate_knn(db, query, interval, 1)
        for t in baseline.refresh_times(interval):
            if t >= interval.hi:
                continue
            # Just after a refresh the held answer is the exact answer
            # computed *at* the refresh instant.
            probe = t + 1e-6
            assert answer.at(probe) <= exact.at(t) | exact.at(probe)

    def test_figure2_staleness(self):
        """The baseline holds o2 as nearest past the true exchange at
        C = 8.4 — the exact failure mode Figure 2 illustrates."""
        sc = figure2_scenario()
        sc.db.apply(sc.update_a)
        sc.db.apply(sc.update_b)
        query = sc.query
        exact = evaluate_knn(sc.db, query, sc.interval, 1)
        # Refresh only at updates plus a coarse period: the swap at 8.4
        # happens strictly between refreshes.
        baseline = PeriodicKNNBaseline(sc.db, query, k=1, period=100.0)
        stale = baseline.snapshot_answer(
            sc.interval, update_times=[sc.update_a.time, sc.update_b.time]
        )
        # Just after C the baseline still reports o2; the truth is o1.
        assert exact.at(9.0) == {"o1"}
        assert stale.at(9.0) == {"o2"}
        assert staleness(stale, exact, sc.interval) > 0.3

    def test_staleness_decreases_with_refresh_rate(self):
        db = random_linear_mod(10, seed=4, extent=30.0, speed=8.0)
        query = stationary([0.0, 0.0])
        interval = Interval(0.0, 20.0)
        exact = evaluate_knn(db, query, interval, 1)
        rates = []
        for period in (10.0, 2.0, 0.25):
            baseline = PeriodicKNNBaseline(db, query, k=1, period=period)
            rates.append(
                staleness(baseline.snapshot_answer(interval), exact, interval)
            )
        assert rates[0] >= rates[1] >= rates[2]
        assert rates[2] < 0.05
