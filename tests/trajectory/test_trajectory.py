"""Tests for trajectories, including the paper's Examples 1 and 2."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.intervals import Interval
from repro.geometry.vectors import Vector
from repro.trajectory.builder import from_waypoints, linear_from, stationary
from repro.trajectory.linearpiece import LinearPiece
from repro.trajectory.trajectory import Trajectory


def example1_airplane() -> Trajectory:
    """The 3-piece airplane trajectory of Example 1.

    x = (2,-1,0) t + (-40,23,30)   for 0  <= t <= 21
    x = (0,-1,-5) t + (2,23,135)   for 21 <= t <= 22
    x = (0.5,0,-1) t + (-9,1,47)   for 22 <= t
    """
    return Trajectory(
        [
            LinearPiece(Vector.of(2, -1, 0), Vector.of(-40, 23, 30), Interval(0, 21)),
            LinearPiece(Vector.of(0, -1, -5), Vector.of(2, 23, 135), Interval(21, 22)),
            LinearPiece(Vector.of(0.5, 0, -1), Vector.of(-9, 1, 47), Interval.at_least(22)),
        ]
    )


class TestExample1:
    def test_pieces_are_continuous(self):
        traj = example1_airplane()
        assert traj.pieces  # construction itself validates continuity

    def test_turn_positions_match_paper(self):
        traj = example1_airplane()
        # "turned at time 21 (and at position (2, 2, 30))"
        assert traj.position(21.0).approx_equals(Vector.of(2, 2, 30))
        # "made another turn at time 22 (and at position (2, 1, 25))"
        assert traj.position(22.0).approx_equals(Vector.of(2, 1, 25))

    def test_turns(self):
        assert example1_airplane().turns == [21.0, 22.0]

    def test_descending_after_first_turn(self):
        traj = example1_airplane()
        assert traj.velocity(21.5)[2] == -5.0

    def test_domain(self):
        traj = example1_airplane()
        assert traj.domain.lo == 0.0
        assert math.isinf(traj.domain.hi)


class TestExample2:
    def test_chdir_at_47_lands_airplane(self):
        """Example 2: chdir(o, 47, (0,0,0)) lands the plane at
        (14.5, 1, 0) and it stays there."""
        traj = example1_airplane()
        updated = traj.with_direction_change(47.0, Vector.zero(3))
        # Landing position from the paper.
        assert updated.position(47.0).approx_equals(Vector.of(14.5, 1, 0))
        assert updated.position(100.0).approx_equals(Vector.of(14.5, 1, 0))
        # Past is unchanged.
        assert updated.position(10.0).approx_equals(traj.position(10.0))
        assert updated.turns == [21.0, 22.0, 47.0]


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Trajectory([])

    def test_discontinuous_rejected(self):
        with pytest.raises(ValueError):
            Trajectory(
                [
                    LinearPiece(Vector.of(0), Vector.of(0), Interval(0, 1)),
                    LinearPiece(Vector.of(0), Vector.of(5), Interval(1, 2)),
                ]
            )

    def test_gap_rejected(self):
        with pytest.raises(ValueError):
            Trajectory(
                [
                    LinearPiece(Vector.of(0), Vector.of(0), Interval(0, 1)),
                    LinearPiece(Vector.of(0), Vector.of(0), Interval(2, 3)),
                ]
            )

    def test_mixed_dimensions_rejected(self):
        with pytest.raises(ValueError):
            Trajectory(
                [
                    LinearPiece(Vector.of(0), Vector.of(0), Interval(0, 1)),
                    LinearPiece(Vector.of(0, 0), Vector.of(0, 0), Interval(1, 2)),
                ]
            )


class TestBuilders:
    def test_stationary(self):
        traj = stationary([3, 4])
        assert traj.is_stationary
        assert traj.position(-100.0) == Vector.of(3, 4)
        assert traj.position(100.0) == Vector.of(3, 4)

    def test_linear_from(self):
        traj = linear_from(5.0, [0, 0], [1, 2])
        assert traj.position(5.0) == Vector.of(0, 0)
        assert traj.position(7.0) == Vector.of(2, 4)
        assert not traj.defined_at(4.0)

    def test_from_waypoints(self):
        traj = from_waypoints([(0, [0, 0]), (10, [10, 0]), (20, [10, 10])])
        assert traj.position(5.0).approx_equals(Vector.of(5, 0))
        assert traj.position(15.0).approx_equals(Vector.of(10, 5))
        # extend=True continues the last leg.
        assert traj.position(30.0).approx_equals(Vector.of(10, 20))

    def test_from_waypoints_no_extend(self):
        traj = from_waypoints([(0, [0]), (10, [10])], extend=False)
        assert not traj.defined_at(11.0)
        assert traj.position(10.0) == Vector.of(10)

    def test_from_waypoints_needs_two(self):
        with pytest.raises(ValueError):
            from_waypoints([(0, [0])])

    def test_from_waypoints_strictly_increasing_times(self):
        with pytest.raises(ValueError):
            from_waypoints([(0, [0]), (0, [1])])


class TestKinematics:
    def test_velocity_at_turn_uses_left_piece(self):
        traj = example1_airplane()
        assert traj.velocity(21.0) == Vector.of(2, -1, 0)

    def test_speed(self):
        traj = linear_from(0.0, [0, 0], [3, 4])
        assert traj.speed(1.0) == 5.0

    def test_position_outside_domain_rejected(self):
        traj = linear_from(5.0, [0], [1])
        with pytest.raises(ValueError):
            traj.position(0.0)

    def test_coordinate_function(self):
        traj = example1_airplane()
        z = traj.coordinate_function(2)
        assert z(0.0) == pytest.approx(30.0)
        assert z(21.5) == pytest.approx(135 - 5 * 21.5)
        assert z(25.0) == pytest.approx(47 - 25.0)


class TestSquaredDistance:
    def test_between_parallel_lines(self):
        a = linear_from(0.0, [0, 0], [1, 0])
        b = linear_from(0.0, [0, 3], [1, 0])
        d = a.squared_distance_to(b)
        for t in (0.0, 5.0, 50.0):
            assert d(t) == pytest.approx(9.0)

    def test_crossing_objects(self):
        a = linear_from(0.0, [0, 0], [1, 0])
        b = linear_from(0.0, [10, 0], [-1, 0])
        d = a.squared_distance_to(b)
        assert d(5.0) == pytest.approx(0.0)
        assert d(0.0) == pytest.approx(100.0)

    def test_is_quadratic(self):
        a = linear_from(0.0, [0, 0], [1, 1])
        b = linear_from(0.0, [5, 0], [0, 1])
        d = a.squared_distance_to(b)
        assert d.max_degree == 2

    def test_refines_piece_boundaries(self):
        a = from_waypoints([(0, [0, 0]), (10, [10, 0])])
        b = from_waypoints([(0, [0, 5]), (5, [5, 5]), (10, [5, 10])])
        d = a.squared_distance_to(b)
        assert 5.0 in d.breakpoints
        for t in (2.0, 7.0):
            expected = (a.position(t) - b.position(t)).norm_squared()
            assert d(t) == pytest.approx(expected)

    def test_domain_is_intersection(self):
        a = linear_from(0.0, [0], [1])
        b = linear_from(5.0, [0], [1])
        d = a.squared_distance_to(b)
        assert d.domain.lo == 5.0

    def test_disjoint_domains_rejected(self):
        a = from_waypoints([(0, [0]), (1, [1])], extend=False)
        b = linear_from(10.0, [0], [1])
        with pytest.raises(ValueError):
            a.squared_distance_to(b)

    def test_dimension_mismatch_rejected(self):
        a = linear_from(0.0, [0], [1])
        b = linear_from(0.0, [0, 0], [1, 1])
        with pytest.raises(ValueError):
            a.squared_distance_to(b)

    def test_distance_at(self):
        a = linear_from(0.0, [0, 0], [0, 0])
        b = linear_from(0.0, [3, 4], [0, 0])
        assert a.distance_at(b, 1.0) == pytest.approx(5.0)

    @given(
        st.floats(min_value=-5, max_value=5, allow_nan=False),
        st.floats(min_value=-5, max_value=5, allow_nan=False),
        st.floats(min_value=-5, max_value=5, allow_nan=False),
        st.floats(min_value=-5, max_value=5, allow_nan=False),
        st.floats(min_value=0.0, max_value=20.0, allow_nan=False),
    )
    @settings(max_examples=50)
    def test_matches_pointwise(self, vx, vy, px, py, t):
        a = linear_from(0.0, [px, py], [vx, vy])
        b = linear_from(0.0, [0, 0], [1, -1])
        d = a.squared_distance_to(b)
        expected = (a.position(t) - b.position(t)).norm_squared()
        assert d(t) == pytest.approx(expected, abs=1e-6)


class TestUpdatesOnTrajectories:
    def test_truncated_at(self):
        traj = example1_airplane()
        cut = traj.truncated_at(10.0)
        assert cut.domain == Interval(0.0, 10.0)
        assert cut.position(10.0).approx_equals(traj.position(10.0))

    def test_truncated_at_turn_boundary(self):
        traj = example1_airplane()
        cut = traj.truncated_at(21.0)
        assert cut.domain.hi == 21.0

    def test_truncate_outside_domain_rejected(self):
        with pytest.raises(ValueError):
            linear_from(5.0, [0], [1]).truncated_at(0.0)

    def test_chdir_preserves_past(self):
        traj = linear_from(0.0, [0, 0], [1, 0])
        new = traj.with_direction_change(10.0, Vector.of(0, 1))
        assert new.position(5.0).approx_equals(traj.position(5.0))
        assert new.position(12.0).approx_equals(Vector.of(10, 2))

    def test_chdir_velocity_dim_mismatch_rejected(self):
        traj = linear_from(0.0, [0, 0], [1, 0])
        with pytest.raises(ValueError):
            traj.with_direction_change(1.0, Vector.of(1))

    def test_chdir_undefined_time_rejected(self):
        traj = linear_from(5.0, [0], [1])
        with pytest.raises(ValueError):
            traj.with_direction_change(1.0, Vector.of(0))

    def test_restricted(self):
        traj = example1_airplane()
        sub = traj.restricted(Interval(10.0, 30.0))
        assert sub.domain == Interval(10.0, 30.0)
        assert sub.position(21.5).approx_equals(traj.position(21.5))
