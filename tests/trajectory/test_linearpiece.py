"""Tests for single linear trajectory pieces."""

import pytest

from repro.geometry.intervals import Interval
from repro.geometry.vectors import Vector
from repro.trajectory.linearpiece import LinearPiece


class TestConstruction:
    def test_basic(self):
        p = LinearPiece(Vector.of(1, 0), Vector.of(0, 5), Interval(0, 10))
        assert p.dimension == 2

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            LinearPiece(Vector.of(1), Vector.of(0, 5), Interval(0, 10))

    def test_anchored(self):
        # At t=2 the object is at (10, 10), moving with (1, 0).
        p = LinearPiece.anchored(
            Vector.of(1, 0), Vector.of(10, 10), 2.0, Interval(2, 10)
        )
        assert p.position(2.0) == Vector.of(10, 10)
        assert p.position(5.0) == Vector.of(13, 10)


class TestKinematics:
    def test_position(self):
        p = LinearPiece(Vector.of(2, -1), Vector.of(0, 3), Interval(0, 10))
        assert p.position(4.0) == Vector.of(8, -1)

    def test_position_outside_interval_rejected(self):
        p = LinearPiece(Vector.of(1), Vector.of(0), Interval(0, 1))
        with pytest.raises(ValueError):
            p.position(5.0)

    def test_position_unchecked(self):
        p = LinearPiece(Vector.of(1), Vector.of(0), Interval(0, 1))
        assert p.position_unchecked(5.0) == Vector.of(5)

    def test_speed(self):
        p = LinearPiece(Vector.of(3, 4), Vector.of(0, 0), Interval(0, 1))
        assert p.speed == 5.0

    def test_is_stationary(self):
        assert LinearPiece(Vector.zero(2), Vector.of(1, 1), Interval(0, 1)).is_stationary
        assert not LinearPiece(Vector.of(1, 0), Vector.of(1, 1), Interval(0, 1)).is_stationary


class TestDerived:
    def test_coordinate_polynomial(self):
        p = LinearPiece(Vector.of(2, -1), Vector.of(5, 3), Interval(0, 10))
        assert p.coordinate_polynomial(0)(2.0) == 9.0
        assert p.coordinate_polynomial(1)(2.0) == 1.0

    def test_restricted(self):
        p = LinearPiece(Vector.of(1), Vector.of(0), Interval(0, 10))
        q = p.restricted(Interval(2, 4))
        assert q.interval == Interval(2, 4)
        assert q.velocity == p.velocity

    def test_restricted_disjoint_rejected(self):
        p = LinearPiece(Vector.of(1), Vector.of(0), Interval(0, 1))
        with pytest.raises(ValueError):
            p.restricted(Interval(5, 6))
