"""Tests for time-parametrized trajectory simplification/resampling."""

import math
import random

import pytest

from repro.baselines.naive import naive_knn_answer
from repro.geometry.intervals import Interval
from repro.geometry.vectors import Vector
from repro.gdist.euclidean import SquaredEuclideanDistance
from repro.mod.database import MovingObjectDatabase
from repro.trajectory.builder import from_waypoints, linear_from
from repro.trajectory.simplify import max_deviation, resample, simplify


def zigzag(n=20, amplitude=0.05):
    """A mostly-straight path with tiny lateral jitter."""
    rng = random.Random(7)
    waypoints = []
    for i in range(n + 1):
        waypoints.append(
            (float(i), [float(i), amplitude * rng.uniform(-1, 1)])
        )
    return from_waypoints(waypoints, extend=False)


class TestSimplify:
    def test_collinear_collapses_to_one_piece(self):
        traj = from_waypoints(
            [(0, [0.0, 0.0]), (5, [5.0, 0.0]), (10, [10.0, 0.0])],
            extend=False,
        )
        simplified = simplify(traj, tolerance=1e-9)
        assert len(simplified.pieces) == 1

    def test_same_path_different_speed_not_collapsed(self):
        """Time-aware criterion: a straight path with a speed change is
        NOT simplifiable (the interpolated position diverges)."""
        traj = from_waypoints(
            [(0, [0.0, 0.0]), (1, [1.0, 0.0]), (10, [10.0, 0.0])],
            extend=False,
        )
        # Chord velocity 1.0; at t=1 the object is at x=1, chord at x=1:
        # wait - uniform chord: (10-0)/10 = 1/unit, at t=1 chord x=1.0,
        # actual x=1.0: this one IS consistent.  Make speeds differ:
        traj = from_waypoints(
            [(0, [0.0, 0.0]), (1, [5.0, 0.0]), (10, [10.0, 0.0])],
            extend=False,
        )
        simplified = simplify(traj, tolerance=0.5)
        assert len(simplified.pieces) == 2

    def test_jitter_removed(self):
        traj = zigzag(n=20, amplitude=0.05)
        simplified = simplify(traj, tolerance=0.2)
        assert len(simplified.pieces) < len(traj.pieces)
        assert max_deviation(traj, simplified) <= 0.2 + 1e-9

    def test_tolerance_zero_keeps_genuine_turns(self):
        traj = from_waypoints(
            [(0, [0.0, 0.0]), (5, [5.0, 0.0]), (10, [5.0, 5.0])],
            extend=False,
        )
        simplified = simplify(traj, tolerance=0.0)
        assert len(simplified.pieces) == 2

    def test_error_bound_property(self):
        rng = random.Random(11)
        for trial in range(10):
            waypoints = [(0.0, [0.0, 0.0])]
            position = Vector.of(0.0, 0.0)
            for i in range(1, 15):
                position = position + Vector.of(rng.uniform(0, 2), rng.uniform(-1, 1))
                waypoints.append((float(i), list(position)))
            traj = from_waypoints(waypoints, extend=False)
            tolerance = rng.uniform(0.1, 2.0)
            simplified = simplify(traj, tolerance)
            assert max_deviation(traj, simplified) <= tolerance + 1e-6

    def test_endpoints_preserved(self):
        traj = zigzag()
        simplified = simplify(traj, tolerance=1.0)
        assert simplified.domain == traj.domain
        assert simplified.position(traj.domain.lo).approx_equals(
            traj.position(traj.domain.lo)
        )
        assert simplified.position(traj.domain.hi).approx_equals(
            traj.position(traj.domain.hi)
        )

    def test_unbounded_rejected(self):
        with pytest.raises(ValueError):
            simplify(linear_from(0.0, [0, 0], [1, 0]), 0.1)

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            simplify(zigzag(), -1.0)

    def test_two_point_trajectory_unchanged(self):
        traj = from_waypoints([(0, [0.0, 0.0]), (5, [1.0, 1.0])], extend=False)
        assert simplify(traj, 10.0) is traj


class TestResample:
    def test_straight_line_exact(self):
        traj = from_waypoints([(0, [0.0, 0.0]), (10, [10.0, 0.0])], extend=False)
        fixes = resample(traj, period=1.0)
        for t in (0.0, 3.5, 7.0, 10.0):
            assert fixes.position(t).approx_equals(traj.position(t), atol=1e-9)

    def test_cadence_controls_piece_count(self):
        traj = from_waypoints([(0, [0.0, 0.0]), (10, [10.0, 0.0])], extend=False)
        coarse = resample(traj, period=5.0)
        fine = resample(traj, period=0.5)
        assert len(fine.pieces) > len(coarse.pieces)

    def test_roundtrip_with_simplify(self):
        """Feed simulation: resample finely, simplify back."""
        traj = from_waypoints(
            [(0, [0.0, 0.0]), (5, [5.0, 0.0]), (10, [5.0, 5.0])],
            extend=False,
        )
        feed = resample(traj, period=0.25)
        assert len(feed.pieces) == 40
        recovered = simplify(feed, tolerance=1e-6)
        assert len(recovered.pieces) == 2
        assert max_deviation(traj, recovered) < 1e-6

    def test_bad_period_rejected(self):
        traj = from_waypoints([(0, [0.0]), (1, [1.0])], extend=False)
        with pytest.raises(ValueError):
            resample(traj, period=0.0)

    def test_unbounded_rejected(self):
        with pytest.raises(ValueError):
            resample(linear_from(0.0, [0, 0], [1, 0]), 1.0)


class TestQueryStability:
    def test_simplified_database_answers_close(self):
        """Simplification within a small tolerance leaves k-NN answers
        intact away from decision boundaries."""
        rng = random.Random(21)
        db = MovingObjectDatabase(initial_time=11.0)
        simplified_db = MovingObjectDatabase(initial_time=11.0)
        for i in range(5):
            waypoints = [(0.0, [rng.uniform(-20, 20), rng.uniform(-20, 20)])]
            position = Vector(waypoints[0][1])
            for j in range(1, 12):
                position = position + Vector.of(
                    rng.uniform(-3, 3), rng.uniform(-3, 3)
                )
                waypoints.append((float(j), list(position)))
            traj = from_waypoints(waypoints, extend=False)
            db.install(f"o{i}", traj)
            simplified_db.install(f"o{i}", simplify(traj, tolerance=1e-9))
        gd = SquaredEuclideanDistance([0.0, 0.0])
        interval = Interval(0.0, 11.0)
        original = naive_knn_answer(db, gd, interval, 2)
        reduced = naive_knn_answer(simplified_db, gd, interval, 2)
        assert original.approx_equals(reduced, atol=1e-4)
