"""Eager vs lazy equivalence — the system's central semantic property.

Section 3 poses the alternative for future queries: *lazy* evaluation
waits until all updates are in and evaluates the (now past) query;
*eager* evaluation (Section 5's sweep) maintains the answer as updates
arrive.  Both must produce identical answers over any update sequence —
these integration tests drive both paths over recorded random update
streams and compare.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.api import ContinuousQuerySession, evaluate_knn, evaluate_within
from repro.geometry.intervals import Interval
from repro.gdist.euclidean import SquaredEuclideanDistance
from repro.mod.log import RecordingDatabase
from repro.sweep.engine import SweepEngine
from repro.sweep.knn import ContinuousKNN
from repro.sweep.within import ContinuousWithin
from repro.workloads.generator import UpdateStream


def build_workload(seed, objects=8, updates=20, mean_gap=2.0):
    """A recording database with initial objects plus an update stream."""
    db = RecordingDatabase()
    import random

    rng = random.Random(seed)
    for i in range(objects):
        db.create(
            f"o{i}",
            0.01 * (i + 1),
            position=[rng.uniform(-40, 40), rng.uniform(-40, 40)],
            velocity=[rng.uniform(-5, 5), rng.uniform(-5, 5)],
        )
    return db, UpdateStream(db, seed=seed + 1, mean_gap=mean_gap, extent=40.0, speed=5.0, weights=(0.25, 0.15, 0.6)), updates


def eager_knn(db, stream, updates, k, horizon):
    engine = SweepEngine(
        db, SquaredEuclideanDistance([0.0, 0.0]), Interval(0.0, horizon)
    )
    view = ContinuousKNN(engine, k)
    db.subscribe(engine.on_update)
    stream.run(updates)
    engine.advance_to(horizon)
    engine.finalize()
    return view.answer()


def lazy_knn(db, k, horizon):
    """Replay the recorded history and evaluate as a past query."""
    replayed = db.log.replay()
    return evaluate_knn(
        replayed, [0.0, 0.0], Interval(0.0, horizon), k
    )


class TestEagerEqualsLazy:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5])
    def test_knn(self, seed):
        db, stream, updates = build_workload(seed)
        horizon = 60.0
        eager = eager_knn(db, stream, updates, k=2, horizon=horizon)
        lazy = lazy_knn(db, k=2, horizon=horizon)
        assert eager.approx_equals(lazy, atol=1e-6)

    @pytest.mark.parametrize("seed", [10, 11, 12])
    def test_within(self, seed):
        db, stream, updates = build_workload(seed)
        horizon = 60.0
        threshold = 400.0
        engine = SweepEngine(
            db,
            SquaredEuclideanDistance([0.0, 0.0]),
            Interval(0.0, horizon),
            constants=[threshold],
        )
        view = ContinuousWithin(engine, threshold)
        db.subscribe(engine.on_update)
        stream.run(updates)
        engine.advance_to(horizon)
        engine.finalize()
        replayed = db.log.replay()
        lazy = evaluate_within(
            replayed, [0.0, 0.0], Interval(0.0, horizon), 20.0
        )
        assert view.answer().approx_equals(lazy, atol=1e-6)

    @pytest.mark.parametrize("mean_gap", [0.2, 1.0, 5.0])
    def test_update_cadence_irrelevant_to_answers(self, mean_gap):
        """Frequent vs sparse updates change costs (Corollary 6), never
        answers."""
        db, stream, updates = build_workload(77, mean_gap=mean_gap)
        horizon = 40.0
        eager = eager_knn(db, stream, updates, k=1, horizon=horizon)
        lazy = lazy_knn(db, k=1, horizon=horizon)
        assert eager.approx_equals(lazy, atol=1e-6)

    @given(st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=10, deadline=None)
    def test_property_over_random_streams(self, seed):
        db, stream, updates = build_workload(seed, objects=5, updates=12)
        horizon = 30.0
        eager = eager_knn(db, stream, updates, k=2, horizon=horizon)
        lazy = lazy_knn(db, k=2, horizon=horizon)
        assert eager.approx_equals(lazy, atol=1e-6)

    def test_session_interface_equivalence(self):
        db, stream, updates = build_workload(99)
        session = ContinuousQuerySession.knn(db, [0.0, 0.0], k=2, until=60.0)
        stream.run(updates)
        eager = session.close(at=60.0)
        lazy = lazy_knn(db, k=2, horizon=60.0)
        # The session starts at the last initial-creation time, not 0;
        # compare on the overlap.
        start = eager.interval.lo
        for t in [start + 0.5, 10.0, 25.0, 45.0, 59.0]:
            if t >= start:
                assert eager.at(t) == lazy.at(t)
