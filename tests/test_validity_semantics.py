"""Property tests of Definition 4's validity semantics.

An answer object is *valid* iff it stays in the answer under **every**
finite update sequence.  The classifier under-approximates validity by
the committed part of the interval; these properties check the defining
clause directly: for random queries and random adversarial update
sequences, classified-valid objects never leave the accumulative
answer, while predicted-only objects can be made to leave.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.naive import naive_query_answer
from repro.constraints.classify import classify_interval_query
from repro.geometry.intervals import Interval
from repro.gdist.euclidean import SquaredEuclideanDistance
from repro.mod.database import MovingObjectDatabase
from repro.query.query import knn_query, within_query


def random_db(seed, objects=5, tau=10.0):
    rng = random.Random(seed)
    db = MovingObjectDatabase()
    for i in range(objects):
        db.create(
            f"o{i}",
            0.01 * (i + 1),
            position=[rng.uniform(-30, 30), rng.uniform(-30, 30)],
            velocity=[rng.uniform(-3, 3), rng.uniform(-3, 3)],
        )
    db.advance_clock(tau)
    return db, rng


def adversarial_updates(db, rng, count=6):
    """A random chronological update sequence after tau."""
    for _ in range(count):
        time = db.last_update_time + rng.uniform(0.1, 3.0)
        live = db.object_ids
        roll = rng.random()
        if roll < 0.3 or not live:
            db.create(
                f"adv{time:.4f}",
                time,
                position=[rng.uniform(-5, 5), rng.uniform(-5, 5)],
                velocity=[rng.uniform(-3, 3), rng.uniform(-3, 3)],
            )
        elif roll < 0.5 and len(live) > 1:
            db.terminate(rng.choice(live), time)
        else:
            db.change_direction(
                rng.choice(live),
                time,
                [rng.uniform(-3, 3), rng.uniform(-3, 3)],
            )


def gd():
    return SquaredEuclideanDistance([0.0, 0.0])


class TestValidAnswersAreImmutable:
    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=20, deadline=None)
    def test_knn_valid_survives_any_updates(self, seed):
        db, rng = random_db(seed)
        query = knn_query(Interval(1.0, 30.0), 1)
        before = classify_interval_query(db, gd(), query)
        adversarial_updates(db, rng)
        after_answer = naive_query_answer(db, gd(), query).accumulative()
        assert before.valid <= after_answer, (
            f"valid answers {set(before.valid)} lost members after "
            f"updates: {after_answer}"
        )

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=15, deadline=None)
    def test_within_valid_survives_any_updates(self, seed):
        db, rng = random_db(seed)
        query = within_query(Interval(1.0, 30.0), 400.0)
        before = classify_interval_query(db, gd(), query)
        adversarial_updates(db, rng)
        after_answer = naive_query_answer(db, gd(), query).accumulative()
        assert before.valid <= after_answer


class TestPredictionsAreRevocable:
    def test_predicted_only_1nn_can_be_dethroned(self):
        """A concrete witness of Definition 4's other direction: a
        predicted-only 1-NN member is removed by a suitable update."""
        db = MovingObjectDatabase()
        db.create("incumbent", 0.5, position=[5.0, 0.0], velocity=[0.0, 0.0])
        db.create("challenger", 1.0, position=[40.0, 0.0], velocity=[-2.0, 0.0])
        db.advance_clock(10.0)
        # Challenger predicted to become nearest around t=18.6.
        query = knn_query(Interval(12.0, 40.0), 1)
        before = classify_interval_query(db, gd(), query)
        assert "challenger" in before.predicted_only
        # Adversary: the challenger turns around before overtaking.
        db.change_direction("challenger", 11.0, [2.0, 0.0])
        after = naive_query_answer(db, gd(), query).accumulative()
        assert "challenger" not in after

    def test_new_object_can_dethrone_any_future_prediction(self):
        """For 1-NN, any purely-future membership is revocable: create a
        closer object."""
        db = MovingObjectDatabase()
        db.create("alone", 0.5, position=[5.0, 0.0], velocity=[0.0, 0.0])
        db.advance_clock(10.0)
        query = knn_query(Interval(20.0, 30.0), 1)
        before = classify_interval_query(db, gd(), query)
        assert before.predicted == frozenset({"alone"})
        assert before.valid == frozenset()
        db.create("usurper", 11.0, position=[0.1, 0.0], velocity=[0.0, 0.0])
        after = naive_query_answer(db, gd(), query).accumulative()
        assert "alone" not in after


class TestClassificationStability:
    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=15, deadline=None)
    def test_past_queries_are_fixed_points(self, seed):
        """A query classified PAST keeps its exact answer under any
        update sequence (the definition of past: Q(D) = Q^v(D))."""
        db, rng = random_db(seed)
        query = knn_query(Interval(1.0, db.last_update_time), 1)
        before = classify_interval_query(db, gd(), query)
        assert before.query_class.value == "past"
        answer_before = naive_query_answer(db, gd(), query).accumulative()
        adversarial_updates(db, rng)
        answer_after = naive_query_answer(db, gd(), query).accumulative()
        assert answer_before == answer_after
