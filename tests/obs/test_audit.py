"""Complexity auditing against synthetic, known-complexity data."""

import math

import pytest

from repro.obs.audit import ComplexityAudit, GROWTH_ORDER, fit_envelope

SIZES = [64, 128, 256, 512, 1024, 2048]


def test_n_log_n_data_passes_n_log_n_envelope():
    costs = [3.0 * n * math.log2(n) + 17.0 for n in SIZES]
    result = fit_envelope(SIZES, costs, "n log n", quantity="init ops")
    assert result.passed
    assert result.best_fit.model == "n log n"
    # The constant recovers the synthetic scale up to the log base.
    assert 1.0 < result.constant < 10.0
    assert result.r_squared > 0.999


def test_linear_data_fails_log_envelope():
    costs = [5.0 * n for n in SIZES]
    result = fit_envelope(SIZES, costs, "log n", quantity="update ops")
    assert not result.passed
    assert GROWTH_ORDER[result.best_fit.model] > GROWTH_ORDER["log n"]


def test_flat_data_passes_log_envelope():
    """A constant curve grows no faster than log n — the audit accepts
    beating the envelope."""
    costs = [42.0 for _ in SIZES]
    result = fit_envelope(SIZES, costs, "log n")
    assert result.passed
    assert result.best_fit.model == "1"


def test_log_data_passes_log_envelope():
    costs = [7.0 * math.log2(n) + 2.0 for n in SIZES]
    result = fit_envelope(SIZES, costs, "log n")
    assert result.passed
    assert result.r_squared > 0.999


def test_quadratic_data_fails_n_log_n():
    costs = [0.5 * n * n for n in SIZES]
    result = fit_envelope(SIZES, costs, "n log n")
    assert not result.passed
    assert result.best_fit.model == "n^2"


def test_unknown_envelope_rejected():
    with pytest.raises(ValueError):
        fit_envelope(SIZES, [1.0] * len(SIZES), "n^3")


class TestComplexityAudit:
    def test_record_check_report(self):
        audit = ComplexityAudit()
        for n in SIZES:
            audit.record("init", n, 2.0 * n * math.log2(n))
            audit.record("update", n, 3.0 * math.log2(n))
        init = audit.check("init", "n log n")
        update = audit.check("update", "log n")
        assert init.passed and update.passed
        assert audit.all_passed
        assert audit.quantities() == ["init", "update"]
        assert len(audit.observations("init")) == len(SIZES)
        report = audit.report()
        assert "init" in report and "update" in report and "PASS" in report
        assert "PASS" in init.describe()

    def test_too_few_observations_raise(self):
        audit = ComplexityAudit()
        audit.record("lonely", 64, 10.0)
        with pytest.raises(ValueError):
            audit.check("lonely", "log n")
        with pytest.raises(ValueError):
            audit.check("absent", "log n")

    def test_all_passed_requires_a_check(self):
        assert not ComplexityAudit().all_passed

    def test_failed_check_reported(self):
        audit = ComplexityAudit()
        for n in SIZES:
            audit.record("bad", n, float(n * n))
        result = audit.check("bad", "log n")
        assert not result.passed
        assert not audit.all_passed
        assert "FAIL" in result.describe()
        assert "FAIL" in audit.report()
