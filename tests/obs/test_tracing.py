"""Tracer, span nesting, and sink behavior."""

import json

import pytest

from repro.obs.tracing import (
    JsonlSink,
    NULL_TRACER,
    NullTracer,
    RingBufferSink,
    Tracer,
)


class TestRingBufferSink:
    def test_eviction_at_capacity(self):
        sink = RingBufferSink(capacity=3)
        for i in range(5):
            sink.emit({"type": "event", "name": f"e{i}"})
        names = [r["name"] for r in sink.records]
        assert names == ["e2", "e3", "e4"]

    def test_filters_and_clear(self):
        sink = RingBufferSink()
        tracer = Tracer(sink)
        with tracer.span("outer"):
            tracer.event("mark")
        assert [r["name"] for r in sink.spans()] == ["outer"]
        assert [r["name"] for r in sink.events("mark")] == ["mark"]
        assert sink.events("absent") == []
        sink.clear()
        assert sink.records == []

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            RingBufferSink(capacity=0)


class TestJsonlSink:
    def test_writes_parseable_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlSink(path) as sink:
            tracer = Tracer(sink)
            with tracer.span("work", n=3):
                tracer.event("step", i=1)
        lines = path.read_text().strip().splitlines()
        records = [json.loads(line) for line in lines]
        assert [r["type"] for r in records] == ["event", "span"]
        assert records[1]["name"] == "work"
        assert records[1]["attrs"] == {"n": 3}

    def test_close_is_idempotent_and_emit_after_close_raises(self, tmp_path):
        sink = JsonlSink(tmp_path / "t.jsonl")
        sink.close()
        sink.close()
        with pytest.raises(RuntimeError):
            sink.emit({"type": "event"})

    def test_buffered_sink_defers_then_flushes(self, tmp_path):
        path = tmp_path / "buffered.jsonl"
        sink = JsonlSink(path, buffer=10)
        for i in range(3):
            sink.emit({"type": "event", "name": f"e{i}"})
        # Three records sit in the userspace buffer; nothing durable yet.
        assert path.read_text() == ""
        sink.flush()
        assert len(path.read_text().strip().splitlines()) == 3
        sink.close()

    def test_buffer_threshold_triggers_flush(self, tmp_path):
        path = tmp_path / "threshold.jsonl"
        sink = JsonlSink(path, buffer=2)
        sink.emit({"type": "event", "name": "a"})
        sink.emit({"type": "event", "name": "b"})  # hits the threshold
        assert len(path.read_text().strip().splitlines()) == 2
        sink.close()

    def test_rejects_nonpositive_buffer(self, tmp_path):
        with pytest.raises(ValueError):
            JsonlSink(tmp_path / "bad.jsonl", buffer=0)


class TestTracerLifecycle:
    """Regression for truncated JSONL traces: the tracer must forward
    flush/close to its sink so a buffered run never loses its tail."""

    def test_tracer_close_flushes_buffered_sink(self, tmp_path):
        path = tmp_path / "run.jsonl"
        tracer = Tracer(JsonlSink(path, buffer=100))
        with tracer.span("work"):
            tracer.event("step")
        # Without the forwarded close, both records would be lost here.
        tracer.close()
        records = [
            json.loads(line)
            for line in path.read_text().strip().splitlines()
        ]
        assert [r["type"] for r in records] == ["event", "span"]

    def test_tracer_as_context_manager(self, tmp_path):
        path = tmp_path / "cm.jsonl"
        with Tracer(JsonlSink(path, buffer=100)) as tracer:
            with tracer.span("scoped"):
                pass
        assert json.loads(path.read_text().strip())["name"] == "scoped"

    def test_flush_tolerates_sinks_without_flush(self):
        tracer = Tracer(RingBufferSink())
        tracer.flush()  # RingBufferSink has neither flush nor close
        tracer.close()

    def test_null_tracer_lifecycle_is_inert(self):
        with NullTracer() as tracer:
            tracer.flush()
        NULL_TRACER.close()


class TestSpanNesting:
    def test_parent_ids(self):
        sink = RingBufferSink()
        tracer = Tracer(sink)
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
            tracer.event("sibling")
        records = {
            (r["type"], r["name"]): r for r in sink.records
        }
        assert records[("span", "outer")]["parent_id"] is None
        assert (
            records[("span", "inner")]["parent_id"]
            == records[("span", "outer")]["span_id"]
        )
        # The event fired after inner closed — parented to outer.
        assert (
            records[("event", "sibling")]["parent_id"]
            == records[("span", "outer")]["span_id"]
        )

    def test_span_ids_are_unique(self):
        tracer = Tracer(RingBufferSink())
        ids = set()
        for _ in range(10):
            with tracer.span("s") as span:
                ids.add(span.span_id)
        assert len(ids) == 10

    def test_attributes_and_duration(self):
        sink = RingBufferSink()
        tracer = Tracer(sink)
        with tracer.span("s", static="x") as span:
            span.set_attribute("dynamic", 7)
        (record,) = sink.spans("s")
        assert record["attrs"] == {"static": "x", "dynamic": 7}
        assert record["duration"] >= 0.0
        assert record["status"] == "ok"

    def test_error_status_records_and_propagates(self):
        sink = RingBufferSink()
        tracer = Tracer(sink)
        with pytest.raises(RuntimeError, match="boom"):
            with tracer.span("failing"):
                raise RuntimeError("boom")
        (record,) = sink.spans("failing")
        assert record["status"] == "error"
        assert "boom" in record["error"]

    def test_out_of_order_exit_does_not_corrupt_stack(self):
        sink = RingBufferSink()
        tracer = Tracer(sink)
        outer = tracer.span("outer")
        inner = tracer.span("inner")  # created before outer is entered
        outer.__enter__()
        inner.__enter__()
        # Exiting outer first pops through inner; the tracer recovers.
        outer.__exit__(None, None, None)
        with tracer.span("after") as after:
            assert after.parent_id is None

    def test_span_events_parent_to_that_span(self):
        sink = RingBufferSink()
        tracer = Tracer(sink)
        with tracer.span("s") as span:
            span.event("tick", i=0)
        (event,) = sink.events("tick")
        (record,) = sink.spans("s")
        assert event["parent_id"] == record["span_id"]
        assert event["attrs"] == {"i": 0}


class TestNullTracer:
    def test_disabled_flag(self):
        assert NULL_TRACER.enabled is False
        assert Tracer(RingBufferSink()).enabled is True

    def test_shared_noop_span(self):
        a = NULL_TRACER.span("x", k=1)
        b = NullTracer().span("y")
        assert a is b  # one shared instance, zero allocation
        with a as span:
            span.set_attribute("k", "v")
            span.event("e")
        NULL_TRACER.event("stray")

    def test_null_span_never_swallows(self):
        with pytest.raises(ValueError):
            with NULL_TRACER.span("s"):
                raise ValueError("must propagate")
