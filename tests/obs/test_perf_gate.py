"""Tests for the CI perf-regression gate (``scripts/perf_gate.py``).

The contract: the gate passes against the committed baselines, and a
synthetically injected regression (a baseline claiming the code used
to be much cheaper) makes it exit non-zero.
"""

import importlib.util
import json
import os
import sys

import pytest

REPO = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


@pytest.fixture(scope="module")
def perf_gate():
    spec = importlib.util.spec_from_file_location(
        "perf_gate", os.path.join(REPO, "scripts", "perf_gate.py")
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def t5_current(perf_gate):
    # Measured once; the T5 suite is the cheapest of the three.
    return perf_gate.measure_t5()


class TestCompare:
    def test_within_band_passes(self, perf_gate):
        baseline = {"metrics": {"init_ops": 1000, "update_ops_per_update": 6.0}}
        rows = perf_gate.compare(
            "t5",
            {"init_ops": 1040, "update_ops_per_update": 6.2},
            baseline,
        )
        assert all(r["ok"] for r in rows)

    def test_max_direction_fails_above_limit(self, perf_gate):
        baseline = {"metrics": {"init_ops": 1000, "update_ops_per_update": 6.0}}
        rows = perf_gate.compare(
            "t5",
            {"init_ops": 1200, "update_ops_per_update": 6.0},
            baseline,
        )
        bad = {r["metric"] for r in rows if not r["ok"]}
        assert bad == {"init_ops"}

    def test_min_direction_fails_below_limit(self, perf_gate):
        base = {
            "answer_hit_rate": 0.8,
            "cold_ops": 1000,
            "cached_ops": 300,
            "cached_ops_fraction": 0.3,
        }
        current = dict(base, answer_hit_rate=0.5)
        rows = perf_gate.compare("eac", current, {"metrics": base})
        bad = {r["metric"] for r in rows if not r["ok"]}
        assert bad == {"answer_hit_rate"}


class TestGateAgainstCommittedBaselines:
    def test_t5_suite_passes(self, perf_gate, t5_current):
        path = perf_gate.baseline_path(
            "t5", os.path.join(REPO, "benchmarks", "baselines")
        )
        with open(path, "r", encoding="utf-8") as fh:
            baseline = json.load(fh)
        rows = perf_gate.compare("t5", t5_current, baseline)
        assert rows and all(r["ok"] for r in rows), rows

    def test_measures_are_deterministic(self, perf_gate, t5_current):
        assert perf_gate.measure_t5() == t5_current


class TestInjectedRegression:
    def test_exit_nonzero_on_regression(
        self, perf_gate, t5_current, tmp_path, capsys
    ):
        # The injected regression: a baseline claiming init used to
        # cost half as much as it measures now.
        doctored = {
            name: (value * 0.5 if name == "init_ops" else value)
            for name, value in t5_current.items()
        }
        perf_gate.write_baseline("t5", doctored, str(tmp_path))
        code = perf_gate.main(
            ["--suite", "t5", "--baseline-dir", str(tmp_path)]
        )
        assert code != 0
        assert "FAIL" in capsys.readouterr().out

    def test_exit_zero_on_honest_baseline(
        self, perf_gate, t5_current, tmp_path
    ):
        perf_gate.write_baseline("t5", t5_current, str(tmp_path))
        code = perf_gate.main(
            ["--suite", "t5", "--baseline-dir", str(tmp_path)]
        )
        assert code == 0

    def test_missing_baseline_is_an_error(self, perf_gate, tmp_path):
        with pytest.raises(SystemExit):
            perf_gate.run_gate(["t5"], str(tmp_path / "nowhere"))


class TestUpdateBaselines:
    def test_update_writes_policy_alongside(
        self, perf_gate, t5_current, tmp_path
    ):
        perf_gate.write_baseline("t5", t5_current, str(tmp_path))
        with open(
            perf_gate.baseline_path("t5", str(tmp_path)),
            "r",
            encoding="utf-8",
        ) as fh:
            payload = json.load(fh)
        assert payload["suite"] == "t5"
        assert payload["metrics"] == t5_current
        assert payload["policy"]["init_ops"]["direction"] == "max"
