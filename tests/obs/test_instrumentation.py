"""End-to-end instrumentation: the observe= hook across the engine,
sessions, database, and resilience layers.

The contract under test: telemetry is a pure observer.  Instrumented
and uninstrumented runs produce identical answers; registry counters
agree with the engine's own SweepStats; disabled telemetry costs a
no-op call and nothing else.
"""

import pytest

from repro.core.api import (
    ContinuousQuerySession,
    evaluate_knn,
    evaluate_within,
)
from repro.geometry.intervals import Interval
from repro.geometry.vectors import Vector
from repro.mod.database import MovingObjectDatabase
from repro.mod.updates import ChangeDirection, New, Terminate
from repro.obs import (
    Instrumentation,
    MetricsRegistry,
    NullTracer,
    RingBufferSink,
    Tracer,
    as_instrumentation,
)
from repro.obs.tracing import NULL_TRACER
from repro.resilience.ingest import QUARANTINE, IngestPipeline
from repro.resilience.supervisor import SupervisedQuerySession
from repro.resilience.wal import WriteAheadLog, recover
from repro.sweep.engine import SweepEngine
from repro.gdist.euclidean import SquaredEuclideanDistance
from repro.workloads.faults import FaultInjector
from repro.workloads.generator import random_linear_mod


def origin_engine(db, interval=Interval(0.0, 20.0), observe=None):
    return SweepEngine(
        db, SquaredEuclideanDistance([0.0, 0.0]), interval, observe=observe
    )


class TestAsInstrumentation:
    def test_none_stays_none(self):
        assert as_instrumentation(None) is None

    def test_instrumentation_passthrough(self):
        inst = Instrumentation()
        assert as_instrumentation(inst) is inst

    def test_registry_enables_metrics_only(self):
        registry = MetricsRegistry()
        inst = as_instrumentation(registry)
        assert inst.metrics is registry
        assert not inst.tracer.enabled

    def test_tracer_enables_tracing_with_private_registry(self):
        tracer = Tracer(RingBufferSink())
        inst = as_instrumentation(tracer)
        assert inst.tracer is tracer
        assert isinstance(inst.metrics, MetricsRegistry)
        null = as_instrumentation(NullTracer())
        assert not null.tracer.enabled

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            as_instrumentation({"metrics": True})


class TestAnswerEquivalence:
    """Instrumentation must never change what a query answers."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_knn_answers_identical(self, seed):
        interval = Interval(0.0, 20.0)
        plain = evaluate_knn(
            random_linear_mod(10, seed=seed, extent=40.0, speed=6.0),
            [0.0, 0.0],
            interval,
            k=3,
        )
        observed = evaluate_knn(
            random_linear_mod(10, seed=seed, extent=40.0, speed=6.0),
            [0.0, 0.0],
            interval,
            k=3,
            observe=Instrumentation(),
        )
        assert plain == observed

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_within_answers_identical(self, seed):
        interval = Interval(0.0, 15.0)
        plain = evaluate_within(
            random_linear_mod(8, seed=seed, extent=30.0, speed=5.0),
            [0.0, 0.0],
            interval,
            distance=12.0,
        )
        observed = evaluate_within(
            random_linear_mod(8, seed=seed, extent=30.0, speed=5.0),
            [0.0, 0.0],
            interval,
            distance=12.0,
            observe=MetricsRegistry(),
        )
        assert plain == observed


class TestEngineCounters:
    def test_registry_agrees_with_sweep_stats(self):
        db = random_linear_mod(12, seed=3, extent=40.0, speed=7.0)
        inst = Instrumentation()
        engine = origin_engine(db, observe=inst)
        engine.run_to_end()
        stats = engine.stats
        snap = inst.snapshot()

        assert (
            snap['sweep_events_total{kind="intersection"}']
            == stats.intersections_processed
        )
        swap = snap['sweep_order_changes_total{kind="swap"}']
        insert = snap['sweep_order_changes_total{kind="insert"}']
        remove = snap['sweep_order_changes_total{kind="remove"}']
        reinsert = snap['sweep_order_changes_total{kind="reinsert"}']
        # The registry keeps raw monotone halves; SweepStats nets a
        # reinsertion out of its insert/remove columns.
        assert swap == stats.swaps
        assert insert == stats.insertions + stats.reinsertions
        assert remove == stats.removals + stats.reinsertions
        assert reinsert == stats.reinsertions
        # Paper's m: every support change exactly once.
        assert swap + insert + remove - reinsert == stats.support_changes
        assert snap["sweep_flip_computations_total"] == stats.flip_computations

    def test_primitive_ops_gauges_match_operation_counts(self):
        db = random_linear_mod(8, seed=1)
        inst = Instrumentation()
        engine = origin_engine(db, observe=inst)
        engine.run_to_end()
        snap = inst.snapshot()
        counts = engine.operation_counts()
        for op, count in counts.items():
            if op == "total":
                continue
            assert snap[f'sweep_primitive_ops{{op="{op}"}}'] == count
        assert engine.primitive_ops() == counts["total"] > 0

    def test_queue_high_water_mark_gauge(self):
        db = random_linear_mod(10, seed=2, extent=40.0, speed=7.0)
        inst = Instrumentation()
        engine = origin_engine(db, observe=inst)
        engine.run_to_end()
        snap = inst.snapshot()
        # At the end the queue has drained, but the high-water mark
        # remembers the true peak from inside push().
        assert snap["sweep_queue_max_depth"] > 0
        assert snap["sweep_queue_max_depth"] >= snap["sweep_queue_depth"]

    def test_per_update_ops_histogram(self):
        db = random_linear_mod(6, seed=4)
        inst = Instrumentation()
        session = ContinuousQuerySession.knn(
            db, [0.0, 0.0], k=2, observe=inst
        )
        for i in range(5):
            db.create(
                f"x{i}", 1.0 + i, position=[3.0 + i, 0.0], velocity=[0.1, 0.0]
            )
        snap = inst.snapshot()
        assert snap["sweep_update_primitive_ops_count"] == 5
        assert snap["sweep_update_primitive_ops_sum"] > 0
        session.close()

    def test_disabled_observability_costs_nothing_structural(self):
        db = random_linear_mod(8, seed=5)
        engine = origin_engine(db)
        assert engine.observe is None
        engine.run_to_end()
        # Plain counters still run — the audits depend on them.
        assert engine.primitive_ops() > 0
        assert engine.stats.support_changes > 0

    def test_init_span_emitted(self):
        sink = RingBufferSink()
        inst = Instrumentation(tracer=Tracer(sink))
        db = random_linear_mod(6, seed=6)
        origin_engine(db, observe=inst)
        (span,) = sink.spans("sweep.init")
        assert span["status"] == "ok"
        assert span["attrs"]["objects"] == 6


class TestListenerErrorContainment:
    """Satellite: a failing listener must not abort the event loop."""

    class _Bomb:
        def on_swap(self, time, lower, upper):
            raise RuntimeError("listener bomb")

    def test_sweep_survives_and_counts(self):
        db = random_linear_mod(10, seed=7, extent=40.0, speed=7.0)
        inst = Instrumentation()
        engine = origin_engine(db, observe=inst)
        engine.add_listener(self._Bomb())
        engine.run_to_end()  # must not raise
        stats = engine.stats
        assert stats.swaps > 0
        assert stats.listener_errors == stats.swaps
        assert (
            inst.snapshot()["sweep_listener_errors_total"]
            == stats.listener_errors
        )
        # Structured error records, capped.
        assert engine.listener_errors
        assert len(engine.listener_errors) <= 64
        first = engine.listener_errors[0]
        assert first.method == "on_swap"
        assert "listener bomb" in first.error

    def test_failing_listener_does_not_change_answers(self):
        interval = Interval(0.0, 20.0)

        def run(with_bomb):
            db = random_linear_mod(9, seed=8, extent=35.0, speed=6.0)
            engine = origin_engine(db, interval=interval)
            from repro.sweep.knn import ContinuousKNN

            view = ContinuousKNN(engine, 2)
            if with_bomb:
                engine.add_listener(self._Bomb())
            engine.run_to_end()
            return view.answer()

        assert run(with_bomb=False) == run(with_bomb=True)


class TestSharedRegistry:
    def test_two_sessions_aggregate_into_one_registry(self):
        registry = MetricsRegistry()
        db = MovingObjectDatabase()
        db.create("a", 0.5, position=[5.0, 0.0], velocity=[0.0, 0.0])
        near = ContinuousQuerySession.knn(
            db, [0.0, 0.0], k=1, observe=registry
        )
        far = ContinuousQuerySession.within(
            db, [0.0, 0.0], distance=10.0, observe=registry
        )
        assert near.metrics is registry and far.metrics is registry
        db.create("b", 1.0, position=[2.0, 0.0], velocity=[0.0, 0.0])
        db.create("c", 2.0, position=[8.0, 0.0], velocity=[0.0, 0.0])
        snap = registry.snapshot()
        # Both engines saw both updates: 2 sessions x 2 updates.
        assert snap['sweep_events_total{kind="update"}'] == 4
        near.close(at=3.0)
        far.close(at=3.0)


class TestDatabaseCounters:
    def test_update_kinds_and_gauges(self):
        registry = MetricsRegistry()
        db = MovingObjectDatabase(observe=registry)
        db.apply(
            New(
                oid="a",
                time=1.0,
                velocity=Vector([1.0, 0.0]),
                position=Vector([0.0, 0.0]),
            )
        )
        db.apply(ChangeDirection(oid="a", time=2.0, velocity=Vector([0.0, 1.0])))
        db.apply(
            New(
                oid="b",
                time=3.0,
                velocity=Vector([0.0, 0.0]),
                position=Vector([5.0, 5.0]),
            )
        )
        db.apply(Terminate(oid="a", time=4.0))
        snap = registry.snapshot()
        assert snap['mod_updates_total{kind="new"}'] == 2
        assert snap['mod_updates_total{kind="chdir"}'] == 1
        assert snap['mod_updates_total{kind="terminate"}'] == 1
        assert snap["mod_live_objects"] == 1  # "a" terminated, "b" live
        assert snap["mod_tau"] == 4.0


class TestResilienceCounters:
    def _updates(self, n=6):
        return [
            New(
                oid=f"o{i}",
                time=float(i + 1),
                velocity=Vector([0.1, 0.0]),
                position=Vector([float(i), 0.0]),
            )
            for i in range(n)
        ]

    def test_ingest_counters_match_stats(self):
        registry = MetricsRegistry()
        db = MovingObjectDatabase()
        pipeline = IngestPipeline(db, policy=QUARANTINE, observe=registry)
        for update in self._updates(4):
            pipeline.submit(update)
        # Out of order: tau is now 4.0.
        pipeline.submit(
            New(
                oid="late",
                time=2.5,
                velocity=Vector([0.0, 0.0]),
                position=Vector([0.0, 0.0]),
            )
        )
        snap = registry.snapshot()
        assert snap["ingest_received_total"] == pipeline.stats.received == 5
        assert snap["ingest_accepted_total"] == pipeline.stats.accepted == 4
        assert (
            snap['ingest_quarantined_total{reason="out_of_order"}']
            == pipeline.stats.by_reason["out_of_order"]
            == 1
        )

    def test_wal_counters_and_recover_span(self, tmp_path):
        registry = MetricsRegistry()
        updates = self._updates(5)
        db = MovingObjectDatabase()
        with WriteAheadLog(tmp_path, observe=registry) as wal:
            for update in updates:
                wal.append(update)
                db.apply(update)
            wal.checkpoint(db)
        snap = registry.snapshot()
        assert snap["wal_appends_total"] == 5
        assert snap["wal_checkpoints_total"] == 1
        assert snap["wal_append_seconds_count"] == 5

        sink = RingBufferSink()
        rec_inst = Instrumentation(tracer=Tracer(sink))
        recovered, log = recover(tmp_path, observe=rec_inst)
        assert recovered.last_update_time == db.last_update_time
        assert len(log) == 5
        (span,) = sink.spans("wal.recover")
        assert span["status"] == "ok"
        assert span["attrs"]["checkpoint"] is True
        assert span["attrs"]["recovered"] == 5
        rec_snap = rec_inst.snapshot()
        assert rec_snap["wal_recovered_updates_total"] == 5

    def test_supervisor_counters_track_stats(self):
        registry = MetricsRegistry()
        db = MovingObjectDatabase()
        db.create("far", 0.5, position=[100.0, 0.0], velocity=[0.0, 0.0])
        session = SupervisedQuerySession.knn(
            db, [0.0, 0.0], k=1, observe=registry
        )
        session.advance_to(10.0)
        # Valid for the database, in the past for the engine: the
        # supervisor records the failure and rebuilds.
        db.create("late", 5.0, position=[1.0, 0.0], velocity=[0.0, 0.0])
        snap = registry.snapshot()
        assert snap["supervisor_failures_total"] == session.stats.failures == 1
        assert snap["supervisor_rebuilds_total"] == session.stats.rebuilds == 1
        # The rebuilt engine keeps aggregating into the same registry.
        before = registry.snapshot()['sweep_events_total{kind="update"}']
        db.create("later", 6.0, position=[0.5, 0.0], velocity=[0.0, 0.0])
        after = registry.snapshot()['sweep_events_total{kind="update"}']
        assert after == before + 1
        session.close()

    def test_fault_injector_counters_match_report(self):
        registry = MetricsRegistry()
        injector = FaultInjector(
            seed=11, duplicate_rate=0.5, drop_rate=0.2, observe=registry
        )
        perturbed, report = injector.perturb(self._updates(40))
        snap = registry.snapshot()
        assert report.duplicated > 0 and report.dropped > 0
        assert (
            snap['faults_injected_total{kind="duplicate"}']
            == report.duplicated
        )
        assert snap['faults_injected_total{kind="drop"}'] == report.dropped
        assert 'faults_injected_total{kind="corrupt"}' not in snap
