"""Unit tests for the query profiler layer.

Covers the correlation token, the context-stamping tracer, stage-tree
aggregation semantics, the slow-query log's threshold + reservoir
behavior, workload attribution, and the profiler's lifecycle feeds.
End-to-end evaluation coverage lives in ``test_explain.py``.
"""

import json

import pytest

from repro.obs.instrument import Instrumentation, as_instrumentation
from repro.obs.profile import (
    NULL_STAGE,
    ContextTracer,
    QueryProfile,
    QueryProfiler,
    SlowQueryLog,
    Stage,
    TraceContext,
    WorkloadAttribution,
)
from repro.obs.tracing import JsonlSink, RingBufferSink, Tracer


class TestTraceContext:
    def test_round_trips_through_dict(self):
        ctx = TraceContext("q-000042", parent_span_id=7)
        clone = TraceContext.from_dict(ctx.to_dict())
        assert clone.query_id == "q-000042"
        assert clone.parent_span_id == 7

    def test_parent_span_is_optional(self):
        clone = TraceContext.from_dict({"query_id": "q-1"})
        assert clone.parent_span_id is None

    def test_dict_form_is_json_safe(self):
        ctx = TraceContext("q-000042")
        assert json.loads(json.dumps(ctx.to_dict()))["query_id"] == "q-000042"


class TestContextTracer:
    def _tracer(self):
        sink = RingBufferSink()
        inner = Tracer(sink)
        return ContextTracer(inner, TraceContext("q-9")), sink

    def test_spans_are_stamped(self):
        tracer, sink = self._tracer()
        with tracer.span("work", size=3):
            tracer.event("tick")
        assert len(sink.records) == 2
        for record in sink.records:
            assert record["attrs"]["query_id"] == "q-9"

    def test_existing_query_id_wins(self):
        tracer, sink = self._tracer()
        tracer.event("borrowed", query_id="q-other")
        assert sink.records[0]["attrs"]["query_id"] == "q-other"

    def test_delegates_enabled_and_sink(self):
        tracer, sink = self._tracer()
        assert tracer.enabled
        assert tracer.sink is sink

    def test_flush_close_tolerate_bare_inner(self):
        class Bare:
            def span(self, name, **attrs):
                raise AssertionError("unused")

        tracer = ContextTracer(Bare(), TraceContext("q-1"))
        tracer.flush()
        tracer.close()


class TestStageTree:
    def test_reentry_merges_by_name_and_shard(self):
        prof = QueryProfile("q-1", "knn")
        for _ in range(3):
            with prof.stage("curves") as st:
                st.annotate(curves=1)
        with prof.stage("curves", shard=0) as st:
            st.annotate(curves=1)
        merged = prof.root.children[("curves", None)]
        assert merged.count == 3
        assert merged.attrs["curves"] == 3
        assert prof.root.children[("curves", 0)].count == 1

    def test_numeric_annotations_accumulate_bools_do_not(self):
        stage = Stage("probe")
        stage.annotate(ops=5, hit=False)
        stage.annotate(ops=7, hit=True)
        assert stage.attrs["ops"] == 12
        assert stage.attrs["hit"] is True

    def test_nesting_follows_the_open_stage(self):
        prof = QueryProfile("q-1", "knn")
        with prof.stage("outer"):
            with prof.stage("inner"):
                pass
        outer = prof.root.children[("outer", None)]
        assert ("inner", None) in outer.children
        assert ("inner", None) not in prof.root.children

    def test_pop_tolerates_crashed_inner_stage(self):
        prof = QueryProfile("q-1", "knn")
        with pytest.raises(RuntimeError):
            with prof.stage("outer"):
                prof.stage("abandoned").__enter__()  # never exited
                raise RuntimeError("boom")
        # The stack unwound past the abandoned stage.
        with prof.stage("next"):
            pass
        assert ("next", None) in prof.root.children

    def test_null_stage_is_inert(self):
        with NULL_STAGE as st:
            st.annotate(ops=1)
        assert not hasattr(NULL_STAGE, "attrs")

    def test_to_dict_shape(self):
        prof = QueryProfile("q-1", "knn")
        with prof.stage("sweep", shard=2) as st:
            st.annotate(ops=9)
        node = prof.root.children[("sweep", 2)].to_dict()
        assert node["name"] == "sweep"
        assert node["shard"] == 2
        assert node["attrs"] == {"ops": 9}
        assert node["count"] == 1


class TestQueryProfile:
    def test_observe_bundle_carries_profile_and_context(self):
        prof = QueryProfile("q-5", "within")
        assert isinstance(prof.observe, Instrumentation)
        assert prof.observe.profile is prof
        assert prof.observe.context is prof.context
        assert as_instrumentation(prof).profile is prof

    def test_tracer_stamps_profile_query_id(self):
        prof = QueryProfile("q-5", "within")
        with prof.observe.tracer.span("sweep.init"):
            pass
        assert prof.spans[0]["attrs"]["query_id"] == "q-5"

    def test_coverage_reflects_attributed_time(self):
        with QueryProfile("q-1", "knn") as prof:
            with prof.stage("everything"):
                for _ in range(10000):
                    pass
        assert 0.0 < prof.coverage <= 1.05

    def test_shard_skew_none_without_shards(self):
        prof = QueryProfile("q-1", "knn")
        assert prof.shard_skew() is None

    def test_shard_skew_from_ops_annotations(self):
        prof = QueryProfile("q-1", "knn")
        for shard, ops in ((0, 30), (1, 10), (2, 20)):
            with prof.stage("shard.finalize", shard=shard) as st:
                st.annotate(ops=ops)
        skew = prof.shard_skew()
        assert skew["shards"] == 3
        assert skew["max_ops"] == 30
        assert skew["skew"] == pytest.approx(1.5)

    def test_report_is_json_ready(self):
        with QueryProfile("q-1", "knn", meta={"k": 2}) as prof:
            with prof.stage("init") as st:
                st.annotate(ops=3)
        report = json.loads(json.dumps(prof.report()))
        assert report["query_id"] == "q-1"
        assert report["meta"] == {"k": 2}
        assert report["stages"][0]["name"] == "init"
        assert report["metrics"]["query_id"] == "q-1"

    def test_absorb_shard_lands_in_report(self):
        prof = QueryProfile("q-1", "knn")
        prof.absorb_shard(1, {"metrics": {}, "records": [{"name": "x"}]})
        prof.absorb_shard(2, None)  # sequential hosts produce nothing
        report = prof.report()
        assert list(report["shards"]) == ["1"]

    def test_summary_flattens_top_level_stages(self):
        with QueryProfile("q-1", "knn") as prof:
            with prof.stage("sweep", shard=0):
                pass
            with prof.stage("merge"):
                pass
        summary = prof.summary()
        assert set(summary["stages"]) == {"sweep[0]", "merge"}


class TestSlowQueryLog:
    def _summary(self, i, seconds):
        return {"query_id": f"q-{i}", "total_seconds": seconds}

    def test_threshold_splits_slow_from_fast(self):
        log = SlowQueryLog(threshold_seconds=0.5)
        assert log.offer(self._summary(1, 0.9)) is True
        assert log.offer(self._summary(2, 0.1)) is False
        assert [s["query_id"] for s in log.slow] == ["q-1"]
        assert log.offered == 2

    def test_reservoir_is_uniform_sized(self):
        log = SlowQueryLog(threshold_seconds=10.0, reservoir=16, seed=1)
        for i in range(1000):
            log.offer(self._summary(i, 0.001))
        assert len(log.sample) == 16
        assert not log.slow
        # A late entry has had a chance to displace an early one.
        ids = {s["query_id"] for s in log.sample}
        assert ids != {f"q-{i}" for i in range(16)}

    def test_sink_receives_slow_entries_as_jsonl(self, tmp_path):
        path = tmp_path / "slow.jsonl"
        log = SlowQueryLog(threshold_seconds=0.5, sink=JsonlSink(path))
        log.offer(self._summary(1, 2.0))
        log.offer(self._summary(2, 0.0))
        log.close()
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert len(lines) == 1
        assert lines[0]["type"] == "slow_query"
        assert lines[0]["query_id"] == "q-1"

    def test_max_slow_caps_retention(self):
        log = SlowQueryLog(threshold_seconds=0.0, max_slow=4)
        for i in range(10):
            log.offer(self._summary(i, 1.0))
        assert len(log.slow) == 4
        assert log.offered == 10

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="nonnegative"):
            SlowQueryLog(threshold_seconds=-1.0)
        with pytest.raises(ValueError, match="reservoir"):
            SlowQueryLog(threshold_seconds=1.0, reservoir=0)


class TestWorkloadAttribution:
    def _profile_with(self, kind="knn", oids=(), shard_ops=()):
        prof = QueryProfile("q-1", kind)
        for shard, ops in shard_ops:
            with prof.stage("shard.finalize", shard=shard) as st:
                st.annotate(ops=ops)
        prof._answer_oids = list(oids)
        prof.finish()
        return prof

    def test_hot_oids_ranked_by_count(self):
        attribution = WorkloadAttribution()
        attribution.note_query(self._profile_with(oids=["a", "b"]))
        attribution.note_query(self._profile_with(oids=["a"]))
        assert attribution.hot_oids(top_k=1) == [("a", 2)]

    def test_hottest_shards_accumulate_ops(self):
        attribution = WorkloadAttribution()
        attribution.note_query(self._profile_with(shard_ops=[(0, 10), (1, 30)]))
        attribution.note_query(self._profile_with(shard_ops=[(1, 5)]))
        assert attribution.hottest_shards(top_k=1) == [(1, 35.0)]

    def test_to_dict_includes_kind_counts(self):
        attribution = WorkloadAttribution()
        attribution.note_query(self._profile_with(kind="knn"))
        attribution.note_query(self._profile_with(kind="within"))
        attribution.note_query(self._profile_with(kind="knn"))
        out = attribution.to_dict()
        assert out["by_kind"] == {"knn": 2, "within": 1}
        assert out["queries"] == 3
        assert "cache" not in out

    def test_watched_cache_stats_export(self):
        class FakeCache:
            hit_rate = 0.5

            def stats(self):
                return {"answer_hits": 1}

        attribution = WorkloadAttribution()
        attribution.watch_cache(FakeCache())
        out = attribution.to_dict()
        assert out["cache"]["answer_hits"] == 1
        assert out["cache"]["hit_rate"] == 0.5


class TestQueryProfiler:
    def test_ids_are_sequential(self):
        profiler = QueryProfiler()
        with profiler.profile("knn") as p1:
            pass
        with profiler.profile("knn") as p2:
            pass
        assert (p1.query_id, p2.query_id) == ("q-000001", "q-000002")

    def test_explicit_query_id_wins(self):
        profiler = QueryProfiler()
        with profiler.profile("knn", query_id="audit-7") as prof:
            pass
        assert prof.query_id == "audit-7"

    def test_finished_profiles_feed_log_and_attribution(self):
        log = SlowQueryLog(threshold_seconds=0.0)
        profiler = QueryProfiler(slow_log=log)
        with profiler.profile("within") as prof:
            pass
        assert profiler.profiles == [prof]
        assert log.offered == 1
        assert profiler.attribution.queries == 1

    def test_observe_exports_profiler_metrics(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        profiler = QueryProfiler(observe=registry)
        with profiler.profile("knn"):
            pass
        snapshot = registry.snapshot()
        assert snapshot['profiler_queries_total{kind="knn"}'] == 1
        assert snapshot['profiler_query_seconds_count{kind="knn"}'] == 1.0

    def test_to_dict_round_trips_json(self):
        profiler = QueryProfiler(slow_log=SlowQueryLog(0.0))
        with profiler.profile("knn"):
            pass
        out = json.loads(profiler.to_json())
        assert out["attribution"]["queries"] == 1
        assert out["slow_log"]["offered"] == 1
