"""End-to-end tests for :func:`repro.obs.explain.explain`.

The contract under test: explain runs the *real* evaluation (answers
equal the plain ``evaluate_*`` call), attributes nearly all wall time
to stages, stamps every span and metric block with the query id, and
does all of that across the full configuration matrix — three query
kinds, sharded evaluation, the process-pool backend, and the answer
cache.
"""

import json

import pytest

from repro.cache import QueryCache
from repro.core.api import evaluate_knn, evaluate_multiknn, evaluate_within
from repro.geometry.intervals import Interval
from repro.obs import ExplainReport, QueryProfiler, SlowQueryLog, explain
from repro.workloads.generator import random_linear_mod

WINDOW = Interval(1.0, 30.0)


def _db(count=24, seed=11):
    return random_linear_mod(count, seed=seed, extent=40.0, speed=3.0)


def _assert_correlated(report):
    """Every span — local and worker-side — carries the query id."""
    data = report.to_dict()
    qid = report.query_id
    assert data["spans"], "expected at least one local span"
    for record in data["spans"]:
        assert record["attrs"]["query_id"] == qid
    assert data["metrics"]["query_id"] == qid
    for snapshot in data.get("shards", {}).values():
        for record in snapshot.get("records", []):
            assert record["attrs"]["query_id"] == qid


def _stage_names(report):
    return {s["name"] for s in report.to_dict()["stages"]}


class TestAnswersMatchPlainEvaluation:
    def test_knn(self):
        db = _db()
        report = explain(db, [0.0, 0.0], WINDOW, "knn", k=3)
        plain = evaluate_knn(db, [0.0, 0.0], WINDOW, k=3)
        assert report.answer == plain

    def test_within(self):
        db = _db()
        report = explain(db, [5.0, -5.0], WINDOW, "within", distance=25.0)
        plain = evaluate_within(db, [5.0, -5.0], WINDOW, distance=25.0)
        assert report.answer == plain

    def test_multiknn(self):
        db = _db()
        report = explain(db, [0.0, 0.0], WINDOW, "multiknn", ks=[1, 3])
        plain = evaluate_multiknn(db, [0.0, 0.0], WINDOW, ks=[1, 3])
        assert report.answer == plain

    def test_sharded_knn_matches_single(self):
        db = _db()
        report = explain(db, [0.0, 0.0], WINDOW, "knn", k=2, shards=3)
        plain = evaluate_knn(db, [0.0, 0.0], WINDOW, k=2)
        assert report.answer == plain


class TestStageAttribution:
    def test_single_path_stages(self):
        report = explain(_db(), [0.0, 0.0], WINDOW, "knn", k=2)
        names = _stage_names(report)
        assert {"init", "sweep", "answer"} <= names
        init = next(
            s for s in report.to_dict()["stages"] if s["name"] == "init"
        )
        assert init["attrs"]["ops"] > 0
        assert any(c["name"] == "curves" for c in init.get("children", []))

    def test_sharded_path_stages(self):
        report = explain(
            _db(), [0.0, 0.0], WINDOW, "within", distance=20.0, shards=4
        )
        names = _stage_names(report)
        assert {"shards.init", "shards.sweep", "shards.finalize"} <= names
        skew = report.shard_skew()
        assert skew is not None and skew["shards"] == 4
        assert skew["skew"] >= 1.0

    def test_stage_walls_cover_total(self):
        # Acceptance criterion: per-stage wall-time sums within 5% of
        # the measured total, i.e. coverage >= 0.95.
        report = explain(_db(48, seed=5), [0.0, 0.0], WINDOW, "knn", k=3)
        assert report.coverage >= 0.95
        assert report.coverage <= 1.05

    def test_sharded_stage_walls_cover_total(self):
        report = explain(
            _db(48, seed=5), [0.0, 0.0], WINDOW, "knn", k=3, shards=4
        )
        assert report.coverage >= 0.95

    def test_shard_finalize_ops_match_evaluator_total(self):
        report = explain(
            _db(), [0.0, 0.0], WINDOW, "within", distance=20.0, shards=3
        )
        stages = report.to_dict()["stages"]
        finalize = next(s for s in stages if s["name"] == "shards.finalize")
        per_shard = sum(
            c["attrs"]["ops"]
            for c in finalize["children"]
            if c["name"] == "shard.finalize"
        )
        assert per_shard == finalize["attrs"]["ops"]


class TestCorrelation:
    def test_single_path(self):
        _assert_correlated(explain(_db(), [0.0, 0.0], WINDOW, "knn", k=2))

    def test_sharded_sequential(self):
        _assert_correlated(
            explain(
                _db(), [0.0, 0.0], WINDOW, "within", distance=20.0, shards=3
            )
        )

    def test_sharded_process_backend(self):
        report = explain(
            _db(16, seed=2),
            [0.0, 0.0],
            WINDOW,
            "knn",
            k=2,
            shards=2,
            backend="process",
        )
        _assert_correlated(report)
        data = report.to_dict()
        # Worker-side telemetry actually crossed the process boundary.
        assert set(data["shards"]) == {"0", "1"}
        assert any(
            snap.get("records") for snap in data["shards"].values()
        )

    def test_process_backend_answers_match(self):
        db = _db(16, seed=2)
        report = explain(
            db, [0.0, 0.0], WINDOW, "knn", k=2, shards=2, backend="process"
        )
        assert report.answer == evaluate_knn(db, [0.0, 0.0], WINDOW, k=2)


class TestCacheStages:
    def test_miss_then_hit(self):
        db = _db()
        cache = QueryCache()
        profiler = QueryProfiler()
        first = explain(
            db, [0.0, 0.0], WINDOW, "knn", k=2, cache=cache,
            profiler=profiler,
        )
        second = explain(
            db, [0.0, 0.0], WINDOW, "knn", k=2, cache=cache,
            profiler=profiler,
        )
        assert first.answer == second.answer

        def probe(report):
            return next(
                s
                for s in report.to_dict()["stages"]
                if s["name"] == "cache.probe"
            )

        assert probe(first)["attrs"]["hit"] is False
        assert probe(second)["attrs"]["hit"] is True
        assert "cache.store" in _stage_names(first)
        assert "sweep" not in _stage_names(second)

    def test_hit_clip_is_attributed(self):
        db = _db()
        cache = QueryCache()
        explain(db, [0.0, 0.0], WINDOW, "knn", k=2, cache=cache)
        narrower = Interval(5.0, 20.0)
        hit = explain(db, [0.0, 0.0], narrower, "knn", k=2, cache=cache)
        probe = next(
            s
            for s in hit.to_dict()["stages"]
            if s["name"] == "cache.probe"
        )
        assert probe["attrs"]["hit"] is True
        assert any(
            c["name"] == "clip" for c in probe.get("children", [])
        )

    def test_extension_sweep_is_attributed(self):
        db = _db()
        cache = QueryCache()
        explain(db, [0.0, 0.0], Interval(1.0, 15.0), "knn", k=2, cache=cache)
        wider = explain(
            db, [0.0, 0.0], Interval(1.0, 25.0), "knn", k=2, cache=cache
        )
        probe = next(
            s
            for s in wider.to_dict()["stages"]
            if s["name"] == "cache.probe"
        )
        assert probe["attrs"]["hit"] is True
        extend = next(
            c
            for c in probe.get("children", [])
            if c["name"] == "cache.extend"
        )
        assert extend["attrs"]["ops"] > 0

    def test_sharded_with_cache(self):
        db = _db()
        cache = QueryCache()
        first = explain(
            db, [0.0, 0.0], WINDOW, "multiknn", ks=[1, 2], cache=cache,
            shards=3,
        )
        second = explain(
            db, [0.0, 0.0], WINDOW, "multiknn", ks=[1, 2], cache=cache,
            shards=3,
        )
        assert "cache.store" in _stage_names(first)
        assert first.answer == second.answer


class TestRendering:
    def test_text_mentions_stages_and_id(self):
        report = explain(
            _db(), [0.0, 0.0], WINDOW, "knn", k=2, shards=2
        )
        text = report.text()
        assert report.query_id in text
        assert "shards.sweep" in text
        assert "shard.finalize[shard 1]" in text
        assert "skew" in text
        assert text == str(report)

    def test_json_round_trips(self):
        report = explain(_db(), [0.0, 0.0], WINDOW, "knn", k=2)
        data = json.loads(report.to_json())
        assert data["query_id"] == report.query_id
        assert data["kind"] == "knn"

    def test_repr_is_compact(self):
        report = explain(_db(), [0.0, 0.0], WINDOW, "knn")
        assert report.query_id in repr(report)


class TestProfilerIntegration:
    def test_shared_profiler_accumulates(self):
        db = _db()
        profiler = QueryProfiler(slow_log=SlowQueryLog(0.0))
        explain(db, [0.0, 0.0], WINDOW, "knn", k=1, profiler=profiler)
        explain(
            db, [0.0, 0.0], WINDOW, "within", distance=15.0,
            profiler=profiler,
        )
        assert [p.query_id for p in profiler.profiles] == [
            "q-000001",
            "q-000002",
        ]
        assert profiler.slow_log.offered == 2
        out = profiler.to_dict()
        assert out["attribution"]["by_kind"] == {"knn": 1, "within": 1}
        assert out["attribution"]["hot_oids"]

    def test_answer_oids_feed_attribution(self):
        profiler = QueryProfiler()
        report = explain(
            _db(), [0.0, 0.0], WINDOW, "knn", k=2, profiler=profiler
        )
        hot = dict(profiler.attribution.hot_oids())
        assert hot  # the knn answer names at least one object


class TestArgumentValidation:
    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown query kind"):
            explain(_db(), [0.0, 0.0], WINDOW, "nearest")

    def test_within_needs_distance(self):
        with pytest.raises(ValueError, match="distance"):
            explain(_db(), [0.0, 0.0], WINDOW, "within")

    def test_multiknn_needs_ks(self):
        with pytest.raises(ValueError, match="ks"):
            explain(_db(), [0.0, 0.0], WINDOW, "multiknn")
