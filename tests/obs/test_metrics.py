"""Registry, counter, gauge, and histogram edge cases."""

import json
import math

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
)


class TestCounter:
    def test_monotone(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(MetricError):
            c.inc(-1)

    def test_null_counter_is_inert(self):
        NULL_COUNTER.inc()
        NULL_COUNTER.inc(100)
        assert NULL_COUNTER.value == 0


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge()
        g.set(5.0)
        g.inc(2)
        g.dec()
        assert g.value == 6.0

    def test_function_backed_wins_and_is_lazy(self):
        calls = []

        def fn():
            calls.append(1)
            return 42.0

        g = Gauge()
        g.set(7.0)
        g.set_function(fn)
        assert not calls  # collection-time only
        assert g.value == 42.0
        assert len(calls) == 1

    def test_last_binder_wins(self):
        g = Gauge()
        g.set_function(lambda: 1.0)
        g.set_function(lambda: 2.0)
        assert g.value == 2.0

    def test_null_gauge_is_inert(self):
        NULL_GAUGE.set(9)
        NULL_GAUGE.set_function(lambda: 1 / 0)
        assert NULL_GAUGE.value == 0.0


class TestHistogram:
    def test_counts_sum_min_max_mean(self):
        h = Histogram()
        for v in (1.0, 2.0, 4.0, 1000.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == 1007.0
        assert h.min == 1.0
        assert h.max == 1000.0
        assert h.mean == pytest.approx(251.75)

    def test_buckets_are_cumulative_and_sparse(self):
        h = Histogram(base=2.0, min_exp=0, max_exp=4)
        for v in (1.0, 2.0, 3.0, 100.0):
            h.observe(v)
        buckets = h.buckets()
        # Only non-empty buckets appear; cumulative counts ascend.
        bounds = [b for b, _ in buckets]
        cumulative = [c for _, c in buckets]
        assert bounds[-1] == math.inf  # 100 > 2**4 lands in +Inf
        assert cumulative == sorted(cumulative)
        assert cumulative[-1] == 4

    def test_quantile_bounds(self):
        h = Histogram(base=2.0, min_exp=0, max_exp=10)
        for v in range(1, 101):
            h.observe(float(v))
        assert h.quantile(0.0) <= h.quantile(0.5) <= h.quantile(1.0)
        assert h.quantile(1.0) == 100.0  # clamped to the true max
        with pytest.raises(MetricError):
            h.quantile(1.5)

    def test_empty_histogram_statistics_are_nan(self):
        """No observations means no meaningful statistic: NaN across
        the board, never the internal ±inf seeds."""
        h = Histogram()
        assert math.isnan(h.quantile(0.5))
        assert math.isnan(h.mean)
        assert math.isnan(h.min)
        assert math.isnan(h.max)

    def test_empty_histogram_exports_stay_finite(self):
        reg = MetricsRegistry()
        reg.histogram("idle", min_exp=0, max_exp=4)
        for value in reg.snapshot().values():
            assert math.isfinite(value)
        for token in reg.to_prometheus().split():
            assert token not in ("inf", "-inf", "nan", "NaN")
        json.loads(reg.to_json())  # strict JSON: would choke on NaN/inf

    def test_min_max_reset_then_reobserve(self):
        h = Histogram()
        h.observe(5.0)
        h._reset()
        assert math.isnan(h.min) and math.isnan(h.max)
        h.observe(2.0)
        assert h.min == 2.0
        assert h.max == 2.0

    def test_invalid_construction(self):
        with pytest.raises(MetricError):
            Histogram(base=1.0)
        with pytest.raises(MetricError):
            Histogram(min_exp=5, max_exp=1)

    def test_null_histogram_is_inert(self):
        NULL_HISTOGRAM.observe(123.0)
        assert NULL_HISTOGRAM.count == 0


class TestRegistry:
    def test_unlabeled_returns_child_labeled_returns_family(self):
        reg = MetricsRegistry()
        c = reg.counter("plain_total")
        c.inc()
        family = reg.counter("labeled_total", labels=("kind",))
        family.labels(kind="a").inc(2)
        snap = reg.snapshot()
        assert snap["plain_total"] == 1
        assert snap['labeled_total{kind="a"}'] == 2

    def test_reregistration_is_idempotent(self):
        """Two sessions sharing a registry aggregate into one series."""
        reg = MetricsRegistry()
        first = reg.counter("shared_total", "help", labels=("kind",))
        second = reg.counter("shared_total", "help", labels=("kind",))
        assert first is second
        first.labels(kind="x").inc()
        second.labels(kind="x").inc()
        assert reg.snapshot()['shared_total{kind="x"}'] == 2

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("thing_total")
        with pytest.raises(MetricError):
            reg.gauge("thing_total")

    def test_label_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("thing_total", labels=("a",))
        with pytest.raises(MetricError):
            reg.counter("thing_total", labels=("b",))

    def test_wrong_label_names_raise(self):
        reg = MetricsRegistry()
        family = reg.counter("thing_total", labels=("kind",))
        with pytest.raises(MetricError):
            family.labels(other="x")

    def test_invalid_names_raise(self):
        reg = MetricsRegistry()
        with pytest.raises(MetricError):
            reg.counter("bad name")
        with pytest.raises(MetricError):
            reg.counter("fine_total", labels=("bad-label",))

    def test_cardinality_budget(self):
        reg = MetricsRegistry(max_series_per_family=3)
        family = reg.counter("small_total", labels=("i",))
        for i in range(3):
            family.labels(i=i).inc()
        with pytest.raises(MetricError):
            family.labels(i=99)
        # Existing children stay reachable after the budget trips.
        family.labels(i=0).inc()
        assert family.labels(i=0).value == 2

    def test_snapshot_diff_reset(self):
        reg = MetricsRegistry()
        c = reg.counter("ops_total")
        h = reg.histogram("latency", min_exp=0, max_exp=4)
        c.inc(3)
        before = reg.snapshot()
        c.inc(2)
        h.observe(1.5)
        delta = MetricsRegistry.diff(before, reg.snapshot())
        assert delta["ops_total"] == 2
        assert delta["latency_count"] == 1
        # Unchanged series are omitted from the diff.
        assert all(v != 0 for v in delta.values())
        reg.reset()
        assert reg.snapshot()["ops_total"] == 0
        assert reg.snapshot()["latency_count"] == 0

    def test_reset_keeps_gauge_functions(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        g.set_function(lambda: 17.0)
        reg.reset()
        assert reg.snapshot()["depth"] == 17.0

    def test_prometheus_export(self):
        reg = MetricsRegistry()
        reg.counter("events_total", "How many events.", labels=("kind",)).labels(
            kind="swap"
        ).inc(4)
        reg.histogram("ops", min_exp=0, max_exp=4).observe(3.0)
        text = reg.to_prometheus()
        assert "# HELP events_total How many events." in text
        assert "# TYPE events_total counter" in text
        assert 'events_total{kind="swap"} 4' in text
        assert "# TYPE ops histogram" in text
        assert 'ops_bucket{le="4"} 1' in text
        assert "ops_count 1" in text

    def test_json_export_round_trips(self):
        reg = MetricsRegistry()
        reg.counter("a_total").inc()
        data = json.loads(reg.to_json())
        assert data["a_total"]["type"] == "counter"
        assert data["a_total"]["series"][0]["value"] == 1

    def test_contains_and_getitem(self):
        reg = MetricsRegistry()
        reg.counter("present_total")
        assert "present_total" in reg
        assert reg["present_total"].kind == "counter"
        assert "absent_total" not in reg


class TestPrometheusConformance:
    """Text-exposition-format details scrapers actually depend on."""

    def test_histogram_emits_sum_and_count_series(self):
        reg = MetricsRegistry()
        h = reg.histogram("latency_seconds", min_exp=0, max_exp=4)
        h.observe(1.5)
        h.observe(2.5)
        lines = reg.to_prometheus().splitlines()
        assert "latency_seconds_count 2" in lines
        assert "latency_seconds_sum 4" in lines

    def test_labeled_histogram_sum_count_carry_labels(self):
        reg = MetricsRegistry()
        fam = reg.histogram("ops", labels=("stage",), min_exp=0, max_exp=4)
        fam.labels(stage="sweep").observe(3.0)
        text = reg.to_prometheus()
        assert 'ops_count{stage="sweep"} 1' in text
        assert 'ops_sum{stage="sweep"} 3' in text

    def test_inf_bucket_always_present(self):
        """The +Inf bucket must exist with cumulative == _count even
        when no observation overflowed the finite bounds — and on an
        empty histogram, with cumulative 0."""
        reg = MetricsRegistry()
        h = reg.histogram("small", min_exp=0, max_exp=10)
        h.observe(2.0)  # lands well inside the finite buckets
        reg.histogram("empty", min_exp=0, max_exp=10)
        text = reg.to_prometheus()
        assert 'small_bucket{le="+Inf"} 1' in text
        assert 'empty_bucket{le="+Inf"} 0' in text

    def test_inf_bucket_not_duplicated_when_overflowed(self):
        reg = MetricsRegistry()
        h = reg.histogram("wide", min_exp=0, max_exp=2)
        h.observe(100.0)  # overflows 2**2, lands in +Inf natively
        text = reg.to_prometheus()
        assert text.count('wide_bucket{le="+Inf"}') == 1
        assert 'wide_bucket{le="+Inf"} 1' in text

    def test_label_value_escaping(self):
        """Backslash, double quote, and newline must be escaped in
        label values (the format's three mandated escapes)."""
        reg = MetricsRegistry()
        fam = reg.counter("odd_total", labels=("path",))
        fam.labels(path='C:\\tmp\\"a"\nb').inc()
        text = reg.to_prometheus()
        assert 'odd_total{path="C:\\\\tmp\\\\\\"a\\"\\nb"} 1' in text
        # The raw (unescaped) forms must not leak into the exposition.
        assert "\n".join(
            line for line in text.splitlines() if "odd_total{" in line
        ).count("\n") == 0

    def test_label_escaping_in_snapshot_and_buckets(self):
        reg = MetricsRegistry()
        fam = reg.histogram("h", labels=("q",), min_exp=0, max_exp=4)
        fam.labels(q='say "hi"').observe(1.0)
        snap = reg.snapshot()
        assert 'h_count{q="say \\"hi\\""}' in snap
        assert any(
            key.startswith('h_bucket{q="say \\"hi\\""')
            for key in snap
        )
