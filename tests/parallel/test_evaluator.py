"""Unit tests for the :class:`ShardedSweepEvaluator` facade.

The differential suite proves answer equality; these tests pin down
the facade contract — error surfaces, idempotence, metrics, and the
public wiring entry points.
"""

import math

import pytest

from repro.core.api import (
    ContinuousQuerySession,
    evaluate_knn,
    evaluate_multiknn,
    evaluate_within,
)
from repro.geometry.intervals import Interval
from repro.gdist.euclidean import SquaredEuclideanDistance
from repro.obs import Instrumentation
from repro.parallel.backends import ProcessPoolBackend, resolve_backend
from repro.parallel.evaluator import ShardedSweepEvaluator
from repro.workloads.generator import UpdateStream, random_linear_mod

ORIGIN = SquaredEuclideanDistance([0.0, 0.0])


def _db(count=8, seed=3):
    return random_linear_mod(count, seed=seed, extent=30.0, speed=4.0)


class TestFacadeContract:
    def test_cannot_sweep_backwards(self):
        db = _db()
        ev = ShardedSweepEvaluator.knn(db, ORIGIN, k=1, until=50.0, shards=2)
        ev.advance_to(10.0)
        with pytest.raises(ValueError, match="backwards"):
            ev.advance_to(5.0)
        ev.shutdown()

    def test_answer_requires_finalize(self):
        db = _db()
        ev = ShardedSweepEvaluator.knn(db, ORIGIN, k=1, until=50.0, shards=2)
        with pytest.raises(RuntimeError, match="finalize"):
            ev.answer()
        ev.shutdown()

    def test_update_after_finalize_rejected(self):
        db = _db()
        ev = ShardedSweepEvaluator.knn(db, ORIGIN, k=1, until=20.0, shards=2)
        db.subscribe(ev.on_update)
        ev.advance_to(20.0)
        ev.finalize()
        with pytest.raises(RuntimeError, match="finalized"):
            db.create("x", 21.0, position=[0.0, 0.0], velocity=[0.0, 0.0])
        db.unsubscribe(ev.on_update)

    def test_finalize_is_idempotent(self):
        db = _db()
        ev = ShardedSweepEvaluator.knn(db, ORIGIN, k=2, until=15.0, shards=3)
        ev.advance_to(15.0)
        ev.finalize()
        first = ev.answer()
        ev.finalize()
        assert ev.answer() is first

    def test_run_to_end_requires_finite_horizon(self):
        db = _db()
        ev = ShardedSweepEvaluator.knn(db, ORIGIN, k=1, shards=2)
        with pytest.raises(ValueError):
            ev.run_to_end()
        ev.shutdown()

    def test_members_for_validates_k(self):
        db = _db()
        ev = ShardedSweepEvaluator.knn(db, ORIGIN, k=2, until=50.0, shards=2)
        ev.advance_to(5.0)
        assert len(ev.members_for(1)) == 1
        with pytest.raises(ValueError, match="exceeds"):
            ev.members_for(3)
        ev.shutdown()

    def test_members_for_rejected_in_within_mode(self):
        db = _db()
        ev = ShardedSweepEvaluator.within(
            db, ORIGIN, 20.0, until=50.0, shards=2
        )
        with pytest.raises(ValueError):
            ev.members_for(1)
        ev.shutdown()

    def test_multiknn_answer_requires_k(self):
        db = _db()
        ev = ShardedSweepEvaluator.multiknn(
            db, ORIGIN, ks=(1, 3), until=10.0, shards=2
        )
        ev.run_to_end()
        with pytest.raises(ValueError):
            ev.answer()
        assert set(ev.answers()) == {1, 3}
        assert ev.answer(k=3) is ev.answers()[3]

    def test_answers_is_multiknn_only(self):
        db = _db()
        ev = ShardedSweepEvaluator.knn(db, ORIGIN, k=1, until=10.0, shards=2)
        ev.run_to_end()
        with pytest.raises(ValueError):
            ev.answers()

    def test_shutdown_is_idempotent(self):
        db = _db()
        ev = ShardedSweepEvaluator.knn(db, ORIGIN, k=1, until=10.0, shards=2)
        ev.shutdown()
        ev.shutdown()

    def test_clock_tracks_updates_and_probes(self):
        db = _db()
        start = db.last_update_time
        ev = ShardedSweepEvaluator.knn(db, ORIGIN, k=1, until=100.0, shards=2)
        db.subscribe(ev.on_update)
        assert ev.current_time == start
        stream = UpdateStream(db, seed=9, mean_gap=1.0, extent=30.0, speed=4.0)
        stream.step()
        assert ev.current_time == db.last_update_time
        ev.advance_to(db.last_update_time + 5.0)
        assert ev.current_time == db.last_update_time + 5.0
        db.unsubscribe(ev.on_update)
        ev.shutdown()

    def test_batching_defers_shard_work_until_read(self):
        db = _db()
        ev = ShardedSweepEvaluator.knn(
            db, ORIGIN, k=1, until=100.0, shards=2, batch_size=16
        )
        db.subscribe(ev.on_update)
        stream = UpdateStream(db, seed=4, mean_gap=0.5, extent=30.0, speed=4.0)
        for _ in range(5):
            stream.step()
        assert ev.pending == 5
        ev.members  # any read flushes
        assert ev.pending == 0
        assert ev.batch_stats.applied == 5
        db.unsubscribe(ev.on_update)
        ev.shutdown()


class TestMetrics:
    def test_counters_and_gauges_register(self):
        instr = Instrumentation()
        db = _db()
        ev = ShardedSweepEvaluator.knn(
            db, ORIGIN, k=1, until=30.0, shards=3, batch_size=2, observe=instr
        )
        db.subscribe(ev.on_update)
        stream = UpdateStream(db, seed=5, mean_gap=0.6, extent=30.0, speed=4.0)
        for _ in range(6):
            stream.step()
        ev.advance_to(30.0)
        ev.finalize()
        text = instr.metrics.to_prometheus()
        assert "sharded_updates_total" in text
        assert "sharded_batches_total" in text
        assert "sharded_shard_count 3" in text
        assert "sharded_merge_candidates" in text
        snap = instr.metrics.snapshot()
        updates = sum(
            v
            for key, v in snap.items()
            if key.startswith("sharded_updates_total")
        )
        assert updates == 6
        db.unsubscribe(ev.on_update)

    def test_operation_counts_aggregate_across_shards(self):
        db = _db(12, seed=8)
        window = Interval(db.last_update_time, db.last_update_time + 20.0)
        single = evaluate_knn(db, ORIGIN, window, k=1)  # noqa: F841
        ev = ShardedSweepEvaluator.knn(
            db, ORIGIN, k=1, until=window.hi, shards=4
        )
        ev.run_to_end()
        counts = ev.operation_counts()
        assert counts, "finalized evaluator must report op counts"
        assert ev.primitive_ops() == counts["total"]
        assert counts["total"] == sum(
            v for op, v in counts.items() if op != "total"
        )


class TestBackends:
    def test_resolve_known_names(self):
        assert resolve_backend(None).name == "sequential"
        assert resolve_backend("sequential").name == "sequential"
        assert isinstance(resolve_backend("process"), ProcessPoolBackend)
        custom = ProcessPoolBackend()
        assert resolve_backend(custom) is custom

    def test_resolve_rejects_unknown(self):
        with pytest.raises(ValueError):
            resolve_backend("threads")

    def test_backend_name_property(self):
        db = _db()
        ev = ShardedSweepEvaluator.knn(db, ORIGIN, k=1, until=5.0, shards=2)
        assert ev.backend_name == "sequential"
        ev.shutdown()


class TestPublicWiring:
    def test_evaluate_functions_accept_shards(self):
        db = _db(10, seed=12)
        window = Interval(db.last_update_time, db.last_update_time + 15.0)
        assert evaluate_knn(db, ORIGIN, window, k=2, shards=3).approx_equals(
            evaluate_knn(db, ORIGIN, window, k=2), atol=1e-6
        )
        assert evaluate_within(
            db, ORIGIN, window, distance=150.0, shards=3
        ).approx_equals(
            evaluate_within(db, ORIGIN, window, distance=150.0), atol=1e-6
        )
        sharded = evaluate_multiknn(db, ORIGIN, window, ks=(1, 2), shards=3)
        plain = evaluate_multiknn(db, ORIGIN, window, ks=(1, 2))
        assert set(sharded) == set(plain) == {1, 2}
        for k in (1, 2):
            assert sharded[k].approx_equals(plain[k], atol=1e-6)

    def test_session_fronts_sharded_evaluator(self):
        def twin():
            return _db(8, seed=14)

        db_a, db_b = twin(), twin()
        plain = ContinuousQuerySession.knn(db_a, ORIGIN, k=2)
        sharded = ContinuousQuerySession.knn(db_b, ORIGIN, k=2, shards=3)
        sa = UpdateStream(db_a, seed=15, mean_gap=1.0, extent=30.0, speed=4.0)
        sb = UpdateStream(db_b, seed=15, mean_gap=1.0, extent=30.0, speed=4.0)
        for _ in range(8):
            sa.step()
            sb.step()
        end = max(db_a.last_update_time, db_b.last_update_time) + 3.0
        assert sharded.close(at=end).approx_equals(
            plain.close(at=end), atol=1e-5
        )

    def test_top_level_export(self):
        import repro

        assert repro.ShardedSweepEvaluator is ShardedSweepEvaluator
        assert callable(repro.evaluate_multiknn)


class TestSpecValidation:
    def test_shard_count_must_be_positive(self):
        db = _db()
        with pytest.raises(ValueError):
            ShardedSweepEvaluator.knn(db, ORIGIN, k=1, shards=0)

    def test_within_squares_point_query_threshold(self):
        db = _db(10, seed=20)
        window = Interval(db.last_update_time, db.last_update_time + 10.0)
        # Point-query form: evaluate_within squares the distance; a raw
        # GDistance threshold passes through as-is.  Both entry points
        # must agree through the sharded path.
        as_point = evaluate_within(
            db, [0.0, 0.0], window, distance=12.0, shards=2
        )
        as_gdist = evaluate_within(
            db, ORIGIN, window, distance=144.0, shards=2
        )
        assert as_point.approx_equals(as_gdist, atol=1e-9)

    def test_infinite_horizon_until_default(self):
        db = _db()
        ev = ShardedSweepEvaluator.knn(db, ORIGIN, k=1, shards=2)
        assert math.isinf(ev._spec.hi)
        ev.shutdown()
