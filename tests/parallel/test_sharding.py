"""Unit tests for hash partitioning and per-shard batching."""

import pytest

from repro.mod.updates import ChangeDirection, New
from repro.geometry.vectors import Vector
from repro.parallel.batching import BatchedUpdateApplier
from repro.parallel.sharding import partition_database, partition_oids, shard_of
from repro.workloads.generator import random_linear_mod


class TestShardOf:
    def test_single_shard_is_always_zero(self):
        assert shard_of("anything", 1) == 0
        assert shard_of(42, 1) == 0

    def test_deterministic_within_and_across_calls(self):
        oids = [f"o{i}" for i in range(200)] + [7, 19, (1, 2), True, 2.5]
        for oid in oids:
            assert shard_of(oid, 8) == shard_of(oid, 8)
            assert 0 <= shard_of(oid, 8) < 8

    def test_stable_under_subprocess_hash_salt(self):
        """CRC-based routing must not depend on Python's per-process
        hash salt (the process backend routes in the parent)."""
        import subprocess
        import sys

        script = (
            "import sys; sys.path.insert(0, 'src');"
            "from repro.parallel.sharding import shard_of;"
            "print([shard_of(f'o{i}', 8) for i in range(50)])"
        )
        local = [shard_of(f"o{i}", 8) for i in range(50)]
        for salt in ("1", "2"):
            out = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                check=True,
                env={"PYTHONHASHSEED": salt, "PATH": "/usr/bin:/bin"},
                cwd="/root/repo",
            ).stdout.strip()
            assert out == str(local), f"routing drifted under seed {salt}"

    def test_rejects_nonpositive_shard_count(self):
        with pytest.raises(ValueError):
            shard_of("x", 0)

    def test_spreads_uniformly_enough(self):
        counts = [0] * 8
        for i in range(4000):
            counts[shard_of(f"obj-{i}", 8)] += 1
        assert min(counts) > 4000 // 8 * 0.7


class TestPartition:
    def test_partition_oids_disjoint_and_complete(self):
        oids = [f"o{i}" for i in range(100)]
        parts = partition_oids(oids, 7)
        seen = [oid for bucket in parts.values() for oid in bucket]
        assert sorted(seen) == sorted(oids)
        for shard, bucket in parts.items():
            for oid in bucket:
                assert shard_of(oid, 7) == shard

    def test_partition_database_preserves_every_object(self):
        db = random_linear_mod(24, seed=5)
        parts = partition_database(db, 5)
        assert len(parts) == 5
        merged = {}
        for part in parts:
            for oid, traj in part.all_items():
                assert oid not in merged, "object appears in two shards"
                merged[oid] = traj
        assert merged == dict(db.all_items())

    def test_shard_databases_start_at_source_tau(self):
        db = random_linear_mod(10, seed=6)
        for part in partition_database(db, 3):
            assert part.last_update_time == db.last_update_time

    def test_trajectories_are_shared_not_copied(self):
        db = random_linear_mod(6, seed=7)
        parts = partition_database(db, 2)
        originals = dict(db.all_items())
        for part in parts:
            for oid, traj in part.all_items():
                assert traj is originals[oid]


def _u(oid, t):
    return ChangeDirection(oid, t, Vector.of(1.0, 0.0))


class TestBatchedUpdateApplier:
    def _applier(self, batch_size):
        applied = []
        applier = BatchedUpdateApplier(
            router=lambda u: shard_of(u.oid, 4),
            apply=lambda shard, batch: applied.append((shard, list(batch))),
            batch_size=batch_size,
        )
        return applier, applied

    def test_batch_size_one_flushes_every_submit(self):
        applier, applied = self._applier(1)
        assert applier.submit(_u("a", 1.0)) is True
        assert applier.submit(_u("b", 2.0)) is True
        assert applier.pending == 0
        assert len(applied) == 2
        assert applier.stats.flushes == 2

    def test_buffers_until_threshold(self):
        applier, applied = self._applier(3)
        assert applier.submit(_u("a", 1.0)) is False
        assert applier.submit(_u("b", 2.0)) is False
        assert applier.pending == 2
        assert applied == []
        assert applier.submit(_u("c", 3.0)) is True
        assert applier.pending == 0
        assert applier.stats.flushes == 1
        assert applier.stats.max_batch == 3

    def test_subbatches_preserve_chronological_order(self):
        applier, applied = self._applier(16)
        updates = [_u(f"o{i % 5}", float(i)) for i in range(12)]
        for update in updates:
            applier.submit(update)
        applier.flush()
        for shard, batch in applied:
            times = [u.time for u in batch]
            assert times == sorted(times), f"shard {shard} out of order"
            for u in batch:
                assert shard_of(u.oid, 4) == shard

    def test_flush_applies_shards_in_ascending_order(self):
        applier, applied = self._applier(64)
        for i in range(30):
            applier.submit(_u(f"x{i}", float(i)))
        applier.flush()
        shards = [shard for shard, _ in applied]
        assert shards == sorted(shards)

    def test_stats_account_for_everything(self):
        applier, _ = self._applier(4)
        for i in range(10):
            applier.submit(_u(f"o{i}", float(i)))
        applier.flush()
        stats = applier.stats
        assert stats.submitted == 10
        assert stats.applied == 10
        assert sum(stats.per_shard.values()) == 10
        assert stats.flushes == 3  # two automatic + one explicit
        assert stats.max_batch == 4

    def test_empty_flush_is_a_noop(self):
        applier, applied = self._applier(8)
        assert applier.flush() == 0
        assert applier.stats.flushes == 0
        assert applied == []

    def test_rejects_nonpositive_batch_size(self):
        with pytest.raises(ValueError):
            BatchedUpdateApplier(lambda u: 0, lambda s, b: None, batch_size=0)
