"""Resilience regressions for the sharded evaluation path.

Three guarantees the parallel layer must not erode:

- a WAL ``recover()``-ed database replayed into a
  :class:`ShardedSweepEvaluator` answers exactly like a single engine
  over the same recovered state;
- with ``self_heal=True`` a poisoned update rebuilds only the shard it
  routes to — every other shard keeps its engine untouched;
- :class:`SupervisedQuerySession` fronting a sharded evaluator still
  survives the probe/update race by whole-evaluator rebuild.
"""

import math
import os

from repro.core.api import ContinuousQuerySession, evaluate_knn
from repro.geometry.intervals import Interval
from repro.geometry.vectors import Vector
from repro.gdist.euclidean import SquaredEuclideanDistance
from repro.mod.database import MovingObjectDatabase
from repro.mod.updates import New
from repro.parallel.evaluator import ShardedSweepEvaluator
from repro.parallel.sharding import shard_of
from repro.resilience.ingest import IngestPipeline
from repro.resilience.supervisor import SupervisedQuerySession
from repro.resilience.wal import WAL_FILENAME, WriteAheadLog, recover
from repro.workloads.generator import (
    UpdateStream,
    random_linear_mod,
    recorded_future_workload,
)

ORIGIN = SquaredEuclideanDistance([0.0, 0.0])


class TestWalRecoveryIntoShardedEvaluator:
    def _crashed_wal(self, tmp_path, count=10, updates=20, seed=11):
        """Log a seeded stream to a WAL, then 'crash' with a torn tail."""
        wal_dir = str(tmp_path)
        db, _ = recorded_future_workload(
            count, updates, seed=seed, extent=30.0, speed=4.0
        )
        wal = WriteAheadLog(wal_dir)
        for update in db.log.updates:
            wal.append(update)
        wal.close()
        with open(os.path.join(wal_dir, WAL_FILENAME), "ab") as handle:
            handle.write(b'{"kind": "chdir", "oid": "tru')  # torn line
        return wal_dir, db

    def test_recovered_db_answers_identically_sharded(self, tmp_path):
        wal_dir, original = self._crashed_wal(tmp_path)
        recovered, log = recover(wal_dir)
        assert log.updates, "recovery found no intact WAL entries"
        assert recovered.last_update_time == original.last_update_time
        start = recovered.last_update_time
        window = Interval(start, start + 12.0)
        single = evaluate_knn(recovered, ORIGIN, window, k=2)
        for shards in (2, 5):
            sharded = evaluate_knn(recovered, ORIGIN, window, k=2, shards=shards)
            assert sharded.approx_equals(single, atol=1e-6), f"S={shards}"

    def test_replaying_recovered_log_into_sharded_session(self, tmp_path):
        """The recovered WAL suffix streamed through a live sharded
        session matches the same replay through a single engine."""
        wal_dir, _ = self._crashed_wal(tmp_path, count=8, seed=23)
        recovered, log = recover(wal_dir)
        tau = recovered.last_update_time

        # Rebuild two independent prefix states at the first post-WAL
        # checkpointable instant and stream the remaining WAL entries
        # live into each evaluation path.
        prefix = [u for u in log.updates if u.time <= tau - 4.0]
        suffix = [u for u in log.updates if u.time > tau - 4.0]
        assert prefix and suffix

        def prefix_db():
            db = MovingObjectDatabase(initial_time=-math.inf)
            for update in prefix:
                db.apply(update)
            return db

        horizon = tau + 6.0
        db_single = prefix_db()
        session = ContinuousQuerySession.knn(
            db_single, ORIGIN, k=1, until=horizon
        )
        db_sharded = prefix_db()
        evaluator = ShardedSweepEvaluator.knn(
            db_sharded, ORIGIN, k=1, until=horizon, shards=3, batch_size=4
        )
        db_sharded.subscribe(evaluator.on_update)
        for update in suffix:
            db_single.apply(update)
            db_sharded.apply(update)
        single_answer = session.close(at=horizon)
        evaluator.advance_to(horizon)
        evaluator.finalize()
        assert evaluator.answer().approx_equals(single_answer, atol=1e-6)


class TestShardLocalSelfHealing:
    def _db(self):
        db = MovingObjectDatabase(initial_time=0.0)
        for i in range(12):
            db.apply(
                New(
                    f"o{i}",
                    0.01 * (i + 1),
                    velocity=Vector.of(0.4 * (i % 5) - 1.0, 0.2),
                    position=Vector.of(2.0 * i - 11.0, 1.0),
                )
            )
        return db

    def test_poisoned_update_rebuilds_only_its_shard(self):
        shards = 4
        db = self._db()
        evaluator = ShardedSweepEvaluator.knn(
            db, ORIGIN, k=2, until=40.0, shards=shards, self_heal=True
        )
        db.subscribe(evaluator.on_update)
        evaluator.advance_to(10.0)
        engines_before = [
            host.runtime.engine for host in evaluator._hosts
        ]
        # Valid for the database (tau ~ 0.12) but in the past for every
        # shard engine (swept to t=10): a probe/update race in one shard.
        late = New(
            "late", 5.0, velocity=Vector.of(0.0, 0.0), position=Vector.of(1.0, 0.0)
        )
        victim = shard_of("late", shards)
        db.apply(late)
        evaluator.flush()
        assert evaluator.rebuilds == 1
        for shard, before in enumerate(engines_before):
            now = evaluator._hosts[shard].runtime.engine
            if shard == victim:
                assert now is not before, "poisoned shard must rebuild"
            else:
                assert now is before, f"shard {shard} must be untouched"
        # The healed evaluator keeps answering and matches a clean
        # single-engine run over the same final database.
        evaluator.advance_to(40.0)
        evaluator.finalize()
        clean = evaluate_knn(
            self._reference_db(), ORIGIN, Interval(0.12, 40.0), k=2
        )
        assert evaluator.answer().approx_equals(clean, atol=1e-6)

    def _reference_db(self):
        """The post-heal truth: all 12 objects plus the late arrival."""
        db = self._db()
        db.apply(
            New("late", 5.0, velocity=Vector.of(0.0, 0.0), position=Vector.of(1.0, 0.0))
        )
        return db

    def test_without_self_heal_the_failure_propagates(self):
        import pytest

        db = self._db()
        evaluator = ShardedSweepEvaluator.knn(
            db, ORIGIN, k=1, until=40.0, shards=3, self_heal=False
        )
        db.subscribe(evaluator.on_update)
        evaluator.advance_to(10.0)
        with pytest.raises(ValueError):
            db.apply(
                New(
                    "late",
                    5.0,
                    velocity=Vector.of(0.0, 0.0),
                    position=Vector.of(1.0, 0.0),
                )
            )


class TestSupervisedShardedSession:
    def test_probe_update_race_rebuilds_whole_evaluator(self):
        db = MovingObjectDatabase()
        db.create("far", 0.5, position=[100.0, 0.0], velocity=[0.0, 0.0])
        session = SupervisedQuerySession.knn(db, [0.0, 0.0], k=1, shards=3)
        session.advance_to(10.0)
        db.create("late", 5.0, position=[1.0, 0.0], velocity=[0.0, 0.0])
        assert session.stats.failures == 1
        assert session.stats.rebuilds == 1
        db.create("later", 6.0, position=[0.5, 0.0], velocity=[0.0, 0.0])
        assert session.advance_to(7.0) == {"later"}
        session.close()

    def test_supervised_sharded_matches_plain_single(self):
        def twin():
            return random_linear_mod(8, seed=17, extent=40.0, speed=5.0)

        db_clean, db_faulty = twin(), twin()
        clean = ContinuousQuerySession.knn(db_clean, [0.0, 0.0], k=2)
        supervised = SupervisedQuerySession.knn(
            db_faulty, [0.0, 0.0], k=2, shards=3, batch_size=2
        )
        stream_clean = UpdateStream(
            db_clean, seed=18, mean_gap=1.0, extent=40.0, speed=5.0
        )
        stream_faulty = UpdateStream(
            db_faulty, seed=18, mean_gap=1.0, extent=40.0, speed=5.0
        )
        for i in range(12):
            stream_clean.step()
            stream_faulty.step()
            if i == 6:
                # Race: probe far ahead, then let the streams continue
                # in the past of the supervised evaluator.
                supervised.advance_to(db_faulty.last_update_time + 30.0)
        assert supervised.stats.failures >= 1
        assert supervised.stats.rebuilds >= 1
        end = max(db_clean.last_update_time, db_faulty.last_update_time) + 5.0
        assert supervised.close(at=end).approx_equals(
            clean.close(at=end), atol=1e-5
        )


class TestIngestIntoShardedEvaluator:
    def test_pipeline_flush_drains_evaluator_batches(self):
        recorded, _ = recorded_future_workload(
            6, 16, seed=31, extent=30.0, speed=4.0
        )
        updates = list(recorded.log.updates)  # full history incl. creation
        seed_prefix, live = updates[:8], updates[8:]
        db = MovingObjectDatabase(initial_time=-math.inf)
        for update in seed_prefix:
            db.apply(update)
        horizon = updates[-1].time + 5.0
        evaluator = ShardedSweepEvaluator.knn(
            db, ORIGIN, k=1, until=horizon, shards=2, batch_size=8
        )
        pipe = IngestPipeline(db, policy="strict")
        pipe.attach_evaluator(evaluator)
        for update in live:
            assert pipe.submit(update) == "applied"
        pipe.flush()
        assert evaluator.pending == 0
        evaluator.advance_to(horizon)
        evaluator.finalize()

        # The drained evaluator matches lazy evaluation over the same
        # final database state.
        reference = MovingObjectDatabase(initial_time=-math.inf)
        for update in updates:
            reference.apply(update)
        start = seed_prefix[-1].time
        truth = evaluate_knn(reference, ORIGIN, Interval(start, horizon), k=1)
        assert evaluator.answer().approx_equals(truth, atol=1e-6)
