"""Randomized differential tests: server vs sharded vs single vs naive.

Every seeded scenario drives one identical update stream through the
naive O(N^2) baseline, a single eager :class:`SweepEngine`,
:class:`ShardedSweepEvaluator` at S in {1, 2, 7}, and a shared
:class:`~repro.server.QueryServer` session co-registered with tenants
of every other query kind — asserting that the final snapshot answers
and the instant answer sets at every probe time are equal across all
four paths, for kNN, within-range, and multiknn.

210 seeded cases run by default (90 kNN + 60 within + 60 multiknn);
the process-pool backend is exercised on a smaller seed slice since
each evaluator spawns per-shard worker processes.
"""

import pytest

from tests._oracle import (
    KNN,
    MULTIKNN,
    WITHIN,
    answers_equal,
    assert_probes_equal,
    generate_scenario,
    run_naive,
    run_server,
    run_sharded,
    run_single,
)

SHARD_COUNTS = (1, 2, 7)

KNN_SEEDS = range(0, 90)
WITHIN_SEEDS = range(1000, 1060)
MULTIKNN_SEEDS = range(2000, 2060)
PROCESS_SEEDS = (3, 1017, 2042)


def _differential(
    seed: int,
    mode: str,
    backend="sequential",
    shard_counts=SHARD_COUNTS,
    server=True,
):
    sc = generate_scenario(seed)
    naive_final, naive_probes = run_naive(sc, mode)
    single_final, single_probes = run_single(sc, mode)
    assert answers_equal(
        single_final, naive_final
    ), f"seed {seed}: single engine disagrees with naive baseline"
    assert_probes_equal(single_probes, naive_probes, f"seed {seed} single")
    for shards in shard_counts:
        batch = 1 + (seed + shards) % 4  # vary batching across seeds
        sharded_final, sharded_probes = run_sharded(
            sc, mode, shards, backend=backend, batch_size=batch
        )
        label = f"seed {seed} S={shards} batch={batch} {backend}"
        assert answers_equal(
            sharded_final, single_final
        ), f"{label}: sharded disagrees with single engine"
        assert answers_equal(
            sharded_final, naive_final
        ), f"{label}: sharded disagrees with naive baseline"
        assert_probes_equal(sharded_probes, naive_probes, label)
        if not server:
            continue
        server_final, server_probes = run_server(
            sc, mode, shards=shards, batch_size=batch
        )
        label = f"seed {seed} server S={shards} batch={batch}"
        assert answers_equal(
            server_final, single_final
        ), f"{label}: shared server disagrees with single engine"
        assert answers_equal(
            server_final, naive_final
        ), f"{label}: shared server disagrees with naive baseline"
        assert_probes_equal(server_probes, naive_probes, label)


@pytest.mark.parametrize("seed", KNN_SEEDS)
def test_knn_differential(seed):
    _differential(seed, KNN)


@pytest.mark.parametrize("seed", WITHIN_SEEDS)
def test_within_differential(seed):
    _differential(seed, WITHIN)


@pytest.mark.parametrize("seed", MULTIKNN_SEEDS)
def test_multiknn_differential(seed):
    _differential(seed, MULTIKNN)


@pytest.mark.parametrize("seed", PROCESS_SEEDS)
def test_process_backend_differential(seed):
    """The process-pool backend produces the same answers (small seed
    slice: every run spins up one worker process per shard)."""
    mode = (KNN, WITHIN, MULTIKNN)[seed % 3]
    _differential(seed, mode, backend="process", shard_counts=(2,), server=False)
