"""Unit tests for the FO(f) formula AST."""

import pytest

from repro.query.formula import (
    And,
    Compare,
    Const,
    Dist,
    Exists,
    ForAll,
    Not,
    ObjEq,
    Or,
)


def values_from(table):
    """values(oid, tt) from {oid: value} (single time term)."""

    def fn(oid, tt_index):
        assert tt_index == 0
        return table[oid]

    return fn


class TestRealTerms:
    def test_dist_evaluate(self):
        v = values_from({"a": 3.0})
        assert Dist("y").evaluate({"y": "a"}, v) == 3.0

    def test_dist_unbound_raises(self):
        v = values_from({})
        with pytest.raises(KeyError):
            Dist("y").evaluate({}, v)

    def test_const(self):
        assert Const(5.0).evaluate({}, values_from({})) == 5.0
        assert Const(5.0).free_vars() == frozenset()

    def test_dist_free_vars(self):
        assert Dist("z").free_vars() == frozenset({"z"})


class TestCompare:
    def test_predicates(self):
        v = values_from({"a": 1.0, "b": 2.0})
        env = {"y": "a", "z": "b"}
        oids = ["a", "b"]
        assert Compare(Dist("y"), "<", Dist("z")).holds(env, oids, v)
        assert Compare(Dist("y"), "<=", Dist("z")).holds(env, oids, v)
        assert not Compare(Dist("y"), "=", Dist("z")).holds(env, oids, v)
        assert not Compare(Dist("y"), ">=", Dist("z")).holds(env, oids, v)
        assert Compare(Dist("z"), ">", Dist("y")).holds(env, oids, v)

    def test_equality_tolerance(self):
        v = values_from({"a": 1.0, "b": 1.0 + 1e-12})
        assert Compare(Dist("y"), "=", Dist("z")).holds(
            {"y": "a", "z": "b"}, ["a", "b"], v
        )

    def test_constants_collected(self):
        f = Compare(Dist("y"), "<=", Const(42.0))
        assert f.constants() == frozenset({42.0})

    def test_unknown_predicate_rejected(self):
        with pytest.raises(ValueError):
            Compare(Dist("y"), "!=", Const(0.0))

    def test_time_term_indices(self):
        f = Compare(Dist("y", 2), "<", Dist("y", 0))
        assert f.time_term_indices() == frozenset({0, 2})


class TestConnectives:
    def setup_method(self):
        self.v = values_from({"a": 1.0, "b": 2.0})
        self.oids = ["a", "b"]
        self.low = Compare(Dist("y"), "<=", Const(1.5))
        self.high = Compare(Dist("y"), ">", Const(1.5))

    def test_not(self):
        env = {"y": "a"}
        assert Not(self.high).holds(env, self.oids, self.v)

    def test_and_or(self):
        env = {"y": "a"}
        assert And(self.low, Not(self.high)).holds(env, self.oids, self.v)
        assert Or(self.high, self.low).holds(env, self.oids, self.v)
        assert not And(self.low, self.high).holds(env, self.oids, self.v)

    def test_operator_sugar(self):
        env = {"y": "a"}
        assert (self.low & ~self.high).holds(env, self.oids, self.v)
        assert (self.high | self.low).holds(env, self.oids, self.v)

    def test_empty_connective_rejected(self):
        with pytest.raises(ValueError):
            And()

    def test_equality_and_hash(self):
        assert And(self.low, self.high) == And(self.low, self.high)
        assert And(self.low) != Or(self.low)
        assert hash(And(self.low)) != hash(Or(self.low))

    def test_free_vars_union(self):
        f = And(Compare(Dist("y"), "<", Dist("z")), self.low)
        assert f.free_vars() == frozenset({"y", "z"})


class TestQuantifiers:
    def test_forall(self):
        v = values_from({"a": 1.0, "b": 2.0})
        nearest = ForAll("z", Compare(Dist("y"), "<=", Dist("z")))
        assert nearest.holds({"y": "a"}, ["a", "b"], v)
        assert not nearest.holds({"y": "b"}, ["a", "b"], v)

    def test_exists(self):
        v = values_from({"a": 1.0, "b": 2.0})
        farther = Exists("z", Compare(Dist("z"), ">", Dist("y")))
        assert farther.holds({"y": "a"}, ["a", "b"], v)
        assert not farther.holds({"y": "b"}, ["a", "b"], v)

    def test_free_vars_bound(self):
        f = ForAll("z", Compare(Dist("y"), "<=", Dist("z")))
        assert f.free_vars() == frozenset({"y"})

    def test_quantifier_equality(self):
        body = Compare(Dist("y"), "<=", Dist("z"))
        assert ForAll("z", body) == ForAll("z", body)
        assert ForAll("z", body) != Exists("z", body)

    def test_nested_shadowing(self):
        v = values_from({"a": 1.0, "b": 2.0})
        inner = Exists("z", Compare(Dist("z"), "=", Dist("z")))
        f = ForAll("z", And(Compare(Dist("z"), "<=", Const(10.0)), inner))
        assert f.holds({}, ["a", "b"], v)
        assert f.free_vars() == frozenset()


class TestObjEq:
    def test_equality(self):
        v = values_from({"a": 1.0, "b": 2.0})
        assert ObjEq("y", "z").holds({"y": "a", "z": "a"}, ["a", "b"], v)
        assert not ObjEq("y", "z").holds({"y": "a", "z": "b"}, ["a", "b"], v)

    def test_unbound_raises(self):
        with pytest.raises(KeyError):
            ObjEq("y", "z").holds({"y": "a"}, ["a"], values_from({}))

    def test_metadata(self):
        f = ObjEq("y", "z")
        assert f.free_vars() == frozenset({"y", "z"})
        assert f.constants() == frozenset()
        assert f.time_term_indices() == frozenset()
