"""Unit tests for Query construction and the standard query builders."""

import pytest

from repro.geometry.intervals import Interval
from repro.geometry.poly import Polynomial
from repro.query.formula import Compare, Const, Dist, ForAll
from repro.query.query import Query, knn_formula, knn_query, within_query


class TestQueryValidation:
    def test_basic(self):
        q = Query("y", Interval(0, 10), Compare(Dist("y"), "<=", Const(5.0)))
        assert q.constants == [5.0]

    def test_wrong_free_vars_rejected(self):
        with pytest.raises(ValueError):
            Query("y", Interval(0, 10), Compare(Dist("x"), "<=", Const(5.0)))

    def test_extra_free_vars_rejected(self):
        formula = Compare(Dist("y"), "<=", Dist("z"))
        with pytest.raises(ValueError):
            Query("y", Interval(0, 10), formula)

    def test_first_time_term_must_be_identity(self):
        with pytest.raises(ValueError):
            Query(
                "y",
                Interval(0, 10),
                Compare(Dist("y"), "<=", Const(5.0)),
                time_terms=(Polynomial([1.0, 2.0]),),
            )

    def test_undeclared_time_term_rejected(self):
        formula = Compare(Dist("y", 3), "<=", Const(5.0))
        with pytest.raises(ValueError):
            Query("y", Interval(0, 10), formula)

    def test_repr_mentions_description(self):
        q = within_query(Interval(0, 10), 25.0)
        assert "within" in repr(q)


class TestKnnFormula:
    def test_k1_is_example_10(self):
        f = knn_formula(1)
        assert isinstance(f, ForAll)

    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            knn_formula(0)

    def test_k2_semantics(self):
        """k=2: an object is in the answer iff at most one other object
        is strictly closer."""
        f = knn_formula(2)
        values = {"a": 1.0, "b": 2.0, "c": 3.0}

        def v(oid, tt):
            return values[oid]

        oids = ["a", "b", "c"]
        assert f.holds({"y": "a"}, oids, v)
        assert f.holds({"y": "b"}, oids, v)
        assert not f.holds({"y": "c"}, oids, v)

    def test_k3_semantics(self):
        f = knn_formula(3)
        values = {"a": 1.0, "b": 2.0, "c": 3.0, "d": 4.0}

        def v(oid, tt):
            return values[oid]

        oids = list(values)
        assert f.holds({"y": "c"}, oids, v)
        assert not f.holds({"y": "d"}, oids, v)


class TestBuilders:
    def test_knn_query(self):
        q = knn_query(Interval(0, 5), 2)
        assert q.description == "knn:2"
        assert q.interval == Interval(0, 5)

    def test_within_query(self):
        q = within_query(Interval(0, 5), 49.0)
        assert q.constants == [49.0]
