"""Unit tests for snapshot answers and the answer timeline."""

import pytest

from repro.geometry.intervals import Interval, IntervalSet
from repro.query.answers import (
    AnswerTimeline,
    SnapshotAnswer,
    snapshot_from_segments,
)


def sample_answer():
    return snapshot_from_segments(
        [("a", 0.0, 10.0), ("b", 2.0, 5.0), ("b", 7.0, 9.0)],
        Interval(0.0, 10.0),
    )


class TestSnapshotAnswer:
    def test_objects(self):
        assert sample_answer().objects == {"a", "b"}

    def test_intervals_for(self):
        answer = sample_answer()
        assert answer.intervals_for("b") == IntervalSet(
            [Interval(2.0, 5.0), Interval(7.0, 9.0)]
        )
        assert answer.intervals_for("zzz").is_empty

    def test_holds_at_and_at(self):
        answer = sample_answer()
        assert answer.holds_at("b", 3.0)
        assert not answer.holds_at("b", 6.0)
        assert answer.at(3.0) == {"a", "b"}
        assert answer.at(6.0) == {"a"}

    def test_accumulative(self):
        assert sample_answer().accumulative() == {"a", "b"}

    def test_persevering(self):
        assert sample_answer().persevering() == {"a"}

    def test_empty_memberships_dropped(self):
        answer = SnapshotAnswer({"x": IntervalSet()}, Interval(0, 1))
        assert answer.objects == set()

    def test_equality(self):
        assert sample_answer() == sample_answer()
        other = snapshot_from_segments([("a", 0.0, 10.0)], Interval(0.0, 10.0))
        assert sample_answer() != other

    def test_approx_equals(self):
        a = sample_answer()
        b = snapshot_from_segments(
            [("a", 0.0, 10.0), ("b", 2.0 + 1e-9, 5.0), ("b", 7.0, 9.0)],
            Interval(0.0, 10.0),
        )
        assert a.approx_equals(b)
        c = snapshot_from_segments(
            [("a", 0.0, 10.0), ("b", 2.5, 5.0), ("b", 7.0, 9.0)],
            Interval(0.0, 10.0),
        )
        assert not a.approx_equals(c)

    def test_approx_equals_different_objects(self):
        a = sample_answer()
        b = snapshot_from_segments([("a", 0.0, 10.0)], Interval(0.0, 10.0))
        assert not a.approx_equals(b)

    def test_repr_is_deterministic(self):
        assert repr(sample_answer()) == repr(sample_answer())


class TestAnswerTimeline:
    def test_open_close_cycle(self):
        tl = AnswerTimeline(Interval(0.0, 10.0))
        tl.open("a", 1.0)
        assert tl.is_open("a")
        assert tl.open_objects == {"a"}
        tl.close("a", 4.0)
        tl.finalize(10.0)
        answer = tl.result()
        assert answer.intervals_for("a") == IntervalSet([Interval(1.0, 4.0)])

    def test_double_open_rejected(self):
        tl = AnswerTimeline(Interval(0.0, 10.0))
        tl.open("a", 1.0)
        with pytest.raises(ValueError):
            tl.open("a", 2.0)

    def test_close_unopened_rejected(self):
        tl = AnswerTimeline(Interval(0.0, 10.0))
        with pytest.raises(ValueError):
            tl.close("a", 2.0)

    def test_result_requires_finalize(self):
        tl = AnswerTimeline(Interval(0.0, 10.0))
        with pytest.raises(RuntimeError):
            tl.result()

    def test_finalize_closes_open_segments(self):
        tl = AnswerTimeline(Interval(0.0, 10.0))
        tl.open("a", 3.0)
        tl.finalize(10.0)
        assert tl.result().intervals_for("a") == IntervalSet(
            [Interval(3.0, 10.0)]
        )

    def test_times_clamped_to_interval(self):
        tl = AnswerTimeline(Interval(0.0, 10.0))
        tl.open("a", -5.0)
        tl.close("a", 50.0)
        tl.finalize(10.0)
        assert tl.result().intervals_for("a") == IntervalSet(
            [Interval(0.0, 10.0)]
        )

    def test_instantaneous_membership_kept_as_point(self):
        tl = AnswerTimeline(Interval(0.0, 10.0))
        tl.open("a", 5.0)
        tl.close("a", 5.0)
        tl.finalize(10.0)
        assert tl.result().holds_at("a", 5.0)
