"""Tests for region residence analysis."""

import pytest

from repro.analysis.regions import (
    entry_times,
    occupancy,
    peak_occupancy,
    residence_set,
    residence_time,
)
from repro.constraints.regions import box, polygon
from repro.geometry.intervals import Interval, IntervalSet
from repro.mod.database import MovingObjectDatabase
from repro.trajectory.builder import from_waypoints, linear_from, stationary


STRIP = box([10.0, -5.0], [20.0, 5.0], name="strip")


class TestResidenceSet:
    def test_pass_through(self):
        traj = linear_from(0.0, [0.0, 0.0], [1.0, 0.0])
        inside = residence_set(traj, STRIP, Interval(0.0, 60.0))
        assert inside.approx_equals(IntervalSet([Interval(10.0, 20.0)]))

    def test_never_inside(self):
        traj = linear_from(0.0, [0.0, 50.0], [1.0, 0.0])
        assert residence_set(traj, STRIP, Interval(0.0, 60.0)).is_empty

    def test_always_inside(self):
        traj = stationary([15.0, 0.0])
        inside = residence_set(traj, STRIP, Interval(0.0, 60.0))
        assert inside.covers(Interval(0.0, 60.0))

    def test_multiple_visits(self):
        traj = from_waypoints(
            [(0, [0.0, 0.0]), (30, [30.0, 0.0]), (60, [0.0, 0.0])],
            extend=False,
        )
        inside = residence_set(traj, STRIP, Interval(0.0, 60.0))
        assert len(inside) == 2
        assert inside.contains(15.0)
        assert not inside.contains(30.0)
        assert inside.contains(45.0)

    def test_triangle_region(self):
        tri = polygon([(0, 0), (10, 0), (5, 10)])
        traj = linear_from(0.0, [-5.0, 3.0], [1.0, 0.0])
        inside = residence_set(traj, tri, Interval(0.0, 20.0))
        (iv,) = inside.intervals
        # At y=3 the triangle spans x in [1.5, 8.5]; x(t) = t - 5.
        assert iv.lo == pytest.approx(6.5)
        assert iv.hi == pytest.approx(13.5)

    def test_dimension_mismatch_rejected(self):
        traj = linear_from(0.0, [0.0, 0.0, 0.0], [1.0, 0.0, 0.0])
        with pytest.raises(ValueError):
            residence_set(traj, STRIP)

    def test_outside_window_empty(self):
        traj = from_waypoints([(0, [15.0, 0.0]), (1, [15.0, 0.0])], extend=False)
        assert residence_set(traj, STRIP, Interval(10.0, 20.0)).is_empty


class TestResidenceTime:
    def test_duration(self):
        traj = linear_from(0.0, [0.0, 0.0], [2.0, 0.0])
        assert residence_time(traj, STRIP, Interval(0.0, 60.0)) == pytest.approx(5.0)

    def test_unbounded_window_rejected(self):
        traj = stationary([15.0, 0.0])
        with pytest.raises(ValueError):
            residence_time(traj, STRIP, Interval.at_least(0.0))


class TestEntryTimes:
    def test_single_entry(self):
        traj = linear_from(0.0, [0.0, 0.0], [1.0, 0.0])
        assert entry_times(traj, STRIP, Interval(0.0, 60.0)) == pytest.approx([10.0])

    def test_starting_inside_is_not_an_entry(self):
        traj = stationary([15.0, 0.0], since=0.0)
        assert entry_times(traj, STRIP, Interval(0.0, 60.0)) == []

    def test_reentry_counted(self):
        traj = from_waypoints(
            [(0, [0.0, 0.0]), (30, [30.0, 0.0]), (60, [0.0, 0.0])],
            extend=False,
        )
        entries = entry_times(traj, STRIP, Interval(0.0, 60.0))
        assert entries == pytest.approx([10.0, 40.0])


class TestOccupancy:
    def build(self):
        db = MovingObjectDatabase()
        db.install("through", linear_from(0.0, [0.0, 0.0], [1.0, 0.0]))
        db.install("resident", stationary([15.0, 0.0]))
        db.install("remote", stationary([100.0, 100.0]))
        return db

    def test_occupancy_map(self):
        occ = occupancy(self.build(), STRIP, Interval(0.0, 60.0))
        assert set(occ) == {"through", "resident"}
        assert occ["resident"].covers(Interval(0.0, 60.0))

    def test_peak_occupancy(self):
        db = self.build()
        assert peak_occupancy(db, STRIP, Interval(0.0, 60.0)) == 2
        # Outside the pass-through window only the resident remains.
        assert peak_occupancy(db, STRIP, Interval(30.0, 60.0)) == 1

    def test_peak_empty_region(self):
        db = self.build()
        empty_far = box([1000.0, 1000.0], [1001.0, 1001.0])
        assert peak_occupancy(db, empty_far, Interval(0.0, 60.0)) == 0

    def test_agrees_with_folq_evaluator(self):
        """Residence analysis and the Section 3 evaluator agree on who
        is ever inside."""
        from repro.constraints.evaluator import TimelineEvaluator
        from repro.constraints.folq import ExistsTime, InRegion

        db = self.build()
        occ = set(occupancy(db, STRIP, Interval(0.0, 60.0)))
        ev = TimelineEvaluator(db)
        formula = ExistsTime("t", InRegion("y", "t", STRIP), within=(0.0, 60.0))
        assert ev.answer(formula, "y") == occ
