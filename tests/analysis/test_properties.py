"""Property-based tests for the analysis layer.

The closed-form analyses (closest approach, violation intervals) are
cross-checked against dense sampling on randomized trajectories.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.conflicts import closest_approach, separation_conflicts
from repro.analysis.regions import residence_set
from repro.constraints.regions import box
from repro.geometry.intervals import Interval
from repro.mod.database import MovingObjectDatabase
from repro.trajectory.builder import from_waypoints

WINDOW = Interval(0.0, 20.0)


def random_trajectory(rng, legs=3):
    waypoints = [(0.0, [rng.uniform(-30, 30), rng.uniform(-30, 30)])]
    t = 0.0
    for _ in range(legs):
        t += rng.uniform(3.0, 10.0)
        waypoints.append((t, [rng.uniform(-30, 30), rng.uniform(-30, 30)]))
    if t < WINDOW.hi:
        waypoints.append((WINDOW.hi + 1.0, [rng.uniform(-30, 30), rng.uniform(-30, 30)]))
    return from_waypoints(waypoints, extend=False)


class TestClosestApproachProperty:
    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=30, deadline=None)
    def test_no_sample_beats_the_closed_form(self, seed):
        rng = random.Random(seed)
        a = random_trajectory(rng)
        b = random_trajectory(rng)
        result = closest_approach(a, b, WINDOW)
        assert WINDOW.contains(result.time, atol=1e-9)
        # Dense sampling never finds a smaller separation.
        for t in WINDOW.sample_points(301):
            sampled = a.position(t).distance_to(b.position(t))
            assert sampled >= result.distance - 1e-6

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=20, deadline=None)
    def test_reported_minimum_is_attained(self, seed):
        rng = random.Random(seed)
        a = random_trajectory(rng)
        b = random_trajectory(rng)
        result = closest_approach(a, b, WINDOW)
        attained = a.position(result.time).distance_to(b.position(result.time))
        assert attained == pytest.approx(result.distance, abs=1e-9)


class TestViolationIntervalsProperty:
    @given(
        st.integers(min_value=0, max_value=10**6),
        st.floats(min_value=2.0, max_value=25.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_sampling_agrees_with_intervals(self, seed, separation):
        rng = random.Random(seed)
        # Histories are fully known: the clock sits past every turn.
        db = MovingObjectDatabase(initial_time=WINDOW.hi + 1.0)
        db.install("a", random_trajectory(rng))
        db.install("b", random_trajectory(rng))
        conflicts = separation_conflicts(db, separation, WINDOW)
        violations = conflicts[0].intervals if conflicts else None
        traj_a, traj_b = db.trajectory("a"), db.trajectory("b")
        for t in WINDOW.sample_points(201):
            inside = traj_a.position(t).distance_to(traj_b.position(t)) <= separation
            reported = violations.contains(t, atol=1e-7) if violations else False
            if inside:
                # Strictly-inside instants must be reported (boundary
                # instants may fall either way numerically).
                gap = separation - traj_a.position(t).distance_to(traj_b.position(t))
                if gap > 1e-6:
                    assert reported
            elif reported:
                # Reported instants must not be clearly outside.
                overshoot = (
                    traj_a.position(t).distance_to(traj_b.position(t)) - separation
                )
                assert overshoot <= 1e-6


class TestResidenceProperty:
    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=25, deadline=None)
    def test_membership_matches_geometry(self, seed):
        rng = random.Random(seed)
        traj = random_trajectory(rng)
        region = box([-15.0, -15.0], [15.0, 15.0])
        residences = residence_set(traj, region, WINDOW)
        for t in WINDOW.sample_points(201):
            inside = region.contains(traj.position(t))
            reported = residences.contains(t, atol=1e-7)
            if inside and all(
                abs(c) < 15.0 - 1e-6 for c in traj.position(t)
            ):
                assert reported
            if not inside and not region.contains(traj.position(t), atol=1e-5):
                assert not reported or residences.contains(t, atol=1e-5)
