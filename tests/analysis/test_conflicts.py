"""Tests for collision discovery and separation monitoring."""

import math

import pytest

from repro.analysis.conflicts import (
    ConflictMonitor,
    closest_approach,
    meetings,
    separation_conflicts,
)
from repro.geometry.intervals import Interval
from repro.mod.database import MovingObjectDatabase
from repro.trajectory.builder import from_waypoints, linear_from, stationary


class TestClosestApproach:
    def test_head_on(self):
        a = linear_from(0.0, [0.0, 0.0], [1.0, 0.0])
        b = linear_from(0.0, [10.0, 0.0], [-1.0, 0.0])
        result = closest_approach(a, b)
        assert result.time == pytest.approx(5.0)
        assert result.distance == pytest.approx(0.0)

    def test_offset_passing(self):
        a = linear_from(0.0, [0.0, 0.0], [1.0, 0.0])
        b = linear_from(0.0, [10.0, 3.0], [-1.0, 0.0])
        result = closest_approach(a, b)
        assert result.time == pytest.approx(5.0)
        assert result.distance == pytest.approx(3.0)

    def test_constrained_interval(self):
        a = linear_from(0.0, [0.0, 0.0], [1.0, 0.0])
        b = linear_from(0.0, [10.0, 0.0], [-1.0, 0.0])
        result = closest_approach(a, b, Interval(0.0, 2.0))
        assert result.time == pytest.approx(2.0)
        assert result.distance == pytest.approx(6.0)

    def test_parallel_constant_distance(self):
        a = linear_from(0.0, [0.0, 0.0], [1.0, 0.0])
        b = linear_from(0.0, [0.0, 4.0], [1.0, 0.0])
        result = closest_approach(a, b, Interval(0.0, 10.0))
        assert result.distance == pytest.approx(4.0)

    def test_piecewise_trajectories(self):
        a = from_waypoints([(0, [0.0, 0.0]), (10, [10.0, 0.0]), (20, [10.0, 10.0])])
        b = stationary([10.0, 5.0])
        result = closest_approach(a, b, Interval(0.0, 20.0))
        assert result.distance == pytest.approx(0.0)
        assert result.time == pytest.approx(15.0)

    def test_disjoint_domains_rejected(self):
        a = from_waypoints([(0, [0.0, 0.0]), (1, [1.0, 0.0])], extend=False)
        b = linear_from(10.0, [0.0, 0.0], [1.0, 0.0])
        with pytest.raises(ValueError):
            closest_approach(a, b)


class TestSeparationConflicts:
    def airspace(self):
        db = MovingObjectDatabase()
        db.install("east", linear_from(0.0, [-50.0, 0.0], [5.0, 0.0]))
        db.install("west", linear_from(0.0, [50.0, 1.0], [-5.0, 0.0]))
        db.install("high", stationary([0.0, 500.0]))
        return db

    def test_converging_pair_detected(self):
        db = self.airspace()
        conflicts = separation_conflicts(db, 5.0, Interval(0.0, 20.0))
        assert len(conflicts) == 1
        (conflict,) = conflicts
        assert conflict.pair == frozenset({"east", "west"})
        # Closest approach: y-offset 1 at t=10.
        assert conflict.closest.distance == pytest.approx(1.0)
        assert conflict.closest.time == pytest.approx(10.0)
        assert conflict.intervals.contains(10.0)
        assert conflict.duration > 0

    def test_no_conflicts_with_tight_minimum(self):
        db = self.airspace()
        assert separation_conflicts(db, 0.5, Interval(0.0, 20.0)) == []

    def test_violation_interval_exact(self):
        db = MovingObjectDatabase()
        db.install("a", linear_from(0.0, [0.0, 0.0], [1.0, 0.0]))
        db.install("b", stationary([10.0, 0.0]))
        (conflict,) = separation_conflicts(db, 2.0, Interval(0.0, 30.0))
        # |10 - t| <= 2  ->  t in [8, 12].
        (iv,) = conflict.intervals.intervals
        assert iv.lo == pytest.approx(8.0)
        assert iv.hi == pytest.approx(12.0)

    def test_sorted_by_first_violation(self):
        db = MovingObjectDatabase()
        db.install("target", stationary([0.0, 0.0]))
        db.install("soon", linear_from(0.0, [5.0, 0.0], [-1.0, 0.0]))
        db.install("later", linear_from(0.0, [30.0, 0.0], [-1.0, 0.0]))
        conflicts = separation_conflicts(db, 1.0, Interval(0.0, 60.0))
        pairs = [sorted(c.pair, key=str) for c in conflicts]
        assert pairs[0] == ["soon", "target"]

    def test_negative_separation_rejected(self):
        with pytest.raises(ValueError):
            separation_conflicts(MovingObjectDatabase(), -1.0, Interval(0, 1))

    def test_meetings(self):
        db = MovingObjectDatabase()
        db.install("c1404", from_waypoints([(0, [0.0, 0.0]), (60, [60.0, 0.0])]))
        db.install("crosser", from_waypoints([(0, [30.0, -30.0]), (60, [30.0, 30.0])]))
        db.install("parallel", from_waypoints([(0, [0.0, 5.0]), (60, [60.0, 5.0])]))
        found = meetings(db, Interval(0.0, 60.0), tolerance=0.01)
        assert len(found) == 1
        assert found[0].pair == frozenset({"c1404", "crosser"})
        assert found[0].closest.time == pytest.approx(30.0, abs=0.1)


class TestConflictMonitor:
    def test_initial_prediction(self):
        db = MovingObjectDatabase()
        db.create("a", 0.1, position=[0.0, 0.0], velocity=[1.0, 0.0])
        db.create("b", 0.2, position=[20.0, 0.0], velocity=[-1.0, 0.0])
        monitor = ConflictMonitor(db, separation=2.0, horizon=30.0)
        upcoming = monitor.next_conflict_after(0.2)
        assert upcoming is not None
        start, pair = upcoming
        assert pair == frozenset({"a", "b"})
        # Gap 20 closing at 2: violation starts when gap = 2 -> t ~ 9.1.
        assert start == pytest.approx(9.1, abs=0.2)

    def test_chdir_resolves_conflict(self):
        db = MovingObjectDatabase()
        db.create("a", 0.1, position=[0.0, 0.0], velocity=[1.0, 0.0])
        db.create("b", 0.2, position=[20.0, 0.0], velocity=[-1.0, 0.0])
        monitor = ConflictMonitor(db, separation=2.0, horizon=30.0)
        assert monitor.conflicts_at(10.0)
        # Controller vectors b away before the loss of separation.
        db.change_direction("b", 5.0, [0.0, 3.0])
        assert monitor.conflicts_at(10.0) == []

    def test_new_object_creates_conflict(self):
        db = MovingObjectDatabase()
        db.create("a", 0.1, position=[0.0, 0.0], velocity=[0.0, 0.0])
        monitor = ConflictMonitor(db, separation=5.0, horizon=30.0)
        assert monitor.next_conflict_after(0.0) is None
        db.create("intruder", 1.0, position=[3.0, 0.0], velocity=[0.0, 0.0])
        assert monitor.conflicts_at(2.0) == [frozenset({"a", "intruder"})]

    def test_update_recomputes_only_touched_pairs(self):
        db = MovingObjectDatabase()
        for i in range(6):
            db.create(f"o{i}", 0.01 * (i + 1), position=[10.0 * i, 0.0], velocity=[0.0, 0.0])
        monitor = ConflictMonitor(db, separation=1.0, horizon=50.0)
        baseline = monitor.recomputed_pairs
        db.change_direction("o0", 1.0, [1.0, 0.0])
        assert monitor.recomputed_pairs - baseline == 5  # N-1 pairs

    def test_detach(self):
        db = MovingObjectDatabase()
        db.create("a", 0.1, position=[0.0, 0.0], velocity=[0.0, 0.0])
        monitor = ConflictMonitor(db, separation=1.0, horizon=10.0)
        monitor.detach()
        before = monitor.recomputed_pairs
        db.create("b", 1.0, position=[0.5, 0.0], velocity=[0.0, 0.0])
        assert monitor.recomputed_pairs == before

    def test_terminated_object_conflicts_clamped(self):
        db = MovingObjectDatabase()
        db.create("a", 0.1, position=[0.0, 0.0], velocity=[1.0, 0.0])
        db.create("b", 0.2, position=[20.0, 0.0], velocity=[-1.0, 0.0])
        monitor = ConflictMonitor(db, separation=2.0, horizon=30.0)
        db.terminate("b", 5.0)  # b vanishes before the predicted loss
        assert monitor.conflicts_at(10.0) == []
