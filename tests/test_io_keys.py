"""Property-style round-trips for the io-layer key and bound codecs."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.intervals import Interval, IntervalSet
from repro.io import answer_from_dict, answer_to_dict, oid_from_key, oid_to_key
from repro.query.answers import SnapshotAnswer

# Scalars an oid may legally be built from.  Strings deliberately
# include ":" (the tag separator) and tag-lookalike prefixes such as
# "i:123"; floats include signed zeros, subnormals, and infinities.
scalar_oids = st.one_of(
    st.booleans(),
    st.integers(min_value=-(10**18), max_value=10**18),
    st.floats(allow_nan=False),
    st.text(
        alphabet=st.characters(blacklist_categories=("Cs",)), max_size=24
    ),
    st.sampled_from(["i:123", "s:", "t:[]", "b:1", "f:inf", ":", "::"]),
)

# Nested-tuple oids (composite ids), up to three levels deep.
oids = st.recursive(
    scalar_oids,
    lambda children: st.tuples(children, children)
    | st.tuples(children)
    | st.tuples(children, children, children),
    max_leaves=6,
)


class TestOidKeyRoundTrip:
    @settings(max_examples=300)
    @given(oids)
    def test_round_trip_preserves_value_and_type(self, oid):
        back = oid_from_key(oid_to_key(oid))
        assert back == oid
        assert type(back) is type(oid)

    @settings(max_examples=300)
    @given(oids, oids)
    def test_distinct_oids_get_distinct_keys(self, a, b):
        if a != b:
            assert oid_to_key(a) != oid_to_key(b)

    def test_bool_does_not_collapse_to_int(self):
        # bool is an int subclass: True must not come back as 1.
        assert oid_from_key(oid_to_key(True)) is True
        assert oid_from_key(oid_to_key(1)) == 1
        assert oid_to_key(True) != oid_to_key(1)

    def test_string_with_colons_survives(self):
        for oid in ("a:b:c", "i:42", "t:[nested]", ":"):
            assert oid_from_key(oid_to_key(oid)) == oid

    def test_nested_tuple_mixing_types(self):
        oid = (("fleet", 7), (True, -0.0), "leg:3")
        back = oid_from_key(oid_to_key(oid))
        assert back == oid
        assert isinstance(back[1][0], bool)

    def test_legacy_untagged_keys_decode_as_strings(self):
        assert oid_from_key("plain") == "plain"
        assert oid_from_key("vehicle-12") == "vehicle-12"
        # An unrecognized tag is a legacy string too, not an error.
        assert oid_from_key("x:whatever") == "x:whatever"


class TestAnswerBoundRoundTrip:
    def test_infinite_bounds_survive_json(self):
        answer = SnapshotAnswer(
            {
                "a": IntervalSet([Interval(-math.inf, 0.0)]),
                "b": IntervalSet([Interval(1.0, math.inf)]),
            },
            Interval(-math.inf, math.inf),
        )
        back = answer_from_dict(answer_to_dict(answer))
        assert back.interval == Interval(-math.inf, math.inf)
        assert back.intervals_for("a") == answer.intervals_for("a")
        assert back.intervals_for("b") == answer.intervals_for("b")

    def test_dict_form_is_json_safe(self):
        import json

        answer = SnapshotAnswer(
            {"a": IntervalSet([Interval(0.0, math.inf)])},
            Interval(0.0, math.inf),
        )
        text = json.dumps(answer_to_dict(answer))
        assert "Infinity" not in text
        assert answer_from_dict(json.loads(text)).interval.hi == math.inf

    @settings(max_examples=100)
    @given(
        st.lists(
            st.tuples(
                st.floats(-100, 100, allow_nan=False),
                st.floats(0, 50, allow_nan=False),
            ),
            min_size=0,
            max_size=4,
        )
    )
    def test_finite_membership_round_trip(self, spans):
        memberships = {
            f"o{i}": IntervalSet([Interval(lo, lo + width)])
            for i, (lo, width) in enumerate(spans)
        }
        answer = SnapshotAnswer(memberships, Interval(-200.0, 200.0))
        back = answer_from_dict(answer_to_dict(answer))
        for oid in answer.objects:
            assert back.intervals_for(oid) == answer.intervals_for(oid)
