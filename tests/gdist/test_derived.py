"""Tests for derived g-distances (approach rate, linear combinations)."""

import pytest

from repro.baselines.naive import naive_knn_answer
from repro.core.api import evaluate_knn, evaluate_within
from repro.geometry.intervals import Interval
from repro.gdist.arrival import ArrivalTimeGDistance
from repro.gdist.derived import ApproachRate, LinearCombination
from repro.gdist.euclidean import SquaredEuclideanDistance
from repro.mod.database import MovingObjectDatabase
from repro.trajectory.builder import from_waypoints, linear_from, stationary
from repro.workloads.generator import random_linear_mod


class TestApproachRate:
    def test_sign_semantics(self):
        rate = ApproachRate([0.0, 0.0])
        closing = linear_from(0.0, [10.0, 0.0], [-1.0, 0.0])
        fleeing = linear_from(0.0, [10.0, 0.0], [1.0, 0.0])
        assert rate(closing)(2.0) < 0
        assert rate(fleeing)(2.0) > 0

    def test_is_derivative_of_squared_distance(self):
        rate = ApproachRate([0.0, 0.0])
        sq = SquaredEuclideanDistance([0.0, 0.0])
        o = linear_from(0.0, [10.0, 3.0], [-2.0, 0.5])
        f, df = sq(o), rate(o)
        eps = 1e-6
        for t in (1.0, 4.0, 9.0):
            numeric = (f(t + eps) - f(t - eps)) / (2 * eps)
            assert df(t) == pytest.approx(numeric, rel=1e-4)

    def test_piecewise_linear(self):
        rate = ApproachRate([0.0, 0.0])
        o = from_waypoints([(0, [10.0, 0.0]), (5, [5.0, 0.0]), (10, [5.0, 5.0])])
        assert rate(o).max_degree <= 1

    def test_jumps_at_turns_allowed(self):
        """The derivative is discontinuous at turns — the relaxed
        'finitely many continuous pieces' case the paper permits."""
        rate = ApproachRate([0.0, 0.0])
        o = from_waypoints([(0, [10.0, 0.0]), (5, [5.0, 0.0]), (10, [10.0, 0.0])])
        f = rate(o)
        assert not f.is_continuous()

    def test_fastest_approacher_query(self):
        db = MovingObjectDatabase()
        db.install("diving", linear_from(0.0, [20.0, 0.0], [-3.0, 0.0]))
        db.install("drifting", linear_from(0.0, [10.0, 0.0], [-0.5, 0.0]))
        db.install("fleeing", linear_from(0.0, [5.0, 0.0], [2.0, 0.0]))
        answer = evaluate_knn(db, ApproachRate([0.0, 0.0]), Interval(0.0, 4.0), 1)
        assert answer.at(1.0) == {"diving"}

    def test_who_is_approaching_via_threshold(self):
        db = MovingObjectDatabase()
        db.install("closing", linear_from(0.0, [20.0, 0.0], [-1.0, 0.0]))
        db.install("receding", linear_from(0.0, [5.0, 0.0], [1.0, 0.0]))
        answer = evaluate_within(
            db, ApproachRate([0.0, 0.0]), Interval(0.0, 5.0), 0.0
        )
        assert answer.objects == {"closing"}

    def test_sweep_matches_naive_on_jumpy_curves(self):
        """The engine stays exact with discontinuous (piecewise-
        continuous) g-distance curves."""
        from repro.workloads.generator import random_piecewise_mod

        db = random_piecewise_mod(8, seed=31, end_time=30.0, turns=3)
        gd = ApproachRate([0.0, 0.0])
        sweep = evaluate_knn(db, gd, Interval(0.0, 30.0), 2)
        naive = naive_knn_answer(db, gd, Interval(0.0, 30.0), 2)
        assert sweep.approx_equals(naive, atol=1e-6)


class TestLinearCombination:
    def test_blend(self):
        sq = SquaredEuclideanDistance([0.0, 0.0])
        rate = ApproachRate([0.0, 0.0])
        threat = LinearCombination([(1.0, sq), (10.0, rate)])
        o = linear_from(0.0, [10.0, 0.0], [-1.0, 0.0])
        expected = sq(o)(2.0) + 10.0 * rate(o)(2.0)
        assert threat(o)(2.0) == pytest.approx(expected)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            LinearCombination([])

    def test_non_polynomial_rejected(self):
        q = linear_from(0.0, [0.0, 0.0], [1.0, 0.0])
        with pytest.raises(TypeError):
            LinearCombination([(1.0, ArrivalTimeGDistance(q))])

    def test_single_term_identity(self):
        sq = SquaredEuclideanDistance([0.0, 0.0])
        doubled = LinearCombination([(2.0, sq)])
        o = linear_from(0.0, [3.0, 4.0], [0.0, 0.0])
        assert doubled(o)(1.0) == pytest.approx(50.0)

    def test_usable_in_sweep(self):
        db = random_linear_mod(6, seed=33, extent=25.0, speed=5.0)
        sq = SquaredEuclideanDistance([0.0, 0.0])
        rate = ApproachRate([0.0, 0.0])
        threat = LinearCombination([(1.0, sq), (5.0, rate)])
        sweep = evaluate_knn(db, threat, Interval(0.0, 10.0), 1)
        naive = naive_knn_answer(db, threat, Interval(0.0, 10.0), 1)
        assert sweep.approx_equals(naive, atol=1e-6)
