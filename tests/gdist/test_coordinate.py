"""Tests for coordinate-based g-distances."""

import pytest

from repro.gdist.coordinate import (
    CoordinateDifference,
    CoordinateValue,
    WeightedSquaredDistance,
)
from repro.gdist.euclidean import SquaredEuclideanDistance
from repro.trajectory.builder import from_waypoints, linear_from


class TestCoordinateValue:
    def test_altitude_over_time(self):
        o = linear_from(0.0, [0, 0, 100], [0, 0, -2])
        altitude = CoordinateValue(2)
        f = altitude(o)
        assert f(10.0) == pytest.approx(80.0)
        assert f.max_degree == 1

    def test_negative_axis_rejected(self):
        with pytest.raises(ValueError):
            CoordinateValue(-1)

    def test_axis_property(self):
        assert CoordinateValue(1).axis == 1


class TestCoordinateDifference:
    def test_signed_difference(self):
        q = linear_from(0.0, [0, 0], [1, 0])
        o = linear_from(0.0, [10, 0], [0, 0])
        f = CoordinateDifference(q, 0)(o)
        assert f(0.0) == pytest.approx(10.0)
        assert f(10.0) == pytest.approx(0.0)
        assert f(20.0) == pytest.approx(-10.0)

    def test_point_query(self):
        o = linear_from(0.0, [3, 7], [0, 0])
        f = CoordinateDifference([1.0, 1.0], 1)(o)
        assert f(5.0) == pytest.approx(6.0)

    def test_negative_axis_rejected(self):
        with pytest.raises(ValueError):
            CoordinateDifference([0.0], -2)


class TestWeightedSquaredDistance:
    def test_unit_weights_match_euclidean(self):
        q = linear_from(0.0, [0, 0], [1, 1])
        o = from_waypoints([(0, [5, 0]), (10, [0, 5])])
        w = WeightedSquaredDistance(q, [1.0, 1.0])
        e = SquaredEuclideanDistance(q)
        fw, fe = w(o), e(o)
        for t in (0.0, 3.0, 7.0, 10.0):
            assert fw(t) == pytest.approx(fe(t))

    def test_anisotropic(self):
        q = linear_from(0.0, [0, 0], [0, 0])
        o = linear_from(0.0, [1, 1], [0, 0])
        f = WeightedSquaredDistance(q, [4.0, 1.0])(o)
        assert f(0.0) == pytest.approx(5.0)

    def test_zero_weight_drops_axis(self):
        q = linear_from(0.0, [0, 0], [0, 0])
        o = linear_from(0.0, [100, 3], [0, 0])
        f = WeightedSquaredDistance(q, [0.0, 1.0])(o)
        assert f(0.0) == pytest.approx(9.0)

    def test_all_zero_weights_constant_zero(self):
        q = linear_from(0.0, [0, 0], [0, 0])
        o = linear_from(0.0, [100, 3], [1, 1])
        f = WeightedSquaredDistance(q, [0.0, 0.0])(o)
        assert f(5.0) == 0.0

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            WeightedSquaredDistance([0.0], [-1.0])

    def test_dimension_mismatch_rejected(self):
        w = WeightedSquaredDistance([0.0, 0.0], [1.0, 1.0])
        with pytest.raises(ValueError):
            w(linear_from(0.0, [0, 0, 0], [0, 0, 0]))
