"""Tests for the fastest-arrival g-distance (Example 9 / Figure 1)."""

import math

import pytest

from repro.geometry.intervals import Interval
from repro.geometry.vectors import Vector
from repro.gdist.approx import PolynomialApproximation
from repro.gdist.arrival import (
    ArrivalTimeGDistance,
    SquaredArrivalTimeGDistance,
    interception_time,
)
from repro.trajectory.builder import linear_from


class TestInterceptionTime:
    def test_already_there(self):
        assert interception_time(Vector.of(0, 0), Vector.of(1, 0), 2.0) == 0.0

    def test_stationary_target(self):
        # Target 10 away, not moving; chaser speed 2 -> 5 time units.
        t = interception_time(Vector.of(10, 0), Vector.of(0, 0), 2.0)
        assert t == pytest.approx(5.0)

    def test_head_on(self):
        # Target approaching at speed 1, chaser speed 1, separation 10:
        # closing speed 2 -> 5 time units.
        t = interception_time(Vector.of(10, 0), Vector.of(-1, 0), 1.0)
        assert t == pytest.approx(5.0)

    def test_stern_chase_faster(self):
        # Target fleeing at 1, chaser at 2, separation 10: closing 1 -> 10.
        t = interception_time(Vector.of(10, 0), Vector.of(1, 0), 2.0)
        assert t == pytest.approx(10.0)

    def test_stern_chase_slower_unreachable(self):
        t = interception_time(Vector.of(10, 0), Vector.of(2, 0), 1.0)
        assert math.isinf(t)

    def test_equal_speeds_receding_unreachable(self):
        t = interception_time(Vector.of(10, 0), Vector.of(1, 0), 1.0)
        assert math.isinf(t)

    def test_perpendicular_faster(self):
        # Figure 1 geometry: q crosses ahead at speed 1, chaser speed 2,
        # perpendicular separation 3.  |w + vq tD| = 2 tD
        # -> 9 + tD^2 = 4 tD^2 -> tD = sqrt(3).
        t = interception_time(Vector.of(0, 3), Vector.of(1, 0), 2.0)
        assert t == pytest.approx(math.sqrt(3.0))

    def test_interception_point_consistency(self):
        # The point A = q + vq*tD must be at distance speed*tD.
        w = Vector.of(4, 7)
        vq = Vector.of(1.5, -0.5)
        speed = 3.0
        t = interception_time(w, vq, speed)
        target = w + vq * t
        assert target.norm() == pytest.approx(speed * t)

    def test_negative_speed_rejected(self):
        with pytest.raises(ValueError):
            interception_time(Vector.of(1), Vector.of(0), -1.0)


class TestArrivalTimeGDistance:
    def test_pointwise_evaluation(self):
        q = linear_from(0.0, [0, 0], [1, 0])
        o = linear_from(0.0, [0, -3], [1, 1])  # matches q horizontally
        g = ArrivalTimeGDistance(q)
        # At t=0: w=(0,3), vq=(1,0), speed=sqrt(2).
        expected = interception_time(Vector.of(0, 3), Vector.of(1, 0), math.sqrt(2.0))
        assert g.evaluate_at(o, 0.0) == pytest.approx(expected)

    def test_not_polynomial(self):
        q = linear_from(0.0, [0, 0], [1, 0])
        g = ArrivalTimeGDistance(q)
        assert not g.is_polynomial
        with pytest.raises(TypeError):
            g(linear_from(0.0, [5, 5], [1, 0]))

    def test_reachable_throughout(self):
        q = linear_from(0.0, [0, 0], [1, 0])
        fast = linear_from(0.0, [10, 10], [2, 0])
        slow = linear_from(0.0, [10, 10], [0.5, 0])
        g = ArrivalTimeGDistance(q)
        assert g.reachable_throughout(fast, Interval(0, 10))
        assert not g.reachable_throughout(slow, Interval(0, 10))


class TestSquaredArrivalTime:
    def make_perpendicular(self, y0=-3.0, vy=0.5):
        """q moves horizontally at speed 1; o matches the horizontal
        velocity and additionally climbs at vy: w(t) stays vertical."""
        q = linear_from(0.0, [0, 0], [1, 0])
        o = linear_from(0.0, [0, y0], [1, vy])
        return q, o

    def test_exact_quadratic_in_perpendicular_configuration(self):
        q, o = self.make_perpendicular()
        g = SquaredArrivalTimeGDistance(q)
        f = g(o)
        assert f.max_degree == 2
        # Cross-check against the exact pointwise arrival time.
        exact = ArrivalTimeGDistance(q)
        for t in (0.0, 1.0, 3.0, 5.9):
            td = exact.evaluate_at(o, t)
            assert f(t) == pytest.approx(td * td, rel=1e-9)

    def test_example9_claim_t_delta_squared_is_quadratic(self):
        """Example 9: t_D^2 = c2 t^2 + c1 t + c0."""
        q, o = self.make_perpendicular(y0=-4.0, vy=1.0)
        f = SquaredArrivalTimeGDistance(q)(o)
        (piece,) = f.pieces
        # w(t) = (0, 4 - t), s_o^2 - v_q^2 = (1+1) - 1 = 1
        # -> tD^2 = (4-t)^2 = t^2 - 8t + 16.
        assert piece[1].coeffs == pytest.approx((16.0, -8.0, 1.0))

    def test_non_perpendicular_rejected(self):
        q = linear_from(0.0, [0, 0], [1, 0])
        o = linear_from(0.0, [10, -3], [0, 2])  # w has a horizontal part
        with pytest.raises(ValueError):
            SquaredArrivalTimeGDistance(q)(o)

    def test_slower_object_rejected(self):
        q = linear_from(0.0, [0, 0], [2, 0])
        o = linear_from(0.0, [0, -3], [2, 0.1])
        # o is faster here (sqrt(4.01) > 2) -> fine; make it slower:
        o_slow = linear_from(0.0, [0, -3], [2, 0])
        with pytest.raises(ValueError):
            SquaredArrivalTimeGDistance(q)(o_slow)
        assert SquaredArrivalTimeGDistance(q)(o) is not None

    def test_disjoint_domains_rejected(self):
        q = linear_from(0.0, [0, 0], [1, 0]).truncated_at(1.0)
        o = linear_from(5.0, [5, -3], [1, 1])
        with pytest.raises(ValueError):
            SquaredArrivalTimeGDistance(q)(o)


class TestApproximatedArrival:
    def test_approximation_matches_exact(self):
        q = linear_from(0.0, [0, 0], [1, 0])
        o = linear_from(0.0, [10, 5], [0, -1.8])  # general position, faster
        exact = ArrivalTimeGDistance(q)
        approx = PolynomialApproximation(exact, Interval(0.0, 10.0), degree=8, num_pieces=8)
        err = approx.max_error(o)
        assert err < 1e-4

    def test_usable_as_polynomial_gdistance(self):
        q = linear_from(0.0, [0, 0], [1, 0])
        o = linear_from(0.0, [10, 5], [0, -1.8])
        approx = PolynomialApproximation(
            ArrivalTimeGDistance(q), Interval(0.0, 10.0)
        )
        assert approx.is_polynomial
        curve = approx(o)
        assert curve.domain == Interval(0.0, 10.0)
