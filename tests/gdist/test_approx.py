"""Tests for Chebyshev polynomialization of g-distances."""

import math

import pytest

from repro.geometry.intervals import Interval
from repro.geometry.piecewise import PiecewiseFunction
from repro.gdist.approx import PolynomialApproximation, approximate_on
from repro.gdist.base import CallableGDistance, GDistance
from repro.trajectory.builder import linear_from


class TestApproximateOn:
    def test_polynomial_is_reproduced_exactly(self):
        # Degree-3 fit of a cubic is exact up to conditioning.
        fn = lambda t: t**3 - 2 * t + 1
        f = approximate_on(fn, Interval(0, 4), degree=3, num_pieces=1)
        for t in (0.0, 1.3, 2.7, 4.0):
            assert f(t) == pytest.approx(fn(t), abs=1e-9)

    def test_transcendental_error_decays_with_degree(self):
        fn = math.sin
        dom = Interval(0, 6)
        errors = []
        for degree in (2, 5, 9):
            f = approximate_on(fn, dom, degree=degree, num_pieces=2)
            errors.append(
                max(abs(f(t) - fn(t)) for t in dom.sample_points(101))
            )
        assert errors[0] > errors[1] > errors[2]
        assert errors[2] < 1e-5

    def test_more_pieces_reduce_error(self):
        fn = lambda t: math.sqrt(1.0 + t * t)
        dom = Interval(0, 10)
        coarse = approximate_on(fn, dom, degree=3, num_pieces=1)
        fine = approximate_on(fn, dom, degree=3, num_pieces=10)
        err = lambda f: max(abs(f(t) - fn(t)) for t in dom.sample_points(101))
        assert err(fine) < err(coarse)

    def test_unbounded_domain_rejected(self):
        with pytest.raises(ValueError):
            approximate_on(math.sin, Interval.at_least(0.0))

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            approximate_on(math.sin, Interval(0, 1), degree=0)
        with pytest.raises(ValueError):
            approximate_on(math.sin, Interval(0, 1), num_pieces=0)

    def test_nonfinite_function_rejected(self):
        fn = lambda t: math.inf if t > 0.5 else 0.0
        with pytest.raises(ValueError):
            approximate_on(fn, Interval(0, 1))


class _ExactDistance:
    """A toy exact (non-polynomial) g-distance: true Euclidean distance."""

    def evaluate_at(self, trajectory, t):
        return math.sqrt(trajectory.position(t).norm_squared())


class TestPolynomialApproximation:
    def test_wraps_exact_distance(self):
        o = linear_from(0.0, [3, 4], [1, 0])
        approx = PolynomialApproximation(_ExactDistance(), Interval(0, 10))
        assert approx.max_error(o) < 1e-6

    def test_requires_evaluate_at(self):
        with pytest.raises(TypeError):
            PolynomialApproximation(object(), Interval(0, 1))

    def test_requires_bounded_domain(self):
        with pytest.raises(ValueError):
            PolynomialApproximation(_ExactDistance(), Interval.at_least(0.0))

    def test_domain_intersected_with_trajectory(self):
        o = linear_from(5.0, [1, 1], [0, 0])
        approx = PolynomialApproximation(_ExactDistance(), Interval(0, 10))
        curve = approx(o)
        assert curve.domain == Interval(5.0, 10.0)

    def test_disjoint_domain_rejected(self):
        o = linear_from(50.0, [1, 1], [0, 0])
        approx = PolynomialApproximation(_ExactDistance(), Interval(0, 10))
        with pytest.raises(ValueError):
            approx(o)

    def test_inner_accessor(self):
        inner = _ExactDistance()
        approx = PolynomialApproximation(inner, Interval(0, 1))
        assert approx.inner is inner


class TestCallableGDistance:
    def test_adapts_function(self):
        fn = lambda traj: PiecewiseFunction.constant(7.0, traj.domain)
        g = CallableGDistance(fn, name="seven")
        o = linear_from(0.0, [0], [1])
        assert g(o)(3.0) == 7.0
        assert g.is_polynomial
        assert "seven" in repr(g)

    def test_non_polynomial_flag(self):
        g = CallableGDistance(lambda t: None, polynomial=False)
        assert not g.is_polynomial

    def test_is_a_gdistance(self):
        g = CallableGDistance(lambda t: None)
        assert isinstance(g, GDistance)
