"""Tests for the squared Euclidean g-distance (Example 8)."""

import pytest

from repro.gdist.euclidean import SquaredEuclideanDistance
from repro.mod.database import MovingObjectDatabase
from repro.trajectory.builder import from_waypoints, linear_from, stationary


class TestSquaredEuclidean:
    def test_to_stationary_point(self):
        d = SquaredEuclideanDistance([0.0, 0.0])
        o = linear_from(0.0, [3, 4], [0, 0])
        f = d(o)
        assert f(10.0) == pytest.approx(25.0)

    def test_point_query_wrapped_as_stationary(self):
        d = SquaredEuclideanDistance([1.0, 1.0])
        assert d.query_trajectory.is_stationary

    def test_moving_query(self):
        q = linear_from(0.0, [0, 0], [1, 0])
        d = SquaredEuclideanDistance(q)
        o = linear_from(0.0, [10, 0], [-1, 0])
        f = d(o)
        assert f(0.0) == pytest.approx(100.0)
        assert f(5.0) == pytest.approx(0.0)
        assert f.max_degree == 2

    def test_quadratic_coefficients(self):
        # Relative velocity (2, 0), initial separation (10, 0):
        # d(t) = (10 - 2t)^2 = 4t^2 - 40t + 100.
        q = linear_from(0.0, [0, 0], [1, 0])
        d = SquaredEuclideanDistance(q)
        o = linear_from(0.0, [10, 0], [-1, 0])
        (piece,) = d(o).pieces
        assert piece[1].coeffs == pytest.approx((100.0, -40.0, 4.0))

    def test_respects_turns_of_both(self):
        q = from_waypoints([(0, [0, 0]), (10, [10, 0])])
        o = from_waypoints([(0, [0, 5]), (5, [5, 5]), (10, [5, 0])])
        f = SquaredEuclideanDistance(q)(o)
        assert 5.0 in f.breakpoints
        for t in (2.0, 7.0, 9.0):
            expected = (q.position(t) - o.position(t)).norm_squared()
            assert f(t) == pytest.approx(expected)

    def test_extend_to_mod(self):
        db = MovingObjectDatabase()
        db.create("a", 1.0, position=[0, 0], velocity=[1, 0])
        db.create("b", 2.0, position=[5, 0], velocity=[0, 0])
        d = SquaredEuclideanDistance([0.0, 0.0])
        curves = d.extend_to_mod(db)
        assert set(curves) == {"a", "b"}
        assert curves["b"](3.0) == pytest.approx(25.0)

    def test_with_query(self):
        d = SquaredEuclideanDistance([0.0, 0.0])
        q2 = stationary([100.0, 0.0])
        d2 = d.with_query(q2)
        o = linear_from(0.0, [0, 0], [0, 0])
        assert d2(o)(0.0) == pytest.approx(10000.0)

    def test_value_helper(self):
        d = SquaredEuclideanDistance([0.0])
        o = linear_from(0.0, [2.0], [1.0])
        assert d.value(o, 3.0) == pytest.approx(25.0)
