"""Tests for the small vector type."""

import math

import pytest

from repro.geometry.vectors import Vector, as_vector


class TestConstruction:
    def test_from_iterable(self):
        v = Vector([1, 2, 3])
        assert v.components == (1.0, 2.0, 3.0)

    def test_variadic(self):
        assert Vector.of(1, 2) == Vector([1, 2])

    def test_zero(self):
        assert Vector.zero(3) == Vector([0, 0, 0])

    def test_unit(self):
        assert Vector.unit(3, 1) == Vector([0, 1, 0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Vector([])

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            Vector([math.nan])

    def test_as_vector_passthrough(self):
        v = Vector([1, 2])
        assert as_vector(v) is v
        assert as_vector((1, 2)) == v


class TestArithmetic:
    def test_add(self):
        assert Vector.of(1, 2) + Vector.of(3, 4) == Vector.of(4, 6)

    def test_sub(self):
        assert Vector.of(5, 5) - Vector.of(2, 3) == Vector.of(3, 2)

    def test_neg(self):
        assert -Vector.of(1, -2) == Vector.of(-1, 2)

    def test_scalar_mul_both_sides(self):
        assert 2 * Vector.of(1, 2) == Vector.of(2, 4)
        assert Vector.of(1, 2) * 2 == Vector.of(2, 4)

    def test_div(self):
        assert Vector.of(2, 4) / 2 == Vector.of(1, 2)

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            Vector.of(1, 2) + Vector.of(1, 2, 3)


class TestMetrics:
    def test_dot(self):
        assert Vector.of(1, 2, 3).dot(Vector.of(4, 5, 6)) == 32.0

    def test_norm_squared(self):
        assert Vector.of(3, 4).norm_squared() == 25.0

    def test_norm(self):
        assert Vector.of(3, 4).norm() == 5.0

    def test_distance_to(self):
        assert Vector.of(0, 0).distance_to(Vector.of(3, 4)) == 5.0

    def test_normalized(self):
        u = Vector.of(3, 4).normalized()
        assert u.approx_equals(Vector.of(0.6, 0.8))

    def test_normalize_zero_rejected(self):
        with pytest.raises(ValueError):
            Vector.zero(2).normalized()

    def test_is_zero(self):
        assert Vector.zero(2).is_zero()
        assert Vector.of(1e-12, 0).is_zero(atol=1e-9)
        assert not Vector.of(1, 0).is_zero()


class TestProtocol:
    def test_len_iter_getitem(self):
        v = Vector.of(7, 8, 9)
        assert len(v) == 3
        assert list(v) == [7.0, 8.0, 9.0]
        assert v[1] == 8.0

    def test_hashable(self):
        assert len({Vector.of(1, 2), Vector.of(1, 2), Vector.of(2, 1)}) == 2

    def test_repr(self):
        assert repr(Vector.of(1, 2)) == "(1, 2)"

    def test_approx_equals_dim_mismatch(self):
        assert not Vector.of(1, 2).approx_equals(Vector.of(1, 2, 3))
