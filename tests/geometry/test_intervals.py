"""Tests for closed/unbounded intervals and interval sets."""

import math

import pytest

from repro.geometry.intervals import Interval, IntervalSet, interval_set_from_pairs


class TestIntervalConstruction:
    def test_basic(self):
        iv = Interval(1.0, 3.0)
        assert iv.lo == 1.0
        assert iv.hi == 3.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Interval(3.0, 1.0)

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            Interval(math.nan, 1.0)

    def test_wrong_infinities_rejected(self):
        with pytest.raises(ValueError):
            Interval(math.inf, math.inf)
        with pytest.raises(ValueError):
            Interval(-math.inf, -math.inf)

    def test_all_time(self):
        iv = Interval.all_time()
        assert iv.contains(-1e18) and iv.contains(1e18)

    def test_rays(self):
        assert Interval.at_least(5.0).contains(1e9)
        assert not Interval.at_least(5.0).contains(4.999)
        assert Interval.at_most(5.0).contains(-1e9)
        assert not Interval.at_most(5.0).contains(5.001)

    def test_point(self):
        iv = Interval.point(2.0)
        assert iv.is_point
        assert iv.length == 0.0


class TestIntervalPredicates:
    def test_contains_endpoints(self):
        iv = Interval(1.0, 3.0)
        assert iv.contains(1.0) and iv.contains(3.0)

    def test_contains_with_atol(self):
        iv = Interval(1.0, 3.0)
        assert not iv.contains(3.0 + 1e-10)
        assert iv.contains(3.0 + 1e-10, atol=1e-9)

    def test_contains_interval(self):
        assert Interval(0.0, 10.0).contains_interval(Interval(2.0, 5.0))
        assert not Interval(0.0, 10.0).contains_interval(Interval(5.0, 11.0))

    def test_overlaps_shared_endpoint(self):
        assert Interval(0.0, 1.0).overlaps(Interval(1.0, 2.0))

    def test_overlaps_disjoint(self):
        assert not Interval(0.0, 1.0).overlaps(Interval(1.5, 2.0))

    def test_is_bounded(self):
        assert Interval(0.0, 1.0).is_bounded
        assert not Interval.at_least(0.0).is_bounded

    def test_length_unbounded(self):
        assert Interval.at_least(0.0).length == math.inf


class TestIntervalAlgebra:
    def test_intersect(self):
        assert Interval(0.0, 5.0).intersect(Interval(3.0, 8.0)) == Interval(3.0, 5.0)

    def test_intersect_disjoint(self):
        assert Interval(0.0, 1.0).intersect(Interval(2.0, 3.0)) is None

    def test_intersect_touching(self):
        assert Interval(0.0, 1.0).intersect(Interval(1.0, 2.0)) == Interval.point(1.0)

    def test_hull(self):
        assert Interval(0.0, 1.0).hull(Interval(5.0, 6.0)) == Interval(0.0, 6.0)

    def test_shift(self):
        assert Interval(1.0, 2.0).shift(3.0) == Interval(4.0, 5.0)

    def test_shift_unbounded(self):
        shifted = Interval.at_least(1.0).shift(2.0)
        assert shifted.lo == 3.0 and math.isinf(shifted.hi)

    def test_clamp(self):
        iv = Interval(0.0, 10.0)
        assert iv.clamp(-5.0) == 0.0
        assert iv.clamp(5.0) == 5.0
        assert iv.clamp(15.0) == 10.0

    def test_sample_points_within(self):
        iv = Interval(2.0, 4.0)
        pts = iv.sample_points(5)
        assert len(pts) == 5
        assert all(iv.contains(p) for p in pts)
        assert pts[0] == 2.0 and pts[-1] == 4.0

    def test_sample_points_unbounded_stays_inside(self):
        iv = Interval.at_least(3.0)
        assert all(iv.contains(p) for p in iv.sample_points(4))


class TestIntervalSet:
    def test_normalization_merges_overlaps(self):
        s = interval_set_from_pairs([(0, 2), (1, 3), (5, 6)])
        assert s.intervals == (Interval(0, 3), Interval(5, 6))

    def test_normalization_merges_touching(self):
        s = interval_set_from_pairs([(0, 1), (1, 2)])
        assert s.intervals == (Interval(0, 2),)

    def test_empty(self):
        s = IntervalSet()
        assert s.is_empty
        assert not s
        assert len(s) == 0

    def test_contains(self):
        s = interval_set_from_pairs([(0, 1), (3, 4)])
        assert s.contains(0.5)
        assert not s.contains(2.0)
        assert s.contains(4.0)

    def test_union(self):
        a = interval_set_from_pairs([(0, 1)])
        b = interval_set_from_pairs([(0.5, 2), (5, 6)])
        assert a.union(b).intervals == (Interval(0, 2), Interval(5, 6))

    def test_intersect(self):
        a = interval_set_from_pairs([(0, 4), (6, 10)])
        b = interval_set_from_pairs([(3, 7)])
        assert a.intersect(b).intervals == (Interval(3, 4), Interval(6, 7))

    def test_intersect_empty_result(self):
        a = interval_set_from_pairs([(0, 1)])
        b = interval_set_from_pairs([(2, 3)])
        assert a.intersect(b).is_empty

    def test_difference(self):
        a = interval_set_from_pairs([(0, 10)])
        b = interval_set_from_pairs([(2, 3), (5, 6)])
        diff = a.difference(b)
        assert diff.intervals == (Interval(0, 2), Interval(3, 5), Interval(6, 10))

    def test_difference_total(self):
        a = interval_set_from_pairs([(0, 5)])
        assert a.difference(a).total_length == 0.0

    def test_covers(self):
        s = interval_set_from_pairs([(0, 3), (3, 7)])
        assert s.covers(Interval(1, 6))
        assert not s.covers(Interval(1, 8))

    def test_covers_ignores_degenerate_gaps(self):
        # Closing half-open differences can leave zero-width gaps.
        s = interval_set_from_pairs([(0, 3), (3 + 1e-12, 7)])
        assert s.covers(Interval(0, 7))

    def test_total_length(self):
        s = interval_set_from_pairs([(0, 1), (4, 6)])
        assert s.total_length == pytest.approx(3.0)

    def test_equality_and_hash(self):
        a = interval_set_from_pairs([(0, 1), (1, 2)])
        b = interval_set_from_pairs([(0, 2)])
        assert a == b
        assert hash(a) == hash(b)

    def test_approx_equals(self):
        a = interval_set_from_pairs([(0, 1)])
        b = interval_set_from_pairs([(0, 1 + 1e-12)])
        assert a.approx_equals(b)

    def test_approx_equals_ignores_point_members(self):
        a = interval_set_from_pairs([(0, 1), (5, 5)])
        b = interval_set_from_pairs([(0, 1)])
        assert a.approx_equals(b)


class TestToleranceParameters:
    """Regression tests: predicates and algebra accept an explicit
    ``atol`` so near-miss geometry (accumulated float error at event
    times) can be absorbed instead of silently dropped."""

    def test_overlaps_within_atol(self):
        a = Interval(0.0, 1.0)
        b = Interval(1.0 + 1e-10, 2.0)
        assert not a.overlaps(b)
        assert a.overlaps(b, atol=1e-9)
        assert b.overlaps(a, atol=1e-9)

    def test_overlaps_beyond_atol_still_false(self):
        a = Interval(0.0, 1.0)
        b = Interval(1.01, 2.0)
        assert not a.overlaps(b, atol=1e-9)

    def test_contains_interval_within_atol(self):
        outer = Interval(0.0, 1.0)
        inner = Interval(-1e-10, 1.0 + 1e-10)
        assert not outer.contains_interval(inner)
        assert outer.contains_interval(inner, atol=1e-9)

    def test_intersect_recovers_sliver(self):
        a = Interval(0.0, 1.0)
        b = Interval(1.0 + 1e-10, 2.0)
        assert a.intersect(b) is None
        sliver = a.intersect(b, atol=1e-9)
        assert sliver is not None
        assert sliver.length == pytest.approx(0.0, abs=1e-9)

    def test_intersect_without_atol_unchanged(self):
        a = Interval(0.0, 2.0)
        b = Interval(1.0, 3.0)
        assert a.intersect(b) == Interval(1.0, 2.0)
        assert a.intersect(b, atol=1e-9) == Interval(1.0, 2.0)

    def test_interval_set_intersect_forwards_atol(self):
        a = interval_set_from_pairs([(0, 1)])
        b = interval_set_from_pairs([(1.0 + 1e-10, 2)])
        assert a.intersect(b).is_empty
        assert not a.intersect(b, atol=1e-9).is_empty


class TestSamplePointsValidation:
    def test_zero_count_rejected(self):
        with pytest.raises(ValueError):
            Interval(0.0, 1.0).sample_points(0)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            Interval(0.0, 1.0).sample_points(-3)

    def test_count_one_still_works(self):
        pts = Interval(0.0, 1.0).sample_points(1)
        assert len(pts) == 1
        assert 0.0 <= pts[0] <= 1.0
