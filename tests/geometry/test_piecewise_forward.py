"""Tests for forward-looking piecewise accessors (jump handling)."""

import pytest

from repro.geometry.intervals import Interval
from repro.geometry.piecewise import PiecewiseFunction, first_order_flip_after
from repro.geometry.poly import Polynomial


def jumpy():
    """0 on [0,5], then 10 + t on [5,10] (jump at 5)."""
    return PiecewiseFunction(
        [
            (Interval(0, 5), Polynomial.constant(0.0)),
            (Interval(5, 10), Polynomial([10.0, 1.0])),
        ]
    )


class TestDiscontinuities:
    def test_jump_detected(self):
        assert jumpy().discontinuities() == [5.0]

    def test_continuous_has_none(self):
        f = PiecewiseFunction(
            [
                (Interval(0, 5), Polynomial([0.0, 1.0])),
                (Interval(5, 10), Polynomial([5.0, 0.0])),
            ]
        )
        # 5 at boundary on both sides: continuous.
        assert f.discontinuities() == []

    def test_single_piece(self):
        f = PiecewiseFunction.from_polynomial(Polynomial([1.0]), Interval(0, 1))
        assert f.discontinuities() == []


class TestValueAfter:
    def test_at_jump(self):
        f = jumpy()
        assert f(5.0) == 0.0  # left-authoritative
        assert f.value_after(5.0) == 15.0  # right limit

    def test_away_from_jump(self):
        f = jumpy()
        assert f.value_after(2.0) == f(2.0)
        assert f.value_after(7.0) == f(7.0)

    def test_at_domain_end(self):
        f = jumpy()
        assert f.value_after(10.0) == pytest.approx(20.0)


class TestForwardTaylor:
    def test_linear(self):
        f = PiecewiseFunction.from_polynomial(
            Polynomial([3.0, 2.0]), Interval(0, 10)
        )
        key = f.forward_taylor(1.0, terms=4)
        assert key == pytest.approx((5.0, 2.0, 0.0, 0.0))

    def test_uses_post_jump_piece(self):
        key = jumpy().forward_taylor(5.0, terms=3)
        assert key == pytest.approx((15.0, 1.0, 0.0))

    def test_tie_broken_by_derivative(self):
        flat = PiecewiseFunction.from_polynomial(
            Polynomial.constant(1.0), Interval(0, 10)
        )
        rising = PiecewiseFunction.from_polynomial(
            Polynomial([1.0, 1.0]), Interval(0, 10)
        )
        falling = PiecewiseFunction.from_polynomial(
            Polynomial([1.0, -1.0]), Interval(0, 10)
        )
        # All equal 1.0 at t=0; forward keys order by what happens next.
        keys = sorted(
            [
                ("flat", flat.forward_taylor(0.0)),
                ("rising", rising.forward_taylor(0.0)),
                ("falling", falling.forward_taylor(0.0)),
            ],
            key=lambda kv: kv[1],
        )
        assert [name for name, _ in keys] == ["falling", "flat", "rising"]

    def test_quadratic_tiebreak_beyond_first_derivative(self):
        base = PiecewiseFunction.from_polynomial(
            Polynomial([0.0, 1.0]), Interval(0, 10)
        )
        curving = PiecewiseFunction.from_polynomial(
            Polynomial([0.0, 1.0, -0.5]), Interval(0, 10)
        )
        # Equal value and first derivative at 0; second derivative decides.
        assert curving.forward_taylor(0.0) < base.forward_taylor(0.0)


class TestAssumeSignScheduling:
    def test_tie_stretch_contradiction_detected(self):
        """Curves equal on [0, 5], diverging with f above g after:
        a caller believing f < g must get a flip at 5."""
        f = PiecewiseFunction(
            [
                (Interval(0, 5), Polynomial.constant(1.0)),
                (Interval(5, 10), Polynomial([-4.0, 1.0])),  # t - 4: above 1
            ]
        )
        g = PiecewiseFunction.constant(1.0, Interval(0, 10))
        assert first_order_flip_after(f, g, 0.0, assume_sign=-1) == pytest.approx(5.0)
        # The data-driven baseline cannot see the contradiction.
        assert first_order_flip_after(f, g, 0.0) is None

    def test_consistent_belief_matches_default(self):
        f = PiecewiseFunction.from_polynomial(Polynomial([0.0, 1.0]), Interval(0, 10))
        g = PiecewiseFunction.constant(5.0, Interval(0, 10))
        assert first_order_flip_after(f, g, 0.0, assume_sign=-1) == pytest.approx(5.0)
        assert first_order_flip_after(f, g, 0.0) == pytest.approx(5.0)

    def test_allow_immediate_fires_at_window_start(self):
        """A pair already inverted at t0 (inherited from a tie stretch)
        corrects immediately when allowed."""
        f = PiecewiseFunction.from_polynomial(Polynomial.constant(2.0), Interval(0, 10))
        g = PiecewiseFunction.constant(1.0, Interval(0, 10))
        # Believing f < g contradicts reality from the start.
        assert (
            first_order_flip_after(f, g, 3.0, assume_sign=-1, allow_immediate=True)
            == pytest.approx(3.0)
        )
        # Without allow_immediate the guard band suppresses it.
        assert first_order_flip_after(f, g, 3.0, assume_sign=-1) is None
