"""Property-based tests of the geometric substrate's algebraic laws."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.intervals import Interval, IntervalSet
from repro.geometry.piecewise import PiecewiseFunction, first_order_flip_after
from repro.geometry.poly import Polynomial

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------
bounded_interval = st.tuples(
    st.floats(-100, 100, allow_nan=False).map(lambda v: round(v, 3)),
    st.floats(0, 50, allow_nan=False).map(lambda v: round(v, 3)),
).map(lambda pair: Interval(pair[0], pair[0] + pair[1]))

interval_sets = st.lists(bounded_interval, min_size=0, max_size=6).map(IntervalSet)

coeff = st.floats(-10, 10, allow_nan=False).map(lambda v: round(v, 3))
polys = st.lists(coeff, min_size=1, max_size=4).map(Polynomial)


def pw(poly_list, lo=-20.0, width=10.0):
    pieces = []
    for i, p in enumerate(poly_list):
        pieces.append((Interval(lo + i * width, lo + (i + 1) * width), p))
    return PiecewiseFunction(pieces)


piecewise_fns = st.lists(polys, min_size=1, max_size=3).map(pw)

probe_times = st.floats(-19.9, 9.9, allow_nan=False)


# ---------------------------------------------------------------------------
# IntervalSet laws
# ---------------------------------------------------------------------------
class TestIntervalSetLaws:
    @given(interval_sets, interval_sets)
    @settings(max_examples=60)
    def test_union_commutative(self, a, b):
        assert a.union(b) == b.union(a)

    @given(interval_sets, interval_sets)
    @settings(max_examples=60)
    def test_intersect_commutative(self, a, b):
        assert a.intersect(b) == b.intersect(a)

    @given(interval_sets)
    @settings(max_examples=40)
    def test_union_idempotent(self, a):
        assert a.union(a) == a

    @given(interval_sets)
    @settings(max_examples=40)
    def test_intersect_idempotent(self, a):
        assert a.intersect(a) == a

    @given(interval_sets, interval_sets, st.floats(-200, 200, allow_nan=False))
    @settings(max_examples=80)
    def test_membership_homomorphism(self, a, b, t):
        assert a.union(b).contains(t) == (a.contains(t) or b.contains(t))
        assert a.intersect(b).contains(t) == (a.contains(t) and b.contains(t))

    @given(interval_sets, interval_sets, st.floats(-200, 200, allow_nan=False))
    @settings(max_examples=80)
    def test_difference_membership(self, a, b, t):
        diff = a.difference(b)
        # Closure of the difference: strictly-inside points obey the law.
        if diff.contains(t):
            assert a.contains(t, atol=1e-9)
        if a.contains(t) and not b.contains(t, atol=1e-9):
            assert diff.contains(t, atol=1e-9)

    @given(interval_sets, interval_sets)
    @settings(max_examples=40)
    def test_difference_disjoint_from_subtrahend_interior(self, a, b):
        diff = a.difference(b)
        for iv in diff:
            if iv.length > 1e-9:
                mid = (iv.lo + iv.hi) / 2
                assert not b.contains(mid, atol=-1e-12) or b.contains(mid) == b.contains(mid)
                # Midpoints of difference components lie outside b's interior.
                assert not any(
                    cut.lo + 1e-12 < mid < cut.hi - 1e-12 for cut in b
                )

    @given(interval_sets)
    @settings(max_examples=40)
    def test_normalization_sorted_disjoint(self, a):
        items = a.intervals
        for x, y in zip(items, items[1:]):
            assert x.hi < y.lo  # strictly disjoint after merging


# ---------------------------------------------------------------------------
# Piecewise algebra laws
# ---------------------------------------------------------------------------
class TestPiecewiseLaws:
    @given(piecewise_fns, piecewise_fns, probe_times)
    @settings(max_examples=60)
    def test_add_pointwise(self, f, g, t):
        domain = f.domain.intersect(g.domain)
        if domain is None or not domain.contains(t):
            return
        assert (f + g)(t) == pytest.approx(f(t) + g(t), rel=1e-9, abs=1e-6)

    @given(piecewise_fns, piecewise_fns, probe_times)
    @settings(max_examples=60)
    def test_sub_antisymmetric(self, f, g, t):
        domain = f.domain.intersect(g.domain)
        if domain is None or not domain.contains(t):
            return
        assert (f - g)(t) == pytest.approx(-((g - f)(t)), rel=1e-9, abs=1e-6)

    @given(piecewise_fns, probe_times)
    @settings(max_examples=40)
    def test_scale_distributes(self, f, t):
        if not f.domain.contains(t):
            return
        assert f.scaled(3.0)(t) == pytest.approx(3.0 * f(t), rel=1e-9, abs=1e-6)

    @given(piecewise_fns)
    @settings(max_examples=40)
    def test_neg_involution(self, f):
        g = -(-f)
        for t in f.domain.sample_points(7):
            assert g(t) == pytest.approx(f(t))

    @given(piecewise_fns, piecewise_fns)
    @settings(max_examples=60)
    def test_flip_times_are_genuine(self, f, g):
        """Every reported order flip has opposite strict orders on its
        two sides."""
        domain = f.domain.intersect(g.domain)
        if domain is None or domain.length < 1e-6:
            return
        flip = first_order_flip_after(f, g, domain.lo, horizon=domain.hi)
        if flip is None:
            return
        left = max(domain.lo, flip - 1e-5)
        right = min(domain.hi, flip + 1e-5)
        before = f(left) - g(left)
        after = f(right) - g(right)
        # Signs cannot be strictly identical across a genuine flip.
        assert not (before > 1e-9 and after > 1e-9)
        assert not (before < -1e-9 and after < -1e-9)


# ---------------------------------------------------------------------------
# Sign segments partition the domain
# ---------------------------------------------------------------------------
class TestSignSegmentPartition:
    @given(piecewise_fns)
    @settings(max_examples=60)
    def test_segments_cover_domain(self, f):
        segments = f.sign_segments()
        assert segments[0][0].lo == f.domain.lo
        assert segments[-1][0].hi == f.domain.hi
        for (a, _), (b, __) in zip(segments, segments[1:]):
            assert a.hi == pytest.approx(b.lo, abs=1e-9)

    @given(piecewise_fns)
    @settings(max_examples=60)
    def test_segment_signs_match_samples(self, f):
        for iv, sign in f.sign_segments():
            if iv.length < 1e-6:
                continue
            mid = (iv.lo + iv.hi) / 2
            value = f(mid)
            if sign > 0:
                assert value > -1e-7
            elif sign < 0:
                assert value < 1e-7
            else:
                assert abs(value) < 1e-6
