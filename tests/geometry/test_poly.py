"""Tests for the polynomial type."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.poly import Polynomial, as_polynomial

finite_coeff = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)
small_poly = st.lists(finite_coeff, min_size=1, max_size=5).map(Polynomial)
probe_times = st.floats(min_value=-10.0, max_value=10.0, allow_nan=False)


class TestConstruction:
    def test_trim_trailing_zeros(self):
        assert Polynomial([1, 2, 0, 0]).coeffs == (1.0, 2.0)

    def test_empty_becomes_zero(self):
        assert Polynomial([]).is_zero

    def test_nonfinite_rejected(self):
        with pytest.raises(ValueError):
            Polynomial([float("inf")])

    def test_constant(self):
        p = Polynomial.constant(3.5)
        assert p.is_constant and p(100.0) == 3.5

    def test_identity(self):
        p = Polynomial.identity()
        assert p(7.0) == 7.0

    def test_linear(self):
        p = Polynomial.linear(2.0, 1.0)
        assert p(3.0) == 7.0

    def test_monomial(self):
        assert Polynomial.monomial(3, 2.0)(2.0) == 16.0

    def test_monomial_negative_degree_rejected(self):
        with pytest.raises(ValueError):
            Polynomial.monomial(-1)

    def test_from_roots(self):
        p = Polynomial.from_roots([1.0, 2.0])
        assert p(1.0) == pytest.approx(0.0)
        assert p(2.0) == pytest.approx(0.0)
        assert p.leading_coefficient == pytest.approx(1.0)


class TestInspection:
    def test_degree(self):
        assert Polynomial([1, 2, 3]).degree == 2
        assert Polynomial([5]).degree == 0

    def test_is_zero(self):
        assert Polynomial.zero().is_zero
        assert not Polynomial([0, 1]).is_zero

    def test_repr_of_zero(self):
        assert repr(Polynomial.zero()) == "0"

    def test_repr_terms(self):
        assert "t^2" in repr(Polynomial([0, 0, 1]))


class TestArithmetic:
    def test_add(self):
        assert Polynomial([1, 1]) + Polynomial([2, 0, 3]) == Polynomial([3, 1, 3])

    def test_add_scalar(self):
        assert Polynomial([1, 1]) + 2 == Polynomial([3, 1])
        assert 2 + Polynomial([1, 1]) == Polynomial([3, 1])

    def test_sub_cancels_to_zero(self):
        p = Polynomial([1, 2, 3])
        assert (p - p).is_zero

    def test_rsub(self):
        assert (1 - Polynomial([0, 1]))(0.25) == 0.75

    def test_mul(self):
        # (t+1)(t-1) = t^2 - 1
        assert Polynomial([1, 1]) * Polynomial([-1, 1]) == Polynomial([-1, 0, 1])

    def test_scaled(self):
        assert Polynomial([1, 2]).scaled(3) == Polynomial([3, 6])

    def test_neg(self):
        assert -Polynomial([1, -2]) == Polynomial([-1, 2])

    @given(small_poly, small_poly, probe_times)
    @settings(max_examples=60)
    def test_add_pointwise(self, p, q, t):
        assert (p + q)(t) == pytest.approx(p(t) + q(t), rel=1e-9, abs=1e-6)

    @given(small_poly, small_poly, probe_times)
    @settings(max_examples=60)
    def test_mul_pointwise(self, p, q, t):
        assert (p * q)(t) == pytest.approx(p(t) * q(t), rel=1e-7, abs=1e-4)


class TestCalculus:
    def test_derivative(self):
        assert Polynomial([1, 2, 3]).derivative() == Polynomial([2, 6])

    def test_derivative_of_constant(self):
        assert Polynomial.constant(5).derivative().is_zero

    def test_antiderivative_roundtrip(self):
        p = Polynomial([1, 2, 3])
        assert p.antiderivative().derivative() == p

    def test_antiderivative_constant(self):
        assert Polynomial([2]).antiderivative(7.0)(0.0) == 7.0


class TestComposition:
    def test_compose_linear(self):
        # p(t) = t^2, inner = t + 1 -> (t+1)^2
        p = Polynomial.monomial(2)
        inner = Polynomial([1, 1])
        assert p.compose(inner) == Polynomial([1, 2, 1])

    def test_shifted(self):
        p = Polynomial([0, 0, 1])  # t^2
        q = p.shifted(1.0)  # (t+1)^2
        assert q(0.0) == 1.0
        assert q(-1.0) == 0.0

    @given(small_poly, small_poly, probe_times)
    @settings(max_examples=40)
    def test_compose_pointwise(self, p, q, t):
        inner_value = q(t)
        if abs(inner_value) > 1e3:
            return
        assert p.compose(q)(t) == pytest.approx(p(inner_value), rel=1e-6, abs=1e-3)


class TestEquality:
    def test_equality_after_trim(self):
        assert Polynomial([1, 2, 1e-15]) == Polynomial([1, 2])

    def test_hash_consistent(self):
        assert hash(Polynomial([1, 2])) == hash(Polynomial([1, 2, 0]))

    def test_approx_equals(self):
        assert Polynomial([1, 2]).approx_equals(Polynomial([1 + 1e-12, 2]))
        assert not Polynomial([1, 2]).approx_equals(Polynomial([1.1, 2]))

    def test_as_polynomial(self):
        p = Polynomial([1])
        assert as_polynomial(p) is p
        assert as_polynomial(2.0) == Polynomial.constant(2.0)
