"""Tests for certified real-root isolation."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.intervals import Interval
from repro.geometry.poly import Polynomial
from repro.geometry.roots import (
    first_crossing_after,
    first_root_after,
    real_roots,
    roots_in_interval,
    sign_change_at,
    sign_on_interval,
    solution_intervals,
)

root_values = st.lists(
    st.floats(min_value=-50.0, max_value=50.0, allow_nan=False),
    min_size=1,
    max_size=4,
)


class TestRealRoots:
    def test_zero_poly_rejected(self):
        with pytest.raises(ValueError):
            real_roots(Polynomial.zero())

    def test_nonzero_constant_has_no_roots(self):
        assert real_roots(Polynomial.constant(3.0)) == []

    def test_linear(self):
        assert real_roots(Polynomial([-6, 2])) == [3.0]

    def test_quadratic_two_roots(self):
        roots = real_roots(Polynomial.from_roots([1.0, 4.0]))
        assert roots == pytest.approx([1.0, 4.0])

    def test_quadratic_no_real_roots(self):
        assert real_roots(Polynomial([1, 0, 1])) == []

    def test_quadratic_double_root(self):
        roots = real_roots(Polynomial([4, -4, 1]))  # (t-2)^2
        assert roots == pytest.approx([2.0])

    def test_quadratic_cancellation_stability(self):
        # Roots of very different magnitudes: naive formula loses the
        # small root to cancellation.
        p = Polynomial.from_roots([1e-8, 1e8])
        roots = real_roots(p)
        assert len(roots) == 2
        assert roots[0] == pytest.approx(1e-8, rel=1e-6)
        assert roots[1] == pytest.approx(1e8, rel=1e-6)

    def test_cubic(self):
        roots = real_roots(Polynomial.from_roots([-1.0, 2.0, 5.0]))
        assert roots == pytest.approx([-1.0, 2.0, 5.0], abs=1e-6)

    def test_quartic_mixed_real_complex(self):
        # (t^2+1)(t-1)(t-3): real roots at 1, 3 only.
        p = Polynomial([1, 0, 1]) * Polynomial.from_roots([1.0, 3.0])
        roots = real_roots(p)
        assert roots == pytest.approx([1.0, 3.0], abs=1e-6)

    @given(root_values)
    @settings(max_examples=60)
    def test_recovers_constructed_roots(self, values):
        spaced = sorted(set(round(v, 3) for v in values))
        if len(spaced) > 1:
            gaps = [b - a for a, b in zip(spaced, spaced[1:])]
            if min(gaps) < 1e-2:
                return
        p = Polynomial.from_roots(spaced)
        found = real_roots(p)
        assert len(found) == len(spaced)
        for expected, got in zip(spaced, found):
            assert got == pytest.approx(expected, abs=1e-5)


class TestRootsInInterval:
    def test_filters_by_interval(self):
        p = Polynomial.from_roots([1.0, 5.0, 9.0])
        assert roots_in_interval(p, Interval(2.0, 8.0)) == pytest.approx([5.0])

    def test_endpoint_root_included(self):
        p = Polynomial.from_roots([2.0])
        assert roots_in_interval(p, Interval(2.0, 3.0)) == pytest.approx([2.0])


class TestSignChange:
    def test_simple_root_changes_sign(self):
        p = Polynomial.from_roots([3.0])
        assert sign_change_at(p, 3.0)

    def test_double_root_does_not_change_sign(self):
        p = Polynomial.from_roots([3.0, 3.0])
        assert not sign_change_at(p, 3.0)

    def test_triple_root_changes_sign(self):
        p = Polynomial.from_roots([3.0, 3.0, 3.0])
        assert sign_change_at(p, 3.0)

    def test_probe_respects_neighbor_roots(self):
        # Roots at 0 and 1e-7: probing 0 must not cross 1e-7.
        p = Polynomial.from_roots([0.0, 1e-7])
        assert sign_change_at(p, 0.0)


class TestFirstRootAfter:
    def test_skips_past_roots(self):
        p = Polynomial.from_roots([1.0, 5.0])
        assert first_root_after(p, 2.0) == pytest.approx(5.0)

    def test_none_when_exhausted(self):
        p = Polynomial.from_roots([1.0])
        assert first_root_after(p, 2.0) is None

    def test_horizon(self):
        p = Polynomial.from_roots([5.0])
        assert first_root_after(p, 0.0, horizon=4.0) is None
        assert first_root_after(p, 0.0, horizon=6.0) == pytest.approx(5.0)

    def test_min_gap_guard(self):
        p = Polynomial.from_roots([1.0])
        assert first_root_after(p, 1.0) is None
        assert first_root_after(p, 1.0 - 1e-12) is None

    def test_zero_poly_returns_none(self):
        assert first_root_after(Polynomial.zero(), 0.0) is None


class TestFirstCrossingAfter:
    def test_skips_tangency(self):
        # (t-2)^2 * (t-5): tangency at 2, crossing at 5.
        p = Polynomial.from_roots([2.0, 2.0, 5.0])
        assert first_crossing_after(p, 0.0) == pytest.approx(5.0)

    def test_transversal(self):
        p = Polynomial.from_roots([3.0])
        assert first_crossing_after(p, 0.0) == pytest.approx(3.0)

    def test_none_for_always_positive(self):
        assert first_crossing_after(Polynomial([1, 0, 1]), 0.0) is None


class TestSignOnInterval:
    def test_positive(self):
        assert sign_on_interval(Polynomial.constant(2.0), Interval(0, 1)) == 1

    def test_negative_on_ray(self):
        p = Polynomial([0, -1])  # -t
        assert sign_on_interval(p, Interval.at_least(1.0)) == -1

    def test_whole_line(self):
        assert sign_on_interval(Polynomial([1, 0, 1]), Interval.all_time()) == 1


class TestSolutionIntervals:
    def test_le_quadratic(self):
        p = Polynomial.from_roots([1.0, 2.0])
        (iv,) = solution_intervals(p, Interval(0, 10), "<=")
        assert iv.approx_equals(Interval(1.0, 2.0))

    def test_lt_reports_closure(self):
        p = Polynomial.from_roots([1.0, 2.0])
        (iv,) = solution_intervals(p, Interval(0, 10), "<")
        assert iv.approx_equals(Interval(1.0, 2.0))

    def test_ge_two_components(self):
        p = Polynomial.from_roots([1.0, 2.0])
        ivs = solution_intervals(p, Interval(0, 10), ">=")
        assert len(ivs) == 2
        assert ivs[0].approx_equals(Interval(0.0, 1.0))
        assert ivs[1].approx_equals(Interval(2.0, 10.0))

    def test_eq_returns_points(self):
        p = Polynomial.from_roots([3.0, 7.0])
        ivs = solution_intervals(p, Interval(0, 10), "=")
        assert [iv.lo for iv in ivs] == pytest.approx([3.0, 7.0])

    def test_zero_poly_weak_predicates(self):
        dom = Interval(0, 1)
        assert solution_intervals(Polynomial.zero(), dom, "<=") == [dom]
        assert solution_intervals(Polynomial.zero(), dom, "<") == []

    def test_unbounded_domain(self):
        p = Polynomial.from_roots([0.0])  # t
        ivs = solution_intervals(p, Interval.all_time(), ">=")
        assert len(ivs) == 1
        assert ivs[0].lo == pytest.approx(0.0)
        assert math.isinf(ivs[0].hi)

    def test_no_solutions(self):
        p = Polynomial([1, 0, 1])  # t^2 + 1 > 0 always
        assert solution_intervals(p, Interval(0, 10), "<=") == []

    def test_unknown_predicate_rejected(self):
        with pytest.raises(ValueError):
            solution_intervals(Polynomial([1]), Interval(0, 1), "!=")

    @given(root_values, st.sampled_from(["<", "<=", ">=", ">"]))
    @settings(max_examples=40)
    def test_solutions_verified_by_sampling(self, values, predicate):
        spaced = sorted(set(round(v, 2) for v in values))
        if len(spaced) > 1 and min(
            b - a for a, b in zip(spaced, spaced[1:])
        ) < 0.5:
            return
        p = Polynomial.from_roots(spaced)
        domain = Interval(-60.0, 60.0)
        ivs = solution_intervals(p, domain, predicate)
        # Strictly interior points of solution intervals must satisfy
        # the predicate; points far from any solution must not.
        for iv in ivs:
            if iv.length > 1e-3:
                mid = (iv.lo + iv.hi) / 2
                value = p(mid)
                if predicate in ("<", "<="):
                    assert value <= 1e-6
                else:
                    assert value >= -1e-6
