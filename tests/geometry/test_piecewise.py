"""Tests for piecewise polynomial functions and order-flip detection."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.intervals import Interval
from repro.geometry.piecewise import (
    PiecewiseFunction,
    first_order_flip_after,
    lower_envelope,
    maximum,
    minimum,
)
from repro.geometry.poly import Polynomial


def line(slope, intercept, lo=-math.inf, hi=math.inf):
    return PiecewiseFunction.from_polynomial(
        Polynomial.linear(slope, intercept), Interval(lo, hi)
    )


def two_piece_v(vertex_t=0.0, lo=-10.0, hi=10.0):
    """|t - vertex_t| as a 2-piece linear function."""
    return PiecewiseFunction(
        [
            (Interval(lo, vertex_t), Polynomial.linear(-1.0, vertex_t)),
            (Interval(vertex_t, hi), Polynomial.linear(1.0, -vertex_t)),
        ]
    )


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            PiecewiseFunction([])

    def test_gap_rejected(self):
        with pytest.raises(ValueError):
            PiecewiseFunction(
                [
                    (Interval(0, 1), Polynomial.zero()),
                    (Interval(2, 3), Polynomial.zero()),
                ]
            )

    def test_domain(self):
        f = two_piece_v()
        assert f.domain == Interval(-10.0, 10.0)

    def test_breakpoints(self):
        assert two_piece_v(1.0).breakpoints == [1.0]

    def test_max_degree(self):
        f = PiecewiseFunction(
            [
                (Interval(0, 1), Polynomial([0, 1])),
                (Interval(1, 2), Polynomial([0, 0, 1])),
            ]
        )
        assert f.max_degree == 2


class TestEvaluation:
    def test_single_piece(self):
        f = line(2.0, 1.0)
        assert f(3.0) == 7.0

    def test_v_shape(self):
        f = two_piece_v()
        assert f(-3.0) == 3.0
        assert f(0.0) == 0.0
        assert f(4.0) == 4.0

    def test_boundary_uses_earlier_piece(self):
        f = PiecewiseFunction(
            [
                (Interval(0, 1), Polynomial.constant(1.0)),
                (Interval(1, 2), Polynomial.constant(2.0)),
            ]
        )
        assert f(1.0) == 1.0

    def test_outside_domain_rejected(self):
        with pytest.raises(ValueError):
            two_piece_v()(100.0)

    def test_piece_at_binary_search(self):
        pieces = [
            (Interval(float(i), float(i + 1)), Polynomial.constant(float(i)))
            for i in range(20)
        ]
        f = PiecewiseFunction(pieces)
        for i in range(20):
            assert f(i + 0.5) == float(i)

    def test_is_continuous(self):
        assert two_piece_v().is_continuous()
        jump = PiecewiseFunction(
            [
                (Interval(0, 1), Polynomial.constant(0.0)),
                (Interval(1, 2), Polynomial.constant(5.0)),
            ]
        )
        assert not jump.is_continuous()


class TestRestrictExtend:
    def test_restrict_inside_one_piece(self):
        f = two_piece_v()
        g = f.restrict(Interval(1.0, 5.0))
        assert g.domain == Interval(1.0, 5.0)
        assert g(3.0) == 3.0

    def test_restrict_across_breakpoint(self):
        g = two_piece_v().restrict(Interval(-2.0, 2.0))
        assert g.piece_count == 2
        assert g(-1.0) == 1.0 and g(1.0) == 1.0

    def test_restrict_disjoint_rejected(self):
        with pytest.raises(ValueError):
            two_piece_v().restrict(Interval(50.0, 60.0))

    def test_restrict_to_point(self):
        g = two_piece_v().restrict(Interval.point(3.0))
        assert g.domain.is_point
        assert g(3.0) == 3.0

    def test_extend_hold(self):
        f = line(1.0, 0.0, lo=0.0, hi=1.0)
        g = f.extend_to(Interval(-5.0, 5.0), mode="hold")
        assert g(-5.0) == -5.0 and g(5.0) == 5.0

    def test_extend_freeze(self):
        f = line(1.0, 0.0, lo=0.0, hi=1.0)
        g = f.extend_to(Interval(-5.0, 5.0), mode="freeze")
        assert g(-5.0) == 0.0 and g(5.0) == 1.0

    def test_extend_bad_mode(self):
        with pytest.raises(ValueError):
            two_piece_v().extend_to(Interval(-20, 20), mode="wrap")


class TestAlgebra:
    def test_add_refines_partitions(self):
        f = two_piece_v(0.0)
        g = two_piece_v(2.0)
        h = f + g
        assert set(h.breakpoints) == {0.0, 2.0}
        for t in (-1.0, 0.5, 1.5, 3.0):
            assert h(t) == pytest.approx(f(t) + g(t))

    def test_sub_self_is_zero(self):
        f = two_piece_v()
        diff = f - f
        assert all(p.is_zero for _, p in diff.pieces)

    def test_mul(self):
        f = line(1.0, 0.0, 0.0, 5.0)
        g = line(1.0, 1.0, 0.0, 5.0)
        h = f * g
        assert h(2.0) == pytest.approx(6.0)

    def test_disjoint_domains_rejected(self):
        f = line(1.0, 0.0, 0.0, 1.0)
        g = line(1.0, 0.0, 5.0, 6.0)
        with pytest.raises(ValueError):
            f + g

    def test_neg_scaled_plus_constant(self):
        f = two_piece_v()
        assert (-f)(3.0) == -3.0
        assert f.scaled(2.0)(3.0) == 6.0
        assert f.plus_constant(1.0)(3.0) == 4.0

    def test_derivative(self):
        f = two_piece_v()
        d = f.derivative()
        assert d(-5.0) == -1.0
        assert d(5.0) == 1.0

    def test_sample(self):
        f = line(2.0, 0.0, 0.0, 10.0)
        assert f.sample([1.0, 2.0]) == [2.0, 4.0]


class TestComposePolynomial:
    def test_identity_composition(self):
        f = two_piece_v()
        g = f.compose_polynomial(Polynomial.identity(), Interval(-10.0, 10.0))
        for t in (-3.0, 0.0, 4.0):
            assert g(t) == pytest.approx(f(t))

    def test_affine_composition(self):
        f = line(1.0, 0.0)  # f(u) = u
        # u = 2t + 1
        g = f.compose_polynomial(Polynomial([1.0, 2.0]), Interval(0.0, 5.0))
        assert g(2.0) == pytest.approx(5.0)

    def test_composition_crossing_breakpoint(self):
        f = two_piece_v(0.0, lo=-100.0, hi=100.0)
        # u = t - 5 crosses f's breakpoint (u=0) at t=5.
        g = f.compose_polynomial(Polynomial([-5.0, 1.0]), Interval(0.0, 10.0))
        assert g(3.0) == pytest.approx(2.0)  # |3-5|
        assert g(8.0) == pytest.approx(3.0)

    def test_quadratic_time_term(self):
        f = line(1.0, 0.0, -100.0, 100.0)  # f(u) = u
        g = f.compose_polynomial(Polynomial([0, 0, 1.0]), Interval(-5.0, 5.0))
        assert g(3.0) == pytest.approx(9.0)
        assert g(-2.0) == pytest.approx(4.0)

    def test_constant_time_term(self):
        f = two_piece_v()
        g = f.compose_polynomial(Polynomial.constant(4.0), Interval(0.0, 1.0))
        assert g(0.5) == pytest.approx(4.0)

    def test_image_outside_domain_rejected(self):
        f = line(1.0, 0.0, 0.0, 1.0)
        with pytest.raises(ValueError):
            f.compose_polynomial(Polynomial.constant(50.0), Interval(0.0, 1.0))


class TestSignSegments:
    def test_constant_positive(self):
        f = PiecewiseFunction.constant(2.0, Interval(0, 10))
        assert f.sign_segments() == [(Interval(0, 10), 1)]

    def test_crossing_splits(self):
        f = line(1.0, -5.0, 0.0, 10.0)  # t - 5
        segs = f.sign_segments()
        signs = [s for _, s in segs]
        assert signs == [-1, 0, 1]
        assert segs[1][0].is_point and segs[1][0].lo == pytest.approx(5.0)

    def test_tangency_does_not_split(self):
        # (t-5)^2 on [0, 10]: positive throughout except a touch at 5.
        f = PiecewiseFunction.from_polynomial(
            Polynomial.from_roots([5.0, 5.0]), Interval(0, 10)
        )
        segs = f.sign_segments()
        assert [s for _, s in segs] == [1]

    def test_zero_piece_run(self):
        f = PiecewiseFunction(
            [
                (Interval(0, 2), Polynomial.linear(1.0, -2.0)),  # t-2: negative
                (Interval(2, 5), Polynomial.zero()),
                (Interval(5, 8), Polynomial.linear(1.0, -5.0)),  # positive
            ]
        )
        segs = f.sign_segments()
        assert [s for _, s in segs] == [-1, 0, 1]
        assert segs[1][0] == Interval(2, 5)

    def test_within_window(self):
        f = line(1.0, -5.0, 0.0, 10.0)
        segs = f.sign_segments(within=Interval(6.0, 9.0))
        assert [s for _, s in segs] == [1]


class TestCrossingsAndFlips:
    def test_two_lines_cross_once(self):
        f = line(1.0, 0.0, 0.0, 10.0)
        g = line(-1.0, 6.0, 0.0, 10.0)
        assert f.crossings_with(g) == pytest.approx([3.0])

    def test_flip_after_start(self):
        f = line(1.0, 0.0, 0.0, 10.0)
        g = line(-1.0, 6.0, 0.0, 10.0)
        assert first_order_flip_after(f, g, 0.0) == pytest.approx(3.0)

    def test_flip_respects_t0(self):
        f = line(1.0, 0.0, 0.0, 10.0)
        g = line(-1.0, 6.0, 0.0, 10.0)
        assert first_order_flip_after(f, g, 3.5) is None

    def test_tangency_is_not_a_flip(self):
        f = PiecewiseFunction.from_polynomial(
            Polynomial.from_roots([4.0, 4.0]), Interval(0, 10)
        )
        g = PiecewiseFunction.constant(0.0, Interval(0, 10))
        assert first_order_flip_after(f, g, 0.0) is None

    def test_quadratic_crosses_twice(self):
        # t^2 - 4 vs 0: crossings at -2 and 2.
        f = PiecewiseFunction.from_polynomial(Polynomial([-4, 0, 1]), Interval(-5, 5))
        g = PiecewiseFunction.constant(0.0, Interval(-5, 5))
        assert first_order_flip_after(f, g, -5.0) == pytest.approx(-2.0)
        assert first_order_flip_after(f, g, 0.0) == pytest.approx(2.0)

    def test_coincidence_stretch_flip_reported_at_stretch_end(self):
        f = PiecewiseFunction(
            [
                (Interval(0, 2), Polynomial.linear(1.0, -2.0)),  # below
                (Interval(2, 5), Polynomial.zero()),  # coincide
                (Interval(5, 8), Polynomial.linear(1.0, -5.0)),  # above
            ]
        )
        g = PiecewiseFunction.constant(0.0, Interval(0, 8))
        assert first_order_flip_after(f, g, 0.0) == pytest.approx(5.0)

    def test_identical_curves_never_flip(self):
        f = line(1.0, 0.0, 0.0, 10.0)
        assert first_order_flip_after(f, f, 0.0) is None

    def test_disjoint_domains(self):
        f = line(1.0, 0.0, 0.0, 1.0)
        g = line(1.0, 0.0, 5.0, 6.0)
        assert first_order_flip_after(f, g, 0.0) is None

    def test_horizon_cuts_off(self):
        f = line(1.0, 0.0, 0.0, 10.0)
        g = line(-1.0, 6.0, 0.0, 10.0)
        assert first_order_flip_after(f, g, 0.0, horizon=2.0) is None

    def test_piecewise_crossing_in_later_piece(self):
        f = two_piece_v(0.0, lo=0.0, hi=10.0)  # rises from 0
        g = PiecewiseFunction.constant(4.0, Interval(0.0, 10.0))
        assert first_order_flip_after(f, g, 0.0) == pytest.approx(4.0)


class TestEnvelopes:
    def test_minimum_of_crossing_lines(self):
        f = line(1.0, 0.0, 0.0, 10.0)
        g = line(-1.0, 6.0, 0.0, 10.0)
        m = minimum(f, g)
        assert m(1.0) == pytest.approx(1.0)  # f below
        assert m(5.0) == pytest.approx(1.0)  # g below
        assert m(3.0) == pytest.approx(3.0)  # crossing point

    def test_maximum(self):
        f = line(1.0, 0.0, 0.0, 10.0)
        g = line(-1.0, 6.0, 0.0, 10.0)
        m = maximum(f, g)
        assert m(1.0) == pytest.approx(5.0)
        assert m(5.0) == pytest.approx(5.0)

    def test_lower_envelope_many(self):
        curves = [
            line(0.0, 5.0, 0.0, 10.0),
            line(1.0, 0.0, 0.0, 10.0),
            line(-1.0, 8.0, 0.0, 10.0),
        ]
        env = lower_envelope(curves)
        for t in [0.0, 2.5, 5.0, 7.5, 10.0]:
            assert env(t) == pytest.approx(min(c(t) for c in curves))

    def test_lower_envelope_empty_rejected(self):
        with pytest.raises(ValueError):
            lower_envelope([])

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=-3.0, max_value=3.0, allow_nan=False),
                st.floats(min_value=-10.0, max_value=10.0, allow_nan=False),
            ),
            min_size=1,
            max_size=6,
        )
    )
    @settings(max_examples=40)
    def test_lower_envelope_matches_pointwise_min(self, params):
        curves = [line(a, b, -5.0, 5.0) for a, b in params]
        env = lower_envelope(curves)
        for t in [-5.0, -2.0, 0.1, 3.3, 5.0]:
            expected = min(c(t) for c in curves)
            assert env(t) == pytest.approx(expected, abs=1e-6)
