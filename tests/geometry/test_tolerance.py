"""Tests for the numeric comparison policy."""

import math

from repro.geometry.tolerance import (
    approx_eq,
    approx_ge,
    approx_gt,
    approx_le,
    approx_lt,
    is_zero,
)


class TestApproxEq:
    def test_exact_equality(self):
        assert approx_eq(1.5, 1.5)

    def test_within_absolute_tolerance(self):
        assert approx_eq(1.0, 1.0 + 1e-12)

    def test_outside_tolerance(self):
        assert not approx_eq(1.0, 1.001)

    def test_relative_tolerance_scales_with_magnitude(self):
        assert approx_eq(1e12, 1e12 + 1.0)

    def test_infinities_equal_to_themselves(self):
        assert approx_eq(math.inf, math.inf)
        assert approx_eq(-math.inf, -math.inf)

    def test_infinity_not_equal_to_finite(self):
        assert not approx_eq(math.inf, 1e300)

    def test_opposite_infinities(self):
        assert not approx_eq(math.inf, -math.inf)

    def test_zero_vs_tiny(self):
        assert approx_eq(0.0, 1e-15)


class TestOrderedComparisons:
    def test_le_strict(self):
        assert approx_le(1.0, 2.0)

    def test_le_within_tolerance(self):
        assert approx_le(1.0 + 1e-12, 1.0)

    def test_le_fails(self):
        assert not approx_le(2.0, 1.0)

    def test_ge(self):
        assert approx_ge(2.0, 1.0)
        assert approx_ge(1.0, 1.0 + 1e-13)
        assert not approx_ge(1.0, 2.0)

    def test_lt_excludes_near_equal(self):
        assert approx_lt(1.0, 2.0)
        assert not approx_lt(1.0, 1.0 + 1e-13)

    def test_gt_excludes_near_equal(self):
        assert approx_gt(2.0, 1.0)
        assert not approx_gt(1.0 + 1e-13, 1.0)


class TestIsZero:
    def test_zero(self):
        assert is_zero(0.0)

    def test_tiny(self):
        assert is_zero(1e-12)

    def test_not_zero(self):
        assert not is_zero(1e-3)

    def test_custom_tolerance(self):
        assert is_zero(0.5, atol=1.0)
