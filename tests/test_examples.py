"""Smoke tests: every shipped example runs to completion.

Examples are documentation that executes; these tests keep them from
rotting.  Each is run in-process with ``runpy`` so import errors,
API drift, and scenario regressions fail loudly.
"""

import io
import pathlib
import runpy
from contextlib import redirect_stdout

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    output = buffer.getvalue()
    assert output.strip(), f"{script} produced no output"


def test_expected_examples_present():
    assert "quickstart.py" in EXAMPLES
    assert len(EXAMPLES) >= 4


class TestExampleContent:
    def test_quickstart_mentions_answers(self):
        buffer = io.StringIO()
        with redirect_stdout(buffer):
            runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__")
        out = buffer.getvalue()
        assert "Nearest van" in out
        assert "van-1" in out

    def test_air_traffic_reproduces_example1(self):
        buffer = io.StringIO()
        with redirect_stdout(buffer):
            runpy.run_path(str(EXAMPLES_DIR / "air_traffic.py"), run_name="__main__")
        out = buffer.getvalue()
        # The paper's narrated turn positions and landing point.
        assert "(2, 2, 30)" in out
        assert "(2, 1, 25)" in out
        assert "(14.5, 1, 0)" in out

    def test_live_tracking_shows_figure2(self):
        buffer = io.StringIO()
        with redirect_stdout(buffer):
            runpy.run_path(str(EXAMPLES_DIR / "live_tracking.py"), run_name="__main__")
        out = buffer.getvalue()
        assert "C=8.4" in out
        assert "naive recomputation: True" in out
