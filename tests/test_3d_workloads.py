"""Tests exercising the full pipeline in three dimensions.

The model is dimension-generic (``R^n``); aircraft scenarios are 3-D.
These tests ensure nothing in the stack silently assumes the plane.
"""

import pytest

from repro.baselines.naive import naive_knn_answer, naive_within_answer
from repro.core.api import evaluate_knn, evaluate_within
from repro.geometry.intervals import Interval
from repro.gdist.coordinate import CoordinateValue, WeightedSquaredDistance
from repro.gdist.euclidean import SquaredEuclideanDistance
from repro.mod.database import MovingObjectDatabase
from repro.trajectory.builder import from_waypoints, linear_from
from repro.workloads.generator import UpdateStream, random_linear_mod


class TestThreeDimensionalKNN:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_naive(self, seed):
        db = random_linear_mod(8, seed=seed, dimension=3, extent=30.0, speed=5.0)
        gd = SquaredEuclideanDistance([0.0, 0.0, 0.0])
        interval = Interval(0.0, 15.0)
        sweep = evaluate_knn(db, gd, interval, 2)
        naive = naive_knn_answer(db, gd, interval, 2)
        assert sweep.approx_equals(naive, atol=1e-6)

    def test_moving_3d_query(self):
        db = random_linear_mod(6, seed=7, dimension=3, extent=25.0, speed=4.0)
        climb = from_waypoints(
            [(0, [0.0, 0.0, 0.0]), (20, [20.0, 0.0, 100.0])]
        )
        gd = SquaredEuclideanDistance(climb)
        interval = Interval(0.0, 20.0)
        sweep = evaluate_knn(db, gd, interval, 1)
        naive = naive_knn_answer(db, gd, interval, 1)
        assert sweep.approx_equals(naive, atol=1e-6)

    def test_with_updates(self):
        db = random_linear_mod(6, seed=9, dimension=3, extent=30.0, speed=5.0)
        gd = SquaredEuclideanDistance([0.0, 0.0, 0.0])
        from repro.sweep.engine import SweepEngine
        from repro.sweep.knn import ContinuousKNN

        engine = SweepEngine(db, gd, Interval(0.0, 40.0))
        view = ContinuousKNN(engine, 2)
        engine.subscribe_to(db)
        UpdateStream(db, seed=10, mean_gap=3.0, extent=30.0, speed=5.0).run(10)
        engine.run_to_end()
        naive = naive_knn_answer(db, gd, Interval(0.0, 40.0), 2)
        assert view.answer().approx_equals(naive, atol=1e-6)


class TestAltitudeQueries:
    def build_airspace(self):
        db = MovingObjectDatabase()
        db.install("low", linear_from(0.0, [0, 0, 1000.0], [50.0, 0.0, 0.0]))
        db.install("climbing", linear_from(0.0, [0, 10, 500.0], [50.0, 0.0, 200.0]))
        db.install("cruise", linear_from(0.0, [0, -10, 10000.0], [60.0, 0.0, 0.0]))
        return db

    def test_rank_by_altitude(self):
        db = self.build_airspace()
        answer = evaluate_knn(db, CoordinateValue(2), Interval(0.0, 30.0), 1)
        # 'climbing' starts lowest, overtakes 'low' at t=2.5.
        assert answer.at(1.0) == {"climbing"}
        assert answer.at(5.0) == {"low"}

    def test_below_flight_level(self):
        db = self.build_airspace()
        below_8000 = evaluate_within(
            db, CoordinateValue(2), Interval(0.0, 30.0), 8000.0
        )
        assert "cruise" not in below_8000.objects
        assert below_8000.intervals_for("low").covers(Interval(0.0, 30.0))
        climbing = below_8000.intervals_for("climbing")
        # Crosses 8000 ft at t = 37.5 -> inside the window it stays below.
        assert climbing.covers(Interval(0.0, 30.0))

    def test_ground_distance_ignoring_altitude(self):
        db = self.build_airspace()
        gd = WeightedSquaredDistance([0.0, 0.0, 0.0], [1.0, 1.0, 0.0])
        interval = Interval(0.0, 10.0)
        sweep = evaluate_knn(db, gd, interval, 1)
        naive = naive_knn_answer(db, gd, interval, 1)
        assert sweep.approx_equals(naive, atol=1e-6)


class TestWithin3D:
    def test_sphere_membership(self):
        db = MovingObjectDatabase()
        db.install("passer", linear_from(0.0, [-100.0, 0.0, 50.0], [10.0, 0.0, 0.0]))
        db.install("outside", linear_from(0.0, [0.0, 500.0, 0.0], [0.0, 0.0, 0.0]))
        answer = evaluate_within(
            db, [0.0, 0.0, 0.0], Interval(0.0, 20.0), distance=120.0
        )
        assert "outside" not in answer.objects
        passer = answer.intervals_for("passer")
        assert not passer.is_empty
        naive = naive_within_answer(
            db,
            SquaredEuclideanDistance([0.0, 0.0, 0.0]),
            Interval(0.0, 20.0),
            120.0**2,
        )
        assert answer.approx_equals(naive, atol=1e-6)
