"""Every query of Example 11, end to end through the public API.

Example 11 lists the queries FO(f) expresses; this suite builds one
air-traffic / police scenario per bullet and answers it:

1. "List the k-nearest flights to Flight 623 at time tau"
2. "List all flights that were within 50 km from Flight 623 from tau1
   to tau2"
3. "If Flight 744 changes its motion to x = A't + B', which is the
   nearest flight at some future time tau?"  (hypothetical update)
4. "In the last hour what police cars were at the same positions as
   the car #1404?"  (distance-zero query)
5. "List all flights that can reach Flight 623 within 30 minutes"
   (fastest arrival with hypothetical redirection)
6. "For the police car #1404 (moving) list other police cars that can
   reach it in 5 minutes"
"""

import pytest

from repro.core.api import evaluate_knn, evaluate_within
from repro.geometry.intervals import Interval
from repro.gdist.approx import PolynomialApproximation
from repro.gdist.arrival import ArrivalTimeGDistance
from repro.mod.database import MovingObjectDatabase
from repro.trajectory.builder import from_waypoints, linear_from, stationary


def flights_db():
    db = MovingObjectDatabase()
    flight_623 = from_waypoints([(0, [0.0, 0.0]), (60, [600.0, 0.0])])
    db.install("F623", flight_623)
    db.install("F100", from_waypoints([(0, [0.0, 20.0]), (60, [600.0, 20.0])]))
    db.install("F200", from_waypoints([(0, [300.0, -300.0]), (60, [300.0, 300.0])]))
    db.install("F744", from_waypoints([(0, [0.0, 300.0]), (60, [600.0, 300.0])]))
    return db, flight_623


class TestBullet1KNearestAtInstant:
    def test_k_nearest_at_time_tau(self):
        db, f623 = flights_db()
        tau = 40.0  # (at t=30 the crosser F200 is exactly at F623)
        # A snapshot query is an interval query over the point [tau, tau].
        answer = evaluate_knn(db, f623, Interval.point(tau), k=2)
        at_tau = answer.at(tau)
        # F623 itself is nearest (distance 0); F100 flies 20 away.
        assert "F623" in at_tau and "F100" in at_tau

    def test_snapshot_agrees_with_interval_query(self):
        db, f623 = flights_db()
        tau = 40.0
        snapshot = evaluate_knn(db, f623, Interval.point(tau), k=2).at(tau)
        windowed = evaluate_knn(db, f623, Interval(0.0, 60.0), k=2).at(tau)
        assert snapshot == windowed


class TestBullet2WithinRange:
    def test_within_50_between_tau1_tau2(self):
        db, f623 = flights_db()
        answer = evaluate_within(db, f623, Interval(10.0, 50.0), distance=50.0)
        assert "F100" in answer.objects  # parallel escort, 20 away
        assert "F744" not in answer.objects  # 300 away throughout
        # The crosser is within 50 only around t=30.
        crosser = answer.intervals_for("F200")
        assert not crosser.is_empty
        assert not crosser.covers(Interval(10.0, 50.0))


class TestBullet3HypotheticalMotionChange:
    def test_if_flight_744_dives(self):
        db, f623 = flights_db()
        tau = 40.0
        # Current prediction: F744 stays 300 away — not nearest at tau.
        current = evaluate_knn(db, f623, Interval.point(tau), k=2).at(tau)
        assert "F744" not in current
        # Hypothetically F744 turns straight at Flight 623's path now.
        scenario = db.clone()
        scenario.advance_clock(20.0)
        scenario.change_direction("F744", 20.0 + 1e-9, [10.0, -14.5])
        hypothetical = evaluate_knn(scenario, f623, Interval.point(tau), k=2).at(tau)
        assert "F744" in hypothetical
        # The real database is untouched.
        assert db.trajectory("F744").turns == []

    def test_clone_isolation(self):
        db, _ = flights_db()
        clone = db.clone()
        clone.advance_clock(5.0)
        clone.terminate("F100", 6.0)
        assert "F100" in db
        assert clone.is_terminated("F100")


class TestBullet4SamePositionInLastHour:
    def test_cars_meeting_car_1404(self):
        db = MovingObjectDatabase()
        car_1404 = from_waypoints([(0, [0.0, 0.0]), (60, [60.0, 0.0])])
        db.install("c1404", car_1404)
        # Crosses car 1404's position exactly at t = 30, (30, 0).
        db.install("c7", from_waypoints([(0, [30.0, -30.0]), (60, [30.0, 30.0])]))
        # Runs parallel, never meets.
        db.install("c9", from_waypoints([(0, [0.0, 5.0]), (60, [60.0, 5.0])]))
        last_hour = Interval(0.0, 60.0)
        # "Same position" = squared distance <= 0 (a zero-threshold
        # range query; the sentinel catches the tangential touch).
        meeting = evaluate_within(db, car_1404, last_hour, distance=0.5)
        assert "c7" in meeting.objects
        assert "c9" not in meeting.objects
        assert meeting.intervals_for("c7").contains(30.0, atol=1.0)


class TestBullet5ReachWithin30Minutes:
    def test_flights_reaching_623(self):
        db = MovingObjectDatabase()
        f623 = linear_from(0.0, [0.0, 0.0], [8.0, 0.0])
        # Fast interceptor nearby.
        db.install("fast", linear_from(0.0, [100.0, 100.0], [10.0, -2.0]))
        # Fast but very far away (arrival ~400 time units).
        db.install("far", linear_from(0.0, [4000.0, 4000.0], [10.0, 0.0]))
        window = Interval(0.0, 20.0)
        arrival = PolynomialApproximation(
            ArrivalTimeGDistance(f623), window, degree=8, num_pieces=6
        )
        # "Can reach within 30 minutes" = arrival time <= 30 (the
        # g-distance is the arrival time itself, so the threshold is
        # used verbatim).
        reachable = evaluate_within(db, arrival, window, distance=30.0)
        assert "fast" in reachable.objects
        assert "far" not in reachable.objects

    def test_slow_pursuer_unreachable_is_rejected_by_approximation(self):
        """A pursuer that can never reach the target has an infinite
        arrival time: polynomialization must refuse, not fabricate."""
        db = MovingObjectDatabase()
        f623 = linear_from(0.0, [0.0, 0.0], [8.0, 0.0])
        db.install("slow", linear_from(0.0, [-200.0, 0.0], [2.0, 0.0]))
        window = Interval(0.0, 20.0)
        arrival = PolynomialApproximation(
            ArrivalTimeGDistance(f623), window, degree=6, num_pieces=4
        )
        with pytest.raises(ValueError):
            arrival(db.trajectory("slow"))


class TestBullet6PoliceCarsReachIn5Minutes:
    def test_cars_reaching_moving_1404(self):
        db = MovingObjectDatabase()
        car_1404 = linear_from(0.0, [0.0, 0.0], [1.0, 0.0])
        db.install("u12", linear_from(0.0, [0.0, -20.0], [1.0, 5.0]))
        db.install("u31", linear_from(0.0, [0.0, 400.0], [1.0, -2.0]))
        window = Interval(0.0, 10.0)
        arrival = PolynomialApproximation(
            ArrivalTimeGDistance(car_1404), window, degree=8, num_pieces=6
        )
        within_5 = evaluate_within(db, arrival, window, distance=5.0)
        assert "u12" in within_5.objects  # 20 away at closing speed ~5
        assert "u31" not in within_5.objects  # 400 away at closing ~2
