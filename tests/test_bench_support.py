"""Tests for the benchmark support package (fits and tables)."""

import math

import pytest

from repro.bench.fits import ComplexityFit, best_model, fit_model, growth_ratio
from repro.bench.harness import format_table, time_callable


class TestFitModel:
    def test_perfect_linear(self):
        sizes = [10, 20, 40, 80]
        costs = [3.0 * n + 1.0 for n in sizes]
        fit = fit_model(sizes, costs, "n")
        assert fit.scale == pytest.approx(3.0)
        assert fit.intercept == pytest.approx(1.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_perfect_nlogn(self):
        sizes = [16, 64, 256, 1024]
        costs = [2.0 * n * math.log(n) for n in sizes]
        fit = fit_model(sizes, costs, "n log n")
        assert fit.r_squared == pytest.approx(1.0)
        assert fit.predict(512) == pytest.approx(2.0 * 512 * math.log(512), rel=1e-6)

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            fit_model([1, 2], [1, 2], "n^3")

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            fit_model([1], [1], "n")

    def test_constant_costs(self):
        fit = fit_model([1, 2, 3], [5.0, 5.0, 5.0], "1")
        assert fit.r_squared == pytest.approx(1.0)
        assert fit.predict(100) == pytest.approx(5.0)


class TestBestModel:
    def test_identifies_linear(self):
        sizes = [32, 64, 128, 256, 512]
        costs = [0.5 * n + 3 for n in sizes]
        ranked = best_model(sizes, costs)
        assert ranked[0].model == "n"

    def test_identifies_logarithmic(self):
        sizes = [2**k for k in range(4, 14)]
        costs = [7.0 * math.log(n) + 0.1 for n in sizes]
        ranked = best_model(sizes, costs)
        assert ranked[0].model == "log n"

    def test_identifies_quadratic(self):
        sizes = [10, 20, 40, 80, 160]
        costs = [0.01 * n * n for n in sizes]
        ranked = best_model(sizes, costs)
        assert ranked[0].model == "n^2"

    def test_negative_scale_demoted(self):
        sizes = [10, 20, 40, 80]
        costs = [100.0, 80.0, 60.0, 40.0]  # decreasing
        ranked = best_model(sizes, costs)
        # A decreasing trend must not be "explained" by a growth model.
        assert ranked[0].model == "1" or ranked[0].scale >= 0


class TestGrowthRatio:
    def test_ratios(self):
        size_ratio, cost_ratio = growth_ratio([10, 100], [2.0, 4.0])
        assert size_ratio == pytest.approx(10.0)
        assert cost_ratio == pytest.approx(2.0)

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            growth_ratio([1], [1])


class TestHarness:
    def test_time_callable_positive(self):
        elapsed = time_callable(lambda: sum(range(1000)), repeats=2, warmup=1)
        assert elapsed > 0.0

    def test_format_table(self):
        text = format_table(
            ["N", "cost"],
            [[10, 1.5], [100, 12.25]],
            title="demo",
        )
        assert "demo" in text
        assert "N" in text and "cost" in text
        assert "12.25" in text

    def test_format_table_empty_rows(self):
        text = format_table(["a"], [])
        assert "a" in text

    def test_format_small_floats_scientific(self):
        text = format_table(["v"], [[0.0000001]])
        assert "e-07" in text
