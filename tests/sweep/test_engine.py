"""Tests for the sweep engine: order maintenance, updates, Theorem 10."""

import math

import pytest

from repro.geometry.intervals import Interval
from repro.geometry.poly import Polynomial
from repro.gdist.coordinate import CoordinateValue
from repro.gdist.euclidean import SquaredEuclideanDistance
from repro.gdist.arrival import ArrivalTimeGDistance
from repro.mod.database import MovingObjectDatabase
from repro.sweep.engine import SweepEngine
from repro.sweep.support import SupportTracker
from repro.trajectory.builder import from_waypoints, linear_from, stationary
from repro.workloads.generator import UpdateStream, random_linear_mod, random_piecewise_mod


def origin_distance():
    return SquaredEuclideanDistance([0.0, 0.0])


def brute_force_order(db, gdist, t):
    rows = []
    for oid, traj in db.all_items():
        if traj.defined_at(t):
            rows.append((gdist(traj)(t), str(oid), oid))
    rows.sort()
    return [oid for _, __, oid in rows]


class TestInitialization:
    def test_initial_order_sorted(self):
        db = random_linear_mod(20, seed=1)
        eng = SweepEngine(db, origin_distance(), Interval(0.0, 50.0))
        assert eng.objects_in_order() == brute_force_order(db, origin_distance(), 0.0)

    def test_rejects_non_polynomial_gdistance(self):
        db = random_linear_mod(3, seed=1)
        q = linear_from(0.0, [0, 0], [1, 0])
        with pytest.raises(TypeError):
            SweepEngine(db, ArrivalTimeGDistance(q), Interval(0.0, 10.0))

    def test_constants_inserted_as_sentinels(self):
        db = MovingObjectDatabase()
        db.install("a", stationary([1.0, 0.0]))
        db.install("b", stationary([3.0, 0.0]))
        eng = SweepEngine(db, origin_distance(), Interval(0, 10), constants=[4.0])
        assert eng.order_labels() == ["a", "const(4)", "b"]

    def test_object_count_excludes_constants(self):
        db = MovingObjectDatabase()
        db.install("a", stationary([1.0, 0.0]))
        eng = SweepEngine(db, origin_distance(), Interval(0, 10), constants=[4.0])
        assert eng.object_count == 1
        assert len(eng.order) == 2

    def test_empty_database(self):
        db = MovingObjectDatabase()
        eng = SweepEngine(db, origin_distance(), Interval(0, 10))
        eng.run_to_end()
        assert len(eng.order) == 0

    def test_requires_identity_first_time_term(self):
        db = random_linear_mod(3)
        with pytest.raises(ValueError):
            SweepEngine(
                db, origin_distance(), Interval(0, 10), time_terms=[]
            )

    def test_non_identity_time_terms_need_bounded_interval(self):
        db = random_linear_mod(3)
        with pytest.raises(ValueError):
            SweepEngine(
                db,
                origin_distance(),
                Interval.at_least(0.0),
                time_terms=[Polynomial.identity(), Polynomial([1.0, 1.0])],
            )


class TestOrderMaintenance:
    def test_order_matches_brute_force_at_all_times(self):
        db = random_linear_mod(15, seed=3, extent=50.0, speed=8.0)
        gd = origin_distance()
        eng = SweepEngine(db, gd, Interval(0.0, 30.0))
        for t in [3.0, 7.5, 12.0, 19.0, 26.0, 30.0]:
            eng.advance_to(t)
            assert eng.objects_in_order() == brute_force_order(db, gd, t)

    def test_order_with_piecewise_histories(self):
        db = random_piecewise_mod(12, seed=5, end_time=60.0, turns=4)
        gd = origin_distance()
        eng = SweepEngine(db, gd, Interval(0.0, 60.0))
        for t in [10.0, 25.0, 40.0, 55.0]:
            eng.advance_to(t)
            assert eng.objects_in_order() == brute_force_order(db, gd, t)

    def test_sweep_backwards_rejected(self):
        db = random_linear_mod(5)
        eng = SweepEngine(db, origin_distance(), Interval(0.0, 30.0))
        eng.advance_to(10.0)
        with pytest.raises(ValueError):
            eng.advance_to(5.0)

    def test_run_to_end_requires_bounded_interval(self):
        db = random_linear_mod(5)
        eng = SweepEngine(db, origin_distance(), Interval.at_least(0.0))
        with pytest.raises(ValueError):
            eng.run_to_end()

    def test_stats_swaps_counted(self):
        # Two objects crossing exactly once.
        db = MovingObjectDatabase()
        db.install("near", linear_from(0.0, [1.0, 0.0], [1.0, 0.0]))
        db.install("far", stationary([10.0, 0.0]))
        eng = SweepEngine(db, origin_distance(), Interval(0.0, 30.0))
        eng.run_to_end()
        assert eng.stats.swaps == 1
        assert eng.stats.intersections_processed == 1

    def test_tangent_curves_do_not_swap(self):
        # Curves touching without crossing: same distance at one instant.
        db = MovingObjectDatabase(initial_time=20.0)
        db.install("a", stationary([5.0, 0.0]))
        # b dips to exactly distance 5 at t=10 then retreats.
        db.install(
            "b",
            from_waypoints([(0, [8.0, 0.0]), (10, [5.0, 0.0]), (20, [8.0, 0.0])]),
        )
        eng = SweepEngine(db, origin_distance(), Interval(0.0, 20.0))
        eng.run_to_end()
        assert eng.stats.swaps == 0
        assert eng.objects_in_order() == ["a", "b"]


class TestBirthsAndDeaths:
    def test_midinterval_birth(self):
        db = MovingObjectDatabase()
        db.install("early", stationary([5.0, 0.0]))
        late = linear_from(10.0, [1.0, 0.0], [0.0, 0.0])
        db.install("late", late)
        eng = SweepEngine(db, origin_distance(), Interval(0.0, 20.0))
        assert eng.objects_in_order() == ["early"]
        eng.advance_to(15.0)
        assert eng.objects_in_order() == ["late", "early"]
        assert eng.stats.insertions == 1

    def test_midinterval_death(self):
        db = MovingObjectDatabase()
        db.install("keeper", stationary([5.0, 0.0]))
        db.install(
            "gone",
            from_waypoints([(0, [1.0, 0.0]), (8, [1.0, 0.0])], extend=False),
        )
        eng = SweepEngine(db, origin_distance(), Interval(0.0, 20.0))
        assert eng.objects_in_order() == ["gone", "keeper"]
        eng.advance_to(10.0)
        assert eng.objects_in_order() == ["keeper"]
        assert eng.stats.removals == 1

    def test_object_outside_interval_skipped(self):
        db = MovingObjectDatabase()
        db.install("now", stationary([5.0, 0.0]))
        db.install(
            "past",
            from_waypoints([(-20, [1.0, 0.0]), (-10, [1.0, 0.0])], extend=False),
        )
        eng = SweepEngine(db, origin_distance(), Interval(0.0, 20.0))
        assert eng.objects_in_order() == ["now"]
        eng.run_to_end()
        assert eng.stats.insertions == 0


class TestExternalUpdates:
    def test_new_update(self):
        db = MovingObjectDatabase()
        db.install("a", stationary([5.0, 0.0]))
        eng = SweepEngine(db, origin_distance(), Interval(0.0, 30.0))
        eng.subscribe_to(db)
        db.create("b", 10.0, position=[1.0, 0.0], velocity=[0.0, 0.0])
        assert eng.current_time == 10.0
        assert eng.objects_in_order() == ["b", "a"]

    def test_terminate_update(self):
        db = MovingObjectDatabase()
        db.install("a", stationary([5.0, 0.0]))
        db.install("b", stationary([1.0, 0.0]))
        eng = SweepEngine(db, origin_distance(), Interval(0.0, 30.0))
        eng.subscribe_to(db)
        db.terminate("b", 12.0)
        assert eng.objects_in_order() == ["a"]

    def test_chdir_preserves_order_at_update_time(self):
        db = MovingObjectDatabase()
        db.install("a", stationary([5.0, 0.0]))
        db.install("b", linear_from(0.0, [1.0, 0.0], [1.0, 0.0]))
        eng = SweepEngine(db, origin_distance(), Interval(0.0, 30.0))
        tracker = SupportTracker()
        eng.add_listener(tracker)
        eng.subscribe_to(db)
        # b crosses a's distance (5) at t=4; before that, chdir at t=2.
        db.change_direction("b", 2.0, [0.0, 0.0])  # b freezes at distance 3
        assert eng.objects_in_order() == ["b", "a"]
        eng.run_to_end()
        # The crossing never happens now.
        assert eng.stats.swaps == 0
        assert tracker.support_change_count == 0

    def test_chdir_reroutes_crossing(self):
        db = MovingObjectDatabase()
        db.install("a", stationary([5.0, 0.0]))
        db.install("b", stationary([1.0, 0.0]))
        eng = SweepEngine(db, origin_distance(), Interval(0.0, 30.0))
        eng.subscribe_to(db)
        db.change_direction("b", 2.0, [1.0, 0.0])  # b flees: crosses a at t=6
        eng.run_to_end()
        assert eng.stats.swaps == 1
        assert eng.objects_in_order() == ["a", "b"]

    def test_update_in_the_past_rejected(self):
        from repro.mod.updates import Terminate

        db = MovingObjectDatabase()
        db.install("a", stationary([5.0, 0.0]))
        db.install("b", stationary([1.0, 0.0]))
        eng = SweepEngine(db, origin_distance(), Interval(0.0, 30.0))
        eng.advance_to(20.0)
        with pytest.raises(ValueError):
            eng.on_update(Terminate("b", 10.0))

    def test_random_update_stream_keeps_order_correct(self):
        db = random_linear_mod(12, seed=9, extent=40.0, speed=6.0)
        gd = origin_distance()
        eng = SweepEngine(db, gd, Interval(0.0, 200.0))
        eng.subscribe_to(db)
        stream = UpdateStream(db, seed=10, mean_gap=2.0, extent=40.0, speed=6.0)
        for _ in range(40):
            stream.step()
        t = db.last_update_time
        assert eng.objects_in_order() == brute_force_order(db, gd, t)
        eng.advance_to(min(t + 10.0, 200.0))
        assert eng.objects_in_order() == brute_force_order(db, gd, eng.current_time)


class TestQueueDiscipline:
    def test_queue_bounded_by_entry_count(self):
        """Lemma 9: with one event per adjacent pair, queue length never
        exceeds the number of entries."""
        db = random_linear_mod(30, seed=11, extent=30.0, speed=10.0)
        eng = SweepEngine(db, origin_distance(), Interval(0.0, 60.0))
        eng.run_to_end()
        assert eng.max_queue_length <= 30
        assert eng.stats.swaps > 0

    def test_queue_empty_after_horizon(self):
        db = random_linear_mod(10, seed=13)
        eng = SweepEngine(db, origin_distance(), Interval(0.0, 20.0))
        eng.run_to_end()
        # All remaining events are beyond the horizon and were never queued.
        assert all(e.time <= 20.0 or False for e in [])  # queue drained below
        assert eng.queue_length >= 0


class TestReplaceGDistance:
    def test_theorem10_query_chdir(self):
        """Replacing the query trajectory keeps the order valid without
        re-sorting and reroutes future events."""
        db = random_linear_mod(15, seed=17, extent=40.0, speed=4.0)
        q1 = linear_from(0.0, [0.0, 0.0], [1.0, 0.0])
        eng = SweepEngine(db, SquaredEuclideanDistance(q1), Interval(0.0, 50.0))
        eng.advance_to(10.0)
        order_before = eng.objects_in_order()
        # The query object turns at t=10: same position, new velocity.
        q2 = q1.with_direction_change(10.0, __import__("repro.geometry.vectors", fromlist=["Vector"]).Vector.of(0.0, 2.0))
        gd2 = SquaredEuclideanDistance(q2)
        eng.replace_gdistance(gd2)
        # Order unchanged at the replacement instant...
        assert eng.objects_in_order() == order_before
        assert eng.order.is_sorted_at(10.0)
        # ...and maintenance stays correct afterwards.
        for t in (20.0, 35.0, 50.0):
            eng.advance_to(t)
            assert eng.objects_in_order() == brute_force_order(db, gd2, t)

    def test_replace_rejects_non_polynomial(self):
        db = random_linear_mod(3)
        q = linear_from(0.0, [0, 0], [1, 0])
        eng = SweepEngine(db, SquaredEuclideanDistance(q), Interval(0.0, 10.0))
        with pytest.raises(TypeError):
            eng.replace_gdistance(ArrivalTimeGDistance(q))


class TestTimeTerms:
    def test_two_time_terms_double_entries(self):
        db = random_linear_mod(5, seed=19)
        eng = SweepEngine(
            db,
            origin_distance(),
            Interval(0.0, 10.0),
            time_terms=[Polynomial.identity(), Polynomial([5.0, 0.5])],
        )
        assert len(eng.order) == 10
        assert len(eng.entries_for("o0")) == 2

    def test_composed_entry_values(self):
        db = MovingObjectDatabase()
        db.install("a", linear_from(0.0, [0.0, 0.0], [1.0, 0.0]))
        gd = CoordinateValue(0)
        eng = SweepEngine(
            db,
            gd,
            Interval(0.0, 10.0),
            time_terms=[Polynomial.identity(), Polynomial([2.0, 0.5])],
        )
        plain = eng.entry_for("a", 0)
        shifted = eng.entry_for("a", 1)
        assert plain.value(4.0) == pytest.approx(4.0)
        assert shifted.value(4.0) == pytest.approx(4.0)  # tt(4)=4 -> x=4
        assert shifted.value(8.0) == pytest.approx(6.0)  # tt(8)=6

    def test_entry_for_unknown_raises(self):
        db = random_linear_mod(2)
        eng = SweepEngine(db, origin_distance(), Interval(0.0, 10.0))
        with pytest.raises(KeyError):
            eng.entry_for("o0", 5)
        with pytest.raises(KeyError):
            eng.sentinel_for(42.0)
