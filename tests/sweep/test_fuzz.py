"""Randomized stress tests: the sweep vs ground truth under adversarial
conditions — dense crossings, bursts of updates, boundary-time updates,
mass terminations, mixed g-distances.

Every scenario here ends with the same oracle: the engine's snapshot
answer must equal the naive O(N^2) recomputation over the recorded
final history.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.naive import naive_knn_answer, naive_within_answer
from repro.geometry.intervals import Interval
from repro.gdist.derived import ApproachRate
from repro.gdist.euclidean import SquaredEuclideanDistance
from repro.mod.log import RecordingDatabase
from repro.sweep.engine import SweepEngine
from repro.sweep.knn import ContinuousKNN
from repro.sweep.within import ContinuousWithin
from repro.trajectory.builder import from_waypoints
from repro.workloads.generator import crossing_rich_mod


def seeded_db(seed, objects=6, spread=30.0):
    rng = random.Random(seed)
    db = RecordingDatabase()
    for i in range(objects):
        db.create(
            f"o{i}",
            0.001 * (i + 1),
            position=[rng.uniform(-spread, spread), rng.uniform(-spread, spread)],
            velocity=[rng.uniform(-6, 6), rng.uniform(-6, 6)],
        )
    return db, rng


def apply_random_updates(db, rng, count, horizon):
    for _ in range(count):
        time = db.last_update_time + rng.uniform(1e-4, horizon / max(count, 1))
        live = db.object_ids
        choice = rng.random()
        if choice < 0.25 or not live:
            db.create(
                f"n{time:.6f}",
                time,
                position=[rng.uniform(-30, 30), rng.uniform(-30, 30)],
                velocity=[rng.uniform(-6, 6), rng.uniform(-6, 6)],
            )
        elif choice < 0.4 and len(live) > 1:
            db.terminate(rng.choice(live), time)
        else:
            db.change_direction(
                rng.choice(live),
                time,
                [rng.uniform(-6, 6), rng.uniform(-6, 6)],
            )


class TestFuzzKNN:
    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=25, deadline=None)
    def test_knn_with_update_bursts(self, seed):
        db, rng = seeded_db(seed)
        horizon = 25.0
        gd = SquaredEuclideanDistance([0.0, 0.0])
        start = db.last_update_time
        engine = SweepEngine(db, gd, Interval(start, horizon))
        view = ContinuousKNN(engine, 2)
        db.subscribe(engine.on_update)
        apply_random_updates(db, rng, count=10, horizon=horizon)
        engine.advance_to(horizon)
        engine.finalize()
        truth = naive_knn_answer(db.log.replay(), gd, Interval(start, horizon), 2)
        assert view.answer().approx_equals(truth, atol=1e-5)

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=15, deadline=None)
    def test_jumpy_gdistance_with_updates(self, seed):
        db, rng = seeded_db(seed, objects=5)
        horizon = 20.0
        gd = ApproachRate([0.0, 0.0])
        start = db.last_update_time
        engine = SweepEngine(db, gd, Interval(start, horizon))
        view = ContinuousKNN(engine, 1)
        db.subscribe(engine.on_update)
        apply_random_updates(db, rng, count=8, horizon=horizon)
        engine.advance_to(horizon)
        engine.finalize()
        truth = naive_knn_answer(db.log.replay(), gd, Interval(start, horizon), 1)
        assert view.answer().approx_equals(truth, atol=1e-5)


class TestFuzzWithin:
    @given(
        st.integers(min_value=0, max_value=10**6),
        st.floats(min_value=25.0, max_value=2500.0),
    )
    @settings(max_examples=15, deadline=None)
    def test_within_random_thresholds(self, seed, threshold):
        db, rng = seeded_db(seed)
        horizon = 20.0
        gd = SquaredEuclideanDistance([0.0, 0.0])
        start = db.last_update_time
        engine = SweepEngine(
            db, gd, Interval(start, horizon), constants=[threshold]
        )
        view = ContinuousWithin(engine, threshold)
        db.subscribe(engine.on_update)
        apply_random_updates(db, rng, count=8, horizon=horizon)
        engine.advance_to(horizon)
        engine.finalize()
        truth = naive_within_answer(
            db.log.replay(), gd, Interval(start, horizon), threshold
        )
        assert view.answer().approx_equals(truth, atol=1e-5)


class TestAdversarialShapes:
    def test_mass_termination(self):
        db = RecordingDatabase()
        for i in range(10):
            db.create(f"o{i}", 0.01 * (i + 1), position=[float(i + 1), 0.0], velocity=[0.1 * i, 0.0])
        gd = SquaredEuclideanDistance([0.0, 0.0])
        engine = SweepEngine(db, gd, Interval(0.2, 20.0))
        view = ContinuousKNN(engine, 3)
        db.subscribe(engine.on_update)
        # Terminate 8 of 10 objects in a rapid burst.
        for i, t in enumerate([1.0, 1.1, 1.2, 1.3, 1.4, 1.5, 1.6, 1.7]):
            db.terminate(f"o{i}", t)
        engine.advance_to(20.0)
        engine.finalize()
        truth = naive_knn_answer(db.log.replay(), gd, Interval(0.2, 20.0), 3)
        assert view.answer().approx_equals(truth, atol=1e-6)

    def test_every_pair_crosses(self):
        db = crossing_rich_mod(12, seed=3)
        gd = SquaredEuclideanDistance([0.0, 0.0])
        engine = SweepEngine(db, gd, Interval(0.0, 300.0))
        view = ContinuousKNN(engine, 4)
        engine.run_to_end()
        truth = naive_knn_answer(db, gd, Interval(0.0, 300.0), 4)
        assert view.answer().approx_equals(truth, atol=1e-5)

    def test_simultaneous_style_crossings(self):
        """Many curves engineered to cross at nearly the same instant."""
        db = RecordingDatabase()
        # Objects converging on the origin, all arriving around t=10.
        for i in range(8):
            start = 10.0 + i * 0.001
            db.create(
                f"o{i}",
                0.01 * (i + 1),
                position=[start, 0.0],
                velocity=[-(start - 0.0001 * i) / 10.0, 0.0],
            )
        gd = SquaredEuclideanDistance([0.0, 0.0])
        engine = SweepEngine(db, gd, Interval(0.1, 25.0))
        view = ContinuousKNN(engine, 2)
        engine.run_to_end()
        truth = naive_knn_answer(db, gd, Interval(0.1, 25.0), 2)
        assert view.answer().approx_equals(truth, atol=1e-4)

    def test_stacked_identical_distances(self):
        """Exact ties: several objects at identical distances."""
        db = RecordingDatabase()
        for i in range(4):
            angle = i * 3.14159 / 2
            import math

            db.create(
                f"ring{i}",
                0.01 * (i + 1),
                position=[5.0 * math.cos(angle), 5.0 * math.sin(angle)],
                velocity=[0.0, 0.0],
            )
        db.create("inner", 0.05, position=[1.0, 0.0], velocity=[0.0, 0.0])
        gd = SquaredEuclideanDistance([0.0, 0.0])
        engine = SweepEngine(db, gd, Interval(0.1, 10.0))
        view = ContinuousKNN(engine, 2)
        engine.run_to_end()
        answer = view.answer()
        # inner always a member; exactly one of the tied ring objects
        # fills the second slot throughout.
        assert answer.intervals_for("inner").covers(Interval(0.1, 10.0))
        ring_members = [o for o in answer.objects if str(o).startswith("ring")]
        assert len(ring_members) >= 1
