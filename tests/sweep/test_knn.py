"""Tests for the continuous k-NN view, cross-checked against the naive
O(N^2) baseline on randomized workloads."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.naive import naive_knn_answer
from repro.geometry.intervals import Interval
from repro.gdist.euclidean import SquaredEuclideanDistance
from repro.mod.database import MovingObjectDatabase
from repro.sweep.engine import SweepEngine
from repro.sweep.knn import ContinuousKNN
from repro.trajectory.builder import from_waypoints, linear_from, stationary
from repro.workloads.generator import UpdateStream, random_linear_mod, random_piecewise_mod


def origin_distance():
    return SquaredEuclideanDistance([0.0, 0.0])


def run_knn(db, gdist, interval, k):
    eng = SweepEngine(db, gdist, interval)
    view = ContinuousKNN(eng, k)
    eng.run_to_end()
    return view.answer()


class TestBasics:
    def test_k_must_be_positive(self):
        db = random_linear_mod(3)
        eng = SweepEngine(db, origin_distance(), Interval(0, 10))
        with pytest.raises(ValueError):
            ContinuousKNN(eng, 0)

    def test_rejects_engine_with_constants(self):
        db = random_linear_mod(3)
        eng = SweepEngine(db, origin_distance(), Interval(0, 10), constants=[1.0])
        with pytest.raises(ValueError):
            ContinuousKNN(eng, 1)

    def test_answer_before_finalize_rejected(self):
        db = random_linear_mod(3)
        eng = SweepEngine(db, origin_distance(), Interval(0, 10))
        view = ContinuousKNN(eng, 1)
        with pytest.raises(RuntimeError):
            view.answer()

    def test_members_in_order(self):
        db = MovingObjectDatabase()
        db.install("far", stationary([10.0, 0.0]))
        db.install("near", stationary([1.0, 0.0]))
        db.install("mid", stationary([5.0, 0.0]))
        eng = SweepEngine(db, origin_distance(), Interval(0, 10))
        view = ContinuousKNN(eng, 2)
        assert view.members_in_order() == ["near", "mid"]
        assert view.members == {"near", "mid"}
        assert view.k == 2

    def test_k_larger_than_population(self):
        db = MovingObjectDatabase()
        db.install("a", stationary([1.0, 0.0]))
        answer = run_knn(db, origin_distance(), Interval(0, 10), k=5)
        assert answer.objects == {"a"}
        assert answer.intervals_for("a").covers(Interval(0, 10))


class TestSingleCrossing:
    def test_two_objects_swap(self):
        db = MovingObjectDatabase()
        db.install("approach", linear_from(0.0, [10.0, 0.0], [-1.0, 0.0]))
        db.install("fixed", stationary([5.0, 0.0]))
        answer = run_knn(db, origin_distance(), Interval(0.0, 10.0), k=1)
        # approach passes distance 5 at t=5.
        assert answer.intervals_for("fixed").approx_equals(
            __import__("repro.geometry.intervals", fromlist=["IntervalSet"]).IntervalSet([Interval(0.0, 5.0)])
        )
        assert answer.holds_at("approach", 7.0)
        assert not answer.holds_at("approach", 3.0)

    def test_membership_change_only_at_boundary(self):
        """Swaps away from the k boundary do not alter the answer."""
        db = MovingObjectDatabase()
        db.install("a", stationary([1.0, 0.0]))
        db.install("b", stationary([2.0, 0.0]))
        # c and d swap with each other far above the k=2 boundary... and
        # e crosses nothing.
        db.install("c", from_waypoints([(0, [8.0, 0.0]), (10, [12.0, 0.0])]))
        db.install("d", from_waypoints([(0, [10.0, 0.0]), (10, [7.0, 0.0])]))
        eng = SweepEngine(db, origin_distance(), Interval(0.0, 10.0))
        view = ContinuousKNN(eng, 2)
        eng.run_to_end()
        assert eng.stats.swaps >= 1
        answer = view.answer()
        assert answer.objects == {"a", "b"}


class TestBirthDeathMembership:
    def test_new_object_displaces_member(self):
        db = MovingObjectDatabase()
        db.install("a", stationary([2.0, 0.0]))
        db.install("b", stationary([4.0, 0.0]))
        eng = SweepEngine(db, origin_distance(), Interval(0.0, 20.0))
        view = ContinuousKNN(eng, 2)
        eng.subscribe_to(db)
        db.create("c", 10.0, position=[1.0, 0.0], velocity=[0.0, 0.0])
        eng.run_to_end()
        answer = view.answer()
        assert answer.holds_at("b", 5.0)
        assert not answer.holds_at("b", 15.0)
        assert answer.holds_at("c", 15.0)
        assert answer.intervals_for("a").covers(Interval(0, 20))

    def test_termination_promotes_next(self):
        db = MovingObjectDatabase()
        db.install("a", stationary([2.0, 0.0]))
        db.install("b", stationary([4.0, 0.0]))
        db.install("c", stationary([6.0, 0.0]))
        eng = SweepEngine(db, origin_distance(), Interval(0.0, 20.0))
        view = ContinuousKNN(eng, 2)
        eng.subscribe_to(db)
        db.terminate("a", 8.0)
        eng.run_to_end()
        answer = view.answer()
        assert not answer.holds_at("c", 5.0)
        assert answer.holds_at("c", 10.0)
        assert answer.intervals_for("a").approx_equals(
            __import__("repro.geometry.intervals", fromlist=["IntervalSet"]).IntervalSet([Interval(0.0, 8.0)])
        )

    def test_population_drops_below_k(self):
        db = MovingObjectDatabase()
        db.install("a", stationary([2.0, 0.0]))
        db.install("b", stationary([4.0, 0.0]))
        eng = SweepEngine(db, origin_distance(), Interval(0.0, 20.0))
        view = ContinuousKNN(eng, 2)
        eng.subscribe_to(db)
        db.terminate("a", 8.0)
        eng.run_to_end()
        answer = view.answer()
        assert answer.intervals_for("b").covers(Interval(0, 20))


class TestAgainstNaive:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_random_linear_workloads(self, seed, k):
        db = random_linear_mod(10, seed=seed, extent=30.0, speed=6.0)
        gd = origin_distance()
        sweep = run_knn(db, gd, Interval(0.0, 25.0), k)
        naive = naive_knn_answer(db, gd, Interval(0.0, 25.0), k)
        assert sweep.approx_equals(naive, atol=1e-6), f"{sweep} != {naive}"

    @pytest.mark.parametrize("seed", [10, 11, 12])
    def test_piecewise_histories(self, seed):
        db = random_piecewise_mod(8, seed=seed, end_time=40.0, turns=3)
        gd = origin_distance()
        sweep = run_knn(db, gd, Interval(0.0, 40.0), 2)
        naive = naive_knn_answer(db, gd, Interval(0.0, 40.0), 2)
        assert sweep.approx_equals(naive, atol=1e-6)

    def test_moving_query_trajectory(self):
        db = random_linear_mod(8, seed=21, extent=30.0, speed=4.0)
        q = from_waypoints([(0, [-20.0, -20.0]), (30, [20.0, 20.0])])
        gd = SquaredEuclideanDistance(q)
        sweep = run_knn(db, gd, Interval(0.0, 30.0), 3)
        naive = naive_knn_answer(db, gd, Interval(0.0, 30.0), 3)
        assert sweep.approx_equals(naive, atol=1e-6)

    @pytest.mark.parametrize("seed", [30, 31, 32])
    def test_with_update_stream(self, seed):
        db = random_linear_mod(8, seed=seed, extent=40.0, speed=5.0)
        gd = origin_distance()
        eng = SweepEngine(db, gd, Interval(0.0, 60.0))
        view = ContinuousKNN(eng, 2)
        eng.subscribe_to(db)
        stream = UpdateStream(db, seed=seed + 100, mean_gap=3.0, extent=40.0, speed=5.0)
        stream.run(15)
        eng.run_to_end()
        naive = naive_knn_answer(db, gd, Interval(0.0, 60.0), 2)
        assert view.answer().approx_equals(naive, atol=1e-6)

    @given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=1, max_value=3))
    @settings(max_examples=15, deadline=None)
    def test_property_random_seeds(self, seed, k):
        db = random_linear_mod(6, seed=seed, extent=25.0, speed=7.0)
        gd = origin_distance()
        sweep = run_knn(db, gd, Interval(0.0, 15.0), k)
        naive = naive_knn_answer(db, gd, Interval(0.0, 15.0), k)
        assert sweep.approx_equals(naive, atol=1e-6)


class TestAnswerSemantics:
    def test_accumulative_and_persevering(self):
        db = MovingObjectDatabase()
        db.install("always", stationary([1.0, 0.0]))
        db.install("sometimes", from_waypoints([(0, [3.0, 0.0]), (10, [30.0, 0.0])]))
        db.install("other", stationary([9.0, 0.0]))
        answer = run_knn(db, origin_distance(), Interval(0.0, 10.0), k=2)
        assert answer.accumulative() == {"always", "sometimes", "other"}
        assert answer.persevering() == {"always"}
