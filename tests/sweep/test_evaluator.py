"""Tests for the generic FO(f) evaluator (Lemma 8 in action)."""

import pytest

from repro.baselines.naive import naive_knn_answer, naive_query_answer
from repro.geometry.intervals import Interval
from repro.geometry.poly import Polynomial
from repro.gdist.euclidean import SquaredEuclideanDistance
from repro.mod.database import MovingObjectDatabase
from repro.query.formula import And, Compare, Const, Dist, Exists, ForAll, Not, Or
from repro.query.query import Query, knn_query, within_query
from repro.sweep.engine import SweepEngine
from repro.sweep.evaluator import GenericFOEvaluator
from repro.sweep.knn import ContinuousKNN
from repro.trajectory.builder import linear_from, stationary
from repro.workloads.generator import UpdateStream, random_linear_mod


def origin_distance():
    return SquaredEuclideanDistance([0.0, 0.0])


def run_generic(db, gdist, query):
    eng = SweepEngine(
        db,
        gdist,
        query.interval,
        constants=query.constants,
        time_terms=query.time_terms,
    )
    view = GenericFOEvaluator(eng, query)
    eng.run_to_end()
    return view.answer()


class TestBasics:
    def test_unbounded_interval_rejected(self):
        db = random_linear_mod(3)
        q = knn_query(Interval.at_least(0.0), 1)
        eng = SweepEngine(db, origin_distance(), Interval.at_least(0.0))
        with pytest.raises(ValueError):
            GenericFOEvaluator(eng, q)

    def test_answer_before_finalize_rejected(self):
        db = random_linear_mod(3)
        q = knn_query(Interval(0.0, 10.0), 1)
        eng = SweepEngine(db, origin_distance(), q.interval)
        view = GenericFOEvaluator(eng, q)
        with pytest.raises(RuntimeError):
            view.answer()

    def test_gdistance_replacement_poisons_evaluator(self):
        db = random_linear_mod(3)
        q = knn_query(Interval(0.0, 10.0), 1)
        eng = SweepEngine(db, origin_distance(), q.interval)
        view = GenericFOEvaluator(eng, q)
        eng.replace_gdistance(SquaredEuclideanDistance([1.0, 1.0]))
        with pytest.raises(RuntimeError):
            eng.run_to_end()


class TestOneNN:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_knn_view(self, seed):
        db = random_linear_mod(7, seed=seed, extent=30.0, speed=6.0)
        gd = origin_distance()
        q = knn_query(Interval(0.0, 20.0), 1)
        generic = run_generic(db, gd, q)
        eng = SweepEngine(db, gd, q.interval)
        view = ContinuousKNN(eng, 1)
        eng.run_to_end()
        assert generic.approx_equals(view.answer(), atol=1e-6)

    def test_example10_formula_shape(self):
        q = knn_query(Interval(0.0, 1.0), 1)
        assert repr(q.formula) == "forall z. ((f(y, t) <= f(z, t)))" or isinstance(
            q.formula, ForAll
        )


class TestKNNFormulaWithExceptions:
    @pytest.mark.parametrize("k", [2, 3])
    def test_matches_rank_view(self, k):
        db = random_linear_mod(6, seed=4, extent=25.0, speed=5.0)
        gd = origin_distance()
        q = knn_query(Interval(0.0, 12.0), k)
        generic = run_generic(db, gd, q)
        naive = naive_knn_answer(db, gd, q.interval, k)
        assert generic.approx_equals(naive, atol=1e-6)


class TestWithinFormula:
    def test_matches_within_view(self):
        db = random_linear_mod(8, seed=6, extent=40.0, speed=6.0)
        gd = origin_distance()
        q = within_query(Interval(0.0, 15.0), 900.0)
        generic = run_generic(db, gd, q)
        naive = naive_query_answer(db, gd, q)
        assert generic.approx_equals(naive, atol=1e-6)


class TestCompoundFormulas:
    def test_annulus(self):
        """Objects between squared distances 100 and 900 of the origin."""
        db = MovingObjectDatabase()
        db.install("inner", stationary([5.0, 0.0]))  # d2=25: too close
        db.install("band", stationary([20.0, 0.0]))  # d2=400: in band
        db.install("outer", stationary([40.0, 0.0]))  # d2=1600: too far
        formula = And(
            Compare(Dist("y"), ">=", Const(100.0)),
            Compare(Dist("y"), "<=", Const(900.0)),
        )
        q = Query("y", Interval(0.0, 10.0), formula)
        answer = run_generic(db, origin_distance(), q)
        assert answer.objects == {"band"}

    def test_not_nearest(self):
        """Objects that are NOT the nearest at some time."""
        db = MovingObjectDatabase()
        db.install("a", stationary([1.0, 0.0]))
        db.install("b", stationary([2.0, 0.0]))
        formula = Not(ForAll("z", Compare(Dist("y"), "<=", Dist("z"))))
        q = Query("y", Interval(0.0, 5.0), formula)
        answer = run_generic(db, origin_distance(), q)
        assert answer.objects == {"b"}

    def test_exists_someone_farther(self):
        db = MovingObjectDatabase()
        db.install("a", stationary([1.0, 0.0]))
        db.install("b", stationary([2.0, 0.0]))
        formula = Exists("z", Compare(Dist("z"), ">", Dist("y")))
        q = Query("y", Interval(0.0, 5.0), formula)
        answer = run_generic(db, origin_distance(), q)
        assert answer.objects == {"a"}

    def test_disjunction_with_updates(self):
        db = random_linear_mod(6, seed=8, extent=30.0, speed=5.0)
        gd = origin_distance()
        formula = Or(
            ForAll("z", Compare(Dist("y"), "<=", Dist("z"))),
            Compare(Dist("y"), "<=", Const(50.0)),
        )
        q = Query("y", Interval(0.0, 40.0), formula)
        eng = SweepEngine(db, gd, q.interval, constants=q.constants)
        view = GenericFOEvaluator(eng, q)
        eng.subscribe_to(db)
        UpdateStream(db, seed=9, mean_gap=5.0, extent=30.0, speed=5.0).run(6)
        eng.run_to_end()
        naive = naive_query_answer(db, gd, q)
        assert view.answer().approx_equals(naive, atol=1e-6)


class TestTimeTerms:
    def test_lookahead_comparison(self):
        """Objects closer 'five seconds from now' than they are now:
        f(y, t+5) < f(y, t)."""
        db = MovingObjectDatabase()
        db.install("approaching", linear_from(0.0, [100.0, 0.0], [-1.0, 0.0]))
        db.install("fleeing", linear_from(0.0, [10.0, 0.0], [1.0, 0.0]))
        lookahead = Polynomial([5.0, 1.0])  # t + 5
        formula = Compare(Dist("y", 1), "<", Dist("y", 0))
        q = Query(
            "y",
            Interval(0.0, 20.0),
            formula,
            time_terms=(Polynomial.identity(), lookahead),
        )
        answer = run_generic(db, origin_distance(), q)
        assert answer.objects == {"approaching"}
        assert answer.intervals_for("approaching").covers(Interval(0, 20))

    def test_time_term_answer_matches_naive(self):
        db = random_linear_mod(5, seed=12, extent=30.0, speed=4.0)
        gd = origin_distance()
        lookahead = Polynomial([3.0, 1.0])
        formula = Compare(Dist("y", 1), "<", Dist("y", 0))
        q = Query(
            "y",
            Interval(0.0, 15.0),
            formula,
            time_terms=(Polynomial.identity(), lookahead),
        )
        generic = run_generic(db, gd, q)
        naive = naive_query_answer(db, gd, q)
        assert generic.approx_equals(naive, atol=1e-6)
