"""Tests for support-change tracking."""

from repro.geometry.intervals import Interval
from repro.gdist.euclidean import SquaredEuclideanDistance
from repro.mod.database import MovingObjectDatabase
from repro.sweep.engine import SweepEngine
from repro.sweep.support import SupportTracker
from repro.trajectory.builder import linear_from, stationary
from repro.workloads.generator import random_linear_mod


def origin_distance():
    return SquaredEuclideanDistance([0.0, 0.0])


class TestSupportTracker:
    def test_records_swaps(self):
        db = MovingObjectDatabase()
        db.install("a", stationary([5.0, 0.0]))
        db.install("b", linear_from(0.0, [1.0, 0.0], [1.0, 0.0]))
        eng = SweepEngine(db, origin_distance(), Interval(0.0, 10.0))
        tracker = SupportTracker()
        eng.add_listener(tracker)
        eng.run_to_end()
        assert tracker.support_change_count == 1
        (change,) = tracker.changes
        assert change.kind == "swap"
        assert set(change.labels) == {"a", "b"}
        assert tracker.swap_times() == [4.0]

    def test_records_membership_changes(self):
        db = MovingObjectDatabase()
        db.install("a", stationary([5.0, 0.0]))
        eng = SweepEngine(db, origin_distance(), Interval(0.0, 30.0))
        tracker = SupportTracker()
        eng.add_listener(tracker)
        eng.subscribe_to(db)
        db.create("b", 5.0, position=[50.0, 0.0], velocity=[0.0, 0.0])
        db.terminate("b", 9.0)
        eng.run_to_end()
        kinds = [c.kind for c in tracker.changes]
        assert kinds == ["insert", "remove"]
        assert tracker.support_change_count == 2

    def test_curve_changes_not_counted_as_support(self):
        db = MovingObjectDatabase()
        db.install("a", stationary([5.0, 0.0]))
        db.install("b", stationary([1.0, 0.0]))
        eng = SweepEngine(db, origin_distance(), Interval(0.0, 30.0))
        tracker = SupportTracker()
        eng.add_listener(tracker)
        eng.subscribe_to(db)
        db.change_direction("b", 2.0, [0.0, 0.1])
        assert [c.kind for c in tracker.changes] == ["curve"]
        assert tracker.support_change_count == 0

    def test_changes_between(self):
        db = random_linear_mod(10, seed=2, extent=20.0, speed=10.0)
        eng = SweepEngine(db, origin_distance(), Interval(0.0, 20.0))
        tracker = SupportTracker()
        eng.add_listener(tracker)
        eng.run_to_end()
        window = tracker.changes_between(5.0, 10.0)
        assert all(5.0 < c.time <= 10.0 for c in window)

    def test_order_snapshots(self):
        db = MovingObjectDatabase()
        db.install("a", stationary([5.0, 0.0]))
        db.install("b", linear_from(0.0, [1.0, 0.0], [1.0, 0.0]))
        eng = SweepEngine(db, origin_distance(), Interval(0.0, 10.0))
        tracker = SupportTracker(record_orders=True, engine=eng)
        eng.add_listener(tracker)
        eng.run_to_end()
        ((time, order),) = tracker.orders
        assert time == 4.0
        assert order == ("a", "b")

    def test_last_change_time(self):
        tracker = SupportTracker()
        assert tracker.last_change_time() is None
