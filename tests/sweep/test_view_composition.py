"""Multiple views sharing one sweep engine.

The engine broadcasts every support change to all listeners, so
independent views (within-range, generic FO(f), support tracking) can
share a single pass over the events — the same amortization MultiKNN
exploits for rank queries.
"""

import pytest

from repro.baselines.naive import naive_query_answer, naive_within_answer
from repro.geometry.intervals import Interval
from repro.gdist.euclidean import SquaredEuclideanDistance
from repro.query.query import within_query
from repro.sweep.engine import SweepEngine
from repro.sweep.evaluator import GenericFOEvaluator
from repro.sweep.support import SupportTracker
from repro.sweep.within import ContinuousWithin
from repro.workloads.generator import UpdateStream, random_linear_mod


def gd():
    return SquaredEuclideanDistance([0.0, 0.0])


class TestSharedEngine:
    def test_within_and_generic_agree(self):
        db = random_linear_mod(8, seed=17, extent=30.0, speed=6.0)
        threshold = 400.0
        query = within_query(Interval(0.0, 20.0), threshold)
        engine = SweepEngine(
            db, gd(), query.interval, constants=query.constants
        )
        within_view = ContinuousWithin(engine, threshold)
        generic_view = GenericFOEvaluator(engine, query)
        tracker = SupportTracker()
        engine.add_listener(tracker)
        engine.run_to_end()
        # One pass, three consumers.
        within_answer = within_view.answer()
        generic_answer = generic_view.answer()
        assert within_answer.approx_equals(generic_answer, atol=1e-6)
        assert within_answer.approx_equals(
            naive_within_answer(db, gd(), query.interval, threshold), atol=1e-6
        )
        assert tracker.support_change_count == engine.stats.support_changes

    def test_two_thresholds_one_engine(self):
        db = random_linear_mod(8, seed=19, extent=30.0, speed=6.0)
        near_t, far_t = 100.0, 900.0
        interval = Interval(0.0, 15.0)
        engine = SweepEngine(db, gd(), interval, constants=[near_t, far_t])
        near = ContinuousWithin(engine, near_t)
        far = ContinuousWithin(engine, far_t)
        engine.run_to_end()
        near_answer, far_answer = near.answer(), far.answer()
        assert near_answer.approx_equals(
            naive_within_answer(db, gd(), interval, near_t), atol=1e-6
        )
        assert far_answer.approx_equals(
            naive_within_answer(db, gd(), interval, far_t), atol=1e-6
        )
        # Range nesting at every instant.
        for t in interval.sample_points(21):
            assert near_answer.at(t) <= far_answer.at(t)

    def test_shared_engine_with_updates(self):
        db = random_linear_mod(6, seed=23, extent=30.0, speed=5.0)
        threshold = 625.0
        query = within_query(Interval(0.0, 40.0), threshold)
        engine = SweepEngine(db, gd(), query.interval, constants=query.constants)
        within_view = ContinuousWithin(engine, threshold)
        generic_view = GenericFOEvaluator(engine, query)
        engine.subscribe_to(db)
        UpdateStream(db, seed=24, mean_gap=4.0, extent=30.0, speed=5.0).run(8)
        engine.run_to_end()
        truth = naive_query_answer(db, gd(), query)
        assert within_view.answer().approx_equals(truth, atol=1e-6)
        assert generic_view.answer().approx_equals(truth, atol=1e-6)


class TestAnswerSerialization:
    def test_round_trip(self):
        from repro.io import answer_from_dict, answer_to_dict
        import json

        db = random_linear_mod(6, seed=29, extent=25.0, speed=5.0)
        interval = Interval(0.0, 12.0)
        engine = SweepEngine(db, gd(), interval, constants=[400.0])
        view = ContinuousWithin(engine, 400.0)
        engine.run_to_end()
        answer = view.answer()
        payload = json.dumps(answer_to_dict(answer))
        restored = answer_from_dict(json.loads(payload))
        assert restored.interval == answer.interval
        assert {str(o) for o in answer.objects} == restored.objects
        for oid in answer.objects:
            assert restored.intervals_for(str(oid)).approx_equals(
                answer.intervals_for(oid)
            )
