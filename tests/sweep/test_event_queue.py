"""Tests for the indexed event queue (Lemma 9's deletable heap)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sweep.event_queue import IndexedEventQueue, IntersectionEvent, pair_key


def ev(time, a, b):
    return IntersectionEvent(time, pair_key(a, b))


class TestPairKey:
    def test_canonical_order(self):
        assert pair_key(3, 7) == (3, 7)
        assert pair_key(7, 3) == (3, 7)


class TestBasicOperations:
    def test_push_pop_ordered(self):
        q = IndexedEventQueue()
        q.push(ev(5.0, 1, 2))
        q.push(ev(1.0, 3, 4))
        q.push(ev(3.0, 5, 6))
        assert [q.pop().time for _ in range(3)] == [1.0, 3.0, 5.0]

    def test_peek(self):
        q = IndexedEventQueue()
        assert q.peek() is None
        assert q.peek_time() is None
        q.push(ev(2.0, 1, 2))
        assert q.peek_time() == 2.0
        assert len(q) == 1  # peek does not remove

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            IndexedEventQueue().pop()

    def test_duplicate_pair_rejected(self):
        q = IndexedEventQueue()
        q.push(ev(1.0, 1, 2))
        with pytest.raises(ValueError):
            q.push(ev(2.0, 2, 1))

    def test_contains(self):
        q = IndexedEventQueue()
        q.push(ev(1.0, 1, 2))
        assert pair_key(2, 1) in q
        assert pair_key(1, 3) not in q

    def test_remove(self):
        q = IndexedEventQueue()
        q.push(ev(1.0, 1, 2))
        q.push(ev(2.0, 3, 4))
        removed = q.remove(pair_key(1, 2))
        assert removed.time == 1.0
        assert q.pop().key == pair_key(3, 4)

    def test_remove_absent_returns_none(self):
        assert IndexedEventQueue().remove(pair_key(1, 2)) is None

    def test_remove_then_repush_allowed(self):
        q = IndexedEventQueue()
        q.push(ev(1.0, 1, 2))
        q.remove(pair_key(1, 2))
        q.push(ev(5.0, 1, 2))
        assert q.peek_time() == 5.0

    def test_equal_times_pop_in_schedule_order(self):
        q = IndexedEventQueue()
        first = ev(1.0, 1, 2)
        second = ev(1.0, 3, 4)
        q.push(first)
        q.push(second)
        assert q.pop() is first
        assert q.pop() is second

    def test_clear(self):
        q = IndexedEventQueue()
        q.push(ev(1.0, 1, 2))
        q.clear()
        assert q.is_empty

    def test_max_length_tracked(self):
        q = IndexedEventQueue()
        for i in range(5):
            q.push(ev(float(i), i, i + 100))
        for _ in range(5):
            q.pop()
        assert q.max_length == 5


class TestHeapify:
    def test_bulk_replace(self):
        q = IndexedEventQueue()
        q.push(ev(99.0, 7, 8))
        events = [ev(float(i), i, i + 100) for i in (5, 1, 3, 2, 4)]
        q.heapify(events)
        assert pair_key(7, 8) not in q
        assert [q.pop().time for _ in range(5)] == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_heapify_duplicate_rejected(self):
        q = IndexedEventQueue()
        with pytest.raises(ValueError):
            q.heapify([ev(1.0, 1, 2), ev(2.0, 2, 1)])

    def test_heapify_empty(self):
        q = IndexedEventQueue()
        q.push(ev(1.0, 1, 2))
        q.heapify([])
        assert q.is_empty


class TestRandomized:
    @given(st.lists(st.tuples(st.floats(0, 100, allow_nan=False), st.integers(0, 50)), min_size=1, max_size=60))
    @settings(max_examples=40)
    def test_pops_sorted(self, items):
        q = IndexedEventQueue()
        seen = set()
        times = []
        for t, i in items:
            key = pair_key(i, i + 1000)
            if key in seen:
                continue
            seen.add(key)
            q.push(IntersectionEvent(t, key))
            times.append(t)
        q._check_invariants()
        popped = [q.pop().time for _ in range(len(q))]
        assert popped == sorted(times)

    def test_interleaved_push_remove_pop(self):
        rng = random.Random(42)
        q = IndexedEventQueue()
        live = {}
        last_popped = -1.0
        for step in range(2000):
            action = rng.random()
            if action < 0.5 or not live:
                key = pair_key(rng.randrange(1000), 1000 + rng.randrange(1000))
                if key not in live:
                    t = rng.uniform(0, 1000)
                    q.push(IntersectionEvent(t, key))
                    live[key] = t
            elif action < 0.75:
                key = rng.choice(list(live))
                q.remove(key)
                del live[key]
            else:
                event = q.pop()
                assert event.time == min(live.values())
                del live[event.key]
            if step % 200 == 0:
                q._check_invariants()
        q._check_invariants()
