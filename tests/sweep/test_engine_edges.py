"""Edge-case tests for the sweep engine's bookkeeping surface."""

import math

import pytest

from repro.geometry.intervals import Interval
from repro.gdist.euclidean import SquaredEuclideanDistance
from repro.mod.database import MovingObjectDatabase
from repro.mod.updates import New, Terminate
from repro.sweep.engine import SweepEngine, SweepStats
from repro.sweep.knn import ContinuousKNN
from repro.trajectory.builder import from_waypoints, linear_from, stationary
from repro.geometry.vectors import Vector


def gd():
    return SquaredEuclideanDistance([0.0, 0.0])


class TestStats:
    def test_support_changes_composition(self):
        stats = SweepStats(swaps=3, insertions=2, removals=1, reinsertions=4)
        assert stats.support_changes == 10

    def test_fresh_engine_zeroed(self):
        db = MovingObjectDatabase()
        db.install("a", stationary([1.0, 0.0]))
        engine = SweepEngine(db, gd(), Interval(0, 10))
        assert engine.stats.support_changes == 0
        assert engine.stats.updates_applied == 0


class TestAccessors:
    def build(self):
        db = MovingObjectDatabase()
        db.install("near", stationary([1.0, 0.0]))
        db.install("far", stationary([9.0, 0.0]))
        return db, SweepEngine(db, gd(), Interval(0, 10), constants=[25.0])

    def test_order_labels_include_sentinels(self):
        _, engine = self.build()
        assert engine.order_labels() == ["near", "const(25)", "far"]

    def test_rank_of(self):
        _, engine = self.build()
        assert engine.rank_of(engine.entry_for("near")) == 0
        assert engine.rank_of(engine.sentinel_for(25.0)) == 1
        assert engine.rank_of(engine.entry_for("far")) == 2

    def test_all_entries_includes_departed(self):
        db = MovingObjectDatabase()
        db.install("a", stationary([1.0, 0.0]))
        db.install(
            "gone",
            from_waypoints([(0, [2.0, 0.0]), (3, [2.0, 0.0])], extend=False),
        )
        engine = SweepEngine(db, gd(), Interval(0, 10))
        engine.run_to_end()
        labels = {e.label for e in engine.all_entries()}
        assert labels == {"a", "gone"}
        assert engine.objects_in_order() == ["a"]

    def test_gdistance_property(self):
        _, engine = self.build()
        assert isinstance(engine.gdistance, SquaredEuclideanDistance)

    def test_interval_property(self):
        _, engine = self.build()
        assert engine.interval == Interval(0, 10)


class TestUnboundedHorizon:
    def test_open_ended_session_advances(self):
        db = MovingObjectDatabase()
        db.install("orbit", linear_from(0.0, [10.0, 0.0], [-1.0, 0.0]))
        db.install("post", stationary([5.0, 0.0]))
        engine = SweepEngine(db, gd(), Interval.at_least(0.0))
        view = ContinuousKNN(engine, 1)
        engine.advance_to(3.0)
        assert view.members == {"orbit"} or view.members == {"post"}
        engine.advance_to(100.0)
        assert engine.current_time == 100.0

    def test_finalize_without_run_to_end(self):
        db = MovingObjectDatabase()
        db.install("a", stationary([1.0, 0.0]))
        engine = SweepEngine(db, gd(), Interval.at_least(0.0))
        view = ContinuousKNN(engine, 1)
        engine.advance_to(7.0)
        engine.finalize()
        answer = view.answer()
        assert answer.holds_at("a", 5.0)

    def test_double_finalize_is_idempotent(self):
        db = MovingObjectDatabase()
        db.install("a", stationary([1.0, 0.0]))
        engine = SweepEngine(db, gd(), Interval(0, 5))
        view = ContinuousKNN(engine, 1)
        engine.run_to_end()
        engine.finalize()  # second call: no double-close
        assert view.answer().holds_at("a", 2.0)


class TestUpdateEdgeCases:
    def test_duplicate_new_rejected(self):
        db = MovingObjectDatabase()
        db.install("a", stationary([1.0, 0.0]))
        engine = SweepEngine(db, gd(), Interval(0, 50))
        with pytest.raises(ValueError):
            engine.on_update(New("a", 5.0, Vector.of(0, 0), Vector.of(0, 0)))

    def test_terminate_unknown_rejected(self):
        db = MovingObjectDatabase()
        db.install("a", stationary([1.0, 0.0]))
        engine = SweepEngine(db, gd(), Interval(0, 50))
        with pytest.raises(KeyError):
            engine.on_update(Terminate("ghost", 5.0))

    def test_update_beyond_horizon_is_noop(self):
        db = MovingObjectDatabase()
        db.install("a", stationary([1.0, 0.0]))
        engine = SweepEngine(db, gd(), Interval(0, 10))
        engine.subscribe_to(db)
        db.create("late", 20.0, position=[0.5, 0.0], velocity=[0.0, 0.0])
        assert engine.objects_in_order() == ["a"]
        assert engine.current_time == 10.0

    def test_subscribe_to_foreign_db_rejected(self):
        db = MovingObjectDatabase()
        db.install("a", stationary([1.0, 0.0]))
        other = MovingObjectDatabase()
        engine = SweepEngine(db, gd(), Interval(0, 10))
        with pytest.raises(ValueError):
            engine.subscribe_to(other)

    def test_terminate_after_object_already_dead_in_sweep(self):
        """A scheduled death (finite curve) followed by engine removal
        paths must not double-remove."""
        db = MovingObjectDatabase()
        db.install("a", stationary([1.0, 0.0]))
        db.install(
            "brief",
            from_waypoints([(0, [2.0, 0.0]), (4, [2.0, 0.0])], extend=False),
        )
        engine = SweepEngine(db, gd(), Interval(0, 10))
        engine.run_to_end()
        assert engine.stats.removals == 1


class TestSweepOrderConsistencyAfterEverything:
    def test_validate_after_busy_run(self):
        from repro.workloads.generator import UpdateStream, random_linear_mod

        db = random_linear_mod(15, seed=3, extent=40.0, speed=7.0)
        engine = SweepEngine(db, gd(), Interval(0.0, 80.0))
        engine.subscribe_to(db)
        UpdateStream(db, seed=4, mean_gap=2.0, extent=40.0, speed=7.0).run(25)
        engine.run_to_end()
        engine.order._validate()
        assert engine.order.is_sorted_at(engine.current_time)
