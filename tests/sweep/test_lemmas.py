"""Direct tests of the structural lemmas of Section 5.

- **Lemma 7**: right before two curves intersect, they are immediate
  neighbors in the precedence relation — verified by instrumenting
  every processed intersection event on random workloads.
- **Lemma 8**: the precedence relation determines the support (and the
  answer) — verified by evaluating a query at many instant pairs and
  checking that equal orders imply equal answers.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.intervals import Interval
from repro.gdist.euclidean import SquaredEuclideanDistance
from repro.sweep.engine import SweepEngine
from repro.sweep.knn import ContinuousKNN
from repro.workloads.generator import random_linear_mod


def origin_distance():
    return SquaredEuclideanDistance([0.0, 0.0])


class _AdjacencyAuditor:
    """Listener verifying Lemma 7's adjacency property at every swap:
    just before the engine processes an intersection, the two curves
    must be immediate neighbors (the engine asserts this structurally;
    here we check it *numerically*, comparing values just before the
    event time)."""

    def __init__(self, engine):
        self._engine = engine
        self.checked = 0

    def on_swap(self, time, lower, upper):
        probe = time - 1e-7
        if not (lower.defined_at(probe) and upper.defined_at(probe)):
            return
        # Just before the crossing the now-lower curve was above:
        before_lower = lower.value(probe)
        before_upper = upper.value(probe)
        assert before_lower >= before_upper - 1e-6
        # And no third curve's value lies strictly between them.
        lo, hi = sorted((before_lower, before_upper))
        for entry in self._engine.order:
            if entry is lower or entry is upper:
                continue
            if not entry.defined_at(probe):
                continue
            value = entry.value(probe)
            assert not (lo + 1e-9 < value < hi - 1e-9), (
                f"{entry.label} at {value} between the crossing pair "
                f"({lo}, {hi}) just before t={time}"
            )
        self.checked += 1


class TestLemma7:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_crossing_pairs_are_neighbors(self, seed):
        db = random_linear_mod(12, seed=seed, extent=40.0, speed=7.0)
        engine = SweepEngine(db, origin_distance(), Interval(0.0, 25.0))
        auditor = _AdjacencyAuditor(engine)
        engine.add_listener(auditor)
        engine.run_to_end()
        assert auditor.checked > 0
        # The engine swallows listener exceptions mid-loop; a silent
        # AssertionError from the auditor would void this test.
        assert engine.stats.listener_errors == 0, engine.listener_errors


class TestLemma8:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_equal_orders_imply_equal_answers(self, seed):
        db = random_linear_mod(8, seed=seed, extent=30.0, speed=6.0)
        gd = origin_distance()
        interval = Interval(0.0, 20.0)
        engine = SweepEngine(db, gd, interval)
        view = ContinuousKNN(engine, 2)
        samples = []
        for t in interval.sample_points(41):
            engine.advance_to(t)
            samples.append(
                (tuple(engine.objects_in_order()), frozenset(view.members))
            )
        by_order = {}
        for order, answer in samples:
            if order in by_order:
                assert by_order[order] == answer, (
                    "same precedence relation, different answers"
                )
            else:
                by_order[order] = answer

    def test_order_change_required_for_answer_change(self):
        """Contrapositive on a concrete run: every answer change in the
        k-NN view coincides with a support change."""
        db = random_linear_mod(10, seed=5, extent=40.0, speed=7.0)
        engine = SweepEngine(db, origin_distance(), Interval(0.0, 20.0))
        view = ContinuousKNN(engine, 3)
        previous_answer = frozenset(view.members)
        previous_changes = engine.stats.support_changes
        for t in Interval(0.0, 20.0).sample_points(81):
            engine.advance_to(t)
            answer = frozenset(view.members)
            changes = engine.stats.support_changes
            if answer != previous_answer:
                assert changes > previous_changes
            previous_answer, previous_changes = answer, changes
