"""Unit tests for curve entries."""

import pytest

from repro.geometry.intervals import Interval
from repro.geometry.piecewise import PiecewiseFunction
from repro.geometry.poly import Polynomial
from repro.sweep.curves import IDENTITY_TIME_TERM, CurveEntry


def linear_curve(slope=1.0, intercept=0.0, lo=0.0, hi=10.0):
    return PiecewiseFunction.from_polynomial(
        Polynomial.linear(slope, intercept), Interval(lo, hi)
    )


class TestConstruction:
    def test_object_entry(self):
        e = CurveEntry.for_object("obj-1", linear_curve())
        assert e.is_object and not e.is_constant
        assert e.oid == "obj-1"
        assert e.time_term_index == IDENTITY_TIME_TERM

    def test_constant_entry(self):
        e = CurveEntry.for_constant(7.0)
        assert e.is_constant and not e.is_object
        assert e.constant == 7.0
        assert e.value(-1e9) == 7.0 and e.value(1e9) == 7.0

    def test_must_be_exactly_one_kind(self):
        with pytest.raises(ValueError):
            CurveEntry(linear_curve())
        with pytest.raises(ValueError):
            CurveEntry(linear_curve(), oid="x", constant=1.0)

    def test_unique_monotone_seq(self):
        a = CurveEntry.for_object("a", linear_curve())
        b = CurveEntry.for_object("b", linear_curve())
        assert b.seq > a.seq


class TestBehaviour:
    def test_value_and_defined_at(self):
        e = CurveEntry.for_object("a", linear_curve(2.0, 1.0))
        assert e.value(3.0) == 7.0
        assert e.defined_at(5.0)
        assert not e.defined_at(50.0)

    def test_labels(self):
        assert CurveEntry.for_object("a", linear_curve()).label == "a"
        assert CurveEntry.for_constant(2.5).label == "const(2.5)"
        tagged = CurveEntry.for_object("a", linear_curve(), time_term_index=2)
        assert tagged.label == "a@tt2"

    def test_repr(self):
        assert "const(3)" in repr(CurveEntry.for_constant(3.0))

    def test_links_start_clear(self):
        e = CurveEntry.for_object("a", linear_curve())
        assert e.prev is None and e.next is None and e.node is None
