"""Reproduction tests for the paper's Figures 1-3 and Example 12.

These assert the *narrated* discrete behaviour: initial event queue
contents, the order swaps, the event cancelled by each update, and the
earlier crossing that replaces it.
"""

import math

import pytest

from repro.baselines.naive import naive_knn_answer
from repro.gdist.arrival import ArrivalTimeGDistance, SquaredArrivalTimeGDistance
from repro.gdist.euclidean import SquaredEuclideanDistance
from repro.geometry.intervals import Interval, IntervalSet
from repro.sweep.engine import SweepEngine
from repro.sweep.knn import ContinuousKNN
from repro.sweep.support import SupportTracker
from repro.workloads.paperfigures import (
    EXAMPLE12_EVENTS_BEFORE_UPDATE,
    EXAMPLE12_NEW_CROSSING,
    EXAMPLE12_PENDING_CROSSING,
    EXAMPLE12_UPDATE_TIME,
    example12_scenario,
    figure1_configuration,
    figure2_scenario,
    trajectory_for_quadratic,
)


class TestTrajectoryForQuadratic:
    def test_realizes_quadratic(self):
        traj = trajectory_for_quadratic(2.0, -8.0, 10.0)
        d = SquaredEuclideanDistance([0.0, 0.0])(traj)
        for t in (0.0, 1.0, 2.0, 5.0):
            assert d(t) == pytest.approx(2 * t * t - 8 * t + 10)

    def test_rejects_nonpositive_leading(self):
        with pytest.raises(ValueError):
            trajectory_for_quadratic(0.0, 0.0, 1.0)

    def test_rejects_negative_minimum(self):
        with pytest.raises(ValueError):
            trajectory_for_quadratic(1.0, 0.0, -1.0)


class TestFigure1:
    def test_squared_arrival_time_is_quadratic(self):
        config = figure1_configuration(initial_gap=4.0, climb_rate=1.0)
        g = SquaredArrivalTimeGDistance(config.query)
        curve = g(config.object)
        (piece,) = curve.pieces
        assert piece[1].coeffs == pytest.approx(config.expected_coeffs)

    def test_matches_exact_interception(self):
        config = figure1_configuration(initial_gap=3.0, climb_rate=0.75)
        g2 = SquaredArrivalTimeGDistance(config.query)(config.object)
        exact = ArrivalTimeGDistance(config.query)
        for t in (0.0, 1.0, 2.5, 3.9):
            td = exact.evaluate_at(config.object, t)
            assert g2(t) == pytest.approx(td * td, rel=1e-9)

    def test_interception_point_reached_simultaneously(self):
        """Figure 1's defining property: redirecting o at the computed
        angle reaches point A at the same time as q."""
        config = figure1_configuration(initial_gap=4.0, climb_rate=2.0)
        exact = ArrivalTimeGDistance(config.query)
        t = 1.0
        td = exact.evaluate_at(config.object, t)
        meeting_point = config.query.position(t + td)
        o_pos = config.object.position(t)
        o_speed = config.object.speed(t)
        assert (meeting_point - o_pos).norm() == pytest.approx(o_speed * td)

    def test_invalid_climb_rate_rejected(self):
        with pytest.raises(ValueError):
            figure1_configuration(climb_rate=0.0)


class TestFigure2:
    def test_narrative(self):
        sc = figure2_scenario()
        gd = SquaredEuclideanDistance(sc.query)
        eng = SweepEngine(sc.db, gd, sc.interval)
        view = ContinuousKNN(eng, 1)
        tracker = SupportTracker()
        eng.add_listener(tracker)
        eng.subscribe_to(sc.db)

        # Initially o2 is closer; the crossing at D=10 is scheduled.
        assert eng.objects_in_order() == ["o2", "o1"]
        assert eng._queue.peek_time() == pytest.approx(sc.expected_d)

        # Update at A: o1 stops; the expected crossing at D disappears.
        sc.db.apply(sc.update_a)
        assert eng.queue_length == 0

        # Update at B: o2 flees; they now cross earlier, at C < D.
        sc.db.apply(sc.update_b)
        assert eng._queue.peek_time() == pytest.approx(sc.expected_c)
        assert sc.expected_c < sc.expected_d

        eng.run_to_end()
        assert tracker.swap_times() == pytest.approx([sc.expected_c])

        # o1 becomes the nearest from C on — the change [26] would miss.
        answer = view.answer()
        assert answer.intervals_for("o2").approx_equals(
            IntervalSet([Interval(sc.interval.lo, sc.expected_c)])
        )
        assert answer.intervals_for("o1").approx_equals(
            IntervalSet([Interval(sc.expected_c, sc.interval.hi)])
        )

    def test_answer_matches_naive(self):
        sc = figure2_scenario()
        gd = SquaredEuclideanDistance(sc.query)
        eng = SweepEngine(sc.db, gd, sc.interval)
        view = ContinuousKNN(eng, 1)
        eng.subscribe_to(sc.db)
        sc.db.apply(sc.update_a)
        sc.db.apply(sc.update_b)
        eng.run_to_end()
        naive = naive_knn_answer(sc.db, gd, sc.interval, 1)
        assert view.answer().approx_equals(naive, atol=1e-6)


class TestExample12:
    def build(self):
        sc = example12_scenario()
        gd = SquaredEuclideanDistance(sc.query)
        eng = SweepEngine(sc.db, gd, sc.interval)
        view = ContinuousKNN(eng, 2)
        tracker = SupportTracker()
        eng.add_listener(tracker)
        return sc, gd, eng, view, tracker

    def test_initial_state(self):
        sc, gd, eng, view, tracker = self.build()
        # "the ordering is o4 < o3 < o2 < o1"
        assert eng.order_labels() == ["o4", "o3", "o2", "o1"]
        # "The answer up to time 3 is o3 and o4."
        assert view.members == {"o3", "o4"}
        # "three future intersection points at times 8 (o3,o4),
        #  10 (o1,o2), and 31 (o2,o3)"
        times = sorted(e.time for e in eng._queue._heap)
        assert times == pytest.approx([8.0, 10.0, 31.0], abs=1e-6)
        # "the second intersection point at time 17 of o3, o4 is
        #  ignored for the moment" — only one event per pair.
        assert eng.queue_length == 3

    def test_swaps_before_update(self):
        sc, gd, eng, view, tracker = self.build()
        eng.advance_to(EXAMPLE12_UPDATE_TIME)
        # Swaps at 8, 10, and (re-examined after 8) 17.
        assert tracker.swap_times() == pytest.approx(
            EXAMPLE12_EVENTS_BEFORE_UPDATE, abs=1e-6
        )
        # After 17 "the intersection at 24 is found since o1 and o3 are
        # neighbors".
        assert eng.order_labels() == ["o4", "o3", "o1", "o2"]
        pending = sorted(e.time for e in eng._queue._heap)
        assert any(
            abs(t - EXAMPLE12_PENDING_CROSSING) < 1e-6 for t in pending
        )
        # The 2-NN answer has not changed through these swaps.
        assert view.members == {"o3", "o4"}

    def test_update_cancels_24_and_inserts_22(self):
        sc, gd, eng, view, tracker = self.build()
        sc.db.apply(sc.update)
        eng.on_update(sc.update)
        times = sorted(e.time for e in eng._queue._heap)
        # "delete from the event queue the intersection event at 24"
        assert not any(abs(t - EXAMPLE12_PENDING_CROSSING) < 1e-6 for t in times)
        # "insert a new intersection point that is earlier"
        assert any(abs(t - EXAMPLE12_NEW_CROSSING) < 1e-6 for t in times)
        # "the support for the query is unchanged since the ordering is
        # not" — the chdir leaves the order alone.
        assert eng.order_labels() == ["o4", "o3", "o1", "o2"]
        assert view.members == {"o3", "o4"}

    def test_full_run_matches_naive(self):
        sc, gd, eng, view, tracker = self.build()
        sc.db.apply(sc.update)
        eng.on_update(sc.update)
        eng.run_to_end()
        naive = naive_knn_answer(sc.db, gd, sc.interval, 2)
        assert view.answer().approx_equals(naive, atol=1e-5)
        # o1 displaces o3 in the 2-NN at the new crossing time 22.
        assert view.answer().holds_at("o3", 21.0)
        assert view.answer().holds_at("o1", 23.0)
        assert not view.answer().holds_at("o3", 23.0)

    def test_queue_stays_within_lemma9_bound(self):
        sc, gd, eng, view, tracker = self.build()
        sc.db.apply(sc.update)
        eng.on_update(sc.update)
        eng.run_to_end()
        assert eng.max_queue_length <= 4
