"""Tests for the shared-sweep multi-k view."""

import pytest

from repro.baselines.naive import naive_knn_answer
from repro.geometry.intervals import Interval
from repro.gdist.euclidean import SquaredEuclideanDistance
from repro.sweep.engine import SweepEngine
from repro.sweep.knn import ContinuousKNN
from repro.sweep.multiknn import MultiKNN
from repro.workloads.generator import UpdateStream, random_linear_mod


def gd():
    return SquaredEuclideanDistance([0.0, 0.0])


def run_multi(db, interval, ks):
    engine = SweepEngine(db, gd(), interval)
    view = MultiKNN(engine, ks)
    engine.run_to_end()
    return engine, view


class TestValidation:
    def test_needs_at_least_one_k(self):
        db = random_linear_mod(3)
        engine = SweepEngine(db, gd(), Interval(0, 10))
        with pytest.raises(ValueError):
            MultiKNN(engine, [])

    def test_positive_k_required(self):
        db = random_linear_mod(3)
        engine = SweepEngine(db, gd(), Interval(0, 10))
        with pytest.raises(ValueError):
            MultiKNN(engine, [0, 2])

    def test_rejects_constants(self):
        db = random_linear_mod(3)
        engine = SweepEngine(db, gd(), Interval(0, 10), constants=[1.0])
        with pytest.raises(ValueError):
            MultiKNN(engine, [1])

    def test_duplicate_ks_deduped(self):
        db = random_linear_mod(3)
        engine = SweepEngine(db, gd(), Interval(0, 10))
        view = MultiKNN(engine, [2, 2, 1])
        assert view.ks == [1, 2]

    def test_answer_for_unmaintained_k(self):
        db = random_linear_mod(3)
        engine = SweepEngine(db, gd(), Interval(0, 10))
        view = MultiKNN(engine, [1])
        engine.run_to_end()
        with pytest.raises(KeyError):
            view.answer(7)

    def test_answers_before_finalize_rejected(self):
        db = random_linear_mod(3)
        engine = SweepEngine(db, gd(), Interval(0, 10))
        view = MultiKNN(engine, [1, 2])
        with pytest.raises(RuntimeError):
            view.answers()
        with pytest.raises(RuntimeError):
            view.answer(1)


class TestAgreesWithSingleK:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_individual_views(self, seed):
        db = random_linear_mod(9, seed=seed, extent=35.0, speed=6.0)
        interval = Interval(0.0, 20.0)
        _, multi = run_multi(db, interval, [1, 3, 5])
        for k in (1, 3, 5):
            engine = SweepEngine(db, gd(), interval)
            single = ContinuousKNN(engine, k)
            engine.run_to_end()
            assert multi.answer(k).approx_equals(single.answer(), atol=1e-6)

    def test_matches_naive(self):
        db = random_linear_mod(8, seed=5, extent=30.0, speed=5.0)
        interval = Interval(0.0, 15.0)
        _, multi = run_multi(db, interval, [2, 4])
        for k in (2, 4):
            naive = naive_knn_answer(db, gd(), interval, k)
            assert multi.answer(k).approx_equals(naive, atol=1e-6)

    def test_with_updates(self):
        db = random_linear_mod(7, seed=8, extent=35.0, speed=5.0)
        interval = Interval(0.0, 50.0)
        engine = SweepEngine(db, gd(), interval)
        view = MultiKNN(engine, [1, 2, 3])
        engine.subscribe_to(db)
        UpdateStream(db, seed=9, mean_gap=3.0, extent=35.0, speed=5.0).run(12)
        engine.run_to_end()
        for k in (1, 2, 3):
            naive = naive_knn_answer(db, gd(), interval, k)
            assert view.answer(k).approx_equals(naive, atol=1e-6)

    def test_nesting_invariant(self):
        """k-NN answers are nested: the (k)-set contains the (k-1)-set
        at every instant."""
        db = random_linear_mod(8, seed=12, extent=30.0, speed=6.0)
        interval = Interval(0.0, 15.0)
        _, multi = run_multi(db, interval, [1, 2, 4])
        answers = multi.answers()
        for t in interval.sample_points(31):
            a1 = answers[1].at(t)
            a2 = answers[2].at(t)
            a4 = answers[4].at(t)
            assert a1 <= a2 <= a4

    def test_shared_sweep_processes_events_once(self):
        db = random_linear_mod(10, seed=15, extent=30.0, speed=7.0)
        interval = Interval(0.0, 20.0)
        engine, _ = run_multi(db, interval, [1, 2, 3, 4, 5])
        events_multi = engine.stats.intersections_processed
        solo = SweepEngine(db, gd(), interval)
        ContinuousKNN(solo, 1)
        solo.run_to_end()
        assert events_multi == solo.stats.intersections_processed
