"""Tests for the relaxed g-distance class: finitely many continuous
pieces (the paper's first closing remark).

A discontinuous curve can leap over non-neighbors at a jump, violating
Lemma 7's adjacency premise; the engine handles jumps by removing and
re-inserting the curve at its right-limit value — "propagate changes to
the support upon each chdir update" in the paper's words, generalized
to any known discontinuity.
"""

import pytest

from repro.baselines.naive import naive_knn_answer
from repro.core.api import evaluate_knn
from repro.geometry.intervals import Interval
from repro.gdist.derived import ApproachRate
from repro.gdist.euclidean import SquaredEuclideanDistance
from repro.mod.database import MovingObjectDatabase
from repro.sweep.engine import SweepEngine
from repro.sweep.knn import ContinuousKNN
from repro.trajectory.builder import from_waypoints, linear_from, stationary
from repro.workloads.generator import UpdateStream, random_piecewise_mod


class TestHistoricalJumps:
    def test_leap_over_nonneighbor_detected(self):
        """A curve jumping across several others at a turn."""
        db = MovingObjectDatabase(initial_time=10.0)
        # Approach rates: slow (-1), medium (-2)...; jumper goes from
        # receding (+) to diving steeply (very negative) at t=5, leaping
        # from last place to first in the approach-rate order.
        db.install("slow", linear_from(0.0, [100.0, 0.0], [-0.005, 0.0]))
        db.install("medium", linear_from(0.0, [100.0, 0.0], [-0.01, 0.0]))
        db.install(
            "jumper",
            from_waypoints([(0, [100.0, 0.0]), (5, [102.0, 0.0]), (6, [97.0, 0.0])]),
        )
        gd = ApproachRate([0.0, 0.0])
        interval = Interval(0.0, 10.0)
        sweep = evaluate_knn(db, gd, interval, 1)
        naive = naive_knn_answer(db, gd, interval, 1)
        assert sweep.approx_equals(naive, atol=1e-6)
        assert not sweep.holds_at("jumper", 4.0)
        assert sweep.holds_at("jumper", 6.0)

    def test_reinsertions_counted(self):
        db = MovingObjectDatabase(initial_time=10.0)
        db.install("a", stationary([50.0, 0.0]))
        db.install(
            "b",
            from_waypoints([(0, [60.0, 0.0]), (5, [55.0, 0.0]), (10, [60.0, 0.0])]),
        )
        gd = ApproachRate([0.0, 0.0])
        engine = SweepEngine(db, gd, Interval(0.0, 10.0))
        engine.run_to_end()
        assert engine.stats.reinsertions >= 1

    @pytest.mark.parametrize("seed", [40, 41, 42, 43])
    def test_random_piecewise_matches_naive(self, seed):
        db = random_piecewise_mod(7, seed=seed, end_time=25.0, turns=3)
        gd = ApproachRate([0.0, 0.0])
        interval = Interval(0.0, 25.0)
        sweep = evaluate_knn(db, gd, interval, 2)
        naive = naive_knn_answer(db, gd, interval, 2)
        assert sweep.approx_equals(naive, atol=1e-6)


class TestJumpsFromUpdates:
    def test_chdir_jump_reorders_support(self):
        """A chdir changes the approach rate discontinuously: the
        engine must propagate the support change at the update itself."""
        db = MovingObjectDatabase()
        db.create("steady", 0.1, position=[50.0, 0.0], velocity=[-1.0, 0.0])
        db.create("fickle", 0.2, position=[60.0, 0.0], velocity=[-2.0, 0.0])
        gd = ApproachRate([0.0, 0.0])
        engine = SweepEngine(db, gd, Interval(0.5, 20.0))
        view = ContinuousKNN(engine, 1)
        engine.subscribe_to(db)
        assert view.members == {"fickle"}  # diving fastest
        db.change_direction("fickle", 5.0, [3.0, 0.0])  # now receding
        assert view.members == {"steady"}
        assert engine.stats.reinsertions >= 1

    def test_chdir_jump_answers_match_lazy(self):
        import random

        rng = random.Random(50)
        from repro.mod.log import RecordingDatabase

        db = RecordingDatabase()
        for i in range(6):
            db.create(
                f"o{i}",
                0.01 * (i + 1),
                position=[rng.uniform(-30, 30), rng.uniform(-30, 30)],
                velocity=[rng.uniform(-4, 4), rng.uniform(-4, 4)],
            )
        gd = ApproachRate([0.0, 0.0])
        engine = SweepEngine(db, gd, Interval(0.1, 40.0))
        view = ContinuousKNN(engine, 2)
        db.subscribe(engine.on_update)
        UpdateStream(
            db, seed=51, mean_gap=2.0, extent=30.0, speed=4.0,
            weights=(0.2, 0.1, 0.7),
        ).run(12)
        engine.advance_to(40.0)
        engine.finalize()
        lazy = naive_knn_answer(db.log.replay(), gd, Interval(0.1, 40.0), 2)
        assert view.answer().approx_equals(lazy, atol=1e-6)

    def test_continuous_gdistance_unaffected(self):
        """The continuous path (no reinsertion) still taken for the
        squared Euclidean distance."""
        db = MovingObjectDatabase()
        db.create("a", 0.1, position=[10.0, 0.0], velocity=[-1.0, 0.0])
        db.create("b", 0.2, position=[20.0, 0.0], velocity=[0.0, 0.0])
        engine = SweepEngine(
            db, SquaredEuclideanDistance([0.0, 0.0]), Interval(0.5, 20.0)
        )
        engine.subscribe_to(db)
        db.change_direction("a", 2.0, [1.0, 0.0])
        assert engine.stats.reinsertions == 0
