"""Tests for the continuous within-range view."""

import pytest

from repro.baselines.naive import naive_within_answer
from repro.geometry.intervals import Interval, IntervalSet
from repro.gdist.euclidean import SquaredEuclideanDistance
from repro.mod.database import MovingObjectDatabase
from repro.sweep.engine import SweepEngine
from repro.sweep.within import ContinuousWithin
from repro.trajectory.builder import from_waypoints, linear_from, stationary
from repro.workloads.generator import UpdateStream, random_linear_mod


def origin_distance():
    return SquaredEuclideanDistance([0.0, 0.0])


def run_within(db, gdist, interval, threshold):
    eng = SweepEngine(db, gdist, interval, constants=[threshold])
    view = ContinuousWithin(eng, threshold)
    eng.run_to_end()
    return view.answer()


class TestBasics:
    def test_requires_registered_sentinel(self):
        db = random_linear_mod(3)
        eng = SweepEngine(db, origin_distance(), Interval(0, 10))
        with pytest.raises(KeyError):
            ContinuousWithin(eng, 25.0)

    def test_initial_membership(self):
        db = MovingObjectDatabase()
        db.install("in", stationary([3.0, 0.0]))
        db.install("out", stationary([9.0, 0.0]))
        eng = SweepEngine(db, origin_distance(), Interval(0, 10), constants=[25.0])
        view = ContinuousWithin(eng, 25.0)
        assert view.members == {"in"}
        assert view.threshold == 25.0

    def test_answer_before_finalize_rejected(self):
        db = random_linear_mod(2)
        eng = SweepEngine(db, origin_distance(), Interval(0, 10), constants=[25.0])
        view = ContinuousWithin(eng, 25.0)
        with pytest.raises(RuntimeError):
            view.answer()


class TestCrossings:
    def test_object_entering_range(self):
        db = MovingObjectDatabase()
        db.install("mover", linear_from(0.0, [10.0, 0.0], [-1.0, 0.0]))
        answer = run_within(db, origin_distance(), Interval(0.0, 10.0), 25.0)
        # distance 5 reached at t=5.
        assert answer.intervals_for("mover").approx_equals(
            IntervalSet([Interval(5.0, 10.0)])
        )

    def test_object_passing_through_range(self):
        db = MovingObjectDatabase()
        db.install("fly_by", linear_from(0.0, [-10.0, 3.0], [1.0, 0.0]))
        answer = run_within(db, origin_distance(), Interval(0.0, 20.0), 25.0)
        # |(-10+t, 3)|^2 <= 25 -> (t-10)^2 <= 16 -> t in [6, 14].
        assert answer.intervals_for("fly_by").approx_equals(
            IntervalSet([Interval(6.0, 14.0)])
        )

    def test_updates_affect_membership(self):
        db = MovingObjectDatabase()
        db.install("car", stationary([3.0, 0.0]))
        eng = SweepEngine(db, origin_distance(), Interval(0.0, 20.0), constants=[25.0])
        view = ContinuousWithin(eng, 25.0)
        eng.subscribe_to(db)
        db.change_direction("car", 4.0, [1.0, 0.0])  # flees; exits at t=6
        eng.run_to_end()
        answer = view.answer()
        assert answer.intervals_for("car").approx_equals(
            IntervalSet([Interval(0.0, 6.0)])
        )

    def test_birth_inside_range(self):
        db = MovingObjectDatabase()
        db.install("anchor", stationary([100.0, 0.0]))
        eng = SweepEngine(db, origin_distance(), Interval(0.0, 20.0), constants=[25.0])
        view = ContinuousWithin(eng, 25.0)
        eng.subscribe_to(db)
        db.create("born", 7.0, position=[1.0, 0.0], velocity=[0.0, 0.0])
        eng.run_to_end()
        assert view.answer().intervals_for("born").approx_equals(
            IntervalSet([Interval(7.0, 20.0)])
        )

    def test_termination_inside_range(self):
        db = MovingObjectDatabase()
        db.install("brief", stationary([1.0, 0.0]))
        eng = SweepEngine(db, origin_distance(), Interval(0.0, 20.0), constants=[25.0])
        view = ContinuousWithin(eng, 25.0)
        eng.subscribe_to(db)
        db.terminate("brief", 12.0)
        eng.run_to_end()
        assert view.answer().intervals_for("brief").approx_equals(
            IntervalSet([Interval(0.0, 12.0)])
        )


class TestAgainstNaive:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("threshold", [100.0, 900.0, 2500.0])
    def test_random_workloads(self, seed, threshold):
        db = random_linear_mod(10, seed=seed, extent=60.0, speed=8.0)
        gd = origin_distance()
        sweep = run_within(db, gd, Interval(0.0, 20.0), threshold)
        naive = naive_within_answer(db, gd, Interval(0.0, 20.0), threshold)
        assert sweep.approx_equals(naive, atol=1e-6)

    def test_moving_query_with_updates(self):
        db = random_linear_mod(8, seed=5, extent=40.0, speed=5.0)
        q = from_waypoints([(0, [0.0, 0.0]), (30, [30.0, 0.0])])
        gd = SquaredEuclideanDistance(q)
        eng = SweepEngine(db, gd, Interval(0.0, 30.0), constants=[400.0])
        view = ContinuousWithin(eng, 400.0)
        eng.subscribe_to(db)
        UpdateStream(db, seed=6, mean_gap=4.0, extent=40.0, speed=5.0).run(8)
        eng.run_to_end()
        naive = naive_within_answer(db, gd, Interval(0.0, 30.0), 400.0)
        assert view.answer().approx_equals(naive, atol=1e-6)


class TestFlightScenario:
    def test_example11_within_50km(self):
        """Example 11: flights within 50 km of Flight 623."""
        flight_623 = from_waypoints([(0, [0.0, 0.0]), (60, [600.0, 0.0])])
        db = MovingObjectDatabase()
        # Escort flies parallel 30 km away: always within 50.
        db.install("escort", from_waypoints([(0, [0.0, 30.0]), (60, [600.0, 30.0])]))
        # Crosser passes perpendicular through the corridor.
        db.install(
            "crosser",
            from_waypoints([(0, [300.0, -300.0]), (60, [300.0, 300.0])]),
        )
        # Distant cruiser never gets close.
        db.install("distant", stationary([0.0, 500.0]))
        gd = SquaredEuclideanDistance(flight_623)
        answer = run_within(db, gd, Interval(0.0, 60.0), 50.0**2)
        assert answer.intervals_for("escort").covers(Interval(0, 60))
        assert "distant" not in answer.objects
        crosser = answer.intervals_for("crosser")
        assert len(crosser) == 1
        assert not crosser.covers(Interval(0, 60))
        naive = naive_within_answer(db, gd, Interval(0.0, 60.0), 50.0**2)
        assert answer.approx_equals(naive, atol=1e-6)
