"""Edge-case tests locking in sweep tie-breaking behavior.

Three families of adversarial timing that the sharded path must
reproduce exactly, pinned here against the single engine first:

- a ``chdir`` arriving at *exactly* an intersection-event time (the
  update and the order change share one timestamp);
- duplicate curves (exact, persistent ties in the precedence order);
- zero-length (point-interval) trajectory pieces.
"""

import math

from repro.baselines.naive import naive_knn_answer
from repro.core.api import evaluate_knn
from repro.geometry.intervals import Interval
from repro.geometry.vectors import Vector
from repro.gdist.euclidean import SquaredEuclideanDistance
from repro.mod.database import MovingObjectDatabase
from repro.mod.updates import ChangeDirection, New
from repro.parallel.evaluator import ShardedSweepEvaluator
from repro.sweep.engine import SweepEngine
from repro.sweep.knn import ContinuousKNN
from repro.trajectory.linearpiece import LinearPiece
from repro.trajectory.trajectory import Trajectory

ORIGIN = SquaredEuclideanDistance([0.0, 0.0])


def _single_knn(db, k, lo, hi):
    engine = SweepEngine(db, ORIGIN, Interval(lo, hi))
    view = ContinuousKNN(engine, k)
    db.subscribe(engine.on_update)
    return engine, view


class TestChdirAtIntersectionTime:
    """o1 moves as x = t and o2 as x = 10 - t: their squared distances
    t^2 and (10 - t)^2 intersect at exactly t = 5 — and a chdir lands
    on precisely that timestamp."""

    def _db(self):
        db = MovingObjectDatabase(initial_time=0.0)
        # x(t) = position + velocity * (t - creation_time)
        db.apply(
            New("o1", 0.4, velocity=Vector.of(1.0, 0.0), position=Vector.of(0.4, 0.0))
        )
        db.apply(
            New("o2", 0.5, velocity=Vector.of(-1.0, 0.0), position=Vector.of(9.5, 0.0))
        )
        db.apply(
            New("o3", 0.6, velocity=Vector.of(0.0, 0.0), position=Vector.of(30.0, 0.0))
        )
        return db

    def test_chdir_exactly_at_crossing(self):
        db = self._db()
        start = db.last_update_time
        engine, view = _single_knn(db, 1, start, 12.0)
        # The crossing |t| = |10 - t| happens at exactly t = 5.0; the
        # update carries the same timestamp.
        db.apply(ChangeDirection("o2", 5.0, Vector.of(2.0, 0.0)))
        engine.advance_to(12.0)
        engine.finalize()
        truth = naive_knn_answer(db, ORIGIN, Interval(start, 12.0), 1)
        assert view.answer().approx_equals(truth, atol=1e-6)

    def test_chdir_at_crossing_matches_sharded(self):
        for shards in (1, 2, 7):
            db = self._db()
            start = db.last_update_time
            single_db = self._db()
            engine, view = _single_knn(single_db, 1, start, 12.0)
            evaluator = ShardedSweepEvaluator.knn(
                db, ORIGIN, k=1, until=12.0, shards=shards, batch_size=2
            )
            db.subscribe(evaluator.on_update)
            update = ChangeDirection("o2", 5.0, Vector.of(2.0, 0.0))
            db.apply(update)
            single_db.apply(update)
            engine.advance_to(12.0)
            engine.finalize()
            evaluator.advance_to(12.0)
            evaluator.finalize()
            assert evaluator.answer().approx_equals(
                view.answer(), atol=1e-6
            ), f"shards={shards}"

    def test_chdir_at_crossing_then_more_events(self):
        """The post-update order must seed correct *new* intersection
        events: o2 reverses at the crossing and leaves again."""
        db = self._db()
        start = db.last_update_time
        engine, view = _single_knn(db, 2, start, 20.0)
        db.apply(ChangeDirection("o2", 5.0, Vector.of(3.0, 0.0)))
        db.apply(ChangeDirection("o1", 8.0, Vector.of(-1.0, 0.0)))
        engine.advance_to(20.0)
        engine.finalize()
        truth = naive_knn_answer(db, ORIGIN, Interval(start, 20.0), 2)
        assert view.answer().approx_equals(truth, atol=1e-5)


class TestDuplicateCurves:
    """Two identical trajectories: their g-distance curves are equal at
    every instant, a persistent precedence-order tie."""

    def _db(self):
        db = MovingObjectDatabase(initial_time=0.0)
        # twin-a and twin-b share position and velocity exactly: both
        # drift right from x=5.  The walker sweeps in from the left,
        # passes the origin at t ~ 10.3, and beats the twins while near
        # it.
        db.apply(
            New("twin-a", 0.1, velocity=Vector.of(0.5, 0.0), position=Vector.of(5.0, 0.0))
        )
        db.apply(
            New("twin-b", 0.2, velocity=Vector.of(0.5, 0.0), position=Vector.of(5.0, 0.0))
        )
        db.apply(
            New("walker", 0.3, velocity=Vector.of(2.0, 0.0), position=Vector.of(-20.0, 0.0))
        )
        return db

    def test_tied_answers_match_naive(self):
        """Current behavior, locked in: on exact persistent ties the
        engine and the naive baseline agree for k=1 and k=2."""
        db = self._db()
        for k in (1, 2):
            engine = SweepEngine(db, ORIGIN, Interval(0.3, 30.0))
            view = ContinuousKNN(engine, k)
            engine.run_to_end()
            truth = naive_knn_answer(db, ORIGIN, Interval(0.3, 30.0), k)
            assert view.answer().approx_equals(truth, atol=0.0), f"k={k}"

    def test_deterministic_across_runs(self):
        answers = []
        for _ in range(2):
            db = self._db()
            engine, view = _single_knn(db, 1, 0.3, 30.0)
            engine.advance_to(30.0)
            engine.finalize()
            answers.append(view.answer())
        assert answers[0].approx_equals(answers[1], atol=0.0)

    def test_exactly_one_twin_occupies_the_slot(self):
        """k=1 with tied twins: the answer is a singleton at every
        probed instant — ties never double-count."""
        db = self._db()
        engine, view = _single_knn(db, 1, 0.3, 30.0)
        engine.advance_to(30.0)
        engine.finalize()
        answer = view.answer()
        twins = {"twin-a", "twin-b"}
        for t in (1.37, 5.81, 20.3, 29.1):
            members = answer.at(t)
            assert len(members) == 1, f"k=1 answer not a singleton at {t}"
            assert members & twins, f"a twin should hold the slot at {t}"
        # Near the origin pass the walker wins outright.
        assert answer.at(10.31) == {"walker"}

    def test_k2_keeps_one_twin_through_walker_pass(self):
        """k=2: while the walker occupies a slot, exactly one twin
        stays; outside that window both twins are the answer."""
        db = self._db()
        engine, view = _single_knn(db, 2, 0.3, 30.0)
        engine.advance_to(30.0)
        engine.finalize()
        answer = view.answer()
        assert answer.at(1.0) == {"twin-a", "twin-b"}
        assert answer.at(29.0) == {"twin-a", "twin-b"}
        during = answer.at(10.31)
        assert "walker" in during and len(during) == 2
        assert len(during & {"twin-a", "twin-b"}) == 1

    def test_sharded_matches_single_on_tied_workload(self):
        """Sharded evaluation reproduces the single-engine answers on
        the tied workload for both k values."""
        db = self._db()
        for k in (1, 2):
            single = evaluate_knn(db, ORIGIN, Interval(0.3, 30.0), k=k)
            for shards in (2, 7):
                sharded = evaluate_knn(
                    db, ORIGIN, Interval(0.3, 30.0), k=k, shards=shards
                )
                assert sharded.approx_equals(
                    single, atol=1e-6
                ), f"k={k} S={shards}"


class TestZeroLengthPieces:
    """Trajectories containing explicit point-interval pieces."""

    def _trajectory_with_point_piece(self):
        # Moves right on [0, 4], has a zero-length piece at t=4, then
        # continues with a different velocity on [4, 20].
        p1 = LinearPiece.anchored(
            Vector.of(1.0, 0.0), Vector.of(-6.0, 0.0), 0.0, Interval(0.0, 4.0)
        )
        point = LinearPiece.anchored(
            Vector.of(0.0, 0.0), Vector.of(-2.0, 0.0), 4.0, Interval(4.0, 4.0)
        )
        p2 = LinearPiece.anchored(
            Vector.of(-0.5, 0.0), Vector.of(-2.0, 0.0), 4.0, Interval(4.0, 20.0)
        )
        return Trajectory([p1, point, p2])

    def _cruiser(self):
        return Trajectory(
            [
                LinearPiece.anchored(
                    Vector.of(0.3, 0.0),
                    Vector.of(-9.0, 0.0),
                    0.0,
                    Interval(0.0, math.inf),
                )
            ]
        )

    def test_trajectory_accepts_point_piece(self):
        traj = self._trajectory_with_point_piece()
        assert traj.domain.approx_equals(Interval(0.0, 20.0))
        assert len(traj.pieces) == 3
        assert traj.pieces[1].interval.is_point

    def test_sweep_handles_point_piece(self):
        db = MovingObjectDatabase(initial_time=5.0)
        db.install("spiky", self._trajectory_with_point_piece())
        db.install("cruiser", self._cruiser())
        answer = evaluate_knn(db, ORIGIN, Interval(0.5, 18.0), k=1)
        truth = naive_knn_answer(db, ORIGIN, Interval(0.5, 18.0), 1)
        assert answer.approx_equals(truth, atol=1e-5)

    def test_sharded_handles_point_piece(self):
        db = MovingObjectDatabase(initial_time=5.0)
        db.install("spiky", self._trajectory_with_point_piece())
        db.install("cruiser", self._cruiser())
        single = evaluate_knn(db, ORIGIN, Interval(0.5, 18.0), k=1)
        for shards in (2, 7):
            sharded = evaluate_knn(
                db, ORIGIN, Interval(0.5, 18.0), k=1, shards=shards
            )
            assert sharded.approx_equals(single, atol=1e-6), f"S={shards}"
