"""Tests for the treap-backed object list (the paper's list L)."""

import random

import pytest

from repro.geometry.intervals import Interval
from repro.geometry.piecewise import PiecewiseFunction
from repro.sweep.curves import CurveEntry
from repro.sweep.object_list import SweepOrder


def const_entry(value, oid=None):
    return CurveEntry(
        PiecewiseFunction.constant(value, Interval.all_time()),
        oid=oid if oid is not None else f"v{value}",
    )


class TestInsertOrdering:
    def test_insert_sorted_by_value(self):
        order = SweepOrder()
        for v in (5.0, 1.0, 3.0, 2.0, 4.0):
            order.insert(const_entry(v), t=0.0)
        assert [e.value(0.0) for e in order] == [1.0, 2.0, 3.0, 4.0, 5.0]
        order._validate()

    def test_first_last(self):
        order = SweepOrder()
        assert order.first is None and order.last is None
        a, b = const_entry(2.0), const_entry(1.0)
        order.insert(a, 0.0)
        order.insert(b, 0.0)
        assert order.first is b and order.last is a

    def test_neighbor_links(self):
        order = SweepOrder()
        entries = [const_entry(float(v)) for v in (3, 1, 2)]
        for e in entries:
            order.insert(e, 0.0)
        lo, mid, hi = order.entries()
        assert lo.next is mid and mid.next is hi
        assert hi.prev is mid and mid.prev is lo
        assert lo.prev is None and hi.next is None

    def test_double_insert_rejected(self):
        order = SweepOrder()
        e = const_entry(1.0)
        order.insert(e, 0.0)
        with pytest.raises(ValueError):
            order.insert(e, 0.0)

    def test_insert_by_time_varying_values(self):
        # Curves ordered differently at t=0 and t=10; insertion at t=10
        # must use values at t=10.
        from repro.geometry.poly import Polynomial

        rising = CurveEntry(
            PiecewiseFunction.from_polynomial(Polynomial.linear(1.0, 0.0)),
            oid="rising",
        )
        flat = CurveEntry(
            PiecewiseFunction.constant(5.0, Interval.all_time()), oid="flat"
        )
        order = SweepOrder()
        order.insert(rising, 10.0)  # value 10
        order.insert(flat, 10.0)  # value 5 -> below
        assert order.entries()[0] is flat


class TestRankQueries:
    def test_rank_and_at_rank(self):
        order = SweepOrder()
        entries = [const_entry(float(v)) for v in range(10)]
        shuffled = entries[:]
        random.Random(7).shuffle(shuffled)
        for e in shuffled:
            order.insert(e, 0.0)
        for expected, e in enumerate(entries):
            assert order.rank(e) == expected
            assert order.at_rank(expected) is e

    def test_at_rank_out_of_range(self):
        order = SweepOrder()
        order.insert(const_entry(1.0), 0.0)
        with pytest.raises(IndexError):
            order.at_rank(1)
        with pytest.raises(IndexError):
            order.at_rank(-1)

    def test_rank_of_missing(self):
        order = SweepOrder()
        with pytest.raises(KeyError):
            order.rank(const_entry(1.0))


class TestDelete:
    def test_delete_middle(self):
        order = SweepOrder()
        entries = [const_entry(float(v)) for v in range(5)]
        for e in entries:
            order.insert(e, 0.0)
        order.delete(entries[2])
        assert [e.value(0.0) for e in order] == [0.0, 1.0, 3.0, 4.0]
        assert entries[1].next is entries[3]
        assert entries[3].prev is entries[1]
        order._validate()

    def test_delete_first_and_last(self):
        order = SweepOrder()
        entries = [const_entry(float(v)) for v in range(3)]
        for e in entries:
            order.insert(e, 0.0)
        order.delete(entries[0])
        assert order.first is entries[1]
        order.delete(entries[2])
        assert order.last is entries[1]
        order._validate()

    def test_delete_only(self):
        order = SweepOrder()
        e = const_entry(1.0)
        order.insert(e, 0.0)
        order.delete(e)
        assert order.is_empty
        assert e.node is None

    def test_delete_missing_rejected(self):
        with pytest.raises(KeyError):
            SweepOrder().delete(const_entry(1.0))

    def test_reinsert_after_delete(self):
        order = SweepOrder()
        e = const_entry(1.0)
        order.insert(e, 0.0)
        order.delete(e)
        order.insert(e, 0.0)
        assert len(order) == 1


class TestSwapAdjacent:
    def test_swap(self):
        order = SweepOrder()
        a, b, c = (const_entry(float(v)) for v in (1, 2, 3))
        for e in (a, b, c):
            order.insert(e, 0.0)
        order.swap_adjacent(a, b)
        assert order.entries() == [b, a, c]
        assert order.rank(b) == 0 and order.rank(a) == 1
        order._validate()

    def test_swap_non_adjacent_rejected(self):
        order = SweepOrder()
        a, b, c = (const_entry(float(v)) for v in (1, 2, 3))
        for e in (a, b, c):
            order.insert(e, 0.0)
        with pytest.raises(ValueError):
            order.swap_adjacent(a, c)

    def test_swap_wrong_direction_rejected(self):
        order = SweepOrder()
        a, b = const_entry(1.0), const_entry(2.0)
        order.insert(a, 0.0)
        order.insert(b, 0.0)
        with pytest.raises(ValueError):
            order.swap_adjacent(b, a)

    def test_swap_at_ends_updates_first_last(self):
        order = SweepOrder()
        a, b = const_entry(1.0), const_entry(2.0)
        order.insert(a, 0.0)
        order.insert(b, 0.0)
        order.swap_adjacent(a, b)
        assert order.first is b and order.last is a
        order._validate()


class TestRandomizedModel:
    def test_insert_delete_against_sorted_model(self):
        """Inserts and deletes keep the order value-sorted, matching the
        engine's invariant that insertion only happens while the list is
        sorted at the current sweep time."""
        rng = random.Random(1234)
        order = SweepOrder(seed=99)
        model = []

        def fresh():
            value = rng.uniform(0.0, 1000.0)
            return const_entry(value, oid=f"e{value:.9f}-{rng.random():.9f}")

        for step in range(1200):
            if rng.random() < 0.6 or len(model) < 2:
                e = fresh()
                order.insert(e, 0.0)
                idx = 0
                while idx < len(model) and model[idx].value(0.0) <= e.value(0.0):
                    idx += 1
                model.insert(idx, e)
            else:
                victim = rng.choice(model)
                order.delete(victim)
                model.remove(victim)
            if step % 150 == 0:
                order._validate()
                assert order.entries() == model
                for i, e in enumerate(model):
                    assert order.rank(e) == i
        order._validate()
        assert order.entries() == model

    def test_swaps_and_deletes_against_permuted_model(self):
        """After the build phase, random adjacent swaps and deletes keep
        the structure consistent with a plain list model."""
        rng = random.Random(77)
        order = SweepOrder(seed=5)
        model = [const_entry(float(v)) for v in range(60)]
        build = model[:]
        rng.shuffle(build)
        for e in build:
            order.insert(e, 0.0)
        for step in range(800):
            if rng.random() < 0.7 and len(model) >= 2:
                idx = rng.randrange(len(model) - 1)
                order.swap_adjacent(model[idx], model[idx + 1])
                model[idx], model[idx + 1] = model[idx + 1], model[idx]
            elif model:
                victim = rng.choice(model)
                order.delete(victim)
                model.remove(victim)
            if step % 100 == 0 and model:
                order._validate()
                assert order.entries() == model
                assert order.at_rank(0) is model[0]
                assert order.rank(model[-1]) == len(model) - 1
        order._validate()
        assert order.entries() == model
