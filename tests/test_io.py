"""Tests for JSON serialization of trajectories, updates, logs, MODs."""

import math

import pytest

from repro.geometry.intervals import Interval
from repro.geometry.vectors import Vector
from repro.io import (
    database_from_dict,
    database_to_dict,
    load_database,
    load_log,
    log_from_dict,
    log_to_dict,
    save_database,
    save_log,
    trajectory_from_dict,
    trajectory_to_dict,
    update_from_dict,
    update_to_dict,
)
from repro.mod.database import MovingObjectDatabase
from repro.mod.log import RecordingDatabase
from repro.mod.updates import ChangeDirection, New, Terminate
from repro.trajectory.builder import from_waypoints, linear_from, stationary
from repro.workloads.generator import UpdateStream, random_piecewise_mod


class TestTrajectoryRoundTrip:
    def test_multi_piece(self):
        traj = from_waypoints([(0, [0, 0]), (5, [5, 0]), (10, [5, 5])])
        clone = trajectory_from_dict(trajectory_to_dict(traj))
        assert clone == traj

    def test_unbounded_pieces(self):
        traj = stationary([1.0, 2.0])
        clone = trajectory_from_dict(trajectory_to_dict(traj))
        assert math.isinf(clone.domain.length)
        assert clone.position(100.0) == Vector.of(1.0, 2.0)

    def test_json_compatible(self):
        import json

        traj = linear_from(0.0, [1, 2], [3, 4])
        text = json.dumps(trajectory_to_dict(traj))
        assert trajectory_from_dict(json.loads(text)) == traj


class TestUpdateRoundTrip:
    @pytest.mark.parametrize(
        "update",
        [
            New("a", 1.0, Vector.of(1, 0), Vector.of(0, 0)),
            Terminate("b", 2.0),
            ChangeDirection("c", 3.0, Vector.of(0, -1)),
        ],
    )
    def test_round_trip(self, update):
        assert update_from_dict(update_to_dict(update)) == update

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            update_from_dict({"kind": "teleport"})


class TestLogRoundTrip:
    def test_round_trip(self):
        db = RecordingDatabase()
        db.create("x", 1.0, position=[0, 0], velocity=[1, 0])
        db.change_direction("x", 2.0, [0, 1])
        db.terminate("x", 3.0)
        clone = log_from_dict(log_to_dict(db.log))
        assert clone.updates == db.log.updates

    def test_file_round_trip(self, tmp_path):
        db = RecordingDatabase()
        db.create("x", 1.0, position=[0], velocity=[1])
        path = str(tmp_path / "log.json")
        save_log(db.log, path)
        assert load_log(path).updates == db.log.updates


class TestDatabaseRoundTrip:
    def test_live_and_terminated(self):
        db = MovingObjectDatabase()
        db.create("alive", 1.0, position=[0, 0], velocity=[1, 0])
        db.create("gone", 2.0, position=[5, 5], velocity=[0, 0])
        db.terminate("gone", 4.0)
        clone = database_from_dict(database_to_dict(db))
        assert set(clone.object_ids) == {"alive"}
        assert clone.is_terminated("gone")
        assert clone.last_update_time == db.last_update_time
        assert clone.position("alive", 10.0) == db.position("alive", 10.0)
        assert clone.position("gone", 3.0) == db.position("gone", 3.0)

    def test_piecewise_histories_survive(self):
        db = random_piecewise_mod(5, seed=1, end_time=30.0)
        clone = database_from_dict(database_to_dict(db))
        for oid in db.object_ids:
            for t in (5.0, 15.0, 25.0):
                assert clone.position(str(oid), t) == db.position(oid, t)

    def test_file_round_trip(self, tmp_path):
        db = MovingObjectDatabase()
        db.create("x", 1.0, position=[1, 2], velocity=[3, 4])
        path = str(tmp_path / "mod.json")
        save_database(db, path)
        clone = load_database(path)
        assert clone.position("x", 2.0) == db.position("x", 2.0)

    def test_queries_agree_after_round_trip(self):
        from repro.core.api import evaluate_knn

        db = RecordingDatabase()
        for i in range(5):
            db.create(
                f"o{i}", 0.1 * (i + 1), position=[float(i), 0.0], velocity=[0.5 - 0.2 * i, 0.0]
            )
        UpdateStream(db, seed=3, mean_gap=1.0).run(5)
        clone = database_from_dict(database_to_dict(db))
        interval = Interval(1.0, 10.0)
        original = evaluate_knn(db, [0.0, 0.0], interval, 2)
        restored = evaluate_knn(clone, [0.0, 0.0], interval, 2)
        assert {str(o) for o in original.objects} == restored.objects


class TestOidTypeFidelity:
    """JSON object keys are strings; the tagged oid codec must bring
    int, str, bool, float, and tuple oids back with their types."""

    @pytest.mark.parametrize(
        "oid",
        ["cab-7", "", 42, -3, 0, True, False, 2.5, ("fleet", 9), (1, (2, 3))],
    )
    def test_key_round_trip(self, oid):
        from repro.io import oid_from_key, oid_to_key

        key = oid_to_key(oid)
        assert isinstance(key, str)
        back = oid_from_key(key)
        assert back == oid and type(back) is type(oid)

    def test_legacy_untagged_key_reads_as_string(self):
        from repro.io import oid_from_key

        assert oid_from_key("plain-old-key") == "plain-old-key"

    def test_database_round_trip_preserves_oid_types(self):
        db = MovingObjectDatabase()
        db.create(7, 1.0, position=[0.0, 0.0], velocity=[1.0, 0.0])
        db.create("seven", 2.0, position=[1.0, 1.0], velocity=[0.0, 1.0])
        db.create(("fleet", 3), 3.0, position=[2.0, 2.0], velocity=[1.0, 1.0])
        db.create(9, 4.0, position=[5.0, 5.0], velocity=[0.0, 0.0])
        db.terminate(9, 5.0)  # terminated oids must round-trip too
        clone = database_from_dict(database_to_dict(db))
        assert set(clone.object_ids) == {7, "seven", ("fleet", 3)}
        assert clone.is_terminated(9)
        for oid in (7, "seven", ("fleet", 3)):
            assert clone.position(oid, 6.0) == db.position(oid, 6.0)

    def test_file_round_trip_preserves_oid_types(self, tmp_path):
        db = MovingObjectDatabase()
        db.create(1, 1.0, position=[0.0], velocity=[1.0])
        path = str(tmp_path / "mod.json")
        save_database(db, path)
        clone = load_database(path)
        assert set(clone.object_ids) == {1}
