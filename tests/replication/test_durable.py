"""DurableQueryServer: journaled serving, crash recovery, admission.

The differential classes are the Theorem 5 acceptance gate: a server
that is repeatedly crashed and rebuilt from its (checkpoint, WAL-tail)
pair must be answer-for-answer indistinguishable from the
uninterrupted in-process server and the naive baseline — and a WAL
whose tail was torn at an arbitrary byte offset must recover the
surviving prefix exactly.
"""

import pytest

from repro.gdist.base import GDistance
from repro.replication import (
    DurableQueryServer,
    NotDurableError,
    recover_server,
)
from repro.workloads.chaos import run_truncation_chaos
from repro.workloads.generator import random_linear_mod
from tests._oracle import (
    KNN,
    MULTIKNN,
    WITHIN,
    answers_equal,
    assert_probes_equal,
    generate_scenario,
    run_naive,
    run_recovered_server,
    run_server,
)

MODES = (KNN, WITHIN, MULTIKNN)
CLEAN_SEEDS = range(8)
TORN_SEEDS = range(12)


class TestRecoveryDifferential:
    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("seed", CLEAN_SEEDS)
    def test_crashed_and_recovered_matches_naive_and_server(
        self, seed, mode
    ):
        sc = generate_scenario(seed)
        naive_final, naive_probes = run_naive(sc, mode)
        server_final, server_probes = run_server(sc, mode)
        rec_final, rec_probes = run_recovered_server(sc, mode)
        label = f"seed={seed} mode={mode}"
        assert answers_equal(rec_final, naive_final), f"{label}: vs naive"
        assert answers_equal(rec_final, server_final), f"{label}: vs server"
        assert_probes_equal(rec_probes, naive_probes, f"{label} vs naive")
        assert_probes_equal(rec_probes, server_probes, f"{label} vs server")

    @pytest.mark.parametrize("mode", MODES)
    def test_recovery_composes_with_shards(self, mode):
        sc = generate_scenario(5)
        naive_final, naive_probes = run_naive(sc, mode)
        rec_final, rec_probes = run_recovered_server(sc, mode, shards=2)
        assert answers_equal(rec_final, naive_final)
        assert_probes_equal(rec_probes, naive_probes, f"shards=2 {mode}")

    @pytest.mark.parametrize("sync", ("none", "flush", "fsync"))
    def test_recovery_holds_under_every_sync_policy(self, sync):
        # In-process "crashes" leave the handle intact, so even
        # sync="none" recovers the full journal; the point is that the
        # policy knob composes with recovery, torn tails are exercised
        # by the truncation chaos below.
        sc = generate_scenario(3)
        naive_final, _ = run_naive(sc, KNN)
        rec_final, _ = run_recovered_server(sc, KNN, sync=sync)
        assert answers_equal(rec_final, naive_final)


class TestTornTailRecovery:
    @pytest.mark.parametrize("seed", TORN_SEEDS)
    def test_truncated_wal_recovers_surviving_prefix(self, seed, tmp_path):
        report = run_truncation_chaos(seed, directory=str(tmp_path))
        assert report.ok, (
            f"seed={seed} cut={report.cut_bytes}B: {report.mismatches}"
        )

class TestDurabilityAdmission:
    def test_opaque_gdistance_is_refused_before_state_changes(self):
        db = random_linear_mod(6, seed=11, extent=20.0, speed=3.0)
        server = DurableQueryServer(db)

        class Opaque(GDistance):
            def __call__(self, trajectory):
                raise NotImplementedError

        before = server.journal.seq
        with pytest.raises(NotDurableError):
            server.register_knn(Opaque(), k=1)
        assert server.journal.seq == before, "refusal was journaled"
        assert list(server.sessions()) == [], "refusal leaked a session"
        server.shutdown()

    def test_durable_registration_is_journaled(self):
        db = random_linear_mod(6, seed=11, extent=20.0, speed=3.0)
        server = DurableQueryServer(db)
        server.register_knn([0.0, 0.0], k=1)
        assert server.journal.seq == 1
        server.shutdown()


class TestCheckpointing:
    def test_interval_bounds_the_replay_tail(self, tmp_path):
        db = random_linear_mod(6, seed=3, extent=20.0, speed=3.0)
        server = DurableQueryServer(
            db, directory=str(tmp_path), checkpoint_interval=4
        )
        server.register_knn([0.0, 0.0], k=2)
        from repro.workloads.generator import UpdateStream

        stream = UpdateStream(db, seed=3, extent=20.0, speed=3.0)
        for _ in range(20):
            stream.step()
        assert server.journal.tail_length < 4 + 2, (
            "periodic checkpoints should keep the tail near the interval"
        )
        server.shutdown()

    def test_recovered_tail_counts_replayed_records(self, tmp_path):
        db = random_linear_mod(6, seed=5, extent=20.0, speed=3.0)
        server = DurableQueryServer(
            db, directory=str(tmp_path), checkpoint_interval=None
        )
        server.checkpoint()
        server.register_knn([0.0, 0.0], k=1)
        from repro.workloads.generator import UpdateStream

        stream = UpdateStream(db, seed=5, extent=20.0, speed=3.0)
        for _ in range(6):
            stream.step()
        expected_tail = server.journal.seq - server.journal.snapshot_seq
        recovered = recover_server(str(tmp_path))
        assert recovered.recovered_tail == expected_tail == 7
        recovered.shutdown()

    def test_closed_answer_survives_recovery(self, tmp_path):
        db = random_linear_mod(6, seed=8, extent=20.0, speed=3.0)
        server = DurableQueryServer(db, directory=str(tmp_path))
        server.checkpoint()
        session = server.register_knn([0.0, 0.0], k=2)
        from repro.workloads.generator import UpdateStream

        stream = UpdateStream(db, seed=8, extent=20.0, speed=3.0)
        for _ in range(4):
            stream.step()
        final = session.close(at=db.last_update_time)
        recovered = recover_server(str(tmp_path))
        replayed = recovered.session(session.session_id)
        assert replayed.state == "closed"
        assert final.approx_equals(replayed.answer, atol=1e-6)
        recovered.shutdown()
        server.shutdown()
