"""Warm-standby replication: streaming, resume, promotion.

Each test runs a real durable primary behind a TCP frontend and a
:class:`~repro.replication.StandbyReplica` attached over loopback.
"""

import time

import pytest

from repro.io import database_to_dict
from repro.net import (
    NetConfig,
    NotPrimaryError,
    QueryNetServer,
    RemoteQueryClient,
)
from repro.replication import DurableQueryServer, StandbyReplica
from repro.workloads.generator import UpdateStream, random_linear_mod


def _wait(predicate, timeout=5.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


@pytest.fixture
def primary():
    db = random_linear_mod(6, seed=13, extent=20.0, speed=3.0)
    server = DurableQueryServer(db, checkpoint_interval=8)
    net = QueryNetServer(
        server, NetConfig(heartbeat_interval=0.05)
    ).start(port=0)
    try:
        yield db, server, net
    finally:
        if not net._closed:
            net.close()


class TestStreaming:
    def test_acked_writes_are_already_on_the_standby(self, primary):
        db, server, net = primary
        with StandbyReplica(net.address, poll_interval=0.01).start() as sb:
            stream = UpdateStream(db, seed=13, extent=20.0, speed=3.0)
            for _ in range(10):
                stream.step()
                # Sync replication: db.apply's return IS the ack
                # barrier, so the watermark is current immediately.
                assert sb.applied_seq == server.journal.seq
            assert database_to_dict(sb.server.db) == database_to_dict(db)

    def test_standby_re_journals_in_seq_lockstep(self, primary):
        db, server, net = primary
        with StandbyReplica(net.address, poll_interval=0.01).start() as sb:
            stream = UpdateStream(db, seed=13, extent=20.0, speed=3.0)
            for _ in range(6):
                stream.step()
            assert sb.server.journal.seq == server.journal.seq

    def test_sessions_replicate_with_their_answers(self, primary):
        db, server, net = primary
        client = RemoteQueryClient(*net.address)
        with StandbyReplica(net.address, poll_interval=0.01).start() as sb:
            session = client.open_knn([0.0, 0.0], k=2)
            stream = UpdateStream(db, seed=13, extent=20.0, speed=3.0)
            for _ in range(6):
                stream.step()
            final = session.close(at=db.last_update_time)
            mirror = sb.server.session(session.session_id)
            assert mirror.state == "closed"
            assert final.approx_equals(mirror.answer, atol=1e-6)
        client.close()


class TestStandbyGate:
    def test_session_verbs_are_refused_until_promotion(self, primary):
        db, server, net = primary
        with StandbyReplica(net.address, poll_interval=0.01).start() as sb:
            client = RemoteQueryClient(*sb.address, retries=0)
            assert client.ping() == pytest.approx(db.last_update_time)
            with pytest.raises(NotPrimaryError):
                client.open_knn([0.0, 0.0], k=1)
            client.close()


class TestLinkLoss:
    def test_cut_link_resumes_from_watermark(self, primary):
        db, server, net = primary
        with StandbyReplica(net.address, poll_interval=0.01).start() as sb:
            stream = UpdateStream(db, seed=13, extent=20.0, speed=3.0)
            for _ in range(4):
                stream.step()
            assert sb.cut_link()
            for _ in range(4):
                stream.step()
            assert _wait(lambda: sb.applied_seq == server.journal.seq)
            assert sb.resync_count == 0, "resume should not need a snapshot"
            assert not sb.primary_lost and not sb.detached
            assert database_to_dict(sb.server.db) == database_to_dict(db)

    def test_retain_floor_follows_the_slowest_replica(self, primary):
        db, server, net = primary
        with StandbyReplica(net.address, poll_interval=0.01).start() as sb:
            stream = UpdateStream(db, seed=13, extent=20.0, speed=3.0)
            for _ in range(20):
                stream.step()
            # Checkpoints ran (interval 8), yet the suffix past the
            # standby's ack watermark is still resumable.
            assert server.journal.records_since(sb.applied_seq) == []


class TestPrimaryLoss:
    def test_graceful_drain_marks_primary_lost_without_promoting(
        self, primary
    ):
        db, server, net = primary
        with StandbyReplica(net.address, poll_interval=0.01).start() as sb:
            net.close()
            assert _wait(lambda: sb.primary_lost)
            assert not sb.is_promoted

    def test_kill_with_auto_promote_flips_the_standby(self, primary):
        db, server, net = primary
        sb = StandbyReplica(
            net.address, poll_interval=0.01, auto_promote=True
        ).start()
        try:
            stream = UpdateStream(db, seed=13, extent=20.0, speed=3.0)
            for _ in range(4):
                stream.step()
            net.kill()
            assert _wait(lambda: sb.is_promoted)
            assert sb.primary_lost
            # The promoted frontend accepts session verbs now.
            client = RemoteQueryClient(*sb.address)
            session = client.open_knn([0.0, 0.0], k=1)
            session.close(at=sb.server.db.last_update_time)
            client.close()
        finally:
            sb.close()

    def test_explicit_promote_adopts_replicated_sessions(self, primary):
        db, server, net = primary
        sb = StandbyReplica(net.address, poll_interval=0.01).start()
        client = RemoteQueryClient(
            endpoints=[net.address, sb.address], retries=5, backoff=0.02
        )
        try:
            session = client.open_knn([0.0, 0.0], k=2)
            stream = UpdateStream(db, seed=13, extent=20.0, speed=3.0)
            for _ in range(5):
                stream.step()
            net.kill()
            assert _wait(lambda: sb.primary_lost)
            sb.promote()
            assert sb.is_promoted
            # The same session id, closed through the promoted replica.
            final = session.close(at=sb.server.db.last_update_time)
            assert client.failovers >= 1
            assert final is not None
        finally:
            client.close()
            sb.close()
