"""Client-side failover: endpoint lists, jittered backoff, watchdog.

The server side of failover (standby promotion) lives in
``test_standby.py``; these tests pin the client mechanics down in
isolation — deterministic jitter, endpoint rotation, heartbeat-stall
detection, and push re-subscription across reconnects.
"""

import socket
import time

import pytest

from repro.core.api import serve, serve_tcp
from repro.geometry.vectors import Vector
from repro.mod.updates import New
from repro.net import (
    ConnectionLostError,
    NetConfig,
    QueryNetServer,
    RemoteQueryClient,
)
from repro.workloads.generator import random_linear_mod


def _db(seed=7):
    return random_linear_mod(6, seed=seed, extent=20.0, speed=3.0)


def _dead_endpoint():
    """A (host, port) that refuses connections."""
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    address = sock.getsockname()[:2]
    sock.close()
    return address


class TestConstruction:
    def test_host_or_endpoints_is_required(self):
        with pytest.raises(ValueError):
            RemoteQueryClient()

    def test_jitter_must_be_a_fraction(self):
        with pytest.raises(ValueError):
            RemoteQueryClient("127.0.0.1", 1, jitter=1.0)
        with pytest.raises(ValueError):
            RemoteQueryClient("127.0.0.1", 1, jitter=-0.1)


class TestJitter:
    def test_seeded_jitter_is_deterministic(self):
        a = RemoteQueryClient("127.0.0.1", 1, seed=42)
        b = RemoteQueryClient("127.0.0.1", 1, seed=42)
        assert [a._sleep_for(0.1) for _ in range(8)] == [
            b._sleep_for(0.1) for _ in range(8)
        ]

    def test_jitter_only_shrinks_the_sleep(self):
        client = RemoteQueryClient("127.0.0.1", 1, jitter=0.5, seed=1)
        for _ in range(50):
            sleep = client._sleep_for(0.2)
            assert 0.1 <= sleep <= 0.2

    def test_zero_jitter_sleeps_the_full_backoff(self):
        client = RemoteQueryClient("127.0.0.1", 1, jitter=0.0, seed=1)
        assert client._sleep_for(0.2) == 0.2


class TestEndpointRotation:
    def test_dead_primary_fails_over_to_the_live_endpoint(self):
        db = _db()
        with serve_tcp(db) as net:
            client = RemoteQueryClient(
                endpoints=[_dead_endpoint(), net.address],
                retries=3,
                backoff=0.01,
            )
            assert client.ping() == pytest.approx(db.last_update_time)
            assert client.failovers >= 1
            client.close()

    def test_single_endpoint_never_rotates(self):
        db = _db()
        with serve_tcp(db) as net:
            client = RemoteQueryClient(*net.address)
            client.ping()
            assert client.failovers == 0
            client.close()

    def test_all_endpoints_dead_raises_connection_lost(self):
        client = RemoteQueryClient(
            endpoints=[_dead_endpoint(), _dead_endpoint()],
            retries=2,
            backoff=0.01,
        )
        with pytest.raises(ConnectionLostError):
            client.ping()
        client.close()


class TestWatchdog:
    def test_stalled_push_stream_raises_typed_error(self):
        db = _db()
        server = serve(db)
        net = QueryNetServer(
            server, NetConfig(heartbeat_interval=0.05)
        ).start(port=0)
        client = RemoteQueryClient(
            *net.address,
            retries=1,
            backoff=0.01,
            heartbeat_timeout=0.3,
        )
        session = client.open_knn([0.0, 0.0], k=1)
        session.subscribe()
        # Heartbeats keep the stream alive while the server is up.
        time.sleep(0.4)
        assert client.poll_events(0.1) >= 0
        net.kill()
        deadline = time.monotonic() + 5.0
        with pytest.raises(ConnectionLostError):
            while time.monotonic() < deadline:
                client.poll_events(0.05)
        client.close()

    def test_watchdog_is_inert_without_subscriptions(self):
        db = _db()
        server = serve(db)
        net = QueryNetServer(server, NetConfig()).start(port=0)
        client = RemoteQueryClient(
            *net.address, heartbeat_timeout=0.05
        )
        client.ping()
        time.sleep(0.2)
        # Silence past the deadline, but nothing subscribed: no alarm.
        client.poll_events(0.05)
        client.close()
        net.close()


class TestResubscription:
    def test_reconnect_rearms_push_subscriptions(self):
        db = _db()
        with serve_tcp(db) as net:
            client = RemoteQueryClient(*net.address, retries=2, backoff=0.01)
            session = client.open_knn([0.0, 0.0], k=1)
            session.subscribe()
            # Sever the transport under the client; the next request
            # reconnects and must re-subscribe before anything else.
            client._drop_socket()
            client.ping()
            assert session.session_id in client._subscribed
            db.apply(
                New(
                    "nb1",
                    1.0,
                    position=Vector.of(0.0, 0.0),
                    velocity=Vector.of(0.0, 0.0),
                )
            )
            deadline = time.monotonic() + 2.0
            changed = []
            while time.monotonic() < deadline and not changed:
                client.poll_events(0.1)
                changed = [
                    e
                    for e in client.events_for(session.session_id)
                    if e.get("event") == "answer_change"
                ]
            assert changed, "push stream did not survive the reconnect"
            from repro.net import members_from_wire

            assert "nb1" in members_from_wire(changed[-1]["members"])
            client.close()
