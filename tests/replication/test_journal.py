"""Unit behavior of the server journal (:class:`ServerWal`)."""

import json
import os

import pytest

from repro.replication import (
    SERVER_WAL_FILENAME,
    NotDurableError,
    ServerWal,
    load_server_state,
)


def _fill(journal, count, op="update", **fields):
    return [
        journal.append(op, i=i, **fields) for i in range(count)
    ]


class TestAppend:
    def test_seq_is_stamped_monotonically_from_one(self, tmp_path):
        journal = ServerWal(str(tmp_path))
        records = _fill(journal, 3)
        assert [r["seq"] for r in records] == [1, 2, 3]
        assert journal.seq == 3

    def test_unknown_op_is_rejected(self, tmp_path):
        journal = ServerWal(str(tmp_path))
        with pytest.raises(ValueError):
            journal.append("frobnicate")
        assert journal.seq == 0

    def test_append_after_close_is_rejected(self, tmp_path):
        journal = ServerWal(str(tmp_path))
        journal.close()
        with pytest.raises(RuntimeError):
            journal.append("update")

    def test_listeners_see_every_record(self, tmp_path):
        journal = ServerWal(str(tmp_path))
        seen = []
        journal.subscribe(seen.append)
        _fill(journal, 2)
        assert [r["seq"] for r in seen] == [1, 2]
        journal.unsubscribe(seen.append)
        _fill(journal, 1)
        assert len(seen) == 2


class TestRoundTrip:
    def test_snapshot_plus_tail_round_trips(self, tmp_path):
        journal = ServerWal(str(tmp_path))
        _fill(journal, 5)
        journal.write_snapshot({"seq": 3, "db": {}})
        journal.close()
        snapshot, tail = load_server_state(str(tmp_path))
        assert snapshot["seq"] == 3
        assert [r["seq"] for r in tail] == [4, 5]

    def test_no_checkpoint_means_full_tail(self, tmp_path):
        journal = ServerWal(str(tmp_path))
        _fill(journal, 4)
        journal.close()
        snapshot, tail = load_server_state(str(tmp_path))
        assert snapshot is None
        assert [r["seq"] for r in tail] == [1, 2, 3, 4]

    def test_torn_tail_is_skipped_and_repaired(self, tmp_path):
        journal = ServerWal(str(tmp_path))
        _fill(journal, 4)
        journal.close()
        wal_path = os.path.join(str(tmp_path), SERVER_WAL_FILENAME)
        size = os.path.getsize(wal_path)
        with open(wal_path, "ab") as handle:
            handle.truncate(size - 7)  # tear into the last record
        snapshot, tail = load_server_state(str(tmp_path), repair=True)
        assert [r["seq"] for r in tail] == [1, 2, 3]
        # The file now ends on a clean line again.
        with open(wal_path, "rb") as handle:
            assert handle.read().endswith(b"}\n")

    def test_start_seq_resumes_numbering(self, tmp_path):
        journal = ServerWal(str(tmp_path), start_seq=7)
        record = journal.append("update", i=0)
        assert record["seq"] == 8


class TestRetention:
    def test_records_since_returns_strict_suffix(self, tmp_path):
        journal = ServerWal(str(tmp_path))
        _fill(journal, 4)
        assert [r["seq"] for r in journal.records_since(2)] == [3, 4]
        assert journal.records_since(4) == []

    def test_checkpoint_trims_covered_records(self, tmp_path):
        journal = ServerWal(str(tmp_path))
        _fill(journal, 5)
        journal.write_snapshot({"seq": 4})
        assert journal.records_since(3) is None  # evicted
        assert [r["seq"] for r in journal.records_since(4)] == [5]

    def test_retain_floor_pins_records_past_checkpoint(self, tmp_path):
        journal = ServerWal(str(tmp_path))
        _fill(journal, 5)
        journal.set_retain_floor(2)  # a replica has streamed through 2
        journal.write_snapshot({"seq": 4})
        # Everything past the slowest replica survives the trim.
        assert [r["seq"] for r in journal.records_since(2)] == [3, 4, 5]

    def test_clearing_the_floor_releases_history(self, tmp_path):
        journal = ServerWal(str(tmp_path))
        _fill(journal, 5)
        journal.set_retain_floor(2)
        journal.write_snapshot({"seq": 4})
        journal.set_retain_floor(None)
        journal.write_snapshot({"seq": 5})
        assert journal.records_since(5) == []
        assert journal.records_since(4) is None


class TestMemoryOnly:
    def test_wal_path_requires_a_directory(self):
        journal = ServerWal(None)
        with pytest.raises(NotDurableError):
            journal.wal_path

    def test_memory_journal_still_streams_and_trims(self):
        journal = ServerWal(None)
        _fill(journal, 3)
        assert [r["seq"] for r in journal.records_since(0)] == [1, 2, 3]
        journal.write_snapshot({"seq": 3})
        assert journal.records_since(3) == []


class TestDurabilityPolicy:
    def test_flush_policy_is_readable_before_close(self, tmp_path):
        journal = ServerWal(str(tmp_path), sync="flush")
        _fill(journal, 3)
        wal_path = journal.wal_path
        with open(wal_path, "r", encoding="utf-8") as handle:
            lines = [json.loads(line) for line in handle if line.strip()]
        assert [r["seq"] for r in lines] == [1, 2, 3]

    def test_none_policy_may_buffer_until_close(self, tmp_path):
        journal = ServerWal(str(tmp_path), sync="none")
        _fill(journal, 3)
        journal.close()
        snapshot, tail = load_server_state(str(tmp_path))
        assert [r["seq"] for r in tail] == [1, 2, 3]
