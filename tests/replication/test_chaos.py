"""Chaos acceptance: ≥40 seeded fault scenarios, all three-way checked.

Every scenario drives the full durable serving stack (durable primary
+ TCP frontend + warm standby + failover client) or its recovery path
through one seeded fault and verifies the surviving answers against
an uninterrupted in-process mirror *and* the naive baseline — the
differential harness lives in :mod:`repro.workloads.chaos`.

Families (seeds disjoint from the torn-tail sweep in
``test_durable.py``):

- 16 × primary kill + auto-promote + client-transparent failover;
- 8  × replication frame loss (link cuts) stacked under the kill;
- 16 × torn server-WAL tail at a seeded byte offset.
"""

import pytest

from repro.workloads.chaos import run_failover_chaos, run_truncation_chaos

KILL_SEEDS = range(16)
FRAMEDROP_SEEDS = range(16, 24)
TORN_SEEDS = range(100, 116)


class TestKillFailover:
    @pytest.mark.parametrize("seed", KILL_SEEDS)
    def test_killed_primary_is_transparent_to_the_client(
        self, seed, tmp_path
    ):
        report = run_failover_chaos(seed, directory=str(tmp_path))
        assert report.ok, f"seed={seed}: {report.mismatches}"
        assert report.failovers >= 1, "client never failed over"
        assert report.probes_after_kill >= 1 or report.probes == 0, (
            "scenario exercised no post-failover probes"
        )


class TestReplicationFrameLoss:
    @pytest.mark.parametrize("seed", FRAMEDROP_SEEDS)
    def test_link_cuts_then_kill_change_nothing(self, seed, tmp_path):
        report = run_failover_chaos(
            seed, drop_link_every=1, directory=str(tmp_path)
        )
        assert report.ok, f"seed={seed}: {report.mismatches}"
        assert report.link_cuts >= 1, "no link cut landed before the kill"


class TestTornTail:
    @pytest.mark.parametrize("seed", TORN_SEEDS)
    def test_torn_wal_recovers_the_surviving_prefix(self, seed, tmp_path):
        report = run_truncation_chaos(seed, directory=str(tmp_path))
        assert report.ok, (
            f"seed={seed} cut={report.cut_bytes}B: {report.mismatches}"
        )
