"""Unit tests for the g-distance curve store."""

import pytest

from repro.cache import CurveStore
from repro.gdist.euclidean import SquaredEuclideanDistance
from repro.geometry.vectors import Vector
from repro.mod.database import MovingObjectDatabase
from repro.mod.updates import ChangeDirection, New
from repro.obs.instrument import Instrumentation


def make_db(n=4):
    db = MovingObjectDatabase(initial_time=0.0)
    for i in range(n):
        db.apply(
            New(
                f"o{i}",
                0.001 * (i + 1),
                velocity=Vector.of(1.0 + i, -0.5 * i),
                position=Vector.of(float(i), float(-i)),
            )
        )
    return db


class TestHitsAndMisses:
    def test_repeat_lookup_hits(self):
        db = make_db()
        gd = SquaredEuclideanDistance([0.0, 0.0])
        store = CurveStore()
        first = store.curve(gd, "o0", db.trajectory("o0"))
        second = store.curve(gd, "o0", db.trajectory("o0"))
        assert first is second
        assert store.hits == 1 and store.misses == 1
        assert store.hit_rate == 0.5

    def test_equal_but_distinct_gdistances_share_entries(self):
        db = make_db()
        store = CurveStore()
        store.curve(SquaredEuclideanDistance([1.0, 2.0]), "o1", db.trajectory("o1"))
        store.curve(SquaredEuclideanDistance([1.0, 2.0]), "o1", db.trajectory("o1"))
        assert store.hits == 1 and len(store) == 1

    def test_distinct_queries_do_not_collide(self):
        db = make_db()
        store = CurveStore()
        a = store.curve(SquaredEuclideanDistance([0.0, 0.0]), "o1", db.trajectory("o1"))
        b = store.curve(SquaredEuclideanDistance([9.0, 9.0]), "o1", db.trajectory("o1"))
        assert store.misses == 2
        assert a(1.0) != b(1.0)

    def test_curve_value_matches_direct_construction(self):
        db = make_db()
        gd = SquaredEuclideanDistance([3.0, -2.0])
        store = CurveStore()
        cached = store.curve(gd, "o2", db.trajectory("o2"))
        direct = gd(db.trajectory("o2"))
        for t in (0.1, 0.7, 2.5):
            assert cached(t) == pytest.approx(direct(t))


class TestInvalidation:
    def test_update_invalidates_only_touched_object(self):
        db = make_db()
        gd = SquaredEuclideanDistance([0.0, 0.0])
        store = CurveStore()
        for oid in db.object_ids:
            store.curve(gd, oid, db.trajectory(oid))
        db.apply(ChangeDirection("o1", 1.0, Vector.of(0.0, 0.0)))
        # Identity validation: the replaced trajectory misses, the
        # untouched ones still hit.
        store.curve(gd, "o1", db.trajectory("o1"))
        assert store.misses == len(db.object_ids) + 1
        store.curve(gd, "o0", db.trajectory("o0"))
        assert store.hits == 1

    def test_stale_entry_is_replaced_not_duplicated(self):
        db = make_db()
        gd = SquaredEuclideanDistance([0.0, 0.0])
        store = CurveStore()
        store.curve(gd, "o1", db.trajectory("o1"))
        db.apply(ChangeDirection("o1", 1.0, Vector.of(2.0, 2.0)))
        store.curve(gd, "o1", db.trajectory("o1"))
        assert len(store) == 1

    def test_explicit_invalidate_drops_all_curves_of_object(self):
        db = make_db()
        store = CurveStore()
        store.curve(SquaredEuclideanDistance([0.0, 0.0]), "o1", db.trajectory("o1"))
        store.curve(SquaredEuclideanDistance([5.0, 5.0]), "o1", db.trajectory("o1"))
        store.curve(SquaredEuclideanDistance([0.0, 0.0]), "o2", db.trajectory("o2"))
        assert store.invalidate("o1") == 2
        assert len(store) == 1
        assert store.invalidate("missing") == 0


class TestEviction:
    def test_lru_eviction_respects_budget(self):
        db = make_db(8)
        gd = SquaredEuclideanDistance([0.0, 0.0])
        one = CurveStore()
        one.curve(gd, "o0", db.trajectory("o0"))
        budget = one.nbytes * 3 + 1
        store = CurveStore(max_bytes=budget)
        for oid in db.object_ids:
            store.curve(gd, oid, db.trajectory(oid))
        assert store.nbytes <= budget
        assert store.evictions > 0
        # Most recent entries survive; the oldest were evicted.
        store.curve(gd, "o7", db.trajectory("o7"))
        assert store.hits == 1
        store.curve(gd, "o0", db.trajectory("o0"))
        assert store.misses == len(db.object_ids) + 1

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError):
            CurveStore(max_bytes=0)


class TestMetrics:
    def test_counters_and_gauges_export(self):
        db = make_db()
        obs = Instrumentation()
        gd = SquaredEuclideanDistance([0.0, 0.0])
        store = CurveStore(observe=obs)
        store.curve(gd, "o0", db.trajectory("o0"))
        store.curve(gd, "o0", db.trajectory("o0"))
        snap = obs.snapshot()
        assert snap["cache_curve_hits_total"] == 1
        assert snap["cache_curve_misses_total"] == 1
        assert snap["cache_curve_entries"] == 1
        assert snap["cache_curve_bytes"] == store.nbytes
