"""Differential tests: cached evaluation must be invisible.

Each seeded oracle scenario is driven through the naive baseline and
through ``evaluate_*`` with one shared :class:`QueryCache`, issuing
repeated and overlapping interval queries *between* stream updates so
the cache serves exact hits, extension hits, and post-invalidation
recomputations — and every answer is checked against an uncached
evaluation of the same window.
"""

import pytest

from repro.cache import QueryCache
from repro.core.api import evaluate_knn, evaluate_multiknn, evaluate_within

from tests._oracle import (
    ANSWER_ATOL,
    KNN,
    MULTIKNN,
    WITHIN,
    answers_equal,
    generate_scenario,
    run_naive,
)

SEEDS = range(12)


def cached_eval(mode, db, sc, interval, cache):
    gd = sc.gdistance()
    if mode == KNN:
        return evaluate_knn(db, gd, interval, k=sc.k, cache=cache)
    if mode == WITHIN:
        return evaluate_within(db, gd, interval, distance=sc.threshold, cache=cache)
    return evaluate_multiknn(db, gd, interval, ks=sc.ks, cache=cache)


def uncached_eval(mode, db, sc, interval):
    return cached_eval(mode, db, sc, interval, None)


@pytest.mark.parametrize("mode", [KNN, WITHIN, MULTIKNN])
@pytest.mark.parametrize("seed", SEEDS)
def test_cached_final_answer_matches_naive(mode, seed):
    from repro.geometry.intervals import Interval

    sc = generate_scenario(seed)
    expected, _ = run_naive(sc, mode)
    db = sc.build_db()
    cache = QueryCache()
    for update in sc.stream:
        db.apply(update)
    window = Interval(sc.start, sc.horizon)
    cold = cached_eval(mode, db, sc, window, cache)
    warm = cached_eval(mode, db, sc, window, cache)
    assert answers_equal(cold, expected), f"{mode} seed {seed}: cold"
    assert answers_equal(warm, expected), f"{mode} seed {seed}: warm repeat"
    assert cache.answers.hits >= 1


@pytest.mark.parametrize("mode", [KNN, WITHIN])
@pytest.mark.parametrize("seed", SEEDS)
def test_mid_stream_queries_with_invalidation(mode, seed):
    """Interleave queries with updates: every cached answer must match
    an uncached evaluation over the same window on the same state."""
    from repro.geometry.intervals import Interval

    sc = generate_scenario(seed)
    db = sc.build_db()
    cache = QueryCache()
    lo = sc.start
    for i, update in enumerate(sc.stream):
        db.apply(update)
        hi = update.time
        if hi <= lo:
            continue
        window = Interval(lo, hi)
        got = cached_eval(mode, db, sc, window, cache)
        want = uncached_eval(mode, db, sc, window)
        assert answers_equal(got, want), f"{mode} seed {seed} step {i}: full"
        # A strictly shorter overlapping window: exact-hit path.
        mid = lo + 0.5 * (hi - lo)
        got_sub = cached_eval(mode, db, sc, Interval(lo, mid), cache)
        want_sub = uncached_eval(mode, db, sc, Interval(lo, mid))
        assert answers_equal(got_sub, want_sub), (
            f"{mode} seed {seed} step {i}: sub-interval"
        )
    assert cache.answers.hits + cache.answers.misses > 0


@pytest.mark.parametrize("seed", SEEDS)
def test_extension_across_growing_horizons(seed):
    """Monotonically growing query windows on a static db: every query
    after the first is an extension of the same continuation engine."""
    from repro.geometry.intervals import Interval

    sc = generate_scenario(seed)
    db = sc.build_db()
    cache = QueryCache()
    span = sc.horizon - sc.start
    fractions = (0.25, 0.5, 0.75, 1.0)
    for frac in fractions:
        window = Interval(sc.start, sc.start + frac * span)
        got = cached_eval(KNN, db, sc, window, cache)
        want = uncached_eval(KNN, db, sc, window)
        assert answers_equal(got, want), f"seed {seed} frac {frac}"
    # One miss (the first window), extensions after that.
    assert cache.answers.misses == 1
    assert cache.answers.hits == len(fractions) - 1


@pytest.mark.parametrize("seed", SEEDS)
def test_sharded_cached_matches_naive(seed):
    from tests._oracle import run_naive

    from repro.geometry.intervals import Interval

    sc = generate_scenario(seed)
    expected, _ = run_naive(sc, KNN)
    db = sc.build_db()
    for update in sc.stream:
        db.apply(update)
    cache = QueryCache()
    window = Interval(sc.start, sc.horizon)
    got = evaluate_knn(
        db, sc.gdistance(), window, k=sc.k, shards=3, cache=cache
    )
    assert answers_equal(got, expected)
    # The stored (engineless) answer serves the repeat without shards.
    again = evaluate_knn(db, sc.gdistance(), window, k=sc.k, cache=cache)
    assert answers_equal(again, expected)
    assert cache.answers.hits >= 1
