"""Unit tests for the answer cache: hits, extension, invalidation."""

import pytest

from repro.cache import AnswerCache, QueryCache, knn_fingerprint
from repro.cache.answer_cache import clip_payload, restrict_payload
from repro.core.api import evaluate_knn, _as_gdistance
from repro.gdist.euclidean import SquaredEuclideanDistance
from repro.geometry.intervals import Interval, IntervalSet
from repro.geometry.vectors import Vector
from repro.mod.database import MovingObjectDatabase
from repro.mod.updates import ChangeDirection, New
from repro.obs.instrument import Instrumentation
from repro.query.answers import SnapshotAnswer
from repro.sweep.engine import SweepEngine
from repro.sweep.knn import ContinuousKNN


def make_db(n=6):
    db = MovingObjectDatabase(initial_time=0.0)
    for i in range(n):
        db.apply(
            New(
                f"o{i}",
                0.001 * (i + 1),
                velocity=Vector.of(1.0 + 0.3 * i, -0.5 * i),
                position=Vector.of(float(2 * i), float(-i)),
            )
        )
    return db


def answer(memberships, lo, hi):
    return SnapshotAnswer(
        {oid: IntervalSet([Interval(a, b)]) for oid, (a, b) in memberships.items()},
        Interval(lo, hi),
    )


def continuation(db, gd, k, lo, hi):
    """A live engine + view swept over [lo, hi] with an open horizon."""
    engine = SweepEngine(db, gd, Interval.at_least(lo))
    view = ContinuousKNN(engine, k)
    engine.advance_to(hi)
    return engine, view, view.partial_answer(hi)


class TestPayloadHelpers:
    def test_restrict_drops_objects_outside_window(self):
        payload = answer({"a": (0.0, 2.0), "b": (5.0, 8.0)}, 0.0, 10.0)
        out = restrict_payload(payload, Interval(0.0, 3.0))
        assert out.objects == {"a"}
        assert out.interval == Interval(0.0, 3.0)

    def test_restrict_handles_per_k_dicts(self):
        payload = {1: answer({"a": (0.0, 4.0)}, 0.0, 10.0)}
        out = restrict_payload(payload, Interval(1.0, 2.0))
        assert out[1].intervals_for("a").total_length == pytest.approx(1.0)

    def test_clip_never_inverts(self):
        payload = answer({"a": (0.0, 4.0)}, 0.0, 10.0)
        out = clip_payload(payload, 3.0, 1.0)
        assert out.interval == Interval(3.0, 3.0)


class TestExactHits:
    def test_contained_interval_hits(self):
        cache = AnswerCache()
        fp = ("knn", ("x",), 1)
        cache.put(fp, Interval(0.0, 10.0), answer({"a": (1.0, 9.0)}, 0.0, 10.0))
        got = cache.get(fp, Interval(2.0, 8.0))
        assert got is not None
        assert got.intervals_for("a").total_length == pytest.approx(6.0)
        assert cache.hits == 1 and cache.misses == 0

    def test_disjoint_interval_misses(self):
        cache = AnswerCache()
        fp = ("knn", ("x",), 1)
        cache.put(fp, Interval(0.0, 10.0), answer({}, 0.0, 10.0))
        assert cache.get(fp, Interval(10.5, 12.0)) is None
        assert cache.misses == 1

    def test_other_fingerprint_misses(self):
        cache = AnswerCache()
        cache.put(("knn", ("x",), 1), Interval(0.0, 10.0), answer({}, 0.0, 10.0))
        assert cache.get(("knn", ("y",), 1), Interval(1.0, 2.0)) is None

    def test_superseded_engineless_entry_is_replaced(self):
        cache = AnswerCache()
        fp = ("knn", ("x",), 1)
        cache.put(fp, Interval(2.0, 4.0), answer({}, 2.0, 4.0))
        cache.put(fp, Interval(0.0, 10.0), answer({}, 0.0, 10.0))
        assert cache.spans(fp) == [Interval(0.0, 10.0)]

    def test_per_query_span_cap(self):
        cache = AnswerCache(max_entries_per_query=2)
        fp = ("knn", ("x",), 1)
        for i in range(4):
            lo = 10.0 * i
            cache.put(fp, Interval(lo, lo + 1.0), answer({}, lo, lo + 1.0))
        assert len(cache.spans(fp)) == 2


class TestExtension:
    def test_extension_continues_the_sweep(self):
        db = make_db()
        gd = SquaredEuclideanDistance([0.0, 0.0])
        cache = AnswerCache()
        fp = knn_fingerprint(gd, 2)
        engine, view, payload = continuation(db, gd, 2, 0.01, 5.0)
        cache.put(fp, Interval(0.01, 5.0), payload, engine=engine, view=view)
        got = cache.get(fp, Interval(0.01, 12.0))
        assert got is not None
        cold = evaluate_knn(db, gd, k=2, interval=Interval(0.01, 12.0))
        assert got.approx_equals(cold, atol=1e-6)
        assert cache.hits == 1
        # The extended span now serves longer sub-intervals exactly.
        assert cache.spans(fp) == [Interval(0.01, 12.0)]
        again = cache.get(fp, Interval(3.0, 11.0))
        assert again.approx_equals(
            evaluate_knn(db, gd, k=2, interval=Interval(3.0, 11.0)), atol=1e-6
        )

    def test_engineless_entry_cannot_extend(self):
        cache = AnswerCache()
        fp = ("knn", ("x",), 1)
        cache.put(fp, Interval(0.0, 5.0), answer({}, 0.0, 5.0))
        assert cache.get(fp, Interval(0.0, 9.0)) is None

    def test_engine_requires_view(self):
        cache = AnswerCache()
        with pytest.raises(ValueError):
            cache.put(
                ("knn", ("x",), 1),
                Interval(0.0, 1.0),
                answer({}, 0.0, 1.0),
                engine=object(),
            )

    def test_pending_update_replayed_before_extension(self):
        db = make_db()
        gd = SquaredEuclideanDistance([0.0, 0.0])
        cache = AnswerCache()
        fp = knn_fingerprint(gd, 2)
        engine, view, payload = continuation(db, gd, 2, 0.01, 5.0)
        cache.put(fp, Interval(0.01, 5.0), payload, engine=engine, view=view)
        # Update beyond the cached span: the entry buffers it.
        update = ChangeDirection("o0", 7.0, Vector.of(-3.0, 1.0))
        db.apply(update)
        cache.on_update(update)
        assert cache.spans(fp) == [Interval(0.01, 5.0)]
        got = cache.get(fp, Interval(0.01, 12.0))
        cold = evaluate_knn(db, gd, k=2, interval=Interval(0.01, 12.0))
        assert got.approx_equals(cold, atol=1e-6)
        assert cache.replayed_updates == 1


class TestInvalidation:
    def test_update_preserves_entries_ending_before_it(self):
        cache = AnswerCache()
        fp = ("knn", ("x",), 1)
        cache.put(fp, Interval(0.0, 5.0), answer({"a": (0.0, 5.0)}, 0.0, 5.0))
        cache.on_update(ChangeDirection("a", 6.0, Vector.of(0.0, 0.0)))
        assert cache.spans(fp) == [Interval(0.0, 5.0)]
        assert cache.invalidations == 0

    def test_update_clips_straddling_entries(self):
        cache = AnswerCache()
        fp = ("knn", ("x",), 1)
        cache.put(fp, Interval(0.0, 10.0), answer({"a": (1.0, 9.0)}, 0.0, 10.0))
        cache.on_update(ChangeDirection("a", 4.0, Vector.of(0.0, 0.0)))
        assert cache.spans(fp) == [Interval(0.0, 4.0)]
        got = cache.get(fp, Interval(0.0, 4.0))
        assert got.intervals_for("a").total_length == pytest.approx(3.0)
        assert cache.invalidations == 1

    def test_update_drops_entries_entirely_after_it(self):
        cache = AnswerCache()
        fp = ("knn", ("x",), 1)
        cache.put(fp, Interval(5.0, 10.0), answer({}, 5.0, 10.0))
        cache.on_update(ChangeDirection("a", 2.0, Vector.of(0.0, 0.0)))
        assert cache.spans(fp) == []
        assert cache.invalidations == 1

    def test_update_behind_live_engine_drops_engine_keeps_prefix(self):
        db = make_db()
        gd = SquaredEuclideanDistance([0.0, 0.0])
        cache = AnswerCache()
        fp = knn_fingerprint(gd, 2)
        engine, view, payload = continuation(db, gd, 2, 0.01, 8.0)
        cache.put(fp, Interval(0.01, 8.0), payload, engine=engine, view=view)
        # t=3 is behind the engine's sweep line (8): the engine cannot
        # rewind, but the [0.01, 3] prefix is still valid.
        cache.on_update(ChangeDirection("o1", 3.0, Vector.of(1.0, 1.0)))
        assert cache.spans(fp) == [Interval(0.01, 3.0)]
        # No extension possible any more.
        assert cache.get(fp, Interval(0.01, 12.0)) is None

    def test_cached_prefix_stays_correct_after_clip(self):
        db = make_db()
        gd = SquaredEuclideanDistance([0.0, 0.0])
        cache = AnswerCache()
        fp = knn_fingerprint(gd, 2)
        engine, view, payload = continuation(db, gd, 2, 0.01, 8.0)
        cache.put(fp, Interval(0.01, 8.0), payload, engine=engine, view=view)
        update = ChangeDirection("o1", 3.0, Vector.of(4.0, 4.0))
        db.apply(update)
        cache.on_update(update)
        got = cache.get(fp, Interval(0.01, 3.0))
        cold = evaluate_knn(db, gd, k=2, interval=Interval(0.01, 3.0))
        assert got.approx_equals(cold, atol=1e-6)


class TestEvictionAndMetrics:
    def test_byte_budget_evicts_lru(self):
        one = AnswerCache()
        fp = ("knn", ("x",), 1)
        one.put(fp, Interval(0.0, 1.0), answer({"a": (0.0, 1.0)}, 0.0, 1.0))
        budget = one.nbytes * 2 + 1
        cache = AnswerCache(max_bytes=budget)
        for i in range(5):
            lo = 10.0 * i
            cache.put(
                (i,), Interval(lo, lo + 1.0), answer({"a": (lo, lo + 1.0)}, lo, lo + 1.0)
            )
        assert cache.nbytes <= budget
        assert cache.evictions >= 3
        assert cache.get((4,), Interval(40.0, 41.0)) is not None

    def test_rejects_bad_budgets(self):
        with pytest.raises(ValueError):
            AnswerCache(max_bytes=-1)
        with pytest.raises(ValueError):
            AnswerCache(max_entries_per_query=0)

    def test_metrics_export(self):
        obs = Instrumentation()
        cache = AnswerCache(observe=obs)
        fp = ("knn", ("x",), 1)
        cache.put(fp, Interval(0.0, 10.0), answer({"a": (1.0, 9.0)}, 0.0, 10.0))
        cache.get(fp, Interval(1.0, 2.0))
        cache.get(fp, Interval(50.0, 60.0))
        cache.on_update(ChangeDirection("a", 4.0, Vector.of(0.0, 0.0)))
        snap = obs.snapshot()
        assert snap['cache_answer_hits_total{kind="exact"}'] == 1
        assert snap["cache_answer_misses_total"] == 1
        assert snap['cache_answer_invalidations_total{kind="clip"}'] == 1
        assert snap["cache_answer_entries"] == 1


class TestQueryCacheFacade:
    def test_bind_is_idempotent_and_exclusive(self):
        db = make_db()
        other = make_db()
        cache = QueryCache()
        cache.bind(db)
        cache.bind(db)
        with pytest.raises(ValueError):
            cache.bind(other)

    def test_unbind_clears_and_allows_rebinding(self):
        db = make_db()
        cache = QueryCache()
        gd = _as_gdistance([0.0, 0.0])
        evaluate_knn(db, gd, k=2, interval=Interval(0.01, 5.0), cache=cache)
        assert len(cache.answers) == 1
        cache.unbind()
        assert len(cache.answers) == 0 and len(cache.curves) == 0
        cache.bind(make_db())

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError):
            QueryCache(max_bytes=0)

    def test_combined_hit_rate_mixes_both_stores(self):
        db = make_db()
        cache = QueryCache()
        gd = _as_gdistance([0.0, 0.0])
        evaluate_knn(db, gd, k=2, interval=Interval(0.01, 5.0), cache=cache)
        evaluate_knn(db, gd, k=2, interval=Interval(1.0, 4.0), cache=cache)
        stats = cache.stats()
        assert stats["answer_hits"] == 1
        assert 0.0 < cache.hit_rate <= 1.0
