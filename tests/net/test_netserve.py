"""End-to-end behavior of the TCP serving frontend.

Each test spins a real :func:`~repro.core.api.serve_tcp` frontend on
an ephemeral port and drives it with :class:`~repro.net.RemoteQueryClient`
over loopback — verbs, typed errors, the handshake, push
subscriptions, EXPLAIN stages, and graceful drain.
"""

import pytest

from repro.core.api import serve, serve_tcp
from repro.geometry.vectors import Vector
from repro.gdist.euclidean import SquaredEuclideanDistance
from repro.io import answer_to_dict
from repro.mod.updates import ChangeDirection, New
from repro.net import NetConfig, ProtocolError, connect
from repro.obs import Instrumentation
from repro.server import SessionClosedError
from repro.workloads.generator import random_linear_mod
from tests.net._wire import raw_connect, recv_response, send_frame


def _db(count=8, seed=7):
    return random_linear_mod(count, seed=seed, extent=30.0, speed=3.0)


def _stir(db, times, seed=0):
    import random

    rng = random.Random(seed)
    oids = sorted(db.object_ids)
    for t in times:
        db.apply(
            ChangeDirection(
                rng.choice(oids),
                t,
                Vector.of(rng.uniform(-3, 3), rng.uniform(-3, 3)),
            )
        )


class TestRemoteMatchesInProcess:
    def test_all_three_kinds_agree_with_local_server(self):
        db_local, db_remote = _db(), _db()
        gd = SquaredEuclideanDistance([0.0, 0.0])
        local = serve(db_local)
        sessions_local = {
            "knn": local.register_knn(gd, k=2),
            "within": local.register_within(gd, 60.0),
            "multiknn": local.register_multiknn(gd, (1, 3)),
        }
        with serve_tcp(db_remote) as net:
            client = connect(*net.address)
            sessions_remote = {
                "knn": client.open_knn([0.0, 0.0], k=2),
                # raw g-distance units, matching register_within's
                # GDistance semantics
                "within": client.open_within([0.0, 0.0], threshold=60.0),
                "multiknn": client.open_multiknn([0.0, 0.0], ks=[1, 3]),
            }
            _stir(db_local, [1.0, 2.0, 3.0])
            _stir(db_remote, [1.0, 2.0, 3.0])
            for kind in sessions_local:
                assert (
                    sessions_remote[kind].advance_to(3.5)
                    == sessions_local[kind].advance_to(3.5)
                ), kind
            for kind in sessions_local:
                a = sessions_local[kind].close(at=4.0)
                b = sessions_remote[kind].close(at=4.0)
                if kind == "multiknn":
                    assert set(a) == set(b)
                    for k in a:
                        assert answer_to_dict(a[k]) == answer_to_dict(b[k])
                else:
                    assert answer_to_dict(a) == answer_to_dict(b)
        local.shutdown()

    def test_within_distance_squares_like_point_queries(self):
        db_a, db_b = _db(), _db()
        with serve_tcp(db_a) as net:
            client = connect(*net.address)
            via_distance = client.open_within([0.0, 0.0], distance=8.0)
            local = serve(db_b)
            # the in-process GDistance path with the squared constant
            reference = local.register_within(
                SquaredEuclideanDistance([0.0, 0.0]), 64.0
            )
            assert via_distance.members == reference.members
            local.shutdown()


class TestVerbSurface:
    def test_ping_and_stats(self):
        db = _db()
        with serve_tcp(db) as net:
            client = connect(*net.address)
            assert client.ping() == db.last_update_time
            session = client.open_knn([0.0, 0.0], k=1)
            session.advance_to(1.0)
            stats = client.stats()
            assert stats["server"]["registered"] == 1
            assert stats["net"]["requests"] >= 3
            assert stats["groups"] == 1
            assert "pending_high_water" in stats["applier"]

    def test_typed_errors_cross_the_wire(self):
        db = _db()
        with serve_tcp(db) as net:
            client = connect(*net.address)
            session = client.open_knn([0.0, 0.0], k=1)
            session.close(at=1.0)
            with pytest.raises(SessionClosedError):
                session.advance_to(2.0)
            # the close-window ValueError (clip bugfix) crosses typed
            late = client.open_knn([0.0, 0.0], k=1)
            with pytest.raises(ValueError):
                late.close(at=late.start - 1.0)
            with pytest.raises(KeyError):
                client.request("members", {"session": 99999})
            with pytest.raises(ProtocolError):
                client.request("warp", {})

    def test_unknown_session_field_is_protocol_error(self):
        db = _db()
        with serve_tcp(db) as net:
            client = connect(*net.address)
            with pytest.raises(ProtocolError):
                client.request("members", {})


class TestHandshake:
    def test_version_mismatch_is_refused(self):
        db = _db()
        with serve_tcp(db) as net:
            sock, response = raw_connect(net.address, version=99)
            assert response["ok"] is False
            assert response["error"]["type"] == "VersionMismatchError"
            sock.close()
            assert net.stats.handshake_failures == 1

    def test_first_frame_must_be_hello(self):
        db = _db()
        with serve_tcp(db) as net:
            import socket as socketlib

            sock = socketlib.create_connection(net.address, timeout=5.0)
            send_frame(sock, {"id": "r1", "verb": "ping"})
            response = recv_response(sock, "r1")
            assert response["ok"] is False
            assert response["error"]["type"] == "ProtocolError"
            sock.close()


class TestPushStream:
    def test_answer_changes_are_pushed_after_each_applied_update(self):
        db = _db()
        with serve_tcp(db) as net:
            client = connect(*net.address)
            session = client.open_knn([0.0, 0.0], k=2)
            baseline = session.subscribe()
            assert baseline == session.members
            # Drive membership changes: newborn objects right on the
            # query point displace the previous nearest neighbors.
            db.apply(
                New(
                    "nb1",
                    1.0,
                    position=Vector.of(0.01, 0.0),
                    velocity=Vector.of(0.0, 0.0),
                )
            )
            db.apply(
                New(
                    "nb2",
                    2.0,
                    position=Vector.of(0.0, 0.01),
                    velocity=Vector.of(0.0, 0.0),
                )
            )
            events = session.changes(poll=0.5)
            changes = [e for e in events if e["event"] == "answer_change"]
            assert changes, "no answer_change pushed"
            assert changes[-1]["members"] == {"nb1", "nb2"}
            assert changes[-1]["members"] == session.members
            # Unsubscribed sessions stop receiving pushes.
            session.unsubscribe()
            db.apply(
                New(
                    "nb3",
                    3.0,
                    position=Vector.of(0.005, 0.0),
                    velocity=Vector.of(0.0, 0.0),
                )
            )
            assert session.changes(poll=0.3) == []

    def test_push_respects_batching_flush_boundary(self):
        db = _db()
        from repro.server import ServerConfig

        with serve_tcp(db, config=ServerConfig(batch_size=2)) as net:
            client = connect(*net.address)
            session = client.open_knn([0.0, 0.0], k=1)
            session.subscribe()
            db.apply(
                New(
                    "nb1",
                    1.0,
                    position=Vector.of(0.01, 0.0),
                    velocity=Vector.of(0.0, 0.0),
                )
            )
            # batch of 2 not yet flushed: nothing pushed
            assert session.changes(poll=0.2) == []
            db.apply(
                New(
                    "nb2",
                    2.0,
                    position=Vector.of(0.0, 0.02),
                    velocity=Vector.of(0.0, 0.0),
                )
            )
            events = session.changes(poll=0.5)
            assert [e["event"] for e in events] == ["answer_change"]
            assert events[0]["members"] == {"nb1"}


class TestExplain:
    def test_remote_explain_carries_net_stages(self):
        db = _db()
        observe = Instrumentation()
        with serve_tcp(db, observe=observe) as net:
            client = connect(*net.address)
            session = client.open_multiknn([0.0, 0.0], ks=[1, 2])
            _stir(db, [1.0, 2.0])
            report = session.explain_close(at=3.0)
            names = {stage["name"] for stage in report.stages}
            assert {"net.decode", "net.dispatch", "net.encode"} <= names
            dispatch = next(
                s for s in report.stages if s["name"] == "net.dispatch"
            )
            nested = {child["name"] for child in dispatch.get("children", [])}
            assert "server.close" in nested
            text = report.text()
            assert "net.dispatch" in text and "server.close" in text
            assert report.report["kind"] == "net.multiknn"
            assert report.query_id
            # the decoded answer matches a fresh close on a twin run
            assert set(report.answer) == {1, 2}


class TestDrain:
    def test_drain_closes_sessions_and_pushes_final_answers(self):
        db_net, db_ref = _db(), _db()
        gd = SquaredEuclideanDistance([0.0, 0.0])
        net = serve_tcp(db_net)
        client = connect(*net.address)
        session = client.open_knn([0.0, 0.0], k=2)
        _stir(db_net, [1.0, 2.0])
        session.advance_to(2.5)
        drained = net.drain()
        assert set(drained) == {session.session_id}
        # reference: identical in-process run closed at the same time
        ref_server = serve(db_ref)
        ref = ref_server.register_knn(gd, k=2)
        _stir(db_ref, [1.0, 2.0])
        ref.advance_to(2.5)
        expected = ref.close()
        assert answer_to_dict(drained[session.session_id]) == answer_to_dict(
            expected
        )
        ref_server.shutdown()
        # the client received the same final answer as a drain event
        events = session.changes(poll=0.5)
        drain_events = [e for e in events if e["event"] == "drain"]
        assert len(drain_events) == 1
        assert answer_to_dict(drain_events[0]["answer"]) == answer_to_dict(
            expected
        )
        goodbye = client.events_for(None)
        assert any(e["event"] == "goodbye" for e in goodbye)
        assert net.stats.drained == 1
        net.close()

    def test_draining_server_refuses_new_connections(self):
        db = _db()
        net = serve_tcp(db)
        client = connect(*net.address)
        client.open_knn([0.0, 0.0], k=1)
        net.drain()
        import socket as socketlib

        with pytest.raises(OSError):
            probe = socketlib.create_connection(net.address, timeout=0.5)
            # Linux may accept into the backlog before the close lands;
            # a read then sees EOF, which we surface as ConnectionError.
            probe.settimeout(0.5)
            data = probe.recv(1)
            probe.close()
            if data == b"":
                raise ConnectionResetError("server closed the socket")
        net.close()


class TestNetConfigValidation:
    def test_bad_knobs_are_rejected(self):
        with pytest.raises(ValueError):
            NetConfig(max_frame=8)
        with pytest.raises(ValueError):
            NetConfig(max_push_queue=0)
        with pytest.raises(ValueError):
            NetConfig(handshake_timeout=0.0)
        with pytest.raises(ValueError):
            NetConfig(idempotency_cache=0)
