"""Differential equivalence: remote ≡ in-process ≡ naive.

Every seeded scenario drives the same update stream through the naive
O(N^2) baseline, the in-process QueryServer, and a real TCP frontend
(:func:`tests._oracle.run_netserve`), asserting the final snapshot
answers and every instant probe agree across all three.  On top of the
clean sweep, a slice of the seeds re-runs with injected connection
drops (the client must reconnect + retry idempotently), and one case
forces an engine-group heal mid-stream — neither may perturb a single
answer.
"""

import pytest

from tests._oracle import (
    KNN,
    MULTIKNN,
    WITHIN,
    answers_equal,
    assert_probes_equal,
    generate_scenario,
    run_naive,
    run_netserve,
    run_server,
)

MODES = (KNN, WITHIN, MULTIKNN)
CLEAN_SEEDS = range(16)
DROP_SEEDS = (101, 102)


class TestNetserveDifferential:
    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("seed", CLEAN_SEEDS)
    def test_remote_matches_naive_and_server(self, seed, mode):
        sc = generate_scenario(seed)
        naive_final, naive_probes = run_naive(sc, mode)
        server_final, server_probes = run_server(sc, mode)
        net_final, net_probes = run_netserve(sc, mode)
        label = f"seed={seed} mode={mode}"
        assert answers_equal(net_final, naive_final), f"{label}: vs naive"
        assert answers_equal(net_final, server_final), f"{label}: vs server"
        assert_probes_equal(net_probes, naive_probes, f"{label} vs naive")
        assert_probes_equal(net_probes, server_probes, f"{label} vs server")


class TestNetserveWithConnectionDrops:
    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("seed", DROP_SEEDS)
    def test_dropped_connections_change_nothing(self, seed, mode):
        sc = generate_scenario(seed)
        naive_final, naive_probes = run_naive(sc, mode)
        net_final, net_probes = run_netserve(sc, mode, drop_every=2)
        label = f"seed={seed} mode={mode} drop_every=2"
        assert answers_equal(net_final, naive_final), label
        assert_probes_equal(net_probes, naive_probes, label)


class TestNetserveWithForcedHeal:
    def test_heal_mid_stream_changes_nothing(self):
        sc = generate_scenario(31)
        naive_final, naive_probes = run_naive(sc, KNN)
        stats = {}
        net_final, net_probes = run_netserve(
            sc, KNN, force_heal=True, stats_out=stats
        )
        # The fault really happened and was healed in-line.
        assert stats["rebuilds"] >= 1
        assert answers_equal(net_final, naive_final)
        assert_probes_equal(net_probes, naive_probes, "forced heal")

    def test_heal_with_drops_and_shards_changes_nothing(self):
        sc = generate_scenario(32)
        naive_final, naive_probes = run_naive(sc, WITHIN)
        stats = {}
        net_final, net_probes = run_netserve(
            sc,
            WITHIN,
            shards=2,
            drop_every=3,
            force_heal=True,
            stats_out=stats,
        )
        assert stats["rebuilds"] >= 1
        assert answers_equal(net_final, naive_final)
        assert_probes_equal(net_probes, naive_probes, "heal+drops+shards")
