"""Fault injection against the TCP frontend.

The cases the wire adds beyond in-process serving: connections dying
mid-request (retry + idempotent replay), slow push consumers (bounded
queues + shed-through-admission), and graceful drain under load.
"""

import socket as socketlib
import time

import pytest

from repro.core.api import serve_tcp
from repro.geometry.vectors import Vector
from repro.mod.updates import New
from repro.net import (
    ConnectionLostError,
    NetConfig,
    RemoteQueryClient,
    connect,
)
from repro.server import ServerClosedError, SessionShedError
from repro.workloads.generator import random_linear_mod
from tests.net._wire import raw_connect, recv_response, send_frame


def _db(count=8, seed=7):
    return random_linear_mod(count, seed=seed, extent=30.0, speed=3.0)


def _newborn(oid, t, x, y):
    return New(
        oid, t, position=Vector.of(x, y), velocity=Vector.of(0.0, 0.0)
    )


class _ResponseLossClient(RemoteQueryClient):
    """Simulates a connection dying between the server processing a
    request and the client reading the response: sends normally, then
    kills its own socket instead of reading, forcing the retry path to
    reconnect and resend the *same* request id."""

    lose_next = 0

    def _await_response(self, rid):
        if self.lose_next > 0:
            self.lose_next -= 1
            self._drop_socket()
            raise ConnectionError("injected: response lost")
        return super()._await_response(rid)


class TestRetryIdempotency:
    def test_lost_close_response_replays_the_same_answer(self):
        db = _db()
        with serve_tcp(db) as net:
            client = _ResponseLossClient(*net.address, retries=3)
            session = client.open_knn([0.0, 0.0], k=2)
            db.apply(_newborn("nb1", 1.0, 0.01, 0.0))
            # The server WILL process this close; the client loses the
            # response and must retry with the same id.  Without the
            # idempotency cache the retry would hit SessionClosedError.
            client.lose_next = 1
            answer = session.close(at=2.0)
            assert answer is not None
            assert answer.interval.hi == 2.0
            assert net.stats.replays == 1
            assert net.server.stats.closed == 1  # applied exactly once

    def test_mid_request_drop_retries_until_success(self):
        db = _db()
        with serve_tcp(db) as net:
            client = _ResponseLossClient(*net.address, retries=4)
            session = client.open_knn([0.0, 0.0], k=1)
            client.lose_next = 2  # two consecutive losses, then succeed
            members = session.advance_to(1.5)
            assert members == session.members

    def test_retries_exhausted_surfaces_typed_transport_error(self):
        db = _db()
        with serve_tcp(db) as net:
            client = _ResponseLossClient(
                *net.address, retries=1, backoff=0.01
            )
            session = client.open_knn([0.0, 0.0], k=1)
            client.lose_next = 10
            with pytest.raises(ConnectionLostError):
                session.advance_to(1.0)

    def test_raw_replay_returns_cached_response_verbatim(self):
        db = _db()
        with serve_tcp(db) as net:
            sock, _ = raw_connect(net.address)
            send_frame(
                sock,
                {
                    "id": "rid-1",
                    "verb": "open",
                    "kind": "knn",
                    "query": [0.0, 0.0],
                    "k": 1,
                },
            )
            first = recv_response(sock, "rid-1")
            assert first["ok"]
            sock.close()
            # a "new client" retrying the same id after reconnect
            sock2, _ = raw_connect(net.address)
            send_frame(
                sock2,
                {
                    "id": "rid-1",
                    "verb": "open",
                    "kind": "knn",
                    "query": [0.0, 0.0],
                    "k": 1,
                },
            )
            second = recv_response(sock2, "rid-1")
            assert second == first
            assert net.server.stats.registered == 1  # not re-applied
            sock2.close()


class TestSlowConsumerShed:
    def test_full_push_queue_sheds_subscribed_sessions(self):
        db = _db()
        with serve_tcp(
            db, net_config=NetConfig(max_push_queue=2)
        ) as net:
            client = connect(*net.address)
            session = client.open_knn([0.0, 0.0], k=1)
            session.subscribe()
            # Stall the connection's writer so pushes pile up in the
            # bounded queue instead of draining into the OS buffer.
            (conn,) = net._connections
            conn.paused = True
            # Each newborn closer than the last changes the k=1 answer.
            for i in range(5):
                db.apply(
                    _newborn(f"nb{i}", 1.0 + i, 0.01 / (i + 1), 0.0)
                )
            assert net.stats.sheds >= 1
            assert net.server.stats.shed >= 1
            conn.paused = False
            # The shed notice reached the client, typed like in-process.
            events = session.changes(poll=0.5)
            assert any(e["event"] == "shed" for e in events)
            with pytest.raises(SessionShedError):
                _ = session.members

    def test_responses_survive_push_overflow(self):
        db = _db()
        with serve_tcp(
            db, net_config=NetConfig(max_push_queue=2)
        ) as net:
            client = connect(*net.address)
            victim = client.open_knn([0.0, 0.0], k=1, priority=0)
            bystander = client.open_knn([5.0, 5.0], k=1, priority=5)
            victim.subscribe()
            (conn,) = net._connections
            conn.paused = True
            for i in range(5):
                db.apply(
                    _newborn(f"nb{i}", 1.0 + i, 0.01 / (i + 1), 0.0)
                )
            conn.paused = False
            # The connection still answers requests: only the victim's
            # unsolicited stream was shed, not the wire itself.
            assert bystander.members is not None
            answer = bystander.close(at=10.0)
            assert answer.interval.hi == 10.0


class TestDrainUnderLoad:
    def test_updates_after_drain_raise_instead_of_vanishing(self):
        db = _db()
        net = serve_tcp(db)
        client = connect(*net.address)
        client.open_knn([0.0, 0.0], k=1)
        net.drain()
        # The frontend is still subscribed (close() detaches it); a
        # write now reaches a shut-down server and must NOT be dropped
        # silently — this is the ServerClosedError regression surface.
        with pytest.raises(ServerClosedError):
            db.apply(_newborn("late", 50.0, 1.0, 1.0))
        net.close()
        # After close() the frontend is detached: writes flow again.
        db.apply(_newborn("later", 51.0, 1.0, 1.0))

    def test_drain_with_queued_session_cancels_it(self):
        from repro.server import ServerConfig

        db = _db()
        net = serve_tcp(
            db,
            config=ServerConfig(max_sessions=1, admission_policy="queue"),
        )
        client = connect(*net.address)
        active = client.open_knn([0.0, 0.0], k=1)
        waiting = client.open_knn([1.0, 1.0], k=1)
        assert waiting.state == "queued"
        drained = net.drain()
        assert set(drained) == {active.session_id}
        assert net.server.stats.cancelled == 1
        net.close()


class TestConnectionLifecycle:
    def test_sessions_survive_their_connection(self):
        db = _db()
        with serve_tcp(db) as net:
            first = connect(*net.address)
            session = first.open_knn([0.0, 0.0], k=2)
            sid = session.session_id
            first.close()
            time.sleep(0.05)
            second = connect(*net.address)
            result = second.request("members", {"session": sid})
            assert isinstance(result["members"], list)

    def test_handshake_timeout_drops_silent_connections(self):
        db = _db()
        with serve_tcp(
            db, net_config=NetConfig(handshake_timeout=0.2)
        ) as net:
            sock = socketlib.create_connection(net.address, timeout=5.0)
            sock.settimeout(2.0)
            # say nothing: the server must hang up on its own
            assert sock.recv(1) == b""
            sock.close()
            assert net.stats.handshake_failures == 1
