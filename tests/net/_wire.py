"""Raw-socket helpers for protocol-level tests.

These speak the frame format directly (no RemoteQueryClient), so the
tests can violate the protocol on purpose — wrong versions, replayed
ids, oversized frames — and observe exactly what the server answers.
"""

from __future__ import annotations

import socket

from repro.net.protocol import HEADER, PROTOCOL_VERSION, decode_payload, encode_frame


def send_frame(sock: socket.socket, payload: dict) -> None:
    sock.sendall(encode_frame(payload))


def recv_frame(sock: socket.socket) -> dict:
    chunks = []
    remaining = HEADER.size
    while remaining:
        chunk = sock.recv(remaining)
        assert chunk, "server closed the connection mid-frame"
        chunks.append(chunk)
        remaining -= len(chunk)
    (length,) = HEADER.unpack(b"".join(chunks))
    body = b""
    while len(body) < length:
        chunk = sock.recv(length - len(body))
        assert chunk, "server closed the connection mid-frame"
        body += chunk
    return decode_payload(body)


def recv_response(sock: socket.socket, rid) -> dict:
    """Skip pushed events until the response for ``rid`` arrives."""
    while True:
        frame = recv_frame(sock)
        if "event" in frame:
            continue
        if frame.get("id") == rid:
            return frame


def raw_connect(
    address, version: int = PROTOCOL_VERSION, timeout: float = 5.0
) -> tuple:
    """A handshaken raw socket; returns ``(sock, hello_response)``."""
    sock = socket.create_connection(address, timeout=timeout)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    send_frame(sock, {"id": "hello-0", "verb": "hello", "version": version})
    return sock, recv_response(sock, "hello-0")
