"""Wire-format unit tests: framing, fidelity, versioning, errors."""

import pytest

from repro.geometry.intervals import Interval, IntervalSet
from repro.io import answer_to_dict
from repro.net.errors import (
    FrameTooLargeError,
    ProtocolError,
    RemoteError,
    error_to_wire,
    raise_from_wire,
)
from repro.net.protocol import (
    HEADER,
    PROTOCOL_VERSION,
    answer_from_wire,
    answer_to_wire,
    decode_payload,
    encode_frame,
    members_from_wire,
    members_to_wire,
)
from repro.query.answers import SnapshotAnswer
from repro.server.errors import AdmissionError, SessionShedError


class TestFraming:
    def test_round_trip(self):
        payload = {"id": "a-1", "verb": "ping", "x": [1, 2.5, None]}
        frame = encode_frame(payload)
        (length,) = HEADER.unpack(frame[: HEADER.size])
        assert length == len(frame) - HEADER.size
        assert decode_payload(frame[HEADER.size:]) == payload

    def test_oversized_frame_refused_at_encode(self):
        with pytest.raises(FrameTooLargeError):
            encode_frame({"blob": "x" * 300}, max_frame=128)

    def test_undecodable_bodies(self):
        with pytest.raises(ProtocolError):
            decode_payload(b"{not json")
        with pytest.raises(ProtocolError):
            decode_payload(b"[1, 2, 3]")  # not an object
        with pytest.raises(ProtocolError):
            decode_payload(b"\xff\xfe")  # not UTF-8


class TestMembersWire:
    def test_oid_types_survive(self):
        members = {"car-7", 42, ("depot", 3)}
        wire = members_to_wire(members)
        assert wire == sorted(wire)  # deterministic order
        assert members_from_wire(wire) == members

    def test_multiknn_per_k(self):
        members = {1: {"a"}, 3: {"a", "b", 9}}
        wire = members_to_wire(members)
        assert set(wire) == {"1", "3"}
        assert members_from_wire(wire) == members


class TestAnswerWire:
    def _answer(self):
        return SnapshotAnswer(
            {
                "a": IntervalSet([Interval(0.0, 1.5), Interval(2.0, 3.0)]),
                7: IntervalSet([Interval(0.5, 2.5)]),
            },
            Interval(0.0, 3.0),
        )

    def test_single_answer_round_trips_bit_exactly(self):
        answer = self._answer()
        decoded = answer_from_wire(answer_to_wire(answer))
        assert answer_to_dict(decoded) == answer_to_dict(answer)

    def test_infinite_bounds_survive(self):
        answer = SnapshotAnswer(
            {"ever": IntervalSet([Interval(float("-inf"), float("inf"))])},
            Interval(float("-inf"), float("inf")),
        )
        decoded = answer_from_wire(answer_to_wire(answer))
        assert answer_to_dict(decoded) == answer_to_dict(answer)

    def test_multiknn_answer_dict(self):
        answer = {1: self._answer(), 3: self._answer()}
        decoded = answer_from_wire(answer_to_wire(answer))
        assert set(decoded) == {1, 3}
        for k in decoded:
            assert answer_to_dict(decoded[k]) == answer_to_dict(answer[k])

    def test_none_passes_through(self):
        assert answer_to_wire(None) is None
        assert answer_from_wire(None) is None


class TestErrorRegistry:
    def test_server_errors_cross_as_themselves(self):
        for exc in (
            AdmissionError("budget"),
            SessionShedError("shed"),
            ValueError("window"),
        ):
            wire = error_to_wire(exc)
            assert wire["type"] == type(exc).__name__
            with pytest.raises(type(exc)):
                raise_from_wire(wire)

    def test_unknown_types_degrade_to_remote_error(self):
        with pytest.raises(RemoteError, match="WeirdError: boom"):
            raise_from_wire({"type": "WeirdError", "message": "boom"})

    def test_version_constant_is_an_int(self):
        assert isinstance(PROTOCOL_VERSION, int)
