"""API-surface tests: every advertised export exists and imports.

A downstream user's first contact is ``from repro import ...``; these
tests pin the advertised surface so refactors cannot silently drop it.
"""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.analysis",
    "repro.baselines",
    "repro.bench",
    "repro.constraints",
    "repro.core",
    "repro.gdist",
    "repro.geometry",
    "repro.mod",
    "repro.obs",
    "repro.query",
    "repro.resilience",
    "repro.sweep",
    "repro.trajectory",
    "repro.workloads",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_package_imports(name):
    module = importlib.import_module(name)
    assert module is not None


@pytest.mark.parametrize("name", PACKAGES)
def test_all_exports_resolve(name):
    module = importlib.import_module(name)
    exported = getattr(module, "__all__", [])
    for symbol in exported:
        assert hasattr(module, symbol), f"{name}.{symbol} missing"


@pytest.mark.parametrize("name", PACKAGES)
def test_all_sorted(name):
    module = importlib.import_module(name)
    exported = list(getattr(module, "__all__", []))
    assert exported == sorted(exported), f"{name}.__all__ not sorted"


def test_top_level_surface():
    import repro

    for symbol in (
        "MovingObjectDatabase",
        "Trajectory",
        "Interval",
        "SweepEngine",
        "evaluate_knn",
        "evaluate_within",
        "evaluate_query",
        "ContinuousQuerySession",
        "knn_query",
        "within_query",
    ):
        assert symbol in repro.__all__

    assert repro.__version__


def test_public_items_documented():
    """Every public symbol the top level exports carries a docstring."""
    import repro

    undocumented = []
    for symbol in repro.__all__:
        obj = getattr(repro, symbol)
        if callable(obj) and not (obj.__doc__ or "").strip():
            undocumented.append(symbol)
    assert not undocumented, f"missing docstrings: {undocumented}"
