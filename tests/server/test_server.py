"""Unit tests for the multi-tenant :class:`~repro.server.QueryServer`.

Covers the shared fan-out architecture (group keying, view
refcounting, batching semantics), admission control, load shedding,
lifecycle/typed errors, cache deposit, telemetry, and EXPLAIN
integration.  The randomized end-to-end equivalences live in
``test_soak.py`` and ``tests/parallel/test_differential.py``.
"""

import random

import pytest

from repro.cache import QueryCache
from repro.core.api import serve
from repro.geometry.intervals import Interval
from repro.gdist.euclidean import SquaredEuclideanDistance
from repro.mod.updates import ChangeDirection, New
from repro.geometry.vectors import Vector
from repro.obs import Instrumentation
from repro.server import (
    AdmissionError,
    QueryServer,
    ServerConfig,
    ServerError,
    SessionClosedError,
    SessionQueuedError,
    SessionShedError,
)
from repro.workloads.generator import random_linear_mod
from tests._oracle import answers_equal
from tests.server._mirrors import Mirror


def _db(count=8, seed=7):
    return random_linear_mod(count, seed=seed, extent=30.0, speed=3.0)


def _gd(x=0.0, y=0.0):
    return SquaredEuclideanDistance([x, y])


def _stir(db, times, seed=0):
    """Apply one deterministic ChangeDirection per time in ``times``."""
    rng = random.Random(seed)
    oids = sorted(db.object_ids)
    for t in times:
        db.apply(
            ChangeDirection(
                rng.choice(oids),
                t,
                Vector.of(rng.uniform(-3, 3), rng.uniform(-3, 3)),
            )
        )


class TestGroupSharing:
    def test_rank_queries_share_one_group(self):
        db = _db()
        server = serve(db)
        gd = _gd()
        server.register_knn(gd, k=1)
        server.register_knn(gd, k=3)
        server.register_multiknn(gd, (1, 2))
        # knn + multiknn need sentinel-free engines: one shared pool.
        assert server.group_count == 1
        server.register_within(gd, 50.0)
        # within needs its threshold among the engine constants.
        assert server.group_count == 2
        server.register_knn(gd, k=2, shards=3)
        # a different shard count is a different engine pool.
        assert server.group_count == 3
        server.register_knn(_gd(9.0, 9.0), k=1)
        # a different g-distance never shares sweep state.
        assert server.group_count == 4
        server.shutdown()

    def test_identical_sessions_share_the_same_views(self):
        db = _db()
        server = serve(db)
        gd = _gd()
        a = server.register_knn(gd, k=2)
        b = server.register_knn(gd, k=2)
        assert a.group is b.group
        assert a.view_key == b.view_key
        assert a.group.tenant_count == 2
        _stir(db, [1.0, 2.0])
        a.close()
        # The group survives while a tenant remains...
        assert server.group_count == 1
        b.close()
        # ...and is retired (engines dropped) with the last tenant.
        assert server.group_count == 0
        server.shutdown()

    def test_fanout_applies_each_update_once_per_group(self):
        db = _db()
        server = serve(db)
        gd = _gd()
        server.register_knn(gd, k=1)
        server.register_within(gd, 40.0)
        _stir(db, [1.0, 2.0, 3.0])
        server.primitive_ops()  # flush
        stats = server.applier.stats
        assert stats.submitted == 3
        # 3 updates x 2 groups = 6 (key, update) applications.
        assert stats.fanout == 6
        assert server.stats.updates == 3
        server.shutdown()


class TestAnswerEquivalence:
    def test_mixed_tenants_match_standalone_sessions(self):
        db = _db(10, seed=21)
        mirror_db = random_linear_mod(10, seed=21, extent=30.0, speed=3.0)
        server = serve(db, ServerConfig(batch_size=2))
        gd = _gd(1.0, -2.0)
        specs = [
            ("knn", {"k": 2}),
            ("within", {"threshold": 75.0}),
            ("multiknn", {"ks": (1, 3)}),
        ]
        sessions = [
            server.register_knn(gd, k=2),
            server.register_within(gd, 75.0),
            server.register_multiknn(gd, (1, 3)),
        ]
        mirrors = [
            Mirror(mirror_db, kind, gd, params, start=s.start)
            for (kind, params), s in zip(specs, sessions)
        ]
        times = [1.0, 2.2, 3.1, 4.4, 5.0]
        for t in times:
            _stir(db, [t], seed=int(t * 10))
            _stir(mirror_db, [t], seed=int(t * 10))
            probe = t + 0.3
            for s, m in zip(sessions, mirrors):
                got = s.advance_to(probe)
                want = m.advance_to(probe)
                if isinstance(want, dict):
                    got = {k: set(v) for k, v in got.items()}
                else:
                    got = set(got)
                assert got == want, f"probe {probe}: {got} != {want}"
        for s, m in zip(sessions, mirrors):
            assert answers_equal(s.close(at=6.0), m.close(at=6.0))
        server.shutdown()

    def test_late_joiner_equals_fresh_session(self):
        db = _db(9, seed=4)
        mirror_db = random_linear_mod(9, seed=4, extent=30.0, speed=3.0)
        server = serve(db)
        gd = _gd()
        early = server.register_knn(gd, k=2)
        _stir(db, [1.0, 2.0], seed=1)
        _stir(mirror_db, [1.0, 2.0], seed=1)
        early.advance_to(2.5)
        late = server.register_knn(gd, k=2)  # joins the shared view
        assert late.group is early.group
        mirror = Mirror(mirror_db, "knn", gd, {"k": 2}, start=late.start)
        _stir(db, [3.0, 4.0], seed=2)
        _stir(mirror_db, [3.0, 4.0], seed=2)
        # The late joiner's clipped span equals a fresh engine started
        # at its registration time.
        assert answers_equal(late.close(at=5.0), mirror.close(at=5.0))
        early.close(at=5.0)
        server.shutdown()

    def test_reads_flush_buffered_updates(self):
        db = _db()
        server = serve(db, ServerConfig(batch_size=8))
        gd = _gd()
        session = server.register_knn(gd, k=1)
        mirror_db = random_linear_mod(8, seed=7, extent=30.0, speed=3.0)
        mirror = Mirror(mirror_db, "knn", gd, {"k": 1}, start=session.start)
        _stir(db, [1.0, 2.0], seed=5)
        _stir(mirror_db, [1.0, 2.0], seed=5)
        assert server.applier.pending == 2  # buffered, not applied
        assert session.advance_to(2.5) == mirror.advance_to(2.5)
        assert server.applier.pending == 0  # the read flushed
        assert answers_equal(session.close(at=3.0), mirror.close(at=3.0))
        server.shutdown()


class TestAdmission:
    def test_reject_policy(self):
        server = serve(_db(), ServerConfig(max_sessions=1))
        gd = _gd()
        first = server.register_knn(gd, k=1)
        with pytest.raises(AdmissionError):
            server.register_knn(gd, k=2)
        assert server.stats.rejected == 1
        first.close()
        # Capacity freed: the next registration is admitted.
        server.register_knn(gd, k=2)
        server.shutdown()

    def test_queue_policy_activates_fifo(self):
        db = _db()
        server = serve(
            db,
            ServerConfig(
                max_sessions=1, admission_policy="queue", max_queued=2
            ),
        )
        gd = _gd()
        active = server.register_knn(gd, k=1)
        q1 = server.register_knn(gd, k=2)
        q2 = server.register_within(gd, 30.0)
        assert q1.state == "queued" and q2.state == "queued"
        with pytest.raises(SessionQueuedError):
            _ = q1.members
        with pytest.raises(AdmissionError):  # queue full
            server.register_knn(gd, k=3)
        _stir(db, [1.0, 2.0])
        active.close()
        # FIFO: q1 activates first, with its window opening *now* —
        # not at its registration time.
        assert q1.state == "active" and q2.state == "queued"
        assert q1.start == db.last_update_time
        q1.close()
        assert q2.state == "active"
        q2.close()
        server.shutdown()

    def test_closing_a_queued_session_cancels_it(self):
        server = serve(
            _db(), ServerConfig(max_sessions=1, admission_policy="queue")
        )
        gd = _gd()
        active = server.register_knn(gd, k=1)
        queued = server.register_knn(gd, k=2)
        assert queued.close() is None
        assert server.stats.cancelled == 1
        active.close()
        # The cancelled session must never activate.
        assert queued.state == "closed"
        with pytest.raises(SessionClosedError):
            _ = queued.members
        server.shutdown()


class TestLifecycle:
    def test_close_is_terminal_and_answer_persists(self):
        db = _db()
        server = serve(db)
        session = server.register_knn(_gd(), k=1)
        _stir(db, [1.0])
        answer = session.close(at=2.0)
        assert session.answer is answer
        with pytest.raises(SessionClosedError):
            _ = session.members
        with pytest.raises(SessionClosedError):
            session.advance_to(3.0)
        with pytest.raises(SessionClosedError):
            session.close()
        server.shutdown()

    def test_register_after_shutdown_raises(self):
        db = _db()
        server = serve(db)
        server.shutdown()
        with pytest.raises(ServerError):
            server.register_knn(_gd(), k=1)
        # Shutdown detached the server: updates no longer fan out.
        _stir(db, [1.0])
        assert server.stats.updates == 0
        server.shutdown()  # idempotent

    def test_config_validation(self):
        for bad in (
            dict(admission_policy="drop"),
            dict(max_sessions=0),
            dict(max_queued=-1),
            dict(op_rate_ceiling=0.0),
            dict(op_rate_window=0),
            dict(batch_size=0),
            dict(shards=0),
            dict(quarantine_after=-1),
        ):
            with pytest.raises(ValueError):
                ServerConfig(**bad)

    def test_multiknn_requires_ks(self):
        server = serve(_db())
        with pytest.raises(ValueError):
            server.register_multiknn(_gd(), ())
        server.shutdown()


class TestShedding:
    def test_sheds_lowest_priority_first(self):
        db = _db()
        # window=1 and a sub-unity ceiling: the very first applied
        # update trips the shed check deterministically.
        server = serve(
            db,
            ServerConfig(op_rate_ceiling=1e-6, op_rate_window=1),
        )
        gd = _gd()
        vip = server.register_knn(gd, k=1, priority=10)
        low = server.register_within(gd, 40.0, priority=1)
        _stir(db, [1.0])
        assert low.state == "shed"
        assert vip.state == "active"
        assert server.stats.shed == 1
        with pytest.raises(SessionShedError):
            _ = low.members
        with pytest.raises(SessionShedError):
            low.close()
        # The survivor is still fully serviceable.
        vip.advance_to(1.5)
        vip.close(at=2.0)
        server.shutdown()


class TestObservability:
    def test_metrics_and_explain_stages(self):
        db = _db()
        observe = Instrumentation()
        server = serve(db, observe=observe)
        gd = _gd()
        session = server.register_knn(gd, k=2)
        other = server.register_within(gd, 60.0)
        _stir(db, [1.0, 2.0])
        session.advance_to(2.5)
        snap = observe.metrics.snapshot()
        assert snap['server_sessions_total{event="register"}'] == 2
        assert snap['server_sessions_total{event="activate"}'] == 2
        assert snap["server_active_sessions"] == 2
        assert snap["server_groups"] == 2
        assert snap["server_update_fanout_count"] == 2
        report = server.explain_close(session, at=3.0)
        names = {s["name"] for s in report.to_dict()["stages"]}
        assert "server.close" in names
        assert report.answer is session.answer
        other.close()
        assert observe.metrics.snapshot()["server_active_sessions"] == 0
        server.shutdown()

    def test_cache_deposit_on_close(self):
        db = _db()
        cache = QueryCache()
        server = serve(db, cache=cache)
        gd = _gd()
        session = server.register_knn(gd, k=2)
        _stir(db, [1.0, 2.0])
        answer = session.close(at=3.0)
        hit = cache.lookup("knn", gd, Interval(session.start, 3.0), k=2)
        assert hit is not None
        assert answers_equal(hit, answer)
        server.shutdown()
