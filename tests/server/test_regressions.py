"""Regression tests for three silent-failure bugs in the QueryServer.

1. ``_close`` used to clamp an ``at`` behind the shared group clock up
   to ``group.current_time`` — silently *widening* the requested
   answer window whenever a co-tenant had advanced the shared sweep
   further.  It must clip the answer to exactly ``[start, at]`` and
   raise ``ValueError`` for ``at < start``.
2. The heal paths caught ``except Exception`` bare: the triggering
   exception's type/message were discarded (undiagnosable from
   telemetry) and non-engine faults — e.g. a ``TypeError`` from a
   user-supplied g-distance — were laundered into rebuilds instead of
   propagating.
3. ``_on_update`` silently dropped updates arriving after
   ``shutdown()``, desynchronizing the server from the database's
   belief that the update was delivered.  It must raise
   ``ServerClosedError``.
"""

import random

import pytest

from repro.core.api import serve
from repro.geometry.vectors import Vector
from repro.gdist.euclidean import SquaredEuclideanDistance
from repro.io import answer_to_dict
from repro.mod.database import MovingObjectDatabase
from repro.mod.updates import ChangeDirection, New
from repro.obs import Instrumentation, Tracer
from repro.obs.tracing import RingBufferSink
from repro.server import ServerClosedError
from tests._oracle import answers_equal


def _gd(x=0.0, y=0.0):
    return SquaredEuclideanDistance([x, y])


def _fresh_db(n=8, seed=13):
    rng = random.Random(seed)
    db = MovingObjectDatabase(initial_time=0.0)
    for i in range(n):
        db.apply(
            New(
                f"o{i}",
                0.01 * (i + 1),
                velocity=Vector.of(rng.uniform(-3, 3), rng.uniform(-3, 3)),
                position=Vector.of(
                    rng.uniform(-15, 15), rng.uniform(-15, 15)
                ),
            )
        )
    return db


def _stir(db, times, seed=0):
    rng = random.Random(seed)
    oids = sorted(db.object_ids)
    for t in times:
        db.apply(
            ChangeDirection(
                rng.choice(oids),
                t,
                Vector.of(rng.uniform(-3, 3), rng.uniform(-3, 3)),
            )
        )


class TestCloseWindowClipping:
    def test_close_behind_shared_clock_clips_not_clamps(self):
        """A co-tenant advancing the shared sweep must not widen
        another tenant's close window."""
        db = _fresh_db()
        server = serve(db)
        gd = _gd()
        victim = server.register_knn(gd, k=2)
        cotenant = server.register_knn(gd, k=2)  # same group, same view
        _stir(db, [1.0, 2.0])
        cotenant.advance_to(10.0)  # shared clock now far past 5.0
        answer = victim.close(at=5.0)
        assert answer.interval.lo == victim.start
        assert answer.interval.hi == 5.0  # exactly as requested
        for oid in answer.objects:
            for iv in answer.intervals_for(oid):
                assert iv.hi <= 5.0
        # Bitwise-identical to a run where nobody advanced past 5.0.
        db2 = _fresh_db()
        server2 = serve(db2)
        control = server2.register_knn(_gd(), k=2)
        _stir(db2, [1.0, 2.0])
        expected = control.close(at=5.0)
        assert answer_to_dict(answer) == answer_to_dict(expected)
        server.shutdown()
        server2.shutdown()

    def test_close_behind_clock_multiknn_clips_every_k(self):
        db = _fresh_db()
        server = serve(db)
        gd = _gd()
        victim = server.register_multiknn(gd, (1, 3))
        cotenant = server.register_knn(gd, k=1)
        _stir(db, [1.0])
        cotenant.advance_to(9.0)
        answers = victim.close(at=3.0)
        for k, answer in answers.items():
            assert answer.interval.hi == 3.0, f"k={k}"
        server.shutdown()

    def test_close_before_start_raises_value_error(self):
        db = _fresh_db()
        server = serve(db)
        session = server.register_knn(_gd(), k=1)
        with pytest.raises(ValueError, match="precedes session"):
            session.close(at=session.start - 0.5)
        # the session is still usable after the rejected close
        assert session.state == "active"
        session.close(at=session.start + 1.0)
        server.shutdown()


class TestHealRecordsCause:
    def _poisoned_run(self):
        sink = RingBufferSink()
        observe = Instrumentation(tracer=Tracer(sink))
        db = _fresh_db()
        server = serve(db, observe=observe)
        gd = _gd()
        knn = server.register_knn(gd, k=2)
        within = server.register_within(gd, 60.0)  # co-tenant group
        _stir(db, [1.0])
        knn.advance_to(50.0)  # poison: sweep far past the MOD clock
        _stir(db, [2.0])  # accepted by the MOD, in the knn sweep's past
        return server, sink, observe, knn, within

    def test_heal_trace_names_the_exception(self):
        server, sink, observe, knn, within = self._poisoned_run()
        assert server.stats.rebuilds >= 1
        events = sink.events("server.heal")
        assert events, "no server.heal trace event recorded"
        attrs = events[0]["attrs"]
        assert attrs["outcome"] == "rebuilt"
        # The bare-except bug discarded these: the triggering type and
        # message must be preserved for diagnosis.
        assert attrs["error"] not in ("", "unknown")
        assert attrs["message"]
        assert attrs["group"] == 1
        assert attrs["failures"] >= 1
        server.shutdown()

    def test_heal_metric_carries_error_and_outcome_labels(self):
        server, sink, observe, knn, within = self._poisoned_run()
        snap = observe.metrics.snapshot()
        heal_series = {
            key: value
            for key, value in snap.items()
            if key.startswith("server_heal_total")
        }
        assert heal_series, "server_heal_total never incremented"
        assert any(
            'outcome="rebuilt"' in key and 'error="unknown"' not in key
            for key in heal_series
        )
        server.shutdown()

    def test_non_engine_faults_propagate_instead_of_healing(self):
        """A TypeError (user-code bug, not an engine fault) must reach
        the caller, not be laundered into a rebuild."""
        db = _fresh_db()
        server = serve(db)
        session = server.register_knn(_gd(), k=1)
        group = session.group

        def explode(*args, **kwargs):
            raise TypeError("user gdistance returned a string")

        group.apply = explode
        with pytest.raises(TypeError, match="user gdistance"):
            _stir(db, [1.0])
        # No heal was attempted: the group is untouched and the
        # session still serves.
        assert server.stats.rebuilds == 0
        assert server.stats.quarantines == 0
        assert session.state == "active"
        server.shutdown()

    def test_engine_faults_still_heal_transparently(self):
        server, sink, observe, knn, within = self._poisoned_run()
        # the victim keeps serving through the heal
        final = knn.close(at=50.0)
        assert final is not None
        assert within.close(at=3.0) is not None
        server.shutdown()


class TestShutdownRefusesUpdates:
    def test_on_update_after_shutdown_raises(self):
        db = _fresh_db()
        server = serve(db)
        server.register_knn(_gd(), k=1)
        server.shutdown()
        late = New(
            "late",
            99.0,
            position=Vector.of(0.0, 0.0),
            velocity=Vector.of(0.0, 0.0),
        )
        with pytest.raises(ServerClosedError, match="shut-down server"):
            server._on_update(late)

    def test_register_after_shutdown_raises_typed(self):
        db = _fresh_db()
        server = serve(db)
        server.shutdown()
        with pytest.raises(ServerClosedError):
            server.register_knn(_gd(), k=1)

    def test_normal_shutdown_detaches_cleanly(self):
        """The regular path is unaffected: shutdown unsubscribes, so
        later database writes flow without reaching the server."""
        db = _fresh_db()
        server = serve(db)
        session = server.register_knn(_gd(), k=1)
        _stir(db, [1.0])
        session.close(at=2.0)
        server.shutdown()
        _stir(db, [3.0])  # no listener left; must not raise
        assert db.last_update_time == 3.0
