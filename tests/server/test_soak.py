"""Concurrency soak: many interleaved sessions on one shared server.

Each seed drives one :class:`~repro.server.QueryServer` through a long
randomized schedule in which mixed-kind sessions (knn / within /
multiknn, varied parameters, shard counts 1-2) register, advance, and
close at interleaved points of one update stream.  Every session is
shadowed by a :class:`tests.server._mirrors.Mirror` — a fresh
standalone ``ContinuousQuerySession`` started at exactly the server
session's ``start`` over a twin database — and every probe is also
checked against the naive O(N^2) baseline:

    server members  ==  mirror members  ==  naive instant answer
    server close    ~=  mirror close    ~=  naive windowed answer

5 seeds x 12 sessions = 60 sessions total, well past the 50-session
soak floor, with registrations spread over the first ~60% of each
stream so late sessions join groups whose sweeps are mid-flight.
"""

import random

import pytest

from repro.baselines.naive import naive_knn_answer, naive_within_answer
from repro.core.api import serve
from repro.geometry.intervals import Interval
from repro.geometry.vectors import Vector
from repro.gdist.euclidean import SquaredEuclideanDistance
from repro.mod.database import MovingObjectDatabase
from repro.mod.updates import ChangeDirection, New, Terminate
from repro.server import ServerConfig
from tests._oracle import PROBE_FRACTION, answers_equal
from tests.server._mirrors import Mirror

SEEDS = range(5)
SESSIONS_PER_SEED = 12
STREAM_LENGTH = 24


def _build_world(rng):
    """An initial population plus a long chronological update stream."""
    objects = rng.randint(6, 9)
    initial = [
        New(
            f"o{i}",
            0.001 * (i + 1),
            velocity=Vector.of(rng.uniform(-4, 4), rng.uniform(-4, 4)),
            position=Vector.of(rng.uniform(-20, 20), rng.uniform(-20, 20)),
        )
        for i in range(objects)
    ]
    live = [u.oid for u in initial]
    born = 0
    stream = []
    t = 1.0
    for _ in range(STREAM_LENGTH):
        t += rng.uniform(0.4, 1.5)
        choice = rng.random()
        if choice < 0.18:
            born += 1
            oid = f"n{born}"
            stream.append(
                New(
                    oid,
                    t,
                    velocity=Vector.of(rng.uniform(-4, 4), rng.uniform(-4, 4)),
                    position=Vector.of(rng.uniform(-20, 20), rng.uniform(-20, 20)),
                )
            )
            live.append(oid)
        elif choice < 0.30 and len(live) > 3:
            stream.append(Terminate(live.pop(rng.randrange(len(live))), t))
        else:
            stream.append(
                ChangeDirection(
                    rng.choice(live),
                    t,
                    Vector.of(rng.uniform(-4, 4), rng.uniform(-4, 4)),
                )
            )
    return initial, stream


def _session_plans(rng, stream_length):
    """(kind, params, shards, register_index, close_index) per session;
    closes strictly follow registrations so every window is non-empty."""
    plans = []
    for _ in range(SESSIONS_PER_SEED):
        kind = rng.choice(("knn", "within", "multiknn"))
        if kind == "knn":
            params = {"k": rng.randint(1, 3)}
        elif kind == "within":
            params = {"threshold": rng.uniform(30.0, 350.0)}
        else:
            params = {
                "ks": tuple(sorted(rng.sample([1, 2, 3, 4], rng.randint(2, 3))))
            }
        reg = rng.randrange(0, int(stream_length * 0.6))
        close = rng.randrange(reg + 1, stream_length + 1)
        plans.append((kind, params, rng.choice((1, 2)), reg, close))
    return plans


def _naive_instant(db, gd, kind, params, t):
    instant = Interval(t, t)
    if kind == "knn":
        return naive_knn_answer(db, gd, instant, params["k"]).at(t)
    if kind == "within":
        return naive_within_answer(
            db, gd, instant, params["threshold"]
        ).at(t)
    return {
        k: naive_knn_answer(db, gd, instant, k).at(t) for k in params["ks"]
    }


def _naive_final(db, gd, kind, params, window):
    if kind == "knn":
        return naive_knn_answer(db, gd, window, params["k"])
    if kind == "within":
        return naive_within_answer(db, gd, window, params["threshold"])
    return {k: naive_knn_answer(db, gd, window, k) for k in params["ks"]}


def _register(server, kind, gd, params, shards):
    if kind == "knn":
        return server.register_knn(gd, k=params["k"], shards=shards)
    if kind == "within":
        return server.register_within(
            gd, params["threshold"], shards=shards
        )
    return server.register_multiknn(gd, params["ks"], shards=shards)


class _Tenant:
    """One live session with its mirror and bookkeeping."""

    def __init__(self, sid, kind, params, session, mirror):
        self.sid = sid
        self.kind = kind
        self.params = params
        self.session = session
        self.mirror = mirror

    def probe(self, t, db, gd, label):
        got = self.session.advance_to(t)
        if self.kind == "multiknn":
            got = {k: set(v) for k, v in got.items()}
        else:
            got = set(got)
        want = self.mirror.advance_to(t)
        assert got == want, f"{label}: server {got} != mirror {want}"
        naive = _naive_instant(db, gd, self.kind, self.params, t)
        assert got == naive, f"{label}: server {got} != naive {naive}"

    def close(self, at, db, gd, label):
        got = self.session.close(at=at)
        want = self.mirror.close(at=at)
        assert answers_equal(got, want), (
            f"{label}: close answer disagrees with the standalone mirror"
        )
        window = Interval(self.session.start, at)
        naive = _naive_final(db, gd, self.kind, self.params, window)
        assert answers_equal(got, naive), (
            f"{label}: close answer disagrees with the naive baseline"
        )


@pytest.mark.parametrize("seed", SEEDS)
def test_soak(seed):
    rng = random.Random(9100 + seed)
    initial, stream = _build_world(rng)
    plans = _session_plans(rng, len(stream))
    gd = SquaredEuclideanDistance(
        [rng.uniform(-5, 5), rng.uniform(-5, 5)]
    )

    db = MovingObjectDatabase(initial_time=0.0)
    mirror_db = MovingObjectDatabase(initial_time=0.0)
    for update in initial:
        db.apply(update)
        mirror_db.apply(update)

    server = serve(db, ServerConfig(batch_size=1 + seed % 3))
    tenants = []
    try:
        for i, update in enumerate(stream):
            db.apply(update)
            mirror_db.apply(update)
            now = update.time
            for sid, (kind, params, shards, reg, _) in enumerate(plans):
                if reg != i:
                    continue
                session = _register(server, kind, gd, params, shards)
                assert session.start == now  # window opens at tau
                mirror = Mirror(
                    mirror_db, kind, gd, params, start=session.start
                )
                tenants.append(_Tenant(sid, kind, params, session, mirror))
            nxt = stream[i + 1].time if i + 1 < len(stream) else now + 1.0
            probe = now + PROBE_FRACTION * (nxt - now)
            if tenants and rng.random() < 0.8:
                sample = rng.sample(
                    tenants, rng.randint(1, min(4, len(tenants)))
                )
                for tenant in sample:
                    tenant.probe(
                        probe, db, gd, f"seed {seed} session {tenant.sid} t={probe}"
                    )
                now = probe
            closing = [t for t in tenants if plans[t.sid][4] == i + 1]
            for tenant in closing:
                tenant.close(
                    now, db, gd, f"seed {seed} session {tenant.sid} close={now}"
                )
                tenants.remove(tenant)
        horizon = stream[-1].time + rng.uniform(1.0, 3.0)
        for tenant in list(tenants):
            tenant.close(
                horizon, db, gd, f"seed {seed} session {tenant.sid} final"
            )
        # Every group was retired with its last tenant; the shared
        # applier never dropped or duplicated a fan-out application.
        assert server.group_count == 0
        assert server.stats.closed == SESSIONS_PER_SEED
        assert server.stats.updates == len(stream)
    finally:
        server.shutdown()


def test_soak_covers_fifty_sessions():
    """The soak matrix drives at least the 50 sessions the issue floor
    demands (5 seeds x 12 sessions)."""
    assert len(SEEDS) * SESSIONS_PER_SEED >= 50
