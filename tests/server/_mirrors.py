"""Per-session mirror evaluations for server differential tests.

A :class:`Mirror` is the *unshared* twin of one server session: a
standalone :class:`~repro.core.api.ContinuousQuerySession` (or a bare
engine + MultiKNN view — there is no multiknn session constructor)
over its own copy of the database, started at exactly the server
session's ``start``.  Server answers must equal mirror answers at
every probe and at close; since the mirror pays one full sweep per
session, agreement proves the shared fan-out never perturbs answers.
"""

from __future__ import annotations

from repro.core.api import ContinuousQuerySession
from repro.geometry.intervals import Interval
from repro.sweep.engine import SweepEngine
from repro.sweep.multiknn import MultiKNN

__all__ = ["Mirror"]


class Mirror:
    """One standalone continuous query mirroring a server session.

    ``gdistance`` must already be a :class:`~repro.gdist.base.GDistance`
    and ``params`` the server session's ``params`` dict — thresholds are
    therefore compared as-is on both sides (no one-sided squaring).
    """

    def __init__(self, db, kind, gdistance, params, start):
        self.kind = kind
        self._db = db
        if kind == "multiknn":
            self.ks = list(params["ks"])
            self._engine = SweepEngine(
                db, gdistance, Interval.at_least(start)
            )
            self._view = MultiKNN(self._engine, self.ks)
            db.subscribe(self._engine.on_update)
        elif kind == "knn":
            self._sess = ContinuousQuerySession.knn(
                db, gdistance, k=params["k"], start=start
            )
        elif kind == "within":
            self._sess = ContinuousQuerySession.within(
                db, gdistance, params["threshold"], start=start
            )
        else:
            raise ValueError(f"unknown kind {kind!r}")

    def advance_to(self, t):
        if self.kind == "multiknn":
            self._engine.advance_to(t)
            return {k: set(self._view.members(k)) for k in self.ks}
        return set(self._sess.advance_to(t))

    def close(self, at):
        if self.kind == "multiknn":
            self._db.unsubscribe(self._engine.on_update)
            self._engine.advance_to(at)
            self._engine.finalize()
            return self._view.answers()
        return self._sess.close(at=at)
