"""Property-based tests (hypothesis) for admission-control invariants.

The four invariants under test, each over randomized worlds, session
mixes, and interleavings:

1. **Close is terminal** — a closed session never yields another
   answer: every later read raises ``SessionClosedError`` while the
   final answer stays readable.
2. **Shed is typed** — sessions dropped by load shedding raise
   ``SessionShedError`` on every subsequent operation, and exactly the
   shed sessions do so.
3. **No silent drops** — every registration either raises
   ``AdmissionError`` synchronously or yields a session the server
   tracks to a terminal state; queued sessions activate FIFO as
   capacity frees and every activated session produces an answer.
4. **Registration-order invariance** — sessions registered at the same
   timestamp produce identical members/answers regardless of the order
   in which they were registered (shared-view refcounting and group
   keying must be order-insensitive).
"""

import math

from hypothesis import given, settings, strategies as st

from repro.core.api import serve
from repro.geometry.vectors import Vector
from repro.gdist.euclidean import SquaredEuclideanDistance
from repro.mod.database import MovingObjectDatabase
from repro.mod.updates import ChangeDirection, New, Terminate
from repro.server import (
    AdmissionError,
    ServerConfig,
    SessionClosedError,
    SessionShedError,
)
from tests._oracle import answers_equal

SETTINGS = settings(max_examples=40, deadline=None)


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------
@st.composite
def worlds(draw):
    """A small MOD plus a short chronological update stream.

    Coordinates are integers so hypothesis shrinks cleanly; times are
    the fixed grid 1.0, 2.0, ... so streams are always chronological.
    """
    n = draw(st.integers(3, 5))
    coord = st.integers(-8, 8)
    vel = st.integers(-3, 3)
    initial = []
    for i in range(n):
        initial.append(
            New(
                f"o{i}",
                0.01 * (i + 1),
                velocity=Vector.of(float(draw(vel)), float(draw(vel))),
                position=Vector.of(float(draw(coord)), float(draw(coord))),
            )
        )
    live = [u.oid for u in initial]
    events = []
    for j in range(draw(st.integers(2, 6))):
        t = 1.0 + j
        kind = draw(st.sampled_from(("chdir", "chdir", "chdir", "term")))
        if kind == "term" and len(live) > 2:
            events.append(Terminate(live.pop(0), t))
        else:
            events.append(
                ChangeDirection(
                    draw(st.sampled_from(live)),
                    t,
                    Vector.of(float(draw(vel)), float(draw(vel))),
                )
            )
    return initial, events


def session_specs():
    knn = st.integers(1, 3).map(lambda k: ("knn", {"k": k}))
    within = st.sampled_from([20.0, 80.0, 200.0]).map(
        lambda d: ("within", {"threshold": d})
    )
    multi = st.sampled_from([(1, 2), (1, 3), (2, 3)]).map(
        lambda ks: ("multiknn", {"ks": ks})
    )
    return st.one_of(knn, within, multi)


def _build_db(initial):
    db = MovingObjectDatabase(initial_time=0.0)
    for update in initial:
        db.apply(update)
    return db


def _register(server, spec, priority=0):
    kind, params = spec
    if kind == "knn":
        return server.register_knn(
            SquaredEuclideanDistance([0.0, 0.0]), k=params["k"],
            priority=priority,
        )
    if kind == "within":
        return server.register_within(
            SquaredEuclideanDistance([0.0, 0.0]), params["threshold"],
            priority=priority,
        )
    return server.register_multiknn(
        SquaredEuclideanDistance([0.0, 0.0]), params["ks"],
        priority=priority,
    )


# ---------------------------------------------------------------------------
# 1. Close is terminal
# ---------------------------------------------------------------------------
@SETTINGS
@given(world=worlds(), specs=st.lists(session_specs(), min_size=1, max_size=4))
def test_no_answers_after_close(world, specs):
    initial, events = world
    db = _build_db(initial)
    server = serve(db)
    try:
        sessions = [_register(server, spec) for spec in specs]
        for update in events:
            db.apply(update)
        horizon = (events[-1].time if events else 0.1) + 1.0
        for session in sessions:
            answer = session.close(at=horizon)
            assert answer is not None
            assert session.answer is answer
        for session in sessions:
            for op in (
                lambda s: s.members,
                lambda s: s.advance_to(horizon + 1.0),
                lambda s: s.close(),
                lambda s: s.current_time,
            ):
                try:
                    op(session)
                except SessionClosedError:
                    pass
                else:
                    raise AssertionError(
                        "a closed session served another read"
                    )
            # ...but the final answer must survive indefinitely.
            assert session.answer is not None
    finally:
        server.shutdown()


# ---------------------------------------------------------------------------
# 2. Shed sessions raise their typed error
# ---------------------------------------------------------------------------
@SETTINGS
@given(
    world=worlds(),
    specs=st.lists(
        st.tuples(session_specs(), st.integers(0, 3)),
        min_size=2,
        max_size=5,
    ),
)
def test_shed_sessions_raise_typed_error(world, specs):
    initial, events = world
    db = _build_db(initial)
    # A sub-unity ceiling over a 1-update window sheds on every flush
    # that costs any sweep work at all.
    server = serve(
        db, ServerConfig(op_rate_ceiling=1e-6, op_rate_window=1)
    )
    try:
        sessions = [
            _register(server, spec, priority=prio) for spec, prio in specs
        ]
        for update in events:
            db.apply(update)
        shed = [s for s in sessions if s.state == "shed"]
        assert len(shed) == server.stats.shed
        for session in shed:
            for op in (
                lambda s: s.members,
                lambda s: s.advance_to(events[-1].time + 1.0),
                lambda s: s.close(),
            ):
                try:
                    op(session)
                except SessionShedError:
                    pass
                else:
                    raise AssertionError(
                        "a shed session served a read without its "
                        "typed error"
                    )
        # Survivors stay fully serviceable: never a silent drop.
        for session in sessions:
            if session.state == "active":
                assert session.close(at=events[-1].time + 1.0) is not None
    finally:
        server.shutdown()


# ---------------------------------------------------------------------------
# 3. Accepted sessions are never silently dropped
# ---------------------------------------------------------------------------
@SETTINGS
@given(
    world=worlds(),
    specs=st.lists(session_specs(), min_size=1, max_size=8),
    budget=st.integers(1, 3),
    max_queued=st.integers(0, 4),
)
def test_accepted_sessions_never_silently_dropped(
    world, specs, budget, max_queued
):
    initial, events = world
    db = _build_db(initial)
    server = serve(
        db,
        ServerConfig(
            max_sessions=budget,
            admission_policy="queue",
            max_queued=max_queued,
        ),
    )
    try:
        accepted, rejected = [], 0
        for spec in specs:
            try:
                accepted.append(_register(server, spec))
            except AdmissionError:
                rejected += 1
        assert rejected == server.stats.rejected
        # Every accepted session is tracked, in a well-defined state.
        tracked = set(server.sessions())
        for session in accepted:
            assert session in tracked
            assert session.state in ("active", "queued")
        active = [s for s in accepted if s.state == "active"]
        queued = [s for s in accepted if s.state == "queued"]
        assert len(active) <= budget
        assert len(queued) <= max_queued
        for update in events:
            db.apply(update)
        horizon = (events[-1].time if events else 0.1) + 1.0
        # Draining actives promotes the queue strictly FIFO.
        order = []
        while active:
            assert active[0].close(at=horizon) is not None
            active.pop(0)
            promoted = [s for s in queued if s.state == "active"]
            for session in promoted:
                order.append(queued.index(session))
                active.append(session)
                queued.remove(session)
        assert order == sorted(order), "queue promotion was not FIFO"
        assert not queued, "capacity freed but sessions stayed queued"
        # Terminal accounting: nothing vanished.
        states = [s.state for s in accepted]
        assert all(state == "closed" for state in states)
        assert server.stats.closed == len(accepted)
        assert (
            server.stats.registered
            == len(accepted) + server.stats.rejected
        )
    finally:
        server.shutdown()


# ---------------------------------------------------------------------------
# 4. Same-timestamp registration order never changes answers
# ---------------------------------------------------------------------------
@SETTINGS
@given(
    world=worlds(),
    specs=st.lists(session_specs(), min_size=2, max_size=4),
    data=st.data(),
)
def test_registration_order_invariance(world, specs, data):
    initial, events = world
    permutation = data.draw(st.permutations(range(len(specs))))
    db_a = _build_db(initial)
    db_b = _build_db(initial)
    server_a = serve(db_a)
    server_b = serve(db_b)
    try:
        sessions_a = [_register(server_a, spec) for spec in specs]
        sessions_b_perm = [
            _register(server_b, specs[i]) for i in permutation
        ]
        # Undo the permutation so index i matches spec i on both sides.
        sessions_b = [None] * len(specs)
        for slot, i in enumerate(permutation):
            sessions_b[i] = sessions_b_perm[slot]
        for update in events:
            db_a.apply(update)
            db_b.apply(update)
            probe = update.time + 0.41421356237309515
            for a, b in zip(sessions_a, sessions_b):
                ma, mb = a.advance_to(probe), b.advance_to(probe)
                if isinstance(ma, dict):
                    ma = {k: set(v) for k, v in ma.items()}
                    mb = {k: set(v) for k, v in mb.items()}
                else:
                    ma, mb = set(ma), set(mb)
                assert ma == mb, (
                    f"members diverged under registration order "
                    f"{permutation}: {ma} != {mb}"
                )
        horizon = (events[-1].time if events else 0.1) + 1.0
        for a, b in zip(sessions_a, sessions_b):
            assert a.start == b.start
            assert answers_equal(a.close(at=horizon), b.close(at=horizon)), (
                f"final answers diverged under registration order "
                f"{permutation}"
            )
    finally:
        server_a.shutdown()
        server_b.shutdown()
