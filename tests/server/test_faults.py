"""Fault isolation: one tenant's engine failure never touches others.

The viable in-process poison is the sweep-past race: advance one
session's group far ahead of the MOD clock, then apply an update whose
timestamp the database accepts (it is after ``tau``) but the advanced
engine rejects ("update in the sweep's past").  The server heals the
failing group with the supervisor pattern — salvage, Theorem 5
rebuild, stitch at close — or quarantines it past the heal budget.
Either way the co-tenant groups must be *bitwise* unaffected: their
probe sets and final answers are compared against a no-fault control
run via exact ``answer_to_dict`` equality, not approximate tolerance.

Also here: WAL durability (a crashed server is rebuilt from
``recover()`` + the sessions' ``spec()``s and then tracks the original
exactly) and dirty-stream ingestion (rejected updates from a
``FaultInjector``-perturbed stream never reach any engine group).
"""

import random

import pytest

from repro.core.api import serve
from repro.geometry.intervals import Interval
from repro.geometry.vectors import Vector
from repro.gdist.euclidean import SquaredEuclideanDistance
from repro.io import answer_to_dict
from repro.mod.database import MovingObjectDatabase
from repro.mod.updates import ChangeDirection, New
from repro.parallel.merge import clip_answer
from repro.resilience.wal import WriteAheadLog, recover
from repro.server import (
    ServerConfig,
    SessionQuarantinedError,
)
from repro.workloads.faults import FaultInjector
from tests._oracle import answers_equal

POISON_HORIZON = 50.0


def _gd():
    return SquaredEuclideanDistance([0.0, 0.0])


def _fresh_db(n=8, seed=13):
    rng = random.Random(seed)
    db = MovingObjectDatabase(initial_time=0.0)
    for i in range(n):
        db.apply(
            New(
                f"o{i}",
                0.01 * (i + 1),
                velocity=Vector.of(rng.uniform(-3, 3), rng.uniform(-3, 3)),
                position=Vector.of(rng.uniform(-15, 15), rng.uniform(-15, 15)),
            )
        )
    return db


def _stream(times, seed=29, n=8):
    rng = random.Random(seed)
    return [
        ChangeDirection(
            f"o{rng.randrange(n)}",
            t,
            Vector.of(rng.uniform(-3, 3), rng.uniform(-3, 3)),
        )
        for t in times
    ]


def _drive(poison, quarantine_after=3):
    """One run; returns the within co-tenant's probes + final answer
    (exact dicts) plus the knn victim's outcome and server stats."""
    db = _fresh_db()
    server = serve(db, ServerConfig(quarantine_after=quarantine_after))
    gd = _gd()
    knn = server.register_knn(gd, k=2)
    within = server.register_within(gd, 60.0)
    probes = []
    updates = _stream([1.0, 2.0, 3.0, 4.0, 5.0])
    try:
        for update in updates[:2]:
            db.apply(update)
            probes.append(sorted(within.advance_to(update.time + 0.41)))
        if poison:
            # Push only the knn group's sweep far past the MOD clock;
            # the next accepted update is then in *its* past.
            knn.advance_to(POISON_HORIZON)
        for update in updates[2:]:
            db.apply(update)
            probes.append(sorted(within.advance_to(update.time + 0.41)))
        within_final = within.close(at=6.0)
        try:
            knn_final = knn.close(at=POISON_HORIZON)
        except SessionQuarantinedError:
            knn_final = None
        stats = server.stats
    finally:
        server.shutdown()
    return probes, answer_to_dict(within_final), knn_final, stats


class TestCotenantIsolation:
    def test_heal_leaves_cotenant_bitwise_unchanged(self):
        clean_probes, clean_within, clean_knn, clean_stats = _drive(
            poison=False
        )
        probes, within_dict, knn_final, stats = _drive(poison=True)
        # The fault really happened and was healed, not absorbed.
        assert clean_stats.rebuilds == 0
        assert stats.rebuilds >= 1
        assert stats.quarantines == 0
        # The co-tenant saw the exact same world: probe-by-probe and
        # bit-by-bit on the serialized final answer.
        assert probes == clean_probes
        assert within_dict == clean_within
        # The victim survived the heal with a stitched answer that
        # matches the no-fault run.
        assert knn_final is not None
        assert answers_equal(knn_final, clean_knn)

    def test_quarantine_leaves_cotenant_bitwise_unchanged(self):
        clean_probes, clean_within, _, _ = _drive(poison=False)
        # A zero heal budget turns the first failure into quarantine.
        probes, within_dict, knn_final, stats = _drive(
            poison=True, quarantine_after=0
        )
        assert stats.quarantines == 1
        assert knn_final is None  # typed error, no fabricated answer
        assert probes == clean_probes
        assert within_dict == clean_within


def _register_spec(server, spec):
    kind = spec["kind"]
    if kind == "knn":
        return server.register_knn(
            spec["query"], k=spec["k"], priority=spec["priority"],
            shards=spec["shards"],
        )
    if kind == "within":
        return server.register_within(
            spec["query"], spec["threshold"], priority=spec["priority"],
            shards=spec["shards"],
        )
    return server.register_multiknn(
        spec["query"], spec["ks"], priority=spec["priority"],
        shards=spec["shards"],
    )


class TestWalRecovery:
    def test_recovered_server_tracks_the_original(self, tmp_path):
        gd = _gd()
        db = MovingObjectDatabase(initial_time=0.0)
        wal = WriteAheadLog(str(tmp_path), fsync=False)
        rng = random.Random(3)
        for i in range(8):
            update = New(
                f"o{i}",
                0.01 * (i + 1),
                velocity=Vector.of(rng.uniform(-3, 3), rng.uniform(-3, 3)),
                position=Vector.of(
                    rng.uniform(-15, 15), rng.uniform(-15, 15)
                ),
            )
            db.apply(update)
            wal.append(update)
        server = serve(db)
        server.register_knn(gd, k=2)
        server.register_within(gd, 80.0, shards=2)
        server.register_multiknn(gd, (1, 3))
        prefix = _stream([1.0, 2.0, 3.0], seed=31)
        for update in prefix[:2]:
            db.apply(update)
            wal.append(update)
        wal.checkpoint(db)  # exercise checkpoint + WAL-tail replay
        for update in prefix[2:]:
            db.apply(update)
            wal.append(update)
        specs = [s.spec() for s in server.sessions()]
        wal.close()  # crash point: only durable state survives

        db2, _ = recover(str(tmp_path))
        assert db2.last_update_time == db.last_update_time
        assert sorted(db2.object_ids) == sorted(db.object_ids)
        server2 = serve(db2)
        recovered = [_register_spec(server2, spec) for spec in specs]
        rec_start = db2.last_update_time
        originals = server.sessions()
        try:
            # Identical post-recovery tails...
            tail = _stream([4.0, 5.0, 6.0], seed=37)
            for update in tail:
                db.apply(update)
                db2.apply(update)
                probe = update.time + 0.41
                for a, b in zip(originals, recovered):
                    ma, mb = a.advance_to(probe), b.advance_to(probe)
                    if isinstance(ma, dict):
                        ma = {k: set(v) for k, v in ma.items()}
                        mb = {k: set(v) for k, v in mb.items()}
                    else:
                        ma, mb = set(ma), set(mb)
                    assert ma == mb, f"recovered members diverged at {probe}"
            # ...and identical answers over the shared span.
            for a, b in zip(originals, recovered):
                got = b.close(at=7.0)
                want = a.close(at=7.0)
                if isinstance(want, dict):
                    want = {
                        k: clip_answer(v, rec_start, 7.0)
                        for k, v in want.items()
                    }
                else:
                    want = clip_answer(want, rec_start, 7.0)
                assert answers_equal(got, want), (
                    "recovered session's answer diverged from the "
                    "original's over the post-recovery span"
                )
        finally:
            server.shutdown()
            server2.shutdown()


class TestDirtyStream:
    def test_rejected_updates_never_reach_groups(self):
        clean = _stream(
            [1.0, 1.7, 2.4, 3.1, 3.9, 4.6, 5.2, 6.0], seed=41
        )
        injector = FaultInjector(
            seed=5,
            corrupt_rate=0.3,
            duplicate_rate=0.25,
            reorder_rate=0.25,
            spurious_rate=0.2,
        )
        perturbed, report = injector.perturb(clean)
        assert report.total > 0, "the injector must actually inject"

        def build():
            db = _fresh_db(seed=43)
            server = serve(db)
            gd = _gd()
            return db, server, [
                server.register_knn(gd, k=2),
                server.register_within(gd, 70.0),
            ]

        db_dirty, server_dirty, dirty_sessions = build()
        accepted = []
        for update in perturbed:
            try:
                db_dirty.apply(update)
            except Exception:
                continue  # the MOD's validation quarantined it
            accepted.append(update)
        assert len(accepted) < len(perturbed)

        db_clean, server_clean, clean_sessions = build()
        for update in accepted:
            db_clean.apply(update)

        # The server only ever saw what the MOD accepted...
        assert server_dirty.stats.updates == len(accepted)
        assert server_dirty.stats.rebuilds == 0
        # ...so both servers are bitwise interchangeable.
        horizon = db_dirty.last_update_time + 1.0
        for a, b in zip(dirty_sessions, clean_sessions):
            assert answer_to_dict(a.close(at=horizon)) == answer_to_dict(
                b.close(at=horizon)
            )
        server_dirty.shutdown()
        server_clean.shutdown()
