"""Collision discovery and separation monitoring.

All analyses reduce to the squared-distance curve between two
trajectories — piecewise quadratic, so minima are closed-form and
violation intervals come from exact root isolation.  Pairwise analyses
are O(N^2) in the number of objects (every pair can genuinely conflict;
for the rank-based queries that avoid the quadratic blow-up, use the
sweep engine's views instead).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.geometry.intervals import Interval, IntervalSet
from repro.geometry.roots import solution_intervals
from repro.mod.database import MovingObjectDatabase
from repro.mod.updates import ChangeDirection, New, ObjectId, Terminate, Update
from repro.trajectory.trajectory import Trajectory


@dataclass(frozen=True)
class ClosestApproach:
    """The minimal separation between two objects and when it occurs."""

    time: float
    distance: float

    def __repr__(self) -> str:
        return f"ClosestApproach(t={self.time:g}, d={self.distance:g})"


@dataclass(frozen=True)
class Conflict:
    """A separation violation between a pair of objects."""

    pair: FrozenSet[ObjectId]
    intervals: IntervalSet
    closest: ClosestApproach

    @property
    def duration(self) -> float:
        """Total violation time."""
        return self.intervals.total_length

    def __repr__(self) -> str:
        a, b = sorted(self.pair, key=str)
        return (
            f"Conflict({a!r}~{b!r}, {self.intervals!r}, min {self.closest!r})"
        )


def closest_approach(
    a: Trajectory,
    b: Trajectory,
    interval: Optional[Interval] = None,
) -> ClosestApproach:
    """Time and distance of minimal separation over an interval.

    The squared distance is piecewise quadratic: per piece the minimum
    is at an endpoint or the vertex, all closed-form.
    """
    sq = a.squared_distance_to(b)
    window = sq.domain if interval is None else sq.domain.intersect(interval)
    if window is None:
        raise ValueError("objects never coexist in the requested interval")
    best_time = window.lo
    best_value = math.inf
    for piece_interval, poly in sq.restrict(window).pieces:
        candidates = []
        if math.isfinite(piece_interval.lo):
            candidates.append(piece_interval.lo)
        if math.isfinite(piece_interval.hi):
            candidates.append(piece_interval.hi)
        derivative = poly.derivative()
        if derivative.degree == 1:
            vertex = -derivative.coeffs[0] / derivative.coeffs[1]
            if piece_interval.contains(vertex):
                candidates.append(vertex)
        if not candidates:
            candidates.append(0.0)
        for t in candidates:
            value = poly(t)
            if value < best_value:
                best_value, best_time = value, t
    # Report the separation recomputed from the trajectories at the
    # chosen time: near-zero minima amplify polynomial-evaluation error
    # through the sqrt, so sqrt(poly(t)) can disagree with the distance
    # actually attained at t by more than the caller's tolerance.
    attained = a.position(best_time).distance_to(b.position(best_time))
    return ClosestApproach(best_time, attained)


def _violation_intervals(
    a: Trajectory, b: Trajectory, separation: float, window: Interval
) -> IntervalSet:
    sq = a.squared_distance_to(b)
    overlap = sq.domain.intersect(window)
    if overlap is None:
        return IntervalSet()
    threshold = separation * separation
    out: List[Interval] = []
    for piece_interval, poly in sq.restrict(overlap).pieces:
        shifted = poly - threshold
        out.extend(solution_intervals(shifted, piece_interval, "<="))
    return IntervalSet(out)


def separation_conflicts(
    db: MovingObjectDatabase,
    separation: float,
    interval: Interval,
) -> List[Conflict]:
    """All pairs whose distance drops to ``separation`` or below during
    ``interval``, with exact violation intervals.

    Pairs are enumerated exhaustively (O(N^2)); each pair's analysis is
    exact and independent.  Results are sorted by first violation time.
    """
    if separation < 0:
        raise ValueError("separation must be nonnegative")
    items = sorted(db.all_items(), key=lambda kv: str(kv[0]))
    conflicts: List[Conflict] = []
    for (oid_a, traj_a), (oid_b, traj_b) in itertools.combinations(items, 2):
        if traj_a.domain.intersect(traj_b.domain) is None:
            continue
        violations = _violation_intervals(traj_a, traj_b, separation, interval)
        if violations.is_empty:
            continue
        hull = Interval(
            violations.intervals[0].lo, violations.intervals[-1].hi
        )
        closest = closest_approach(traj_a, traj_b, hull)
        conflicts.append(
            Conflict(frozenset({oid_a, oid_b}), violations, closest)
        )
    conflicts.sort(key=lambda c: c.intervals.intervals[0].lo)
    return conflicts


def meetings(
    db: MovingObjectDatabase,
    interval: Interval,
    tolerance: float = 1e-6,
) -> List[Conflict]:
    """Pairs that (essentially) occupy the same position at some time —
    Example 11's "police cars at the same positions as car #1404",
    generalized to all pairs."""
    return separation_conflicts(db, tolerance, interval)


class ConflictMonitor:
    """Eager conflict detection on a live database.

    Subscribes to the database and keeps, per pair, the exact violation
    intervals from the monitor's start to its horizon, recomputing only
    the pairs an update touches (everything else is unaffected — the
    same locality argument the sweep engine uses for ``chdir``).
    """

    def __init__(
        self,
        db: MovingObjectDatabase,
        separation: float,
        horizon: float = math.inf,
    ) -> None:
        if separation < 0:
            raise ValueError("separation must be nonnegative")
        self._db = db
        self._separation = separation
        self._window = Interval(db.last_update_time, horizon)
        self._violations: Dict[FrozenSet[ObjectId], IntervalSet] = {}
        self.recomputed_pairs = 0
        for oid_a, oid_b in itertools.combinations(
            sorted(db.all_items(), key=lambda kv: str(kv[0])), 2
        ):
            self._refresh_pair(oid_a[0], oid_b[0])
        db.subscribe(self.on_update)

    def _refresh_pair(self, a: ObjectId, b: ObjectId) -> None:
        traj_a = self._db.trajectory(a)
        traj_b = self._db.trajectory(b)
        key = frozenset({a, b})
        if traj_a.domain.intersect(traj_b.domain) is None:
            self._violations.pop(key, None)
            return
        violations = _violation_intervals(
            traj_a, traj_b, self._separation, self._window
        )
        self.recomputed_pairs += 1
        if violations.is_empty:
            self._violations.pop(key, None)
        else:
            self._violations[key] = violations

    # -- live maintenance ---------------------------------------------------
    def on_update(self, update: Update) -> None:
        """Recompute only the pairs involving the updated object."""
        if isinstance(update, (New, Terminate, ChangeDirection)):
            target = update.oid
            for oid, _ in self._db.all_items():
                if oid != target:
                    self._refresh_pair(target, oid)

    def detach(self) -> None:
        """Stop receiving database updates."""
        self._db.unsubscribe(self.on_update)

    # -- inspection -------------------------------------------------------------
    @property
    def separation(self) -> float:
        """The separation minimum being monitored."""
        return self._separation

    def conflicts_at(self, t: float) -> List[FrozenSet[ObjectId]]:
        """Pairs in violation at time ``t`` (as currently predicted)."""
        return sorted(
            (
                pair
                for pair, violations in self._violations.items()
                if violations.contains(t)
            ),
            key=lambda p: tuple(sorted(p, key=str)),
        )

    def next_conflict_after(self, t: float) -> Optional[Tuple[float, FrozenSet[ObjectId]]]:
        """The earliest predicted violation starting after ``t``."""
        best: Optional[Tuple[float, FrozenSet[ObjectId]]] = None
        for pair, violations in self._violations.items():
            for iv in violations:
                if iv.hi < t:
                    continue
                start = max(iv.lo, t)
                if best is None or start < best[0]:
                    best = (start, pair)
                break
        return best

    def all_violations(self) -> Dict[FrozenSet[ObjectId], IntervalSet]:
        """Every pair's predicted violation intervals."""
        return dict(self._violations)
