"""Region residence analysis: when is an object inside a spatial region?

Constraint databases make spatial regions first-class (Section 2); for
a convex region (half-plane conjunction) and a piecewise-linear
trajectory, each half-plane constraint is linear in time per piece, so
the *residence set* — the exact time intervals the object spends inside
— is computable by root isolation.  This powers Example 3-style
analyses ("entered the county", "time spent in the sector") without
running the full first-order evaluator.
"""

from __future__ import annotations

import math
from typing import Dict, List

from repro.constraints.regions import Region
from repro.geometry.intervals import Interval, IntervalSet
from repro.geometry.poly import Polynomial
from repro.geometry.roots import solution_intervals
from repro.mod.database import MovingObjectDatabase
from repro.mod.updates import ObjectId
from repro.trajectory.trajectory import Trajectory


def residence_set(
    trajectory: Trajectory,
    region: Region,
    window: Interval = Interval.all_time(),
) -> IntervalSet:
    """Exact time intervals the object spends inside ``region``.

    Intersects, per trajectory piece, the solution sets of every
    half-plane constraint ``n . (v t + b) - c <= 0`` (linear in ``t``).
    """
    if region.dimension and trajectory.dimension != region.dimension:
        raise ValueError(
            f"dimension mismatch: trajectory is {trajectory.dimension}-D, "
            f"region is {region.dimension}-D"
        )
    overlap = trajectory.domain.intersect(window)
    if overlap is None:
        return IntervalSet()
    out: List[Interval] = []
    for piece in trajectory.pieces:
        cell = piece.interval.intersect(overlap)
        if cell is None or (cell.is_point and out):
            continue
        inside = IntervalSet([cell])
        for plane in region.halfplanes:
            slope = sum(n * v for n, v in zip(plane.normal, piece.velocity))
            const = (
                sum(n * b for n, b in zip(plane.normal, piece.offset))
                - plane.offset
            )
            poly = Polynomial([const, slope])
            solutions = IntervalSet(solution_intervals(poly, cell, "<="))
            inside = inside.intersect(solutions)
            if inside.is_empty:
                break
        out.extend(inside)
    return IntervalSet(out)


def residence_time(
    trajectory: Trajectory,
    region: Region,
    window: Interval,
) -> float:
    """Total time spent inside ``region`` during ``window``."""
    if not window.is_bounded:
        raise ValueError("residence_time needs a bounded window")
    return residence_set(trajectory, region, window).total_length


def entry_times(
    trajectory: Trajectory,
    region: Region,
    window: Interval = Interval.all_time(),
) -> List[float]:
    """Times at which the object *enters* the region (Example 3).

    An entry is the left endpoint of a residence interval that is not
    the start of the observation window or of the object's lifetime —
    i.e. there are instants just before at which the object existed
    outside the region.
    """
    residences = residence_set(trajectory, region, window)
    earliest = max(window.lo, trajectory.domain.lo)
    return [
        iv.lo
        for iv in residences
        if iv.lo > earliest and math.isfinite(iv.lo)
    ]


def occupancy(
    db: MovingObjectDatabase,
    region: Region,
    window: Interval,
) -> Dict[ObjectId, IntervalSet]:
    """Residence sets of every object that ever visits ``region``."""
    out: Dict[ObjectId, IntervalSet] = {}
    for oid, trajectory in db.all_items():
        if trajectory.domain.intersect(window) is None:
            continue
        residences = residence_set(trajectory, region, window)
        if not residences.is_empty:
            out[oid] = residences
    return out


def peak_occupancy(
    db: MovingObjectDatabase,
    region: Region,
    window: Interval,
) -> int:
    """The maximum number of objects simultaneously inside ``region``.

    Classic interval stabbing: +1 at every residence start, -1 at every
    end, take the running maximum.
    """
    events: List[tuple] = []
    for residences in occupancy(db, region, window).values():
        for iv in residences:
            events.append((iv.lo, 1))
            # Closed intervals: departures count after arrivals at ties.
            events.append((iv.hi, -1))
    events.sort(key=lambda e: (e[0], -e[1]))
    best = current = 0
    for _, delta in events:
        current += delta
        best = max(best, current)
    return best
