"""Trajectory analytics built on the query machinery.

Section 2 names "traffic status monitoring and collision discovery" as
the applications that make moving-object databases distinctive; this
package provides those analyses directly on top of the library's
curves:

- :func:`closest_approach` — the time and distance of minimal
  separation between two objects;
- :func:`separation_conflicts` — all pairs violating a separation
  minimum during an interval, with the exact violation intervals;
- :func:`meetings` — pairs that actually meet (distance ~ 0);
- :class:`ConflictMonitor` — eager conflict detection on a live
  database, maintained per update like any other continuing query.
"""

from repro.analysis.conflicts import (
    ClosestApproach,
    Conflict,
    ConflictMonitor,
    closest_approach,
    meetings,
    separation_conflicts,
)
from repro.analysis.regions import (
    entry_times,
    occupancy,
    peak_occupancy,
    residence_set,
    residence_time,
)

__all__ = [
    "ClosestApproach",
    "Conflict",
    "ConflictMonitor",
    "closest_approach",
    "entry_times",
    "meetings",
    "occupancy",
    "peak_occupancy",
    "residence_set",
    "residence_time",
    "separation_conflicts",
]
