"""Least-squares fits of measurements against complexity models.

Each theorem benchmark collects ``(size, cost)`` pairs and asks which
standard model — ``1``, ``log n``, ``n``, ``n log n``, ``n^2`` —
explains them best.  The fit is one-parameter (``cost ~ a * model(n)``
plus an intercept), scored by the coefficient of determination R^2;
:func:`best_model` returns the models ranked by fit quality so a
benchmark can assert, e.g., that per-update cost tracks ``log n``
rather than ``n``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

#: The candidate complexity models.
MODELS: Dict[str, Callable[[float], float]] = {
    "1": lambda n: 1.0,
    "log n": lambda n: math.log(max(n, 2.0)),
    "n": lambda n: n,
    "n log n": lambda n: n * math.log(max(n, 2.0)),
    "n^2": lambda n: n * n,
}


@dataclass(frozen=True)
class ComplexityFit:
    """A one-model fit result."""

    model: str
    scale: float
    intercept: float
    r_squared: float

    def predict(self, n: float) -> float:
        """Predicted cost at size ``n``."""
        return self.scale * MODELS[self.model](n) + self.intercept

    def __repr__(self) -> str:
        return (
            f"{self.model}: cost ~ {self.scale:.3g} * {self.model} + "
            f"{self.intercept:.3g} (R^2 = {self.r_squared:.4f})"
        )


def fit_model(
    sizes: Sequence[float], costs: Sequence[float], model: str
) -> ComplexityFit:
    """Least-squares fit of ``costs ~ a * model(sizes) + b``."""
    if model not in MODELS:
        raise ValueError(f"unknown model {model!r}; choose from {sorted(MODELS)}")
    if len(sizes) != len(costs) or len(sizes) < 2:
        raise ValueError("need at least two (size, cost) pairs")
    fn = MODELS[model]
    xs = [fn(float(n)) for n in sizes]
    ys = [float(c) for c in costs]
    count = len(xs)
    mean_x = sum(xs) / count
    mean_y = sum(ys) / count
    var_x = sum((x - mean_x) ** 2 for x in xs)
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    if var_x == 0.0:
        scale, intercept = 0.0, mean_y
    else:
        scale = cov / var_x
        intercept = mean_y - scale * mean_x
    ss_res = sum(
        (y - (scale * x + intercept)) ** 2 for x, y in zip(xs, ys)
    )
    ss_tot = sum((y - mean_y) ** 2 for y in ys)
    r_squared = 1.0 if ss_tot == 0.0 else 1.0 - ss_res / ss_tot
    return ComplexityFit(model, scale, intercept, r_squared)


def best_model(
    sizes: Sequence[float],
    costs: Sequence[float],
    models: Sequence[str] = ("1", "log n", "n", "n log n", "n^2"),
) -> List[ComplexityFit]:
    """All requested fits, best R^2 first.

    Fits whose scale is negative (cost *decreasing* with size) are
    ranked last regardless of R^2 — a shrinking model is never the
    right complexity explanation.
    """
    fits = [fit_model(sizes, costs, m) for m in models]
    return sorted(
        fits,
        key=lambda f: (f.scale < 0 and f.model != "1", -f.r_squared),
    )


def growth_ratio(
    sizes: Sequence[float], costs: Sequence[float]
) -> Tuple[float, float]:
    """(size ratio, cost ratio) between the last and first measurement.

    A quick sanity statistic: for an O(log n) quantity the cost ratio
    stays near 1 while the size ratio is large; for O(n) they match.
    """
    if len(sizes) < 2:
        raise ValueError("need at least two measurements")
    return sizes[-1] / sizes[0], costs[-1] / max(costs[0], 1e-12)
