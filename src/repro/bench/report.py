"""Collect benchmark result tables into one report.

Every benchmark writes its fitted-complexity table under
``benchmarks/results/``; this module gathers them into the single
document EXPERIMENTS.md is curated from.  Usable as a library or as
``python -m repro.bench.report [results_dir]``.
"""

from __future__ import annotations

import pathlib
import sys
from typing import Dict, List, Optional

#: Presentation order matching DESIGN.md's experiment index.
PREFERRED_ORDER = [
    "fig1_exact_quadratic",
    "fig1_approx_error",
    "fig2_scenario",
    "fig3_example12",
    "theorem4_past",
    "theorem5_init",
    "theorem5_updates",
    "corollary6_updates",
    "theorem10_query_chdir",
    "lemma9_queue",
    "prop1_qe_baseline",
    "baseline26_staleness",
    "ablation_sweep_vs_naive",
    "multiquery_amortization",
]


def collect_results(results_dir: pathlib.Path) -> Dict[str, str]:
    """Read every ``*.txt`` table in the results directory."""
    if not results_dir.is_dir():
        raise FileNotFoundError(f"no results directory at {results_dir}")
    return {
        path.stem: path.read_text().rstrip()
        for path in sorted(results_dir.glob("*.txt"))
    }


def ordered_names(names) -> List[str]:
    """Order result names by the experiment index, extras last."""
    known = [n for n in PREFERRED_ORDER if n in names]
    extras = sorted(n for n in names if n not in PREFERRED_ORDER)
    return known + extras


def render_report(results_dir: pathlib.Path, title: Optional[str] = None) -> str:
    """One text document with every experiment table."""
    tables = collect_results(results_dir)
    if not tables:
        return "(no benchmark results found — run pytest benchmarks/ --benchmark-only)"
    lines: List[str] = []
    lines.append(title or "Benchmark results (regenerated experiment tables)")
    lines.append("=" * len(lines[0]))
    for name in ordered_names(tables):
        lines.append("")
        lines.append(tables[name])
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point: print the collected report."""
    args = list(sys.argv[1:] if argv is None else argv)
    default = pathlib.Path(__file__).resolve().parents[3] / "benchmarks" / "results"
    results_dir = pathlib.Path(args[0]) if args else default
    try:
        print(render_report(results_dir))
    except FileNotFoundError as exc:
        print(exc, file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; that is not an error.
        return 0
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
