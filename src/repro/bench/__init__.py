"""Benchmark support: timing, complexity-model fitting, table printing.

The paper's evaluation is a set of asymptotic claims; the benchmarks in
``benchmarks/`` measure runtimes and operation counts over parameter
sweeps and fit them against the claimed complexity models with
:mod:`repro.bench.fits`, printing paper-style result tables with
:mod:`repro.bench.harness`.
"""

from repro.bench.fits import ComplexityFit, fit_model, best_model
from repro.bench.harness import format_table, time_callable

__all__ = [
    "ComplexityFit",
    "best_model",
    "fit_model",
    "format_table",
    "time_callable",
]
