"""Timing helpers and paper-style result tables.

``pytest-benchmark`` handles per-call statistics; what it does not do
is parameter sweeps with derived columns (operation counts, fitted
models) printed as a compact table.  :func:`format_table` renders those
rows; :func:`time_callable` is a minimal repeat-and-take-best timer for
sweep points that are too heavy to hand to pytest-benchmark wholesale.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional, Sequence


def time_callable(
    fn: Callable[[], object],
    repeats: int = 3,
    warmup: int = 1,
) -> float:
    """Best-of-``repeats`` wall-clock seconds for ``fn()``."""
    for _ in range(warmup):
        fn()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned text table (printed into benchmark output)."""
    cells: List[List[str]] = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in cells)) if cells else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)
