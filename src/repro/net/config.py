"""Tuning knobs for the networked serving frontend."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.net.protocol import MAX_FRAME

__all__ = ["NetConfig"]


@dataclass(frozen=True)
class NetConfig:
    """Policy for one :class:`~repro.net.QueryNetServer`.

    Parameters
    ----------
    max_frame:
        Hard cap on a single frame body, both directions; oversized
        frames fail with ``FrameTooLargeError`` before allocation.
    max_push_queue:
        Per-connection bound on buffered *push* frames (answer-change
        events).  A connection whose queue is full when the next push
        arrives is a slow consumer: its subscribed sessions are shed
        through the server's admission controller (same degradation
        path as op-rate shedding) and a final ``shed`` notice is
        force-queued.  Responses to explicit requests are never
        dropped — the bound only governs the unsolicited stream.
    handshake_timeout:
        Seconds a fresh connection gets to complete the ``hello``
        protocol-version handshake before it is dropped.
    idempotency_cache:
        How many request-id → response entries the server remembers
        for retry deduplication (FIFO eviction).  Each retried request
        with a remembered id replays the stored response without
        re-applying the verb.
    heartbeat_interval:
        Seconds between server-pushed ``heartbeat`` events on
        connections with live subscriptions (and replication links).
        ``None`` (the default) disables heartbeats — clients relying on
        the heartbeat-stall watchdog for failure detection must run
        against a server with this set.
    repl_sync:
        When True (the default), a request whose dispatch appended
        journal records — and every ingested update — only completes
        after every connected replica acknowledged those records.  An
        acknowledged write therefore survives a primary kill: it is
        already applied on the standby.  False makes replication
        asynchronous (the lag watermark still tracks it).
    repl_ack_timeout:
        Seconds the synchronous barrier waits for a replica's ack
        before dropping it as dead (the barrier must never wedge the
        primary behind a crashed standby).
    """

    max_frame: int = MAX_FRAME
    max_push_queue: int = 64
    handshake_timeout: float = 5.0
    idempotency_cache: int = 1024
    heartbeat_interval: Optional[float] = None
    repl_sync: bool = True
    repl_ack_timeout: float = 5.0

    def __post_init__(self) -> None:
        if self.max_frame < 64:
            raise ValueError("max_frame must be at least 64 bytes")
        if self.max_push_queue < 1:
            raise ValueError("max_push_queue must be positive")
        if self.handshake_timeout <= 0:
            raise ValueError("handshake_timeout must be positive")
        if self.idempotency_cache < 1:
            raise ValueError("idempotency_cache must be positive")
        if self.heartbeat_interval is not None and self.heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive (or None)")
        if self.repl_ack_timeout <= 0:
            raise ValueError("repl_ack_timeout must be positive")
