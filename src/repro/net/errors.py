"""Typed errors for the networked serving frontend.

Two families meet here.  The *transport* family (:class:`NetError` and
subclasses) covers failures of the wire itself — malformed frames,
protocol-version mismatches, lost connections, request timeouts.  The
*application* family is the existing :mod:`repro.server.errors`
hierarchy: the server serializes the exception's type name over the
wire and the client re-raises the very same class, so remote callers
catch ``AdmissionError`` / ``SessionShedError`` / … exactly as
in-process callers do.
"""

from __future__ import annotations

from repro.server import errors as server_errors

__all__ = [
    "NetError",
    "ProtocolError",
    "FrameTooLargeError",
    "VersionMismatchError",
    "ConnectionLostError",
    "NotPrimaryError",
    "RequestTimeoutError",
    "RemoteError",
    "error_to_wire",
    "raise_from_wire",
]


class NetError(RuntimeError):
    """Base class for transport-level failures of the net frontend."""


class ProtocolError(NetError):
    """A malformed frame, an unknown verb, or a handshake violation."""


class FrameTooLargeError(ProtocolError):
    """A frame announced a length beyond the configured maximum."""


class VersionMismatchError(ProtocolError):
    """The peer speaks an incompatible protocol version."""


class ConnectionLostError(NetError):
    """The connection died (or its push stream stalled past the
    heartbeat watchdog) and bounded reconnect retries ran out."""


class NotPrimaryError(NetError):
    """The addressed server is a warm standby: it replicates but does
    not serve session verbs until promoted.  Failover-aware clients
    treat this as retryable and advance to the next endpoint."""


class RequestTimeoutError(NetError):
    """No response arrived within the per-request timeout (and retries,
    if any, also timed out)."""


class RemoteError(NetError):
    """The server raised an exception type this client cannot map; the
    original type name and message ride in the error text."""


# Exception classes allowed to cross the wire *as themselves*: the
# whole typed server hierarchy plus the built-ins its API documents
# (ValueError for bad close windows, KeyError/TypeError for bad args).
_WIRE_TYPES = {
    name: getattr(server_errors, name) for name in server_errors.__all__
}
_WIRE_TYPES.update(
    {
        "ValueError": ValueError,
        "KeyError": KeyError,
        "TypeError": TypeError,
        "RuntimeError": RuntimeError,
        "ProtocolError": ProtocolError,
        "VersionMismatchError": VersionMismatchError,
        "FrameTooLargeError": FrameTooLargeError,
        "NotPrimaryError": NotPrimaryError,
    }
)


def error_to_wire(exc: BaseException) -> dict:
    """Serialize an exception for an error response frame."""
    return {"type": type(exc).__name__, "message": str(exc)}


def raise_from_wire(error: dict) -> None:
    """Re-raise a wire error as its original (registered) type.

    Unregistered types degrade to :class:`RemoteError` carrying the
    original type name, so nothing is ever silently swallowed.
    """
    name = str(error.get("type", "RemoteError"))
    message = str(error.get("message", ""))
    cls = _WIRE_TYPES.get(name)
    if cls is None:
        raise RemoteError(f"{name}: {message}")
    raise cls(message)
