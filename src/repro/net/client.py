"""Synchronous client for the networked serving frontend.

:class:`RemoteQueryClient` opens one TCP connection to a
:class:`~repro.net.QueryNetServer`, performs the protocol-version
handshake, and exposes the server's verbs as typed Python calls.  Each
request carries a client-generated idempotent id; on a lost connection
the client reconnects with bounded exponential backoff and **resends
the same id**, so the server replays its cached response rather than
applying the verb twice.  Per-request timeouts abandon the attempt
(and its socket — a half-read frame cannot be resynchronized) and
surface :class:`~repro.net.errors.RequestTimeoutError`.

Typed errors mirror the in-process API: a remote ``AdmissionError`` /
``SessionShedError`` / ``ValueError`` re-raises as that very class
(:func:`repro.net.errors.raise_from_wire`).

:class:`RemoteQuerySession` mirrors the in-process
:class:`~repro.server.session.ServerSession` surface — ``advance_to``
/ ``members`` / ``close`` / ``explain_close`` — plus ``subscribe`` and
:meth:`RemoteQuerySession.changes` for the continuous-query push
stream (pushed events are read either as a by-product of any request,
or explicitly via :meth:`RemoteQueryClient.poll_events`).
"""

from __future__ import annotations

import socket
import time
from collections import deque
from itertools import count
from typing import Any, Dict, List, Optional, Sequence
from uuid import uuid4

from repro.net.errors import (
    ConnectionLostError,
    NetError,
    ProtocolError,
    RequestTimeoutError,
    raise_from_wire,
)
from repro.net.protocol import (
    HEADER,
    MAX_FRAME,
    PROTOCOL_VERSION,
    answer_from_wire,
    decode_payload,
    encode_frame,
    members_from_wire,
)
from repro.obs.explain import render_report

__all__ = ["RemoteQueryClient", "RemoteQuerySession", "RemoteExplain", "connect"]


def connect(host: str, port: int, **kwargs) -> "RemoteQueryClient":
    """Open a client connection (``kwargs`` pass to the constructor)."""
    return RemoteQueryClient(host, port, **kwargs)


class RemoteExplain:
    """An EXPLAIN report that crossed the wire: decoded answer plus the
    JSON-ready report dict, rendered locally with
    :func:`repro.obs.explain.render_report` (identical to the server's
    own rendering)."""

    def __init__(self, answer, report: dict) -> None:
        self.answer = answer
        self.report = report

    @property
    def query_id(self) -> Optional[str]:
        return self.report.get("query_id")

    @property
    def stages(self) -> list:
        """The stage tree as JSON-ready dicts (top-level stages)."""
        return self.report.get("stages", [])

    def text(self) -> str:
        return render_report(self.report)

    def __str__(self) -> str:
        return self.text()


class RemoteQueryClient:
    """One connection's worth of remote query sessions.

    Parameters
    ----------
    host, port:
        The net server's bound address (``net.address``).
    timeout:
        Per-request seconds before :class:`RequestTimeoutError`.
    retries:
        How many times a failed request is retried (reconnecting with
        the *same* request id) before the typed transport error
        surfaces.  ``0`` disables retries.
    backoff, max_backoff:
        Exponential backoff seconds between retries: ``backoff * 2**n``
        capped at ``max_backoff``.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 5.0,
        retries: int = 3,
        backoff: float = 0.05,
        max_backoff: float = 1.0,
        max_frame: int = MAX_FRAME,
    ) -> None:
        self._host = host
        self._port = int(port)
        self._timeout = float(timeout)
        self._retries = int(retries)
        self._backoff = float(backoff)
        self._max_backoff = float(max_backoff)
        self._max_frame = int(max_frame)
        self._sock: Optional[socket.socket] = None
        self._tag = uuid4().hex[:8]
        self._next_seq = count(1)
        # sid (or None for connection-wide) -> pushed event frames
        self._events: Dict[Optional[int], deque] = {}
        self._closed = False
        self._connect()

    # -- socket plumbing ---------------------------------------------------
    def _connect(self) -> None:
        if self._closed:
            raise NetError("client is closed")
        sock = socket.create_connection(
            (self._host, self._port), timeout=self._timeout
        )
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        hello = {
            "id": self._new_id(),
            "verb": "hello",
            "version": PROTOCOL_VERSION,
            "client": "repro-net/1",
        }
        self._send_payload(hello)
        frame = self._await_response(hello["id"])
        if not frame.get("ok"):
            self._drop_socket()
            raise_from_wire(frame.get("error") or {})

    def _drop_socket(self) -> None:
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def _new_id(self) -> str:
        return f"{self._tag}-{next(self._next_seq):06d}"

    def _send_payload(self, payload: dict) -> None:
        if self._sock is None:
            raise ConnectionError("not connected")
        self._sock.sendall(encode_frame(payload, self._max_frame))

    def _recv_exact(self, n: int) -> bytes:
        assert self._sock is not None
        chunks = []
        remaining = n
        while remaining > 0:
            chunk = self._sock.recv(remaining)
            if not chunk:
                raise ConnectionError("connection closed by server")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def _read_frame(self) -> dict:
        header = self._recv_exact(HEADER.size)
        (length,) = HEADER.unpack(header)
        if length > self._max_frame:
            raise ProtocolError(
                f"server announced a {length}-byte frame beyond the "
                f"{self._max_frame}-byte cap"
            )
        return decode_payload(self._recv_exact(length))

    def _await_response(self, rid: str) -> dict:
        """Read frames until ``rid``'s response; route events, drop
        stale responses to abandoned earlier attempts."""
        while True:
            frame = self._read_frame()
            if "event" in frame:
                self._route_event(frame)
                continue
            if frame.get("id") == rid:
                return frame
            # A response to a request a previous attempt abandoned.

    # -- the request engine ------------------------------------------------
    def request(
        self,
        verb: str,
        args: Optional[dict] = None,
        timeout: Optional[float] = None,
    ) -> Any:
        """Issue one verb; returns the ``result`` dict.

        Transport failures reconnect and resend the *same* request id
        (bounded exponential backoff); the server's idempotency cache
        guarantees at-most-once application.  Application errors
        re-raise as their original exception class.
        """
        if self._closed:
            raise NetError("client is closed")
        rid = self._new_id()
        payload = {"id": rid, "verb": verb, **(args or {})}
        attempts = self._retries + 1
        delay = self._backoff
        last_exc: Optional[BaseException] = None
        for attempt in range(attempts):
            try:
                if self._sock is None:
                    self._connect()
                if timeout is not None:
                    self._sock.settimeout(timeout)
                try:
                    self._send_payload(payload)
                    frame = self._await_response(rid)
                finally:
                    if timeout is not None and self._sock is not None:
                        self._sock.settimeout(self._timeout)
            except TimeoutError as exc:
                # A half-read frame can't be resynchronized: the socket
                # is dead to us.  The retry resends the same id.
                self._drop_socket()
                last_exc = exc
            except (ConnectionError, OSError) as exc:
                self._drop_socket()
                last_exc = exc
            else:
                if frame.get("ok"):
                    return frame.get("result")
                raise_from_wire(frame.get("error") or {})
            if attempt + 1 < attempts:
                time.sleep(delay)
                delay = min(delay * 2, self._max_backoff)
        if isinstance(last_exc, TimeoutError):
            raise RequestTimeoutError(
                f"{verb!r} got no response within {timeout or self._timeout}s "
                f"({attempts} attempt(s))"
            ) from last_exc
        raise ConnectionLostError(
            f"{verb!r} failed after {attempts} attempt(s): {last_exc}"
        ) from last_exc

    # -- events ------------------------------------------------------------
    def _route_event(self, frame: dict) -> None:
        sid = frame.get("session")
        queue = self._events.setdefault(sid, deque())
        queue.append(frame)
        if frame.get("event") == "shed":
            # A shed notice names every affected session.
            for shed_sid in frame.get("sessions", ()):
                self._events.setdefault(shed_sid, deque()).append(frame)

    def poll_events(self, timeout: float = 0.05) -> int:
        """Read pushed frames for up to ``timeout`` seconds; returns
        how many events were routed.  Responses to requests are only
        read during :meth:`request`, so this never steals them."""
        if self._sock is None or self._closed:
            return 0
        deadline = time.monotonic() + timeout
        routed = 0
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                self._sock.settimeout(max(remaining, 0.001))
                frame = self._read_frame()
            except TimeoutError:
                break
            except (ConnectionError, OSError):
                self._drop_socket()
                break
            finally:
                if self._sock is not None:
                    self._sock.settimeout(self._timeout)
            if "event" in frame:
                self._route_event(frame)
                routed += 1
        return routed

    def events_for(self, sid: Optional[int]) -> List[dict]:
        """Drain (and return) the buffered events for one session, or
        the connection-wide events for ``None`` (``goodbye`` etc.)."""
        queue = self._events.get(sid)
        if not queue:
            return []
        drained = list(queue)
        queue.clear()
        return drained

    # -- session verbs -----------------------------------------------------
    def _open(self, args: dict) -> "RemoteQuerySession":
        result = self.request("open", args)
        return RemoteQuerySession(
            self,
            int(result["session"]),
            str(result["kind"]),
            str(result["state"]),
            result.get("start"),
        )

    def open_knn(
        self,
        query: Sequence[float],
        k: int = 1,
        priority: int = 0,
        shards: Optional[int] = None,
    ) -> "RemoteQuerySession":
        """Register a continuous k-NN query at the fixed point
        ``query`` (coordinates)."""
        args: dict = {"kind": "knn", "query": list(query), "k": int(k)}
        if priority:
            args["priority"] = int(priority)
        if shards is not None:
            args["shards"] = int(shards)
        return self._open(args)

    def open_within(
        self,
        query: Sequence[float],
        distance: Optional[float] = None,
        threshold: Optional[float] = None,
        priority: int = 0,
        shards: Optional[int] = None,
    ) -> "RemoteQuerySession":
        """Register a continuous within-range query.

        Pass ``distance`` for Euclidean semantics (squared server-side,
        like the in-process point-query API) or ``threshold`` for raw
        g-distance units compared as-is.
        """
        if (distance is None) == (threshold is None):
            raise ValueError("pass exactly one of distance / threshold")
        args = {"kind": "within", "query": list(query)}
        if distance is not None:
            args["distance"] = float(distance)
        else:
            args["threshold"] = float(threshold)
        if priority:
            args["priority"] = int(priority)
        if shards is not None:
            args["shards"] = int(shards)
        return self._open(args)

    def open_multiknn(
        self,
        query: Sequence[float],
        ks: Sequence[int],
        priority: int = 0,
        shards: Optional[int] = None,
    ) -> "RemoteQuerySession":
        """Register a multi-k k-NN query (per-k answers, one sweep)."""
        args = {
            "kind": "multiknn",
            "query": list(query),
            "ks": [int(k) for k in ks],
        }
        if priority:
            args["priority"] = int(priority)
        if shards is not None:
            args["shards"] = int(shards)
        return self._open(args)

    # -- service verbs -----------------------------------------------------
    def ping(self) -> float:
        """Round-trip the server; returns its MOD clock (``tau``)."""
        return self.request("ping")["tau"]

    def stats(self) -> dict:
        """Server + net + applier counters, as one dict."""
        return self.request("stats")

    def close(self) -> None:
        """Close the connection (sessions survive server-side)."""
        self._closed = True
        self._drop_socket()

    def __enter__(self) -> "RemoteQueryClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class RemoteQuerySession:
    """A server-side session, driven over the wire.

    Mirrors :class:`~repro.server.session.ServerSession`: the session
    (and its answer window) lives on the server; this handle survives
    client reconnects because every verb names the session id.
    """

    def __init__(
        self,
        client: RemoteQueryClient,
        session_id: int,
        kind: str,
        state: str,
        start: Optional[float],
    ) -> None:
        self._client = client
        self.session_id = session_id
        self.kind = kind
        self.state = state
        self.start = start
        self._answer = None

    # -- reads -------------------------------------------------------------
    @property
    def members(self):
        """The current answer set (per-k dict for multiknn)."""
        result = self._client.request(
            "members", {"session": self.session_id}
        )
        return members_from_wire(result["members"])

    def advance_to(self, t: float):
        """Advance the shared sweep to ``t``; returns the answer there."""
        result = self._client.request(
            "advance", {"session": self.session_id, "to": float(t)}
        )
        return members_from_wire(result["members"])

    # -- lifecycle ---------------------------------------------------------
    def close(self, at: Optional[float] = None):
        """Close and return the final snapshot answer over
        ``[start, at]`` (decoded; ``None`` for cancelled queued
        sessions)."""
        args: dict = {"session": self.session_id}
        if at is not None:
            args["at"] = float(at)
        result = self._client.request("close", args)
        self.state = result["state"]
        self._answer = answer_from_wire(result["answer"])
        return self._answer

    def explain_close(self, at: Optional[float] = None) -> RemoteExplain:
        """Close with EXPLAIN: final answer plus the remote profile
        (``net.decode`` / ``net.dispatch`` / ``net.encode`` wrapping
        the server's own ``server.*`` stages)."""
        args: dict = {"session": self.session_id}
        if at is not None:
            args["at"] = float(at)
        result = self._client.request("explain", args)
        self.state = result["state"]
        self._answer = answer_from_wire(result["answer"])
        return RemoteExplain(self._answer, result["report"])

    @property
    def answer(self):
        """The final answer (after :meth:`close`)."""
        if self._answer is None:
            raise RuntimeError(
                f"remote session {self.session_id} has no final answer yet"
            )
        return self._answer

    # -- push stream -------------------------------------------------------
    def subscribe(self):
        """Subscribe this connection to answer-change pushes; returns
        the baseline members."""
        result = self._client.request(
            "subscribe", {"session": self.session_id}
        )
        return members_from_wire(result["members"])

    def unsubscribe(self) -> None:
        self._client.request("unsubscribe", {"session": self.session_id})

    def changes(self, poll: float = 0.0) -> List[dict]:
        """Drain buffered push events for this session (optionally
        polling the socket for up to ``poll`` seconds first).

        Each returned dict carries ``event`` plus decoded payloads:
        ``members`` for ``answer_change``, ``answer`` for ``drain``.
        """
        if poll > 0:
            self._client.poll_events(poll)
        events = []
        for frame in self._client.events_for(self.session_id):
            event = dict(frame)
            if "members" in event:
                event["members"] = members_from_wire(event["members"])
            if event.get("event") == "drain":
                event["answer"] = answer_from_wire(event.get("answer"))
            events.append(event)
        return events

    def __repr__(self) -> str:
        return (
            f"RemoteQuerySession(#{self.session_id}, {self.kind}, "
            f"{self.state})"
        )
