"""Synchronous client for the networked serving frontend.

:class:`RemoteQueryClient` opens one TCP connection to a
:class:`~repro.net.QueryNetServer`, performs the protocol-version
handshake, and exposes the server's verbs as typed Python calls.  Each
request carries a client-generated idempotent id; on a lost connection
the client reconnects with bounded exponential backoff and **resends
the same id**, so the server replays its cached response rather than
applying the verb twice.  Per-request timeouts abandon the attempt
(and its socket — a half-read frame cannot be resynchronized) and
surface :class:`~repro.net.errors.RequestTimeoutError`.

Typed errors mirror the in-process API: a remote ``AdmissionError`` /
``SessionShedError`` / ``ValueError`` re-raises as that very class
(:func:`repro.net.errors.raise_from_wire`).

:class:`RemoteQuerySession` mirrors the in-process
:class:`~repro.server.session.ServerSession` surface — ``advance_to``
/ ``members`` / ``close`` / ``explain_close`` — plus ``subscribe`` and
:meth:`RemoteQuerySession.changes` for the continuous-query push
stream (pushed events are read either as a by-product of any request,
or explicitly via :meth:`RemoteQueryClient.poll_events`).

**Failover.**  The client optionally holds a *list* of endpoints
(primary first, warm standbys after).  Transport failures and
``NotPrimaryError`` rejections advance round-robin to the next
endpoint before the retry — so when a primary dies and its standby is
promoted, in-flight requests replay (same idempotent id) against the
new primary and the caller never sees the switch.  Session ids are
assigned by the primary and mirrored by the standby through the
replication stream, so remote session handles survive failover.  A
heartbeat-stall watchdog (:class:`RemoteQueryClient` with
``heartbeat_timeout`` against a server pushing heartbeats) detects a
silently dead push stream, re-subscribes on the surviving endpoint,
and raises :class:`~repro.net.errors.ConnectionLostError` only when
every endpoint is gone.
"""

from __future__ import annotations

import random
import socket
import time
from collections import deque
from itertools import count
from typing import Any, Dict, List, Optional, Sequence, Tuple
from uuid import uuid4

from repro.net.errors import (
    ConnectionLostError,
    NetError,
    NotPrimaryError,
    ProtocolError,
    RequestTimeoutError,
    raise_from_wire,
)
from repro.net.protocol import (
    HEADER,
    MAX_FRAME,
    PROTOCOL_VERSION,
    answer_from_wire,
    decode_payload,
    encode_frame,
    members_from_wire,
)
from repro.obs.explain import render_report

__all__ = ["RemoteQueryClient", "RemoteQuerySession", "RemoteExplain", "connect"]


def connect(host: str, port: int, **kwargs) -> "RemoteQueryClient":
    """Open a client connection (``kwargs`` pass to the constructor)."""
    return RemoteQueryClient(host, port, **kwargs)


class RemoteExplain:
    """An EXPLAIN report that crossed the wire: decoded answer plus the
    JSON-ready report dict, rendered locally with
    :func:`repro.obs.explain.render_report` (identical to the server's
    own rendering)."""

    def __init__(self, answer, report: dict) -> None:
        self.answer = answer
        self.report = report

    @property
    def query_id(self) -> Optional[str]:
        return self.report.get("query_id")

    @property
    def stages(self) -> list:
        """The stage tree as JSON-ready dicts (top-level stages)."""
        return self.report.get("stages", [])

    def text(self) -> str:
        return render_report(self.report)

    def __str__(self) -> str:
        return self.text()


class RemoteQueryClient:
    """One connection's worth of remote query sessions.

    Parameters
    ----------
    host, port:
        The net server's bound address (``net.address``).  May be
        omitted when ``endpoints`` is given.
    timeout:
        Per-request seconds before :class:`RequestTimeoutError`.
    retries:
        How many times a failed request is retried (reconnecting with
        the *same* request id) before the typed transport error
        surfaces.  ``0`` disables retries.
    backoff, max_backoff:
        Exponential backoff seconds between retries: ``backoff * 2**n``
        capped at ``max_backoff``.
    endpoints:
        Optional ordered ``(host, port)`` pairs — the primary first,
        warm standbys after.  Transport failures and
        ``NotPrimaryError`` rejections advance round-robin before the
        next retry attempt, so a promoted standby picks up the retried
        (idempotent) request.
    jitter:
        Fraction of each backoff sleep randomly *shaved off* (never
        added), de-synchronizing thundering-herd reconnects after a
        failover.  ``0`` restores fully deterministic backoff.
    seed:
        Seed for the jitter RNG — pass one for reproducible retry
        timing in tests and chaos harnesses.
    heartbeat_timeout:
        Seconds of push-stream silence (no frame of any kind — the
        server's ``heartbeat`` events count) before
        :meth:`poll_events` declares the connection dead, fails over,
        and re-subscribes; :class:`ConnectionLostError` surfaces only
        when every endpoint is unreachable.  Requires a server with
        ``heartbeat_interval`` set.  ``None`` disables the watchdog.
    """

    def __init__(
        self,
        host: Optional[str] = None,
        port: Optional[int] = None,
        timeout: float = 5.0,
        retries: int = 3,
        backoff: float = 0.05,
        max_backoff: float = 1.0,
        max_frame: int = MAX_FRAME,
        endpoints: Optional[Sequence[Tuple[str, int]]] = None,
        jitter: float = 0.25,
        seed: Optional[int] = None,
        heartbeat_timeout: Optional[float] = None,
    ) -> None:
        if endpoints:
            self._endpoints: List[Tuple[str, int]] = [
                (str(h), int(p)) for h, p in endpoints
            ]
        elif host is not None and port is not None:
            self._endpoints = [(str(host), int(port))]
        else:
            raise ValueError("pass host/port or a non-empty endpoints list")
        self._endpoint_index = 0
        self._timeout = float(timeout)
        self._retries = int(retries)
        self._backoff = float(backoff)
        self._max_backoff = float(max_backoff)
        self._max_frame = int(max_frame)
        if not 0.0 <= float(jitter) < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        self._jitter = float(jitter)
        self._rng = random.Random(seed)
        self._heartbeat_timeout = (
            None if heartbeat_timeout is None else float(heartbeat_timeout)
        )
        self._sock: Optional[socket.socket] = None
        self._tag = uuid4().hex[:8]
        self._next_seq = count(1)
        # sid (or None for connection-wide) -> pushed event frames
        self._events: Dict[Optional[int], deque] = {}
        self._subscribed: set = set()
        self._last_frame_at = time.monotonic()
        self.failovers = 0
        self._closed = False
        try:
            self._connect()
        except (NotPrimaryError, TimeoutError, ConnectionError, OSError):
            # A dead (or not-yet-promoted) first endpoint must not fail
            # construction: failover clients are built precisely for
            # that moment.  Rotate and let the first request reconnect
            # its way through the endpoint list.
            self._drop_socket()
            self._advance_endpoint()

    # -- socket plumbing ---------------------------------------------------
    @property
    def endpoint(self) -> Tuple[str, int]:
        """The endpoint the client currently targets."""
        return self._endpoints[self._endpoint_index % len(self._endpoints)]

    @property
    def connected(self) -> bool:
        """Whether a live socket is held (reconnects are lazy)."""
        return self._sock is not None and not self._closed

    def _advance_endpoint(self) -> None:
        if len(self._endpoints) > 1:
            self._endpoint_index = (self._endpoint_index + 1) % len(
                self._endpoints
            )
            self.failovers += 1

    def _sleep_for(self, delay: float) -> float:
        """Jittered backoff: shave up to ``jitter`` off, never add."""
        return delay * (1.0 - self._jitter * self._rng.random())

    def _connect(self) -> None:
        if self._closed:
            raise NetError("client is closed")
        host, port = self.endpoint
        sock = socket.create_connection((host, port), timeout=self._timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        self._last_frame_at = time.monotonic()
        hello = {
            "id": self._new_id(),
            "verb": "hello",
            "version": PROTOCOL_VERSION,
            "client": "repro-net/1",
        }
        self._send_payload(hello)
        frame = self._await_response(hello["id"])
        if not frame.get("ok"):
            self._drop_socket()
            raise_from_wire(frame.get("error") or {})
        if self._subscribed:
            self._resubscribe()

    def _resubscribe(self) -> None:
        """Re-arm push subscriptions on a fresh connection.

        Sessions that meanwhile died (closed, shed) fall out of the
        set; a ``NotPrimaryError`` propagates so the caller advances
        to the next endpoint — a standby cannot serve subscriptions.
        """
        for sid in sorted(self._subscribed):
            rid = self._new_id()
            self._send_payload({"id": rid, "verb": "subscribe", "session": sid})
            frame = self._await_response(rid)
            if not frame.get("ok"):
                error = frame.get("error") or {}
                if error.get("type") == "NotPrimaryError":
                    raise_from_wire(error)
                self._subscribed.discard(sid)

    def _drop_socket(self) -> None:
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def _new_id(self) -> str:
        return f"{self._tag}-{next(self._next_seq):06d}"

    def _send_payload(self, payload: dict) -> None:
        if self._sock is None:
            raise ConnectionError("not connected")
        self._sock.sendall(encode_frame(payload, self._max_frame))

    def _recv_exact(self, n: int) -> bytes:
        assert self._sock is not None
        chunks = []
        remaining = n
        while remaining > 0:
            chunk = self._sock.recv(remaining)
            if not chunk:
                raise ConnectionError("connection closed by server")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def _read_frame(self) -> dict:
        header = self._recv_exact(HEADER.size)
        (length,) = HEADER.unpack(header)
        if length > self._max_frame:
            raise ProtocolError(
                f"server announced a {length}-byte frame beyond the "
                f"{self._max_frame}-byte cap"
            )
        frame = decode_payload(self._recv_exact(length))
        self._last_frame_at = time.monotonic()
        return frame

    def _await_response(self, rid: str) -> dict:
        """Read frames until ``rid``'s response; route events, drop
        stale responses to abandoned earlier attempts."""
        while True:
            frame = self._read_frame()
            if "event" in frame:
                self._route_event(frame)
                continue
            if frame.get("id") == rid:
                return frame
            # A response to a request a previous attempt abandoned.

    # -- the request engine ------------------------------------------------
    def request(
        self,
        verb: str,
        args: Optional[dict] = None,
        timeout: Optional[float] = None,
    ) -> Any:
        """Issue one verb; returns the ``result`` dict.

        Transport failures reconnect and resend the *same* request id
        (bounded exponential backoff); the server's idempotency cache
        guarantees at-most-once application.  Application errors
        re-raise as their original exception class.
        """
        if self._closed:
            raise NetError("client is closed")
        rid = self._new_id()
        payload = {"id": rid, "verb": verb, **(args or {})}
        attempts = self._retries + 1
        delay = self._backoff
        last_exc: Optional[BaseException] = None
        for attempt in range(attempts):
            try:
                if self._sock is None:
                    self._connect()
                if timeout is not None:
                    self._sock.settimeout(timeout)
                try:
                    self._send_payload(payload)
                    frame = self._await_response(rid)
                finally:
                    if timeout is not None and self._sock is not None:
                        self._sock.settimeout(self._timeout)
            except TimeoutError as exc:
                # A half-read frame can't be resynchronized: the socket
                # is dead to us.  The retry resends the same id.
                self._drop_socket()
                last_exc = exc
            except NotPrimaryError as exc:
                # Raised while reconnecting (re-subscribe hit a
                # standby): probe the next endpoint.
                self._drop_socket()
                self._advance_endpoint()
                last_exc = exc
            except (ConnectionError, OSError) as exc:
                self._drop_socket()
                self._advance_endpoint()
                last_exc = exc
            else:
                if frame.get("ok"):
                    self._note_success(verb, args)
                    return frame.get("result")
                error = frame.get("error") or {}
                if error.get("type") == "NotPrimaryError":
                    # A standby answered: retryable — the promoted
                    # primary is (or will be) at another endpoint.
                    self._drop_socket()
                    self._advance_endpoint()
                    last_exc = NotPrimaryError(str(error.get("message", "")))
                else:
                    raise_from_wire(error)
            if attempt + 1 < attempts:
                time.sleep(self._sleep_for(delay))
                delay = min(delay * 2, self._max_backoff)
        if isinstance(last_exc, TimeoutError):
            raise RequestTimeoutError(
                f"{verb!r} got no response within {timeout or self._timeout}s "
                f"({attempts} attempt(s))"
            ) from last_exc
        if isinstance(last_exc, NotPrimaryError):
            # Every endpoint probed answered "standby" — the link is
            # fine, so surface the typed refusal, not a transport error.
            raise last_exc
        raise ConnectionLostError(
            f"{verb!r} failed after {attempts} attempt(s): {last_exc}"
        ) from last_exc

    def _note_success(self, verb: str, args: Optional[dict]) -> None:
        """Track push subscriptions so reconnects can re-arm them."""
        if verb == "subscribe" and args and "session" in args:
            self._subscribed.add(int(args["session"]))
        elif verb == "unsubscribe" and args and "session" in args:
            self._subscribed.discard(int(args["session"]))

    # -- events ------------------------------------------------------------
    def _route_event(self, frame: dict) -> None:
        if frame.get("event") == "heartbeat":
            # Liveness only — _read_frame already stamped the clock.
            return
        sid = frame.get("session")
        queue = self._events.setdefault(sid, deque())
        queue.append(frame)
        if frame.get("event") == "shed":
            # A shed notice names every affected session.
            for shed_sid in frame.get("sessions", ()):
                self._events.setdefault(shed_sid, deque()).append(frame)

    def poll_events(self, timeout: float = 0.05) -> int:
        """Read pushed frames for up to ``timeout`` seconds; returns
        how many events were routed.  Responses to requests are only
        read during :meth:`request`, so this never steals them.

        With ``heartbeat_timeout`` set and live subscriptions, a push
        stream silent past the deadline (or a dead socket) triggers
        failover: reconnect through the endpoint list, re-subscribe,
        and only raise :class:`ConnectionLostError` when retries run
        out everywhere.
        """
        if self._closed:
            return 0
        routed = 0
        if self._sock is not None:
            deadline = time.monotonic() + timeout
            while True:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    self._sock.settimeout(max(remaining, 0.001))
                    frame = self._read_frame()
                except TimeoutError:
                    break
                except (ConnectionError, OSError):
                    self._drop_socket()
                    break
                finally:
                    if self._sock is not None:
                        self._sock.settimeout(self._timeout)
                if "event" in frame:
                    self._route_event(frame)
                    routed += 1
        self._check_watchdog()
        return routed

    def _check_watchdog(self) -> None:
        """Heartbeat-stall detection for the push stream."""
        if self._heartbeat_timeout is None or not self._subscribed:
            return
        stalled = (
            time.monotonic() - self._last_frame_at > self._heartbeat_timeout
        )
        if self._sock is not None and not stalled:
            return
        self._drop_socket()
        self._recover_stream()

    def _recover_stream(self) -> None:
        """Reconnect (and re-subscribe) after a dead push stream,
        probing endpoints round-robin with jittered backoff."""
        attempts = self._retries + 1
        delay = self._backoff
        last_exc: Optional[BaseException] = None
        for attempt in range(attempts):
            try:
                self._connect()
            except (
                NotPrimaryError,
                TimeoutError,
                ConnectionError,
                OSError,
            ) as exc:
                self._drop_socket()
                self._advance_endpoint()
                last_exc = exc
            else:
                return
            if attempt + 1 < attempts:
                time.sleep(self._sleep_for(delay))
                delay = min(delay * 2, self._max_backoff)
        raise ConnectionLostError(
            f"push stream stalled past {self._heartbeat_timeout}s and "
            f"reconnection failed after {attempts} attempt(s): {last_exc}"
        ) from last_exc

    def events_for(self, sid: Optional[int]) -> List[dict]:
        """Drain (and return) the buffered events for one session, or
        the connection-wide events for ``None`` (``goodbye`` etc.)."""
        queue = self._events.get(sid)
        if not queue:
            return []
        drained = list(queue)
        queue.clear()
        return drained

    # -- session verbs -----------------------------------------------------
    def _open(self, args: dict) -> "RemoteQuerySession":
        result = self.request("open", args)
        return RemoteQuerySession(
            self,
            int(result["session"]),
            str(result["kind"]),
            str(result["state"]),
            result.get("start"),
        )

    def open_knn(
        self,
        query: Sequence[float],
        k: int = 1,
        priority: int = 0,
        shards: Optional[int] = None,
    ) -> "RemoteQuerySession":
        """Register a continuous k-NN query at the fixed point
        ``query`` (coordinates)."""
        args: dict = {"kind": "knn", "query": list(query), "k": int(k)}
        if priority:
            args["priority"] = int(priority)
        if shards is not None:
            args["shards"] = int(shards)
        return self._open(args)

    def open_within(
        self,
        query: Sequence[float],
        distance: Optional[float] = None,
        threshold: Optional[float] = None,
        priority: int = 0,
        shards: Optional[int] = None,
    ) -> "RemoteQuerySession":
        """Register a continuous within-range query.

        Pass ``distance`` for Euclidean semantics (squared server-side,
        like the in-process point-query API) or ``threshold`` for raw
        g-distance units compared as-is.
        """
        if (distance is None) == (threshold is None):
            raise ValueError("pass exactly one of distance / threshold")
        args = {"kind": "within", "query": list(query)}
        if distance is not None:
            args["distance"] = float(distance)
        else:
            args["threshold"] = float(threshold)
        if priority:
            args["priority"] = int(priority)
        if shards is not None:
            args["shards"] = int(shards)
        return self._open(args)

    def open_multiknn(
        self,
        query: Sequence[float],
        ks: Sequence[int],
        priority: int = 0,
        shards: Optional[int] = None,
    ) -> "RemoteQuerySession":
        """Register a multi-k k-NN query (per-k answers, one sweep)."""
        args = {
            "kind": "multiknn",
            "query": list(query),
            "ks": [int(k) for k in ks],
        }
        if priority:
            args["priority"] = int(priority)
        if shards is not None:
            args["shards"] = int(shards)
        return self._open(args)

    # -- service verbs -----------------------------------------------------
    def ping(self) -> float:
        """Round-trip the server; returns its MOD clock (``tau``)."""
        return self.request("ping")["tau"]

    def stats(self) -> dict:
        """Server + net + applier counters, as one dict."""
        return self.request("stats")

    def close(self) -> None:
        """Close the connection (sessions survive server-side)."""
        self._closed = True
        self._drop_socket()

    def __enter__(self) -> "RemoteQueryClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class RemoteQuerySession:
    """A server-side session, driven over the wire.

    Mirrors :class:`~repro.server.session.ServerSession`: the session
    (and its answer window) lives on the server; this handle survives
    client reconnects because every verb names the session id.
    """

    def __init__(
        self,
        client: RemoteQueryClient,
        session_id: int,
        kind: str,
        state: str,
        start: Optional[float],
    ) -> None:
        self._client = client
        self.session_id = session_id
        self.kind = kind
        self.state = state
        self.start = start
        self._answer = None

    # -- reads -------------------------------------------------------------
    @property
    def members(self):
        """The current answer set (per-k dict for multiknn)."""
        result = self._client.request(
            "members", {"session": self.session_id}
        )
        return members_from_wire(result["members"])

    def advance_to(self, t: float):
        """Advance the shared sweep to ``t``; returns the answer there."""
        result = self._client.request(
            "advance", {"session": self.session_id, "to": float(t)}
        )
        return members_from_wire(result["members"])

    # -- lifecycle ---------------------------------------------------------
    def close(self, at: Optional[float] = None):
        """Close and return the final snapshot answer over
        ``[start, at]`` (decoded; ``None`` for cancelled queued
        sessions)."""
        args: dict = {"session": self.session_id}
        if at is not None:
            args["at"] = float(at)
        result = self._client.request("close", args)
        self.state = result["state"]
        self._answer = answer_from_wire(result["answer"])
        return self._answer

    def explain_close(self, at: Optional[float] = None) -> RemoteExplain:
        """Close with EXPLAIN: final answer plus the remote profile
        (``net.decode`` / ``net.dispatch`` / ``net.encode`` wrapping
        the server's own ``server.*`` stages)."""
        args: dict = {"session": self.session_id}
        if at is not None:
            args["at"] = float(at)
        result = self._client.request("explain", args)
        self.state = result["state"]
        self._answer = answer_from_wire(result["answer"])
        return RemoteExplain(self._answer, result["report"])

    @property
    def answer(self):
        """The final answer (after :meth:`close`)."""
        if self._answer is None:
            raise RuntimeError(
                f"remote session {self.session_id} has no final answer yet"
            )
        return self._answer

    # -- push stream -------------------------------------------------------
    def subscribe(self):
        """Subscribe this connection to answer-change pushes; returns
        the baseline members."""
        result = self._client.request(
            "subscribe", {"session": self.session_id}
        )
        return members_from_wire(result["members"])

    def unsubscribe(self) -> None:
        self._client.request("unsubscribe", {"session": self.session_id})

    def changes(self, poll: float = 0.0) -> List[dict]:
        """Drain buffered push events for this session (optionally
        polling the socket for up to ``poll`` seconds first).

        Each returned dict carries ``event`` plus decoded payloads:
        ``members`` for ``answer_change``, ``answer`` for ``drain``.
        """
        if poll > 0:
            self._client.poll_events(poll)
        events = []
        for frame in self._client.events_for(self.session_id):
            event = dict(frame)
            if "members" in event:
                event["members"] = members_from_wire(event["members"])
            if event.get("event") == "drain":
                event["answer"] = answer_from_wire(event.get("answer"))
            events.append(event)
        return events

    def __repr__(self) -> str:
        return (
            f"RemoteQuerySession(#{self.session_id}, {self.kind}, "
            f"{self.state})"
        )
