"""The wire protocol: length-prefixed JSON frames over TCP.

Every message is one *frame*: a 4-byte big-endian unsigned length
followed by that many bytes of UTF-8 JSON.  Three frame shapes exist:

- **requests** — ``{"id": <hex>, "verb": <name>, ...args}``; the ``id``
  is client-generated and idempotent (the server caches responses per
  id, so a retried request is applied at most once);
- **responses** — ``{"id": <hex>, "ok": true, "result": {...}}`` or
  ``{"id": <hex>, "ok": false, "error": {"type", "message"}}``;
- **events** — ``{"event": <name>, ...}``, pushed server→client with
  no id (continuous-query answer changes, shed notices, drain
  deliveries).

The first request on a connection must be the ``hello`` handshake
carrying :data:`PROTOCOL_VERSION`; mismatches are rejected before any
session verb runs.

Answer payloads ride the type-preserving oid keys of
:func:`repro.io.oid_to_key` (int / str / tuple object ids survive the
round trip) and the ``inf``-safe interval bounds of :mod:`repro.io`,
so a remotely-served :class:`~repro.query.answers.SnapshotAnswer`
reconstructs bit-identically.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Dict, Optional, Set, Union

from repro.geometry.intervals import Interval, IntervalSet
from repro.io import _bound_from_json, _bound_to_json, oid_from_key, oid_to_key
from repro.net.errors import FrameTooLargeError, ProtocolError
from repro.query.answers import SnapshotAnswer

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME",
    "HEADER",
    "encode_frame",
    "decode_payload",
    "members_to_wire",
    "members_from_wire",
    "answer_to_wire",
    "answer_from_wire",
]

PROTOCOL_VERSION = 1
MAX_FRAME = 8 * 1024 * 1024
HEADER = struct.Struct(">I")

Members = Union[Set[Any], Dict[int, Set[Any]]]
Answer = Union[SnapshotAnswer, Dict[int, SnapshotAnswer]]


def encode_frame(payload: dict, max_frame: int = MAX_FRAME) -> bytes:
    """One message as ``len || utf-8 json`` bytes."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > max_frame:
        raise FrameTooLargeError(
            f"frame of {len(body)} bytes exceeds the {max_frame}-byte cap"
        )
    return HEADER.pack(len(body)) + body


def decode_payload(body: bytes) -> dict:
    """The JSON object inside one frame body."""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"frame must carry a JSON object, got {type(payload).__name__}"
        )
    return payload


# ---------------------------------------------------------------------------
# Instant answers (member sets)
# ---------------------------------------------------------------------------
def members_to_wire(members: Members) -> Union[list, dict]:
    """Encode an instant answer: a sorted oid-key list, or per-k lists
    for multiknn sessions."""
    if isinstance(members, dict):
        return {
            str(int(k)): sorted(oid_to_key(oid) for oid in v)
            for k, v in members.items()
        }
    return sorted(oid_to_key(oid) for oid in members)


def members_from_wire(wire: Union[list, dict]) -> Members:
    """Decode an instant answer back to set / per-k dict-of-sets."""
    if isinstance(wire, dict):
        return {
            int(k): {oid_from_key(key) for key in v}
            for k, v in wire.items()
        }
    return {oid_from_key(key) for key in wire}


# ---------------------------------------------------------------------------
# Snapshot answers
# ---------------------------------------------------------------------------
def _single_answer_to_wire(answer: SnapshotAnswer) -> dict:
    return {
        "interval": [
            _bound_to_json(answer.interval.lo),
            _bound_to_json(answer.interval.hi),
        ],
        "memberships": {
            oid_to_key(oid): [
                [_bound_to_json(iv.lo), _bound_to_json(iv.hi)]
                for iv in answer.intervals_for(oid)
            ]
            for oid in sorted(answer.objects, key=oid_to_key)
        },
    }


def _single_answer_from_wire(wire: dict) -> SnapshotAnswer:
    interval = Interval(
        _bound_from_json(wire["interval"][0]),
        _bound_from_json(wire["interval"][1]),
    )
    memberships = {
        oid_from_key(key): IntervalSet(
            Interval(_bound_from_json(lo), _bound_from_json(hi))
            for lo, hi in pairs
        )
        for key, pairs in wire["memberships"].items()
    }
    return SnapshotAnswer(memberships, interval)


def answer_to_wire(answer: Optional[Answer]) -> Optional[dict]:
    """Encode a snapshot answer (or a multiknn per-k dict of them)."""
    if answer is None:
        return None
    if isinstance(answer, dict):
        return {
            "ks": {
                str(int(k)): _single_answer_to_wire(v)
                for k, v in answer.items()
            }
        }
    return _single_answer_to_wire(answer)


def answer_from_wire(wire: Optional[dict]) -> Optional[Answer]:
    """Decode a snapshot answer written by :func:`answer_to_wire`."""
    if wire is None:
        return None
    if "ks" in wire:
        return {
            int(k): _single_answer_from_wire(v)
            for k, v in wire["ks"].items()
        }
    return _single_answer_from_wire(wire)
