"""The networked serving frontend: asyncio TCP over a QueryServer.

:class:`QueryNetServer` puts a wire on PR 6's multi-tenant
:class:`~repro.server.QueryServer`: a single asyncio event loop (run on
a dedicated daemon thread) accepts length-prefixed JSON connections,
speaks the :mod:`repro.net.protocol` verbs — ``hello`` / ``open`` /
``advance`` / ``members`` / ``close`` / ``explain`` / ``subscribe`` /
``unsubscribe`` / ``ping`` / ``stats`` — and serializes **all** access
to the query server on that loop thread, so the engine groups never
see concurrent mutation.

Update ingestion is marshaled the same way: the frontend replaces the
query server's database subscription with one that blocks the applying
thread until the loop thread has fanned the update out and pushed
answer-change events to subscribed connections.  ``db.apply(update)``
therefore keeps its synchronous contract — when it returns, every
session (local or remote) reflects the update.

Robustness is built in rather than bolted on:

- **idempotent retries** — responses to mutating verbs are cached per
  client-generated request id, so a client that resends after a lost
  connection gets the stored response and the verb is applied at most
  once;
- **backpressure** — each connection's unsolicited push stream rides a
  bounded queue; a slow consumer's subscribed sessions are shed
  through the query server's admission controller (the same typed
  degradation as op-rate shedding) and a ``shed`` notice is delivered;
- **graceful drain** — :meth:`QueryNetServer.drain` stops accepting,
  flushes the shared applier, closes every live session, pushes each
  final answer to its owning connection, and only then shuts the query
  server down — no write or answer is dropped silently.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass
from itertools import count
from typing import Dict, Optional, Set, Tuple

from repro.gdist.euclidean import SquaredEuclideanDistance
from repro.net.config import NetConfig
from repro.net.errors import (
    FrameTooLargeError,
    NetError,
    NotPrimaryError,
    ProtocolError,
    VersionMismatchError,
    error_to_wire,
)
from repro.net.protocol import (
    HEADER,
    PROTOCOL_VERSION,
    answer_to_wire,
    decode_payload,
    encode_frame,
    members_to_wire,
)
from repro.obs.metrics import NULL_COUNTER
from repro.server.errors import ServerClosedError, ServerError
from repro.server.server import QueryServer
from repro.server.session import ACTIVE, QUEUED

__all__ = ["NetStats", "QueryNetServer"]

SERVER_SOFTWARE = "repro-net/1"

# Verbs whose responses are remembered for request-id replay; the
# read-only verbs are safe to re-execute.
_MUTATING = frozenset({"open", "advance", "close", "explain"})

# Verbs a warm standby refuses until promotion (service verbs — ping /
# stats / repl.* — keep working so health checks and replication run).
_SESSION_VERBS = frozenset(
    {
        "open",
        "advance",
        "members",
        "close",
        "explain",
        "subscribe",
        "unsubscribe",
    }
)


@dataclass
class NetStats:
    """Plain counters for one net frontend (metrics mirror them)."""

    connections: int = 0
    handshake_failures: int = 0
    requests: int = 0
    replays: int = 0
    errors: int = 0
    pushes: int = 0
    sheds: int = 0
    drained: int = 0
    bytes_in: int = 0
    bytes_out: int = 0


class _Connection:
    """One accepted TCP connection: framing state + push queue."""

    __slots__ = (
        "cid",
        "reader",
        "writer",
        "queue",
        "wake",
        "subscriptions",
        "sessions",
        "closing",
        "paused",
        "writer_task",
        "last_frame_bytes",
        "last_decode_seconds",
        "replica",
        "acked_seq",
        "sent_seq",
        "ack_event",
    )

    def __init__(self, cid: int, reader, writer) -> None:
        self.cid = cid
        self.reader = reader
        self.writer = writer
        self.queue: deque = deque()
        self.wake = asyncio.Event()
        # sid -> last pushed members wire (the change-detection baseline)
        self.subscriptions: Dict[int, object] = {}
        self.sessions: Set[int] = set()
        self.closing = False
        # Test/flow-control hook: a paused connection's writer holds
        # back, letting the push queue fill deterministically.
        self.paused = False
        self.writer_task = None
        self.last_frame_bytes = 0
        self.last_decode_seconds = 0.0
        # Replication-link state (``repl.subscribe`` flips replica on):
        # journal records already streamed / acknowledged, and the
        # event the sync barrier parks on until the next ack.
        self.replica = False
        self.acked_seq = 0
        self.sent_seq = 0
        self.ack_event = asyncio.Event()


class QueryNetServer:
    """Serve a :class:`~repro.server.QueryServer` over TCP.

    Build one via :func:`repro.core.api.serve_tcp` (which also
    constructs the query server), or wrap an existing server and call
    :meth:`start`.  The instance is a context manager: leaving the
    ``with`` block drains and closes.
    """

    def __init__(
        self,
        server: QueryServer,
        config: Optional[NetConfig] = None,
        standby: bool = False,
    ) -> None:
        self._server = server
        self._config = config if config is not None else NetConfig()
        self._standby = bool(standby)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._thread_ident: Optional[int] = None
        self._asyncio_server = None
        self._address: Optional[Tuple[str, int]] = None
        self._connections: Set[_Connection] = set()
        self._sessions: Dict[int, object] = {}
        self._owners: Dict[int, _Connection] = {}
        self._replies: "OrderedDict[str, dict]" = OrderedDict()
        self._next_cid = count(1)
        self._closed = False
        self._draining = False
        self._heartbeat_task = None
        # Sync-replication reconnect grace: when a replica drops, the
        # ack barrier holds through this window instead of silently
        # degrading to async (loop clock; 0.0 = no grace pending).
        self._repl_grace_until = 0.0
        self._repl_attach_event = asyncio.Event()
        self.stats = NetStats()
        self._bind_instruments()

    # -- instruments ------------------------------------------------------
    def _bind_instruments(self) -> None:
        obs = self._server.observe
        if obs is None:
            self._c_request = lambda verb: NULL_COUNTER
            self._c_event = lambda event: NULL_COUNTER
            self._c_bytes = lambda direction: NULL_COUNTER
            return
        m = obs.metrics
        requests = m.counter(
            "net_requests_total", "Requests dispatched, by verb.",
            labels=("verb",),
        )
        self._c_request = lambda verb: requests.labels(verb=verb)
        events = m.counter(
            "net_events_total",
            "Frontend lifecycle events (connect / replay / push / "
            "shed / drain / error).",
            labels=("event",),
        )
        self._c_event = lambda event: events.labels(event=event)
        nbytes = m.counter(
            "net_bytes_total", "Frame bytes moved, by direction.",
            labels=("direction",),
        )
        self._c_bytes = lambda direction: nbytes.labels(direction=direction)
        m.gauge(
            "net_connections_open", "Currently accepted connections."
        ).set_function(lambda: len(self._connections))
        m.gauge(
            "net_subscriptions", "Live push subscriptions."
        ).set_function(
            lambda: sum(len(c.subscriptions) for c in self._connections)
        )

    # -- lifecycle --------------------------------------------------------
    def start(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> "QueryNetServer":
        """Bind, start the loop thread, and take over update ingestion."""
        if self._loop is not None:
            raise NetError("net server already started")
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-net", daemon=True
        )
        self._thread.start()
        self._call(self._start_async(host, port))
        # A recovered (or replicated) query server already carries
        # sessions and journaled idempotent replies: adopt them so
        # reconnecting clients find their session ids and retried
        # request ids exactly where they left them.
        self._adopt_server_state()
        # Updates now route through the loop thread: the applying
        # thread blocks until fan-out + pushes are done, keeping
        # db.apply's synchronous contract for remote consumers too.
        db = self._server.db
        db.unsubscribe(self._server._on_update)
        db.subscribe(self._ingest)
        return self

    def _adopt_server_state(self) -> None:
        for session in self._server.sessions():
            self._sessions.setdefault(session.session_id, session)
        replies = getattr(self._server, "replay_replies", None)
        if replies:
            for rid, response in replies.items():
                self._remember(str(rid), response)

    def _run_loop(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._thread_ident = threading.get_ident()
        self._loop.run_forever()
        # Retire whatever the stop left behind (a kill cancels tasks
        # without waiting) so the loop closes without leaking them.
        pending = asyncio.all_tasks(self._loop)
        for task in pending:
            task.cancel()
        if pending:
            self._loop.run_until_complete(
                asyncio.gather(*pending, return_exceptions=True)
            )
        self._loop.close()

    def _call(self, coro, timeout: float = 30.0):
        """Run a coroutine on the loop thread and wait for it."""
        if self._loop is None:
            raise NetError("net server is not running")
        if threading.get_ident() == self._thread_ident:
            raise NetError("cannot block on the loop thread")
        future = asyncio.run_coroutine_threadsafe(coro, self._loop)
        return future.result(timeout)

    async def _start_async(self, host: str, port: int) -> None:
        self._asyncio_server = await asyncio.start_server(
            self._handle_connection, host=host, port=port
        )
        self._address = self._asyncio_server.sockets[0].getsockname()[:2]
        if self._config.heartbeat_interval is not None:
            self._heartbeat_task = asyncio.get_event_loop().create_task(
                self._heartbeat_loop()
            )

    async def _heartbeat_loop(self) -> None:
        """Periodically push ``heartbeat`` events so subscribed clients
        (and replicas) can detect a stalled or dead server by silence."""
        interval = self._config.heartbeat_interval
        while not (self._closed or self._draining):
            await asyncio.sleep(interval)
            tau = self._server.db.last_update_time
            for conn in list(self._connections):
                if conn.subscriptions or conn.replica:
                    self._send(
                        conn, {"event": "heartbeat", "tau": tau}, force=True
                    )

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)``."""
        if self._address is None:
            raise NetError("net server is not started")
        return self._address

    @property
    def server(self) -> QueryServer:
        """The wrapped multi-tenant query server."""
        return self._server

    @property
    def config(self) -> NetConfig:
        return self._config

    @property
    def is_standby(self) -> bool:
        """True while this frontend refuses session verbs (replicating
        warm standby awaiting promotion)."""
        return self._standby

    def promote(self) -> "QueryNetServer":
        """Flip a warm standby into a serving primary.

        Adopts every replicated session and journaled idempotent reply
        into the frontend maps, so clients that fail over keep their
        session ids and retried request ids transparently.  Idempotent
        to call on the loop's schedule; raises
        :class:`~repro.replication.PromotionError` when this frontend
        was never a standby.
        """
        from repro.replication.errors import PromotionError

        if not self._standby:
            raise PromotionError("this frontend is already a primary")
        if self._loop is not None:
            self._call(self._promote_async())
        else:
            self._standby = False
            self._adopt_server_state()
        return self

    async def _promote_async(self) -> None:
        self._standby = False
        self._adopt_server_state()
        self._c_event("promote").inc()

    def __enter__(self) -> "QueryNetServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- ingestion (any thread -> loop thread) ----------------------------
    def _ingest(self, update) -> None:
        if self._closed:
            raise ServerClosedError(
                f"update at t={update.time} reached a closed net server"
            )
        if threading.get_ident() == self._thread_ident:
            self._ingest_on_loop(update)
        else:
            self._call(self._aingest(update))

    async def _aingest(self, update) -> None:
        self._ingest_on_loop(update)
        # db.apply's synchronous contract now extends to replicas: the
        # applying thread only unblocks once every standby acknowledged
        # the journal records this update produced.
        await self._repl_barrier()

    def _ingest_on_loop(self, update) -> None:
        self._server._on_update(update)
        if self._server.applier.pending == 0:
            # The batch flushed: subscribed connections see the world
            # move.  (Buffered updates push at their flush instead.)
            self._push_answer_changes()
        self._flush_repl()

    # -- replication stream -------------------------------------------------
    def _journal_of(self):
        return getattr(self._server, "journal", None)

    def _replica_conns(self):
        return [
            conn
            for conn in self._connections
            if conn.replica and not conn.closing
        ]

    def _flush_repl(self) -> None:
        """Stream journal records appended since each replica's last
        flush, one batch frame per flush boundary.

        Batching at flush boundaries (not per append) keeps compound
        operations — a ``close`` record and its ``reply`` record, say —
        atomic on the wire: a standby holds either both or neither, so
        a primary kill between them cannot strand a half-applied pair.
        """
        journal = self._journal_of()
        if journal is None:
            return
        for conn in self._replica_conns():
            records = journal.records_since(conn.sent_seq)
            if records is None:
                # The suffix fell off retention (journal handover after
                # a recovery); the replica must re-sync from scratch.
                self._drop_replica(conn, "resume window lost")
                continue
            if records:
                conn.sent_seq = records[-1]["seq"]
                self._send(
                    conn,
                    {"event": "repl.append", "records": records},
                    force=True,
                )
        self._update_retain_floor()

    def _update_retain_floor(self) -> None:
        """Pin the journal's in-memory retention at the slowest live
        replica's streamed position, so checkpoints never evict records
        a standby could still resume from."""
        journal = self._journal_of()
        if journal is None:
            return
        replicas = self._replica_conns()
        if replicas:
            journal.set_retain_floor(min(c.sent_seq for c in replicas))
            return
        if (
            self._loop is not None
            and self._loop.time() < self._repl_grace_until
        ):
            # A replica dropped moments ago and may resume: keep the
            # floor pinned where it was so its suffix outlives the
            # reconnect window instead of falling to a checkpoint.
            return
        journal.set_retain_floor(None)

    async def _repl_barrier(self) -> None:
        """Block (on the loop, never the loop thread's callers) until
        every replica acknowledged the journal's current sequence, or
        its ack timeout expires and it is dropped as dead.

        A replica that dropped moments ago is expected back: with no
        replica attached, the barrier holds through the reconnect
        grace window (one ack timeout from the drop) and re-runs
        against whatever re-subscribes, instead of silently degrading
        to async replication — so a primary kill inside a standby's
        reconnect window cannot lose an acknowledged write no standby
        ever saw."""
        journal = self._journal_of()
        if journal is None or not self._config.repl_sync:
            return
        target = journal.seq
        loop = asyncio.get_event_loop()
        deadline = loop.time() + self._config.repl_ack_timeout
        while True:
            replicas = self._replica_conns()
            for conn in replicas:
                while conn.acked_seq < target and not conn.closing:
                    remaining = deadline - loop.time()
                    if remaining <= 0:
                        self._drop_replica(conn, "ack timeout")
                        break
                    conn.ack_event.clear()
                    if conn.acked_seq >= target:
                        break
                    try:
                        await asyncio.wait_for(
                            conn.ack_event.wait(), remaining
                        )
                    except asyncio.TimeoutError:
                        self._drop_replica(conn, "ack timeout")
                        break
            if replicas:
                return
            remaining = min(deadline, self._repl_grace_until) - loop.time()
            if remaining <= 0:
                return
            self._repl_attach_event.clear()
            if self._replica_conns():
                continue
            try:
                await asyncio.wait_for(
                    self._repl_attach_event.wait(), remaining
                )
            except asyncio.TimeoutError:
                return

    def _arm_repl_grace(self) -> None:
        """A replica just went away: open the reconnect window the ack
        barrier honors while no replica is attached."""
        if self._loop is not None:
            self._repl_grace_until = (
                self._loop.time() + self._config.repl_ack_timeout
            )

    def _drop_replica(self, conn: _Connection, reason: str) -> None:
        conn.replica = False
        self._c_event("replica_drop").inc()
        self._arm_repl_grace()
        self._send(
            conn,
            {"event": "repl.dropped", "reason": reason},
            force=True,
        )
        conn.closing = True
        conn.wake.set()
        self._update_retain_floor()

    # -- connection handling ----------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        conn = _Connection(next(self._next_cid), reader, writer)
        sock = writer.get_extra_info("socket")
        if sock is not None:
            try:
                import socket as _socket

                sock.setsockopt(
                    _socket.IPPROTO_TCP, _socket.TCP_NODELAY, 1
                )
            except OSError:
                pass
        self.stats.connections += 1
        self._c_event("connect").inc()
        self._connections.add(conn)
        conn.writer_task = asyncio.get_event_loop().create_task(
            self._writer_loop(conn)
        )
        try:
            if await self._handshake(conn):
                await self._request_loop(conn)
        except (
            asyncio.IncompleteReadError,
            ConnectionError,
            OSError,
        ):
            pass
        finally:
            conn.closing = True
            conn.wake.set()
            try:
                await conn.writer_task
            except asyncio.CancelledError:
                pass
            try:
                writer.close()
            except Exception:
                pass
            self._connections.discard(conn)
            conn.subscriptions.clear()
            if conn.replica:
                # A replica link died without a protocol-level drop
                # (EOF, reset): open the reconnect grace window so the
                # sync-ack barrier keeps holding while it comes back.
                conn.replica = False
                self._arm_repl_grace()
                self._update_retain_floor()
            # Sessions deliberately survive the connection: a client
            # that reconnects can resume (and retry) them by id.

    async def _read_frame(self, conn: _Connection) -> dict:
        header = await conn.reader.readexactly(HEADER.size)
        (length,) = HEADER.unpack(header)
        if length > self._config.max_frame:
            # Skip the announced body so framing stays intact, then
            # report; the connection keeps working.
            remaining = length
            while remaining > 0:
                chunk = await conn.reader.read(min(remaining, 1 << 16))
                if not chunk:
                    raise asyncio.IncompleteReadError(b"", remaining)
                remaining -= len(chunk)
            raise FrameTooLargeError(
                f"request frame of {length} bytes exceeds the "
                f"{self._config.max_frame}-byte cap"
            )
        body = await conn.reader.readexactly(length)
        self.stats.bytes_in += HEADER.size + length
        self._c_bytes("in").inc(HEADER.size + length)
        started = time.perf_counter()
        payload = decode_payload(body)
        conn.last_decode_seconds = time.perf_counter() - started
        conn.last_frame_bytes = length
        return payload

    async def _handshake(self, conn: _Connection) -> bool:
        try:
            request = await asyncio.wait_for(
                self._read_frame(conn), self._config.handshake_timeout
            )
        except (asyncio.TimeoutError, ProtocolError):
            self.stats.handshake_failures += 1
            return False
        rid = request.get("id")
        if request.get("verb") != "hello":
            self._fail_handshake(
                conn, rid, ProtocolError("first frame must be 'hello'")
            )
            return False
        version = request.get("version")
        if version != PROTOCOL_VERSION:
            self._fail_handshake(
                conn,
                rid,
                VersionMismatchError(
                    f"server speaks protocol {PROTOCOL_VERSION}, "
                    f"client sent {version!r}"
                ),
            )
            return False
        self._send(
            conn,
            {
                "id": rid,
                "ok": True,
                "result": {
                    "version": PROTOCOL_VERSION,
                    "server": SERVER_SOFTWARE,
                },
            },
            force=True,
        )
        return True

    def _fail_handshake(self, conn, rid, exc) -> None:
        self.stats.handshake_failures += 1
        self._send(
            conn,
            {"id": rid, "ok": False, "error": error_to_wire(exc)},
            force=True,
        )

    async def _request_loop(self, conn: _Connection) -> None:
        while not conn.closing:
            try:
                request = await self._read_frame(conn)
            except FrameTooLargeError as exc:
                self._send(
                    conn,
                    {"id": None, "ok": False, "error": error_to_wire(exc)},
                    force=True,
                )
                continue
            except ProtocolError as exc:
                self._send(
                    conn,
                    {"id": None, "ok": False, "error": error_to_wire(exc)},
                    force=True,
                )
                continue
            journal = self._journal_of()
            seq_before = journal.seq if journal is not None else 0
            response = self._dispatch(conn, request)
            if journal is not None and journal.seq > seq_before:
                # The verb journaled something: stream it to replicas
                # and (under sync replication) hold the response until
                # they acknowledge — a response the client saw is a
                # response the promoted standby can replay.
                self._flush_repl()
                await self._repl_barrier()
            self._send(conn, response, force=True)

    # -- dispatch ----------------------------------------------------------
    def _dispatch(self, conn: _Connection, request: dict) -> dict:
        rid = request.get("id")
        verb = request.get("verb")
        self.stats.requests += 1
        self._c_request(verb if isinstance(verb, str) else "?").inc()
        if rid is not None and rid in self._replies:
            # Idempotent retry: replay without re-applying.
            self.stats.replays += 1
            self._c_event("replay").inc()
            return self._replies[rid]
        handler = self._VERBS.get(verb)
        try:
            if handler is None:
                raise ProtocolError(f"unknown verb {verb!r}")
            if self._standby and verb in _SESSION_VERBS:
                raise NotPrimaryError(
                    "this server is a warm standby; retry against the "
                    "primary (or wait for promotion)"
                )
            result = handler(self, conn, request)
            response = {"id": rid, "ok": True, "result": result}
        except Exception as exc:  # typed over the wire, never fatal
            self.stats.errors += 1
            self._c_event("error").inc()
            response = {"id": rid, "ok": False, "error": error_to_wire(exc)}
        if rid is not None and verb in _MUTATING:
            self._remember(str(rid), response)
            if response.get("ok"):
                # Journal the reply next to the ops it answered: after
                # a failover, the promoted standby replays it verbatim
                # to the retried request id instead of re-executing.
                journal_reply = getattr(self._server, "journal_reply", None)
                if journal_reply is not None:
                    journal_reply(str(rid), response)
        return response

    def _remember(self, rid: str, response: dict) -> None:
        self._replies[rid] = response
        while len(self._replies) > self._config.idempotency_cache:
            self._replies.popitem(last=False)

    def _get_session(self, conn: _Connection, request: dict):
        try:
            sid = int(request["session"])
        except (KeyError, TypeError, ValueError):
            raise ProtocolError("request needs an integer 'session'")
        session = self._sessions.get(sid)
        if session is None:
            raise KeyError(f"unknown session {sid}")
        # The most recent connection to touch a session owns it for
        # push/drain delivery (reconnected clients take over).
        self._owners[sid] = conn
        return session

    # -- verbs -------------------------------------------------------------
    def _verb_open(self, conn: _Connection, request: dict) -> dict:
        kind = request.get("kind")
        coords = request.get("query")
        if not isinstance(coords, (list, tuple)) or not coords:
            raise ProtocolError(
                "open needs 'query': the fixed query point's coordinates"
            )
        gdistance = SquaredEuclideanDistance([float(c) for c in coords])
        priority = int(request.get("priority", 0))
        shards = request.get("shards")
        shards = None if shards is None else int(shards)
        server = self._server
        if kind == "knn":
            session = server.register_knn(
                gdistance,
                k=int(request.get("k", 1)),
                priority=priority,
                shards=shards,
            )
        elif kind == "within":
            if "threshold" in request:
                # g-distance units, compared as-is.
                threshold = float(request["threshold"])
            elif "distance" in request:
                distance = float(request["distance"])
                threshold = distance * distance
            else:
                raise ProtocolError(
                    "within needs 'distance' (Euclidean) or "
                    "'threshold' (g-distance units)"
                )
            session = server.register_within(
                gdistance, threshold, priority=priority, shards=shards
            )
        elif kind == "multiknn":
            session = server.register_multiknn(
                gdistance,
                [int(k) for k in request.get("ks", ())],
                priority=priority,
                shards=shards,
            )
        else:
            raise ProtocolError(f"unknown query kind {kind!r}")
        sid = session.session_id
        self._sessions[sid] = session
        self._owners[sid] = conn
        conn.sessions.add(sid)
        return {
            "session": sid,
            "kind": kind,
            "state": session.state,
            "start": session.start,
        }

    def _verb_advance(self, conn: _Connection, request: dict) -> dict:
        session = self._get_session(conn, request)
        members = session.advance_to(float(request["to"]))
        return {"members": members_to_wire(members)}

    def _verb_members(self, conn: _Connection, request: dict) -> dict:
        session = self._get_session(conn, request)
        return {"members": members_to_wire(session.members)}

    def _verb_close(self, conn: _Connection, request: dict) -> dict:
        session = self._get_session(conn, request)
        at = request.get("at")
        answer = session.close(at=None if at is None else float(at))
        self._drop_subscriptions(session.session_id)
        return {"state": session.state, "answer": answer_to_wire(answer)}

    def _verb_explain(self, conn: _Connection, request: dict) -> dict:
        from repro.obs.explain import ExplainReport
        from repro.obs.profile import QueryProfiler

        session = self._get_session(conn, request)
        at = request.get("at")
        meta = {
            "session": session.session_id,
            "shards": session.shards,
            **{
                key: list(value) if isinstance(value, tuple) else value
                for key, value in session.params.items()
            },
        }
        profiler = QueryProfiler()
        with profiler.profile(
            f"net.{session.kind}",
            query_id=request.get("query_id"),
            **meta,
        ) as prof:
            # The frame was decoded before anyone knew it asked for an
            # EXPLAIN; attribute the eagerly-measured cost after the
            # fact.
            decode = prof.root.child("net.decode")
            decode.add_time(conn.last_decode_seconds)
            decode.annotate(bytes=conn.last_frame_bytes)
            with prof.stage("net.dispatch"):
                answer = self._server.close_with_profile(
                    session, None if at is None else float(at), prof
                )
            with prof.stage("net.encode") as stage:
                wire = answer_to_wire(answer)
                stage.annotate(bytes=len(json.dumps(wire)))
            recorded = (
                answer[max(answer)] if isinstance(answer, dict) else answer
            )
            prof.record_answer(recorded)
        report = ExplainReport(prof, answer)
        self._drop_subscriptions(session.session_id)
        return {
            "state": session.state,
            "answer": wire,
            "report": report.to_dict(),
        }

    def _verb_subscribe(self, conn: _Connection, request: dict) -> dict:
        session = self._get_session(conn, request)
        baseline = members_to_wire(session.members)
        conn.subscriptions[session.session_id] = baseline
        return {"subscribed": session.session_id, "members": baseline}

    def _verb_unsubscribe(self, conn: _Connection, request: dict) -> dict:
        sid = int(request["session"])
        conn.subscriptions.pop(sid, None)
        return {"unsubscribed": sid}

    def _verb_ping(self, conn: _Connection, request: dict) -> dict:
        return {"pong": True, "tau": self._server.db.last_update_time}

    def _verb_stats(self, conn: _Connection, request: dict) -> dict:
        server_stats = self._server.stats
        out = {
            "server": {
                field: getattr(server_stats, field)
                for field in server_stats.__dataclass_fields__
            },
            "net": {
                field: getattr(self.stats, field)
                for field in self.stats.__dataclass_fields__
            },
            "groups": self._server.group_count,
            "applier": {
                "applied": self._server.applier.stats.applied,
                "fanout": self._server.applier.stats.fanout,
                "pending_high_water": (
                    self._server.applier.stats.pending_high_water
                ),
            },
            "standby": self._standby,
        }
        journal = self._journal_of()
        if journal is not None:
            acked = [c.acked_seq for c in self._replica_conns()]
            out["replication"] = {
                "seq": journal.seq,
                "snapshot_seq": journal.snapshot_seq,
                "replicas": len(acked),
                "min_acked": min(acked) if acked else None,
                # The staleness watermark: journal records a freshly
                # promoted laggard replica would still be missing.
                "lag": journal.seq - min(acked) if acked else None,
            }
        return out

    def _verb_repl_subscribe(self, conn: _Connection, request: dict) -> dict:
        """Attach this connection as a replica.

        ``from`` names the last journal seq the replica already holds:
        ``0`` (a cold standby) receives a full snapshot to bootstrap
        from; a resuming replica receives the missed record suffix when
        the journal still retains it, and a snapshot otherwise.  Either
        way the response pins ``conn.sent_seq``, and every journal
        record after it streams as ``repl.append`` event batches.
        """
        journal = self._journal_of()
        if journal is None:
            raise ProtocolError(
                "this server has no journal; nothing to replicate"
            )
        from_seq = int(request.get("from", 0))
        conn.replica = True
        self._c_event("replica_attach").inc()
        # Wake any sync-ack barrier holding through the reconnect
        # grace window: it re-runs against this replica's ack stream.
        self._repl_attach_event.set()
        records = (
            journal.records_since(from_seq) if from_seq > 0 else None
        )
        if records is None:
            snapshot = self._server.snapshot_state()
            conn.sent_seq = conn.acked_seq = int(snapshot["seq"])
            self._update_retain_floor()
            return {
                "mode": "snapshot",
                "snapshot": snapshot,
                "seq": journal.seq,
            }
        conn.sent_seq = journal.seq if not records else records[-1]["seq"]
        conn.acked_seq = from_seq
        self._update_retain_floor()
        return {"mode": "records", "records": records, "seq": journal.seq}

    def _verb_repl_ack(self, conn: _Connection, request: dict) -> dict:
        if not conn.replica:
            raise ProtocolError("repl.ack from a non-replica connection")
        seq = int(request["seq"])
        if seq > conn.acked_seq:
            conn.acked_seq = seq
        conn.ack_event.set()
        journal = self._journal_of()
        return {
            "acked": conn.acked_seq,
            "seq": journal.seq if journal is not None else None,
        }

    _VERBS = {
        "open": _verb_open,
        "advance": _verb_advance,
        "members": _verb_members,
        "close": _verb_close,
        "explain": _verb_explain,
        "subscribe": _verb_subscribe,
        "unsubscribe": _verb_unsubscribe,
        "ping": _verb_ping,
        "stats": _verb_stats,
        "repl.subscribe": _verb_repl_subscribe,
        "repl.ack": _verb_repl_ack,
    }

    # -- push stream --------------------------------------------------------
    def _push_answer_changes(self) -> None:
        if not any(conn.subscriptions for conn in self._connections):
            return
        tau = self._server.db.last_update_time
        for conn in list(self._connections):
            if conn.closing:
                continue
            for sid in list(conn.subscriptions):
                session = self._sessions.get(sid)
                if session is None or session.state != ACTIVE:
                    conn.subscriptions.pop(sid, None)
                    continue
                try:
                    wire = members_to_wire(session.members)
                except ServerError as exc:
                    # The session died under us (shed / quarantined):
                    # one final typed notice, then the stream ends.
                    conn.subscriptions.pop(sid, None)
                    self._send(
                        conn,
                        {
                            "event": "lost",
                            "session": sid,
                            "error": error_to_wire(exc),
                        },
                        force=True,
                    )
                    continue
                if wire != conn.subscriptions.get(sid):
                    conn.subscriptions[sid] = wire
                    delivered = self._send(
                        conn,
                        {
                            "event": "answer_change",
                            "session": sid,
                            "time": tau,
                            "members": wire,
                        },
                    )
                    if delivered:
                        self.stats.pushes += 1
                        self._c_event("push").inc()
                    else:
                        break  # connection was just shed or closed

    def _send(
        self, conn: _Connection, payload: dict, force: bool = False
    ) -> bool:
        """Queue one frame; bounded for pushes, unconditional for
        responses.  Returns False when the frame was not queued."""
        if conn.closing:
            return False
        if (
            not force
            and len(conn.queue) >= self._config.max_push_queue
        ):
            self._shed_slow_consumer(conn)
            return False
        frame = encode_frame(payload, self._config.max_frame)
        conn.queue.append(frame)
        # Counted at enqueue, not at flush: once a frame is committed
        # to the wire its bytes are part of the protocol's cost, and
        # the counters stay deterministic regardless of writer timing.
        self.stats.bytes_out += len(frame)
        self._c_bytes("out").inc(len(frame))
        conn.wake.set()
        return True

    def _shed_slow_consumer(self, conn: _Connection) -> None:
        """A full push queue means the consumer cannot keep up: shed
        its subscribed sessions through the admission controller and
        tell it why (the notice is force-queued)."""
        shed_sids = []
        for sid in list(conn.subscriptions):
            conn.subscriptions.pop(sid, None)
            session = self._sessions.get(sid)
            if session is not None and session.state == ACTIVE:
                self._server.shed(session)
                shed_sids.append(sid)
        self.stats.sheds += 1
        self._c_event("shed").inc()
        self._send(
            conn,
            {
                "event": "shed",
                "sessions": shed_sids,
                "reason": (
                    f"push queue exceeded {self._config.max_push_queue} "
                    f"frames (slow consumer)"
                ),
            },
            force=True,
        )

    def _drop_subscriptions(self, sid: int) -> None:
        for conn in self._connections:
            conn.subscriptions.pop(sid, None)

    async def _writer_loop(self, conn: _Connection) -> None:
        try:
            while True:
                while conn.paused and not conn.closing:
                    await asyncio.sleep(0.005)
                if conn.queue:
                    frame = conn.queue.popleft()
                    conn.writer.write(frame)
                    await conn.writer.drain()
                    continue
                if conn.closing:
                    return
                conn.wake.clear()
                if conn.queue or conn.closing:
                    continue
                await conn.wake.wait()
        except (ConnectionError, OSError):
            conn.closing = True

    # -- drain and close ----------------------------------------------------
    def drain(self) -> Dict[int, object]:
        """Gracefully wind the service down.

        Stops accepting, flushes the shared applier, closes every live
        session (queued ones are cancelled), pushes each final answer
        to the session's owning connection as a ``drain`` event, says
        ``goodbye``, and shuts the query server down.  Returns the
        final answers by session id.
        """
        return self._call(self._drain_async(), timeout=60.0)

    async def _drain_async(self) -> Dict[int, object]:
        if self._draining:
            return {}
        self._draining = True
        if self._asyncio_server is not None:
            self._asyncio_server.close()
            await self._asyncio_server.wait_closed()
            self._asyncio_server = None
        self._server.applier.flush()
        drained: Dict[int, object] = {}
        # Cancel the admission queue first: closing an active session
        # below would otherwise promote a queued one mid-drain and
        # hand it a zero-width answer window.
        for session in sorted(
            self._sessions.values(), key=lambda s: s.session_id
        ):
            if session.state == QUEUED:
                session.close()  # cancel; it never had an answer window
        for sid, session in sorted(self._sessions.items()):
            if session.state != ACTIVE:
                continue
            answer = session.close()
            drained[sid] = answer
            self.stats.drained += 1
            self._c_event("drain").inc()
            owner = self._owners.get(sid)
            if owner is not None and not owner.closing:
                self._send(
                    owner,
                    {
                        "event": "drain",
                        "session": sid,
                        "answer": answer_to_wire(answer),
                    },
                    force=True,
                )
        # Stream the drain's close records before saying goodbye, so a
        # standby mirrors the drained (terminal) state.
        self._flush_repl()
        await self._repl_barrier()
        if self._heartbeat_task is not None:
            self._heartbeat_task.cancel()
            self._heartbeat_task = None
        for conn in list(self._connections):
            self._send(
                conn, {"event": "goodbye", "reason": "drain"}, force=True
            )
            conn.closing = True
            conn.wake.set()
        for conn in list(self._connections):
            if conn.writer_task is not None:
                try:
                    await conn.writer_task
                except asyncio.CancelledError:
                    pass
            try:
                conn.writer.close()
            except Exception:
                pass
        self._server.shutdown()
        return drained

    def close(self) -> None:
        """Tear the frontend down (draining first if needed).

        Idempotent.  Afterwards the database no longer routes updates
        through the frontend, the loop thread is joined, and the
        wrapped query server is shut down.
        """
        if self._closed:
            return
        self._closed = True
        self._server.db.unsubscribe(self._ingest)
        if self._loop is not None:
            try:
                self._call(self._drain_async(), timeout=60.0)
            except Exception:
                pass
            self._loop.call_soon_threadsafe(self._loop.stop)
            if self._thread is not None:
                self._thread.join(timeout=10.0)
        self._server.shutdown()

    def kill(self) -> None:
        """Die abruptly — the chaos-testing crash.

        No drain, no goodbye, no final checkpoint, no session closes:
        sockets are aborted and the loop stops, exactly as if the
        process had been SIGKILLed mid-flight.  Whatever the journal
        (and any acked replica) holds is all that survives — which is
        precisely the guarantee recovery and failover are tested
        against.  Idempotent; a killed frontend cannot be restarted.
        """
        if self._closed:
            return
        self._closed = True
        try:
            self._server.db.unsubscribe(self._ingest)
        except Exception:
            pass
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._kill_on_loop)
            self._loop.call_soon_threadsafe(self._loop.stop)
            if self._thread is not None:
                self._thread.join(timeout=10.0)

    def _kill_on_loop(self) -> None:
        # A simulated crash is deliberately ungraceful: suppress the
        # loop's complaints about the tasks we are about to tear down.
        self._loop.set_exception_handler(lambda loop, context: None)
        if self._heartbeat_task is not None:
            self._heartbeat_task.cancel()
            self._heartbeat_task = None
        if self._asyncio_server is not None:
            self._asyncio_server.close()
            self._asyncio_server = None
        for conn in list(self._connections):
            conn.closing = True
            conn.wake.set()
            transport = getattr(conn.writer, "transport", None)
            if transport is not None:
                try:
                    transport.abort()
                except Exception:
                    pass
        for task in asyncio.all_tasks(self._loop):
            task.cancel()
