"""Networked serving: a TCP wire over the multi-tenant QueryServer.

The package splits along the protocol boundary:

- :mod:`repro.net.protocol` — length-prefixed JSON framing and the
  oid-faithful answer encodings shared by both ends;
- :mod:`repro.net.errors` — transport errors plus the wire registry
  that lets the server's typed exceptions re-raise client-side;
- :mod:`repro.net.server` — :class:`QueryNetServer`, the asyncio
  frontend (loop on a dedicated thread, idempotent retries, bounded
  push queues with slow-consumer shedding, graceful drain);
- :mod:`repro.net.client` — :class:`RemoteQueryClient` /
  :class:`RemoteQuerySession`, the synchronous client with timeouts
  and reconnecting retries.

Most callers want :func:`repro.core.api.serve_tcp`.
"""

from repro.net.config import NetConfig
from repro.net.client import (
    RemoteExplain,
    RemoteQueryClient,
    RemoteQuerySession,
    connect,
)
from repro.net.errors import (
    ConnectionLostError,
    FrameTooLargeError,
    NetError,
    NotPrimaryError,
    ProtocolError,
    RemoteError,
    RequestTimeoutError,
    VersionMismatchError,
)
from repro.net.protocol import (
    MAX_FRAME,
    PROTOCOL_VERSION,
    answer_from_wire,
    answer_to_wire,
    decode_payload,
    encode_frame,
    members_from_wire,
    members_to_wire,
)
from repro.net.server import NetStats, QueryNetServer

__all__ = [
    "NetConfig",
    "NetStats",
    "QueryNetServer",
    "RemoteExplain",
    "RemoteQueryClient",
    "RemoteQuerySession",
    "connect",
    "NetError",
    "ProtocolError",
    "FrameTooLargeError",
    "VersionMismatchError",
    "ConnectionLostError",
    "NotPrimaryError",
    "RequestTimeoutError",
    "RemoteError",
    "PROTOCOL_VERSION",
    "MAX_FRAME",
    "encode_frame",
    "decode_payload",
    "members_to_wire",
    "members_from_wire",
    "answer_to_wire",
    "answer_from_wire",
]
