"""repro — a reproduction of "On Moving Object Queries"
(Mokhtar, Su, Ibarra, PODS 2002).

The library implements the paper end to end:

- the **moving object data model** (Section 2): piecewise-linear
  trajectories, the MOD triple ``(O, T, tau)``, and the
  ``new``/``terminate``/``chdir`` update algebra —
  :mod:`repro.trajectory`, :mod:`repro.mod`;
- the **constraint query language** of Section 3 with its
  quantifier-elimination evaluation (Proposition 1) and the
  past/continuing/future taxonomy (Definitions 4-5, Theorem 2) —
  :mod:`repro.constraints`;
- **generalized distances** (Section 4) — :mod:`repro.gdist` — and the
  **FO(f) query language** with snapshot / accumulative / persevering
  answers — :mod:`repro.query`;
- the **plane-sweep evaluation engine** (Section 5, Theorems 4, 5, 10,
  Lemma 9) — :mod:`repro.sweep`;
- baselines, synthetic workloads, and the paper's worked scenarios —
  :mod:`repro.baselines`, :mod:`repro.workloads`.

Quickstart::

    from repro import MovingObjectDatabase, evaluate_knn, Interval

    db = MovingObjectDatabase()
    db.create("cab-7", time=1.0, position=[2.0, 1.0], velocity=[0.5, 0.0])
    db.create("cab-9", time=2.0, position=[9.0, 3.0], velocity=[-1.0, 0.0])
    answer = evaluate_knn(db, query=[0.0, 0.0], interval=Interval(2.0, 20.0), k=1)
    print(answer)
"""

from repro.cache import QueryCache
from repro.core.api import (
    ContinuousQuerySession,
    evaluate_knn,
    evaluate_multiknn,
    evaluate_query,
    evaluate_within,
    serve,
    serve_tcp,
)
from repro.geometry.intervals import Interval, IntervalSet
from repro.geometry.poly import Polynomial
from repro.geometry.vectors import Vector
from repro.gdist.arrival import ArrivalTimeGDistance, SquaredArrivalTimeGDistance
from repro.gdist.base import GDistance
from repro.gdist.approx import PolynomialApproximation
from repro.gdist.coordinate import CoordinateValue, WeightedSquaredDistance
from repro.gdist.euclidean import SquaredEuclideanDistance
from repro.mod.database import MovingObjectDatabase
from repro.mod.log import RecordingDatabase, UpdateLog
from repro.mod.updates import ChangeDirection, New, Terminate
from repro.obs import (
    ComplexityAudit,
    ExplainReport,
    Instrumentation,
    MetricsRegistry,
    QueryProfile,
    QueryProfiler,
    SlowQueryLog,
    TraceContext,
    Tracer,
    WorkloadAttribution,
    as_instrumentation,
    explain,
)
from repro.query.answers import SnapshotAnswer
from repro.query.query import Query, knn_query, within_query
from repro.resilience.ingest import IngestPipeline, IngestStats, RejectedUpdate
from repro.resilience.supervisor import SupervisedQuerySession, SupervisorStats
from repro.resilience.wal import WriteAheadLog, recover
from repro.parallel.evaluator import ShardedSweepEvaluator
from repro.server import (
    AdmissionError,
    QueryServer,
    ServerConfig,
    ServerClosedError,
    ServerError,
    ServerSession,
    SessionClosedError,
    SessionQuarantinedError,
    SessionQueuedError,
    SessionShedError,
)
from repro.sweep.engine import SweepEngine
from repro.trajectory.builder import from_waypoints, linear_from, stationary
from repro.trajectory.trajectory import Trajectory

__version__ = "1.0.0"

__all__ = [
    "AdmissionError",
    "ArrivalTimeGDistance",
    "ChangeDirection",
    "ComplexityAudit",
    "ContinuousQuerySession",
    "CoordinateValue",
    "ExplainReport",
    "GDistance",
    "IngestPipeline",
    "IngestStats",
    "Instrumentation",
    "Interval",
    "IntervalSet",
    "MetricsRegistry",
    "MovingObjectDatabase",
    "New",
    "Polynomial",
    "PolynomialApproximation",
    "Query",
    "QueryCache",
    "QueryProfile",
    "QueryProfiler",
    "QueryServer",
    "RecordingDatabase",
    "RejectedUpdate",
    "ServerClosedError",
    "ServerConfig",
    "ServerError",
    "ServerSession",
    "SessionClosedError",
    "SessionQuarantinedError",
    "SessionQueuedError",
    "SessionShedError",
    "ShardedSweepEvaluator",
    "SlowQueryLog",
    "SnapshotAnswer",
    "SquaredArrivalTimeGDistance",
    "SquaredEuclideanDistance",
    "SupervisedQuerySession",
    "SupervisorStats",
    "SweepEngine",
    "Terminate",
    "TraceContext",
    "Tracer",
    "Trajectory",
    "UpdateLog",
    "Vector",
    "WeightedSquaredDistance",
    "WorkloadAttribution",
    "WriteAheadLog",
    "as_instrumentation",
    "evaluate_knn",
    "evaluate_multiknn",
    "evaluate_query",
    "evaluate_within",
    "explain",
    "from_waypoints",
    "knn_query",
    "linear_from",
    "recover",
    "serve",
    "serve_tcp",
    "stationary",
    "within_query",
]
