"""Per-query profiling: trace contexts, stage attribution, slow-query
log, and workload accounting.

The paper's contributions are cost claims — Theorem 4's
``O((m+N) log N)`` sweep, Theorem 5's ``O(N log N)`` init /
``O(m log N)`` maintenance, Corollary 6's amortized updates — and a
production engine has to show *where* those costs land per query, not
just in global counters.  This module supplies the machinery:

- :class:`TraceContext` — the correlation token: a ``query_id`` plus
  the parent span id.  It is a plain serializable dict underneath, so
  the process-pool backend can carry it across the pickle boundary and
  worker-side spans still stamp the owning query.
- :class:`ContextTracer` — wraps any tracer and stamps the context's
  ``query_id`` into every span and event it produces.  Layers that
  already accept ``observe=`` need no changes to correlate.
- :class:`QueryProfile` — one query's profile: a context manager that
  owns a fresh registry + ring-buffered context tracer (exposed as
  ``.observe``, an :class:`~repro.obs.instrument.Instrumentation`) and
  an aggregated **stage tree** built by :meth:`QueryProfile.stage`.
  Stages merge by ``(name, shard)``: wall time sums, counts increment,
  numeric annotations add up — so N calls to ``stage("curves")`` from
  the sweep's inner loop collapse to one line in the report.
- :class:`QueryProfiler` — the session-level factory: assigns query
  ids, keeps global counters, and feeds finished profiles to the
  :class:`SlowQueryLog` and :class:`WorkloadAttribution`.
- :class:`SlowQueryLog` — threshold-triggered JSONL emission plus an
  algorithm-R reservoir over *all* finished queries, so the tail and a
  uniform sample are both available after a long run.
- :class:`WorkloadAttribution` — top-K hot answer oids, hottest shards
  by primitive ops, and cache-churn gauges.

Disabled profiling costs nothing: code paths resolve their stage hook
to :data:`NULL_STAGE` when the instrumentation bundle carries no
profile, the same trick the metrics layer plays with
:data:`~repro.obs.metrics.NULL_COUNTER`.
"""

from __future__ import annotations

import itertools
import json
import random
import time
from typing import Dict, List, Optional, Tuple

from repro.obs.instrument import Instrumentation
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import NULL_TRACER, RingBufferSink, Tracer

__all__ = [
    "ContextTracer",
    "NULL_STAGE",
    "QueryProfile",
    "QueryProfiler",
    "SlowQueryLog",
    "Stage",
    "TraceContext",
    "WorkloadAttribution",
]


class TraceContext:
    """The correlation token carried through every layer of one query.

    ``query_id`` names the query; ``parent_span_id`` (optional) is the
    span under which remote work should nest when it is re-absorbed.
    Serializes to a plain dict so it survives the process-pool pickle
    boundary.
    """

    __slots__ = ("query_id", "parent_span_id")

    def __init__(
        self, query_id: str, parent_span_id: Optional[int] = None
    ) -> None:
        self.query_id = query_id
        self.parent_span_id = parent_span_id

    def to_dict(self) -> dict:
        """A pickle/JSON-safe representation."""
        return {
            "query_id": self.query_id,
            "parent_span_id": self.parent_span_id,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TraceContext":
        """Rebuild a context from :meth:`to_dict` output."""
        return cls(data["query_id"], data.get("parent_span_id"))

    def __repr__(self) -> str:
        return f"TraceContext({self.query_id!r})"


class ContextTracer:
    """A tracer wrapper that stamps ``query_id`` into every record.

    Delegates everything else to the wrapped tracer, so it drops into
    any ``observe=`` slot that expects a tracer.
    """

    __slots__ = ("_inner", "_context")

    def __init__(self, inner, context: TraceContext) -> None:
        self._inner = inner
        self._context = context

    @property
    def enabled(self) -> bool:
        return getattr(self._inner, "enabled", False)

    @property
    def context(self) -> TraceContext:
        """The stamped context."""
        return self._context

    @property
    def sink(self):
        return getattr(self._inner, "sink", None)

    def span(self, name: str, **attrs: object):
        attrs.setdefault("query_id", self._context.query_id)
        return self._inner.span(name, **attrs)

    def event(self, name: str, **attrs: object) -> None:
        attrs.setdefault("query_id", self._context.query_id)
        self._inner.event(name, **attrs)

    def flush(self) -> None:
        flush = getattr(self._inner, "flush", None)
        if flush is not None:
            flush()

    def close(self) -> None:
        close = getattr(self._inner, "close", None)
        if close is not None:
            close()


class Stage:
    """One aggregated node of the stage tree.

    A stage re-entered with the same ``(name, shard)`` key under the
    same parent merges: wall time sums, ``count`` increments, numeric
    annotations add, non-numeric annotations last-write-wins.  Use as a
    context manager via :meth:`QueryProfile.stage`.
    """

    __slots__ = (
        "name",
        "shard",
        "wall_seconds",
        "count",
        "attrs",
        "children",
        "_profile",
        "_start",
    )

    def __init__(self, name: str, shard: Optional[int] = None) -> None:
        self.name = name
        self.shard = shard
        self.wall_seconds = 0.0
        self.count = 0
        self.attrs: Dict[str, object] = {}
        self.children: Dict[Tuple[str, Optional[int]], "Stage"] = {}
        self._profile: Optional["QueryProfile"] = None
        self._start = 0.0

    def annotate(self, **attrs: object) -> None:
        """Attach measurements; numeric values accumulate across
        re-entries of the same stage."""
        for key, value in attrs.items():
            if isinstance(value, (int, float)) and not isinstance(
                value, bool
            ):
                self.attrs[key] = self.attrs.get(key, 0) + value
            else:
                self.attrs[key] = value

    def add_time(self, seconds: float) -> None:
        """Fold an *externally measured* wall-time span into this stage.

        Some costs are paid before the profile exists — the networked
        frontend decodes a request frame before it can know the request
        asks for an EXPLAIN — so the measurement is taken eagerly and
        attributed here after the fact.  Counts as one (re-)entry.
        """
        self.wall_seconds += float(seconds)
        self.count += 1

    def child(self, name: str, shard: Optional[int] = None) -> "Stage":
        """The (possibly pre-existing) child stage for this key."""
        key = (name, shard)
        node = self.children.get(key)
        if node is None:
            node = Stage(name, shard)
            self.children[key] = node
        return node

    def __enter__(self) -> "Stage":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.wall_seconds += time.perf_counter() - self._start
        self.count += 1
        if self._profile is not None:
            self._profile._pop(self)
        return False

    def to_dict(self) -> dict:
        """JSON-ready subtree, children sorted by (name, shard)."""
        out: dict = {
            "name": self.name,
            "wall_seconds": self.wall_seconds,
            "count": self.count,
        }
        if self.shard is not None:
            out["shard"] = self.shard
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.children:
            out["children"] = [
                self.children[k].to_dict()
                for k in sorted(
                    self.children, key=lambda k: (k[0], k[1] is not None, k[1] or 0)
                )
            ]
        return out


class _NullStage:
    """The free disabled-path stage: no timing, no allocation."""

    __slots__ = ()

    def annotate(self, **attrs: object) -> None:
        """Discard the annotations."""

    def __enter__(self) -> "_NullStage":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


NULL_STAGE = _NullStage()


class QueryProfile:
    """The profile of one query evaluation.

    Use as a context manager around the evaluation; pass ``.observe``
    (or the profile itself — :func:`~repro.obs.instrument.as_instrumentation`
    unwraps it) as the ``observe=`` argument so every layer's spans,
    counters, and stages land here, stamped with this query's id.
    """

    def __init__(
        self,
        query_id: str,
        kind: str,
        meta: Optional[dict] = None,
        span_capacity: int = 4096,
    ) -> None:
        self.query_id = query_id
        self.kind = kind
        self.meta = dict(meta or {})
        self.context = TraceContext(query_id)
        self.sink = RingBufferSink(capacity=span_capacity)
        self.metrics = MetricsRegistry()
        self.tracer = ContextTracer(Tracer(self.sink), self.context)
        self.observe = Instrumentation(
            metrics=self.metrics,
            tracer=self.tracer,
            profile=self,
            context=self.context,
        )
        self.root = Stage("query")
        self.answer = None
        self.total_seconds = 0.0
        self._stack: List[Stage] = [self.root]
        self._shard_snapshots: Dict[int, dict] = {}
        self._answer_oids: List[object] = []
        self._start = 0.0
        self._finished = False

    # -- lifecycle ----------------------------------------------------------
    def __enter__(self) -> "QueryProfile":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.finish()
        return False

    def finish(self) -> None:
        """Stop the clock (idempotent; called by ``__exit__``)."""
        if not self._finished:
            self._finished = True
            self.total_seconds = time.perf_counter() - self._start
            self.root.wall_seconds = self.total_seconds
            self.root.count = 1

    # -- stage attribution --------------------------------------------------
    def stage(
        self, name: str, shard: Optional[int] = None, **attrs: object
    ) -> Stage:
        """Open (or re-enter) the stage ``(name, shard)`` under the
        innermost open stage.  Use as a context manager."""
        node = self._stack[-1].child(name, shard)
        if attrs:
            node.annotate(**attrs)
        node._profile = self
        self._stack.append(node)
        return node

    def _pop(self, node: Stage) -> None:
        # Same crash-tolerant discipline as the tracer's span stack.
        while len(self._stack) > 1:
            top = self._stack.pop()
            if top is node:
                break

    # -- absorption ---------------------------------------------------------
    def absorb_shard(self, shard: int, snapshot: Optional[dict]) -> None:
        """Merge a worker-side telemetry snapshot (metrics + records)
        produced in another process for ``shard``."""
        if snapshot:
            self._shard_snapshots[int(shard)] = snapshot

    def record_answer(self, answer) -> None:
        """Note the final answer, harvesting member oids for workload
        attribution (best-effort across answer shapes)."""
        self.answer = answer
        self._answer_oids = _answer_oids(answer)

    # -- report -------------------------------------------------------------
    @property
    def spans(self) -> List[dict]:
        """All local span/event records captured for this query."""
        return self.sink.records

    @property
    def coverage(self) -> float:
        """Fraction of total wall time attributed to top-level stages
        (1.0 means the stage tree accounts for everything)."""
        if self.total_seconds <= 0.0:
            return 1.0
        attributed = sum(
            s.wall_seconds for s in self.root.children.values()
        )
        return attributed / self.total_seconds

    def shard_ops(self) -> Dict[int, float]:
        """Primitive ops per shard, from the per-shard stage
        annotations (the skew input)."""
        out: Dict[int, float] = {}
        for stage in _walk(self.root):
            if stage.shard is None:
                continue
            ops = stage.attrs.get("ops")
            if isinstance(ops, (int, float)):
                out[stage.shard] = out.get(stage.shard, 0.0) + float(ops)
        return out

    def shard_skew(self) -> Optional[dict]:
        """Max/mean primitive-op skew across shards (``None`` when the
        query did not shard)."""
        ops = self.shard_ops()
        if not ops:
            return None
        values = list(ops.values())
        mean = sum(values) / len(values)
        return {
            "shards": len(values),
            "max_ops": max(values),
            "mean_ops": mean,
            "skew": (max(values) / mean) if mean else 1.0,
        }

    def report(self) -> dict:
        """The full JSON-ready profile."""
        self.finish()
        out = {
            "query_id": self.query_id,
            "kind": self.kind,
            "meta": dict(self.meta),
            "total_seconds": self.total_seconds,
            "coverage": self.coverage,
            "stages": [
                self.root.children[k].to_dict()
                for k in sorted(
                    self.root.children,
                    key=lambda k: (k[0], k[1] is not None, k[1] or 0),
                )
            ],
            "metrics": {
                "query_id": self.query_id,
                "samples": self.metrics.snapshot(),
            },
            "spans": self.spans,
        }
        skew = self.shard_skew()
        if skew is not None:
            out["shard_skew"] = skew
        if self._shard_snapshots:
            out["shards"] = {
                str(i): snap
                for i, snap in sorted(self._shard_snapshots.items())
            }
        return out

    def summary(self) -> dict:
        """The slim record the slow-query log stores: identity, cost,
        and the top-level stage breakdown only."""
        self.finish()
        return {
            "query_id": self.query_id,
            "kind": self.kind,
            "meta": dict(self.meta),
            "total_seconds": self.total_seconds,
            "stages": {
                f"{name}" + (f"[{shard}]" if shard is not None else ""): round(
                    stage.wall_seconds, 9
                )
                for (name, shard), stage in sorted(
                    self.root.children.items(),
                    key=lambda kv: (kv[0][0], kv[0][1] is not None, kv[0][1] or 0),
                )
            },
        }

    def __repr__(self) -> str:
        return (
            f"QueryProfile({self.query_id!r}, kind={self.kind!r}, "
            f"{self.total_seconds * 1e3:.3f} ms)"
        )


def _walk(stage: Stage):
    yield stage
    for child in stage.children.values():
        yield from _walk(child)


def _answer_oids(answer) -> List[object]:
    """Best-effort oid harvest across the engine's answer shapes."""
    oids: List[object] = []
    seen = set()

    def note(oid) -> None:
        if oid not in seen:
            seen.add(oid)
            oids.append(oid)

    objects = getattr(answer, "objects", None)
    if objects is not None:
        for oid in sorted(objects, key=str):
            note(oid)
        return oids
    if isinstance(answer, dict):  # multiknn: {k: answer}
        for sub in answer.values():
            for oid in _answer_oids(sub):
                note(oid)
    return oids


class SlowQueryLog:
    """Threshold-triggered slow-query capture with a uniform reservoir.

    Every finished query is :meth:`offer`-ed a summary.  Summaries at
    or above ``threshold_seconds`` are kept in :attr:`slow` (and
    emitted to the JSONL ``sink``, if any); independently, *all*
    summaries feed an algorithm-R reservoir of ``reservoir`` entries,
    so a uniform sample of the workload survives arbitrarily long runs.
    """

    def __init__(
        self,
        threshold_seconds: float,
        sink=None,
        reservoir: int = 128,
        seed: int = 0,
        max_slow: int = 1024,
    ) -> None:
        if threshold_seconds < 0:
            raise ValueError("threshold must be nonnegative")
        if reservoir < 1:
            raise ValueError("reservoir must hold at least one entry")
        self.threshold_seconds = threshold_seconds
        self._sink = sink
        self._reservoir_size = reservoir
        self._rng = random.Random(seed)
        self._max_slow = max_slow
        self.offered = 0
        self.slow: List[dict] = []
        self.sample: List[dict] = []

    def offer(self, summary: dict) -> bool:
        """Consider one finished query; returns whether it was slow."""
        self.offered += 1
        # Algorithm R: the first `reservoir` entries fill the sample,
        # the i-th thereafter replaces a random slot with prob k/i.
        if len(self.sample) < self._reservoir_size:
            self.sample.append(summary)
        else:
            slot = self._rng.randrange(self.offered)
            if slot < self._reservoir_size:
                self.sample[slot] = summary
        is_slow = summary.get("total_seconds", 0.0) >= self.threshold_seconds
        if is_slow:
            if len(self.slow) < self._max_slow:
                self.slow.append(summary)
            if self._sink is not None:
                self._sink.emit({"type": "slow_query", **summary})
        return is_slow

    def flush(self) -> None:
        flush = getattr(self._sink, "flush", None)
        if flush is not None:
            flush()

    def close(self) -> None:
        close = getattr(self._sink, "close", None)
        if close is not None:
            close()

    def to_dict(self) -> dict:
        """Counts, slow entries, and the current reservoir."""
        return {
            "threshold_seconds": self.threshold_seconds,
            "offered": self.offered,
            "slow_count": len(self.slow),
            "slow": list(self.slow),
            "sample": list(self.sample),
        }


class WorkloadAttribution:
    """Workload-level accounting: hot objects, hot shards, cache churn.

    ``note_query`` absorbs a finished :class:`QueryProfile`;
    ``watch_cache`` binds churn gauges to a
    :class:`~repro.cache.QueryCache` so its stats export alongside.
    """

    def __init__(self) -> None:
        self._oid_hits: Dict[object, int] = {}
        self._shard_ops: Dict[int, float] = {}
        self._kind_counts: Dict[str, int] = {}
        self._cache = None
        self.queries = 0

    def note_query(self, profile: QueryProfile) -> None:
        """Fold one finished profile into the workload totals."""
        self.queries += 1
        self._kind_counts[profile.kind] = (
            self._kind_counts.get(profile.kind, 0) + 1
        )
        for oid in profile._answer_oids:
            key = str(oid)
            self._oid_hits[key] = self._oid_hits.get(key, 0) + 1
        for shard, ops in profile.shard_ops().items():
            self._shard_ops[shard] = self._shard_ops.get(shard, 0.0) + ops

    def watch_cache(self, cache) -> None:
        """Attach a query cache whose stats feed :meth:`to_dict`."""
        self._cache = cache

    def hot_oids(self, top_k: int = 10) -> List[Tuple[str, int]]:
        """The ``top_k`` most-answered object ids."""
        return sorted(
            self._oid_hits.items(), key=lambda kv: (-kv[1], kv[0])
        )[:top_k]

    def hottest_shards(self, top_k: int = 10) -> List[Tuple[int, float]]:
        """The ``top_k`` shards by cumulative primitive ops."""
        return sorted(
            self._shard_ops.items(), key=lambda kv: (-kv[1], kv[0])
        )[:top_k]

    def cache_churn(self) -> Optional[dict]:
        """The watched cache's current stats (``None`` if unwatched)."""
        if self._cache is None:
            return None
        stats = self._cache.stats()
        stats["hit_rate"] = self._cache.hit_rate
        return stats

    def to_dict(self) -> dict:
        out = {
            "queries": self.queries,
            "by_kind": dict(sorted(self._kind_counts.items())),
            "hot_oids": [
                {"oid": oid, "queries": n} for oid, n in self.hot_oids()
            ],
            "hottest_shards": [
                {"shard": shard, "ops": ops}
                for shard, ops in self.hottest_shards()
            ],
        }
        churn = self.cache_churn()
        if churn is not None:
            out["cache"] = churn
        return out


class QueryProfiler:
    """The session-level profiler: id assignment, aggregation, and the
    slow-query/attribution feeds.

    >>> profiler = QueryProfiler(slow_log=SlowQueryLog(0.5))
    >>> with profiler.profile("knn", k=2) as prof:
    ...     answer = evaluate_knn(db, q, window, k=2, observe=prof)
    ...     prof.record_answer(answer)
    >>> prof.report()["query_id"]
    'q-000001'
    """

    def __init__(
        self,
        slow_log: Optional[SlowQueryLog] = None,
        attribution: Optional[WorkloadAttribution] = None,
        observe=None,
    ) -> None:
        from repro.obs.instrument import as_instrumentation

        self.slow_log = slow_log
        self.attribution = (
            attribution if attribution is not None else WorkloadAttribution()
        )
        self._ids = itertools.count(1)
        self._instr = as_instrumentation(observe)
        self.profiles: List[QueryProfile] = []
        metrics = (
            self._instr.metrics if self._instr is not None else None
        )
        if metrics is not None:
            self._g_queries = metrics.counter(
                "profiler_queries_total",
                "Queries profiled.",
                labels=("kind",),
            )
            self._h_latency = metrics.histogram(
                "profiler_query_seconds",
                "Per-query wall time.",
                labels=("kind",),
            )
        else:
            self._g_queries = None
            self._h_latency = None

    def profile(
        self, kind: str, query_id: Optional[str] = None, **meta: object
    ) -> "_ProfileScope":
        """A context manager yielding a fresh :class:`QueryProfile`."""
        if query_id is None:
            query_id = f"q-{next(self._ids):06d}"
        return _ProfileScope(self, QueryProfile(query_id, kind, meta))

    def _finished(self, profile: QueryProfile) -> None:
        self.profiles.append(profile)
        if self._g_queries is not None:
            self._g_queries.labels(kind=profile.kind).inc()
            self._h_latency.labels(kind=profile.kind).observe(
                profile.total_seconds
            )
        if self.slow_log is not None:
            self.slow_log.offer(profile.summary())
        self.attribution.note_query(profile)

    def to_dict(self) -> dict:
        """Workload attribution plus the slow-query log state."""
        out = {"attribution": self.attribution.to_dict()}
        if self.slow_log is not None:
            out["slow_log"] = self.slow_log.to_dict()
        return out

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


class _ProfileScope:
    """Context manager binding a profile's lifecycle to its profiler."""

    __slots__ = ("_profiler", "_profile")

    def __init__(self, profiler: QueryProfiler, profile: QueryProfile):
        self._profiler = profiler
        self._profile = profile

    def __enter__(self) -> QueryProfile:
        self._profile.__enter__()
        return self._profile

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._profile.__exit__(exc_type, exc, tb)
        self._profiler._finished(self._profile)
        return False
