"""A zero-dependency metrics registry: counters, gauges, histograms.

Modeled on the Prometheus client data model, trimmed to what the sweep
engine and resilience layer need and kept allocation-light so hot paths
can afford it:

- **Counters** are monotone; the hot-path operation is one bound-method
  call plus an integer add.
- **Gauges** hold a value, or compute one on demand via
  :meth:`Gauge.set_function` — collection-time cost only, which is how
  the engine exports queue depth and order size without touching the
  event loop.
- **Histograms** are log-bucketed (geometric bucket bounds), so one
  histogram spans nanoseconds to hours / single ops to billions with a
  few dozen buckets; ``observe`` is a bisect plus two adds.

Instruments are created through a :class:`MetricsRegistry` and may
carry labels: ``registry.counter("sweep_events_total", labels=("kind",))``
returns a family whose :meth:`MetricFamily.labels` children are created
on first use and cached.  Re-registering the same name with the same
type and labels returns the *same* family, so any number of engines or
sessions can share one registry and their counts aggregate.

A registry can :meth:`~MetricsRegistry.snapshot` itself into a flat
``{series_name: number}`` dict, :meth:`~MetricsRegistry.diff` two
snapshots, :meth:`~MetricsRegistry.reset` everything, and export as
Prometheus text (:meth:`~MetricsRegistry.to_prometheus`) or JSON
(:meth:`~MetricsRegistry.to_json`).

The module also defines no-op instrument singletons
(:data:`NULL_COUNTER`, :data:`NULL_GAUGE`, :data:`NULL_HISTOGRAM`);
instrumented code binds these when observability is disabled so the
hot path stays one cheap no-op call, with no conditionals.
"""

from __future__ import annotations

import json
import re
from bisect import bisect_left
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricFamily",
    "MetricsRegistry",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


class MetricError(ValueError):
    """Invalid metric declaration or use (name clash, bad labels...)."""


class Counter:
    """A monotonically increasing count."""

    kind = "counter"
    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise MetricError(f"counters only go up, got {amount}")
        self._value += amount

    @property
    def value(self) -> float:
        """The current count."""
        return self._value

    # -- registry plumbing -------------------------------------------------
    def _reset(self) -> None:
        self._value = 0

    def _samples(self) -> Iterable[Tuple[str, float]]:
        yield "", self._value


class Gauge:
    """A value that can go up and down, or be computed at collect time."""

    kind = "gauge"
    __slots__ = ("_value", "_fn")

    def __init__(self) -> None:
        self._value = 0.0
        self._fn: Optional[Callable[[], float]] = None

    def set(self, value: float) -> None:
        """Set the gauge to ``value``."""
        self._value = value

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` to the gauge."""
        self._value += amount

    def dec(self, amount: float = 1) -> None:
        """Subtract ``amount`` from the gauge."""
        self._value -= amount

    def set_function(self, fn: Optional[Callable[[], float]]) -> None:
        """Compute the gauge through ``fn`` at collection time.

        The function is called on :attr:`value` access / snapshot /
        export, never on a hot path.  When several components bind a
        function to the same series the last binding wins.
        """
        self._fn = fn

    @property
    def value(self) -> float:
        """The current value (calls the bound function, if any)."""
        return float(self._fn()) if self._fn is not None else self._value

    # -- registry plumbing -------------------------------------------------
    def _reset(self) -> None:
        self._value = 0.0

    def _samples(self) -> Iterable[Tuple[str, float]]:
        yield "", self.value


class Histogram:
    """A log-bucketed histogram of non-negative observations.

    Bucket upper bounds are ``base ** e`` for ``e`` in
    ``[min_exp, max_exp]`` plus ``+inf``; with the defaults (base 2,
    exponents -20..30) one histogram covers ~1e-6 through ~1e9, which
    spans both sub-millisecond fsync timings and per-sweep operation
    counts.  Also tracks count, sum, min, and max exactly.

    Empty-histogram semantics: with no observations there is no
    meaningful statistic, so :attr:`mean`, :meth:`quantile`,
    :attr:`min`, and :attr:`max` all return ``NaN`` — never the
    internal ``±inf`` seeds.  Exports (snapshot / Prometheus / JSON)
    stay finite: they carry only ``_count``/``_sum``/buckets.
    """

    kind = "histogram"
    __slots__ = ("_bounds", "_counts", "count", "sum", "_min", "_max")

    def __init__(
        self, base: float = 2.0, min_exp: int = -20, max_exp: int = 30
    ) -> None:
        if base <= 1.0:
            raise MetricError("histogram base must be > 1")
        if max_exp < min_exp:
            raise MetricError("max_exp must be >= min_exp")
        self._bounds: List[float] = [
            base ** e for e in range(min_exp, max_exp + 1)
        ]
        self._counts: List[int] = [0] * (len(self._bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")

    def observe(self, value: float) -> None:
        """Record one observation."""
        self._counts[bisect_left(self._bounds, value)] += 1
        self.count += 1
        self.sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    @property
    def min(self) -> float:
        """Smallest observation (``NaN`` when empty)."""
        return self._min if self.count else float("nan")

    @property
    def max(self) -> float:
        """Largest observation (``NaN`` when empty)."""
        return self._max if self.count else float("nan")

    @property
    def mean(self) -> float:
        """Mean of all observations (``NaN`` when empty)."""
        return self.sum / self.count if self.count else float("nan")

    def buckets(self) -> List[Tuple[float, int]]:
        """Non-empty ``(upper_bound, cumulative_count)`` pairs."""
        out: List[Tuple[float, int]] = []
        cumulative = 0
        bounds = self._bounds + [float("inf")]
        for bound, n in zip(bounds, self._counts):
            cumulative += n
            if n:
                out.append((bound, cumulative))
        return out

    def quantile(self, q: float) -> float:
        """Approximate ``q``-quantile from the bucket bounds.

        Returns the upper bound of the bucket containing the quantile —
        an overestimate by at most one bucket width (a factor of
        ``base``).  ``NaN`` when empty.
        """
        if not 0.0 <= q <= 1.0:
            raise MetricError(f"quantile must be in [0, 1], got {q}")
        if not self.count:
            return float("nan")
        target = q * self.count
        cumulative = 0
        bounds = self._bounds + [float("inf")]
        for bound, n in zip(bounds, self._counts):
            cumulative += n
            if cumulative >= target and n:
                return min(bound, self.max)
        return self.max

    # -- registry plumbing -------------------------------------------------
    def _reset(self) -> None:
        self._counts = [0] * len(self._counts)
        self.count = 0
        self.sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")

    def _samples(self) -> Iterable[Tuple[str, float]]:
        yield "_count", float(self.count)
        yield "_sum", self.sum


class _NullCounter:
    """No-op counter bound when observability is disabled."""

    kind = "counter"
    __slots__ = ()
    value = 0

    def inc(self, amount: float = 1) -> None:
        """Discard the increment."""


class _NullGauge:
    """No-op gauge bound when observability is disabled."""

    kind = "gauge"
    __slots__ = ()
    value = 0.0

    def set(self, value: float) -> None:
        """Discard the value."""

    def inc(self, amount: float = 1) -> None:
        """Discard the increment."""

    def dec(self, amount: float = 1) -> None:
        """Discard the decrement."""

    def set_function(self, fn) -> None:
        """Discard the function."""


class _NullHistogram:
    """No-op histogram bound when observability is disabled."""

    kind = "histogram"
    __slots__ = ()
    count = 0
    sum = 0.0

    def observe(self, value: float) -> None:
        """Discard the observation."""


NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format:
    backslash, double quote, and line feed."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _series_name(name: str, suffix: str, key: Tuple[str, ...], label_names: Tuple[str, ...]) -> str:
    if not label_names:
        return name + suffix
    inner = ",".join(
        f'{ln}="{_escape_label_value(lv)}"'
        for ln, lv in zip(label_names, key)
    )
    return f"{name}{suffix}{{{inner}}}"


class MetricFamily:
    """One named metric with zero or more labeled children."""

    def __init__(
        self,
        name: str,
        kind: str,
        help: str,
        label_names: Tuple[str, ...],
        factory: Callable[[], object],
        max_series: int,
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.label_names = label_names
        self._factory = factory
        self._max_series = max_series
        self._children: Dict[Tuple[str, ...], object] = {}

    def labels(self, **labels: object):
        """The child instrument for one label-value combination.

        Children are created on first use and cached, so binding the
        same labels twice (or from two different sessions) returns the
        same counter and the counts aggregate.  Exceeding the
        registry's per-family series budget raises :class:`MetricError`
        — runaway label cardinality is a bug, not a workload.
        """
        if tuple(sorted(labels)) != tuple(sorted(self.label_names)):
            raise MetricError(
                f"{self.name}: expected labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[ln]) for ln in self.label_names)
        child = self._children.get(key)
        if child is None:
            if len(self._children) >= self._max_series:
                raise MetricError(
                    f"{self.name}: label cardinality exceeds the "
                    f"{self._max_series}-series budget (key {key!r})"
                )
            child = self._factory()
            self._children[key] = child
        return child

    def children(self) -> Dict[Tuple[str, ...], object]:
        """All live ``label-values -> instrument`` pairs."""
        return dict(self._children)

    def _reset(self) -> None:
        for child in self._children.values():
            child._reset()


class MetricsRegistry:
    """A namespace of metric families with export and diffing.

    Parameters
    ----------
    max_series_per_family:
        Cardinality budget: the maximum number of distinct label-value
        combinations one family may hold before :meth:`MetricFamily.labels`
        raises.
    """

    def __init__(self, max_series_per_family: int = 256) -> None:
        self._families: Dict[str, MetricFamily] = {}
        self._max_series = max_series_per_family

    # -- declaration --------------------------------------------------------
    def _register(
        self,
        name: str,
        kind: str,
        help: str,
        labels: Tuple[str, ...],
        factory: Callable[[], object],
    ) -> MetricFamily:
        if not _NAME_RE.match(name):
            raise MetricError(f"invalid metric name {name!r}")
        for label in labels:
            if not _LABEL_RE.match(label):
                raise MetricError(f"invalid label name {label!r}")
        existing = self._families.get(name)
        if existing is not None:
            if existing.kind != kind or existing.label_names != labels:
                raise MetricError(
                    f"{name} already registered as {existing.kind}"
                    f"{existing.label_names}, cannot re-register as "
                    f"{kind}{labels}"
                )
            return existing
        family = MetricFamily(
            name, kind, help, labels, factory, self._max_series
        )
        self._families[name] = family
        return family

    def counter(self, name: str, help: str = "", labels: Tuple[str, ...] = ()):
        """Declare (or fetch) a counter; returns the family when
        ``labels`` are given, else the single unlabeled child."""
        labels = tuple(labels)
        family = self._register(name, "counter", help, labels, Counter)
        return family if labels else family.labels()

    def gauge(self, name: str, help: str = "", labels: Tuple[str, ...] = ()):
        """Declare (or fetch) a gauge (family when labeled)."""
        labels = tuple(labels)
        family = self._register(name, "gauge", help, labels, Gauge)
        return family if labels else family.labels()

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Tuple[str, ...] = (),
        base: float = 2.0,
        min_exp: int = -20,
        max_exp: int = 30,
    ):
        """Declare (or fetch) a log-bucketed histogram (family when
        labeled)."""
        labels = tuple(labels)
        family = self._register(
            name,
            "histogram",
            help,
            labels,
            lambda: Histogram(base=base, min_exp=min_exp, max_exp=max_exp),
        )
        return family if labels else family.labels()

    def families(self) -> List[MetricFamily]:
        """All registered families, sorted by name."""
        return [self._families[n] for n in sorted(self._families)]

    def __contains__(self, name: str) -> bool:
        return name in self._families

    def __getitem__(self, name: str) -> MetricFamily:
        return self._families[name]

    # -- snapshots -----------------------------------------------------------
    def snapshot(self) -> Dict[str, float]:
        """A flat ``{series: number}`` view of every instrument.

        Counters and gauges appear under their series name; histograms
        contribute ``<name>_count``, ``<name>_sum``, and one
        ``<name>_bucket{le="..."}`` entry per non-empty bucket.
        """
        out: Dict[str, float] = {}
        for family in self.families():
            for key, child in sorted(family.children().items()):
                for suffix, value in child._samples():
                    out[
                        _series_name(family.name, suffix, key, family.label_names)
                    ] = value
                if family.kind == "histogram":
                    for bound, cumulative in child.buckets():
                        label_bits = [
                            f'{ln}="{_escape_label_value(lv)}"'
                            for ln, lv in zip(family.label_names, key)
                        ] + [f'le="{_fmt_bound(bound)}"']
                        out[
                            f"{family.name}_bucket{{{','.join(label_bits)}}}"
                        ] = float(cumulative)
        return out

    @staticmethod
    def diff(
        before: Mapping[str, float], after: Mapping[str, float]
    ) -> Dict[str, float]:
        """Per-series ``after - before`` over the union of both
        snapshots (a series absent from one side counts as 0).  The
        natural way to meter one operation: snapshot, run, snapshot,
        diff."""
        out: Dict[str, float] = {}
        for key in sorted(set(before) | set(after)):
            delta = after.get(key, 0.0) - before.get(key, 0.0)
            if delta:
                out[key] = delta
        return out

    def reset(self) -> None:
        """Zero every counter and histogram; value gauges reset to 0,
        function-backed gauges are left bound."""
        for family in self._families.values():
            family._reset()

    # -- export -------------------------------------------------------------
    def to_prometheus(self) -> str:
        """The registry in the Prometheus text exposition format."""
        lines: List[str] = []
        for family in self.families():
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for key, child in sorted(family.children().items()):
                if family.kind == "histogram":
                    # The text format requires the +Inf bucket on every
                    # histogram (cumulative == _count), even when no
                    # observation overflowed — append it if absent.
                    buckets = child.buckets()
                    if not buckets or buckets[-1][0] != float("inf"):
                        buckets.append((float("inf"), child.count))
                    for bound, cumulative in buckets:
                        label_bits = [
                            f'{ln}="{_escape_label_value(lv)}"'
                            for ln, lv in zip(family.label_names, key)
                        ] + [f'le="{_fmt_bound(bound)}"']
                        lines.append(
                            f"{family.name}_bucket{{{','.join(label_bits)}}} "
                            f"{cumulative}"
                        )
                for suffix, value in child._samples():
                    lines.append(
                        f"{_series_name(family.name, suffix, key, family.label_names)}"
                        f" {_fmt_value(value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    def to_dict(self) -> Dict[str, dict]:
        """A structured JSON-ready view: per family, its type, help,
        and every labeled series."""
        out: Dict[str, dict] = {}
        for family in self.families():
            series = []
            for key, child in sorted(family.children().items()):
                labels = dict(zip(family.label_names, key))
                if family.kind == "histogram":
                    series.append(
                        {
                            "labels": labels,
                            "count": child.count,
                            "sum": child.sum,
                            # Keep the JSON view finite: an empty
                            # histogram's mean is NaN, which strict
                            # JSON cannot carry.
                            "mean": child.mean if child.count else 0.0,
                            "buckets": [
                                {"le": _fmt_bound(b), "count": c}
                                for b, c in child.buckets()
                            ],
                        }
                    )
                else:
                    series.append({"labels": labels, "value": child.value})
            out[family.name] = {
                "type": family.kind,
                "help": family.help,
                "series": series,
            }
        return out

    def to_json(self, indent: Optional[int] = None) -> str:
        """The :meth:`to_dict` view serialized as JSON."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


def _fmt_bound(bound: float) -> str:
    if bound == float("inf"):
        return "+Inf"
    if bound == int(bound) and abs(bound) < 1e15:
        return str(int(bound))
    return repr(bound)


def _fmt_value(value: float) -> str:
    if isinstance(value, int) or (value == int(value) and abs(value) < 1e15):
        return str(int(value))
    return repr(value)
