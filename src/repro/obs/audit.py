"""Empirical complexity auditing: fit operation counts to envelopes.

The theorems bound *operation counts*, not seconds: Theorem 5's
initialization performs ``O(N log N)`` comparisons and heap steps,
Corollary 6's per-update maintenance ``O(log N)``.  A
:class:`ComplexityAudit` collects ``(size, cost)`` observations per
named quantity — costs are recorded counters, e.g. treap descend steps
plus heap sift steps — and checks them against a declared envelope:

- the envelope model is least-squares fitted (via
  :mod:`repro.bench.fits`), yielding the empirical **constant factor**
  (the fit's scale) and **goodness-of-fit** (R²);
- every candidate model is fitted and ranked; the audit **passes** when
  the best-fitting model does not grow faster than the envelope (a
  flat curve passes a ``log n`` envelope; a linear curve fails it).

So "Corollary 6: updates are O(log N) amortized" becomes an executable
assertion over recorded counters — the check behind
``scripts/complexity_report.py`` and the CI complexity-audit job.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.bench.fits import ComplexityFit, best_model
from repro.bench.harness import format_table

__all__ = ["AuditResult", "ComplexityAudit", "GROWTH_ORDER", "fit_envelope"]

#: Asymptotic growth ranking of the candidate models: a fit "passes" an
#: envelope when its best-explaining model is at or below the
#: envelope's rank.
GROWTH_ORDER: Dict[str, int] = {
    "1": 0,
    "log n": 1,
    "n": 2,
    "n log n": 3,
    "n^2": 4,
}


@dataclass(frozen=True)
class AuditResult:
    """Outcome of checking one quantity against one envelope."""

    quantity: str
    envelope: str
    envelope_fit: ComplexityFit  # scale == empirical constant factor
    best_fit: ComplexityFit
    passed: bool
    observations: Tuple[Tuple[float, float], ...]

    @property
    def constant(self) -> float:
        """The empirical constant factor of the envelope model."""
        return self.envelope_fit.scale

    @property
    def r_squared(self) -> float:
        """Goodness-of-fit of the envelope model."""
        return self.envelope_fit.r_squared

    def describe(self) -> str:
        """One-line human-readable verdict."""
        verdict = "PASS" if self.passed else "FAIL"
        return (
            f"[{verdict}] {self.quantity}: envelope O({self.envelope}) "
            f"~ {self.constant:.3g} * {self.envelope} "
            f"(R^2={self.r_squared:.4f}; best model: {self.best_fit.model})"
        )


def fit_envelope(
    sizes: Sequence[float],
    costs: Sequence[float],
    envelope: str,
    quantity: str = "",
    models: Sequence[str] = ("1", "log n", "n", "n log n", "n^2"),
) -> AuditResult:
    """Check one ``(sizes, costs)`` series against an envelope model.

    The audit passes when the best-fitting candidate grows no faster
    than the envelope.  ``cost = a * m(n) + b`` fits for every
    candidate ``m``; candidates with negative scale (cost shrinking in
    size) are ranked last by :func:`repro.bench.fits.best_model`.
    """
    if envelope not in GROWTH_ORDER:
        raise ValueError(
            f"unknown envelope {envelope!r}; choose from {sorted(GROWTH_ORDER)}"
        )
    fits = best_model(sizes, costs, models)
    by_name = {f.model: f for f in fits}
    envelope_fit = by_name[envelope]
    best = fits[0]
    passed = GROWTH_ORDER[best.model] <= GROWTH_ORDER[envelope]
    return AuditResult(
        quantity=quantity,
        envelope=envelope,
        envelope_fit=envelope_fit,
        best_fit=best,
        passed=passed,
        observations=tuple(
            (float(n), float(c)) for n, c in zip(sizes, costs)
        ),
    )


class ComplexityAudit:
    """Accumulate ``(size, cost)`` observations and audit them.

    Usage::

        audit = ComplexityAudit()
        for n in sizes:
            ops = run_and_count(n)          # recorded counters, not seconds
            audit.record("init ops", n, ops)
        result = audit.check("init ops", "n log n")
        print(audit.report())               # table over every check
    """

    def __init__(
        self,
        models: Sequence[str] = ("1", "log n", "n", "n log n", "n^2"),
    ) -> None:
        self._models = tuple(models)
        self._observations: Dict[str, List[Tuple[float, float]]] = {}
        self._results: List[AuditResult] = []

    def record(self, quantity: str, size: float, cost: float) -> None:
        """Add one observation for ``quantity``."""
        self._observations.setdefault(quantity, []).append(
            (float(size), float(cost))
        )

    def observations(self, quantity: str) -> List[Tuple[float, float]]:
        """All recorded ``(size, cost)`` pairs for one quantity."""
        return list(self._observations.get(quantity, []))

    def quantities(self) -> List[str]:
        """Every quantity with at least one observation."""
        return list(self._observations)

    def check(self, quantity: str, envelope: str) -> AuditResult:
        """Audit one recorded quantity against an envelope model."""
        observations = self._observations.get(quantity)
        if not observations or len(observations) < 2:
            raise ValueError(
                f"need at least two observations for {quantity!r}"
            )
        sizes = [n for n, _ in observations]
        costs = [c for _, c in observations]
        result = fit_envelope(
            sizes, costs, envelope, quantity=quantity, models=self._models
        )
        self._results.append(result)
        return result

    @property
    def results(self) -> List[AuditResult]:
        """Every check performed so far, in order."""
        return list(self._results)

    @property
    def all_passed(self) -> bool:
        """True when every performed check passed (and at least one ran)."""
        return bool(self._results) and all(r.passed for r in self._results)

    def report(self, title: str = "Empirical complexity audit") -> str:
        """A formatted table over every performed check."""
        rows = [
            (
                r.quantity,
                f"O({r.envelope})",
                r.constant,
                r.r_squared,
                r.best_fit.model,
                "PASS" if r.passed else "FAIL",
            )
            for r in self._results
        ]
        return format_table(
            ["quantity", "envelope", "constant", "R^2", "best model", "verdict"],
            rows,
            title=title,
        )
