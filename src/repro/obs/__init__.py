"""Zero-dependency telemetry: metrics, tracing, complexity auditing.

The paper's headline results are *complexity* claims — Theorem 4's
``O((m+N) log N)`` sweep, Theorem 5's ``O(N log N)`` initialization and
``O(m log N)`` maintenance, Corollary 6's ``O(log N)`` amortized
updates.  Wall-clock benchmarks can only gesture at those bounds; this
package makes them *observable*:

- :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters,
  gauges, and log-bucketed histograms with labeled children,
  snapshot/diff/reset, and Prometheus-text / JSON export;
- :mod:`repro.obs.tracing` — a :class:`Tracer` producing structured
  span/event records into JSONL or ring-buffer sinks, with a no-op
  :data:`NULL_TRACER` so the disabled path costs nothing;
- :mod:`repro.obs.audit` — :class:`ComplexityAudit`, which fits
  recorded operation counts against ``log N`` / ``N log N`` /
  ``m log N`` envelopes and reports the constant factor and
  goodness-of-fit, turning the theorems into executable assertions;
- :mod:`repro.obs.instrument` — the :class:`Instrumentation` bundle
  (registry + tracer) accepted by every ``observe=`` hook in the
  engine, resilience, and workload layers.

Everything is pure-Python stdlib; enabling metrics on the sweep hot
path costs a bound-counter increment per event, and passing
``observe=None`` (the default) binds no-op instruments.
"""

from repro.obs.audit import AuditResult, ComplexityAudit, fit_envelope
from repro.obs.instrument import Instrumentation, as_instrumentation
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
)
from repro.obs.tracing import (
    NULL_TRACER,
    JsonlSink,
    NullTracer,
    RingBufferSink,
    Tracer,
)

__all__ = [
    "AuditResult",
    "ComplexityAudit",
    "Counter",
    "Gauge",
    "Histogram",
    "Instrumentation",
    "JsonlSink",
    "MetricError",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "RingBufferSink",
    "Tracer",
    "as_instrumentation",
    "fit_envelope",
]
