"""Zero-dependency telemetry: metrics, tracing, complexity auditing.

The paper's headline results are *complexity* claims — Theorem 4's
``O((m+N) log N)`` sweep, Theorem 5's ``O(N log N)`` initialization and
``O(m log N)`` maintenance, Corollary 6's ``O(log N)`` amortized
updates.  Wall-clock benchmarks can only gesture at those bounds; this
package makes them *observable*:

- :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters,
  gauges, and log-bucketed histograms with labeled children,
  snapshot/diff/reset, and Prometheus-text / JSON export;
- :mod:`repro.obs.tracing` — a :class:`Tracer` producing structured
  span/event records into JSONL or ring-buffer sinks, with a no-op
  :data:`NULL_TRACER` so the disabled path costs nothing;
- :mod:`repro.obs.audit` — :class:`ComplexityAudit`, which fits
  recorded operation counts against ``log N`` / ``N log N`` /
  ``m log N`` envelopes and reports the constant factor and
  goodness-of-fit, turning the theorems into executable assertions;
- :mod:`repro.obs.instrument` — the :class:`Instrumentation` bundle
  (registry + tracer) accepted by every ``observe=`` hook in the
  engine, resilience, and workload layers;
- :mod:`repro.obs.profile` — :class:`QueryProfiler` /
  :class:`QueryProfile`, which assign every evaluation a ``query_id``,
  propagate a :class:`TraceContext` across shards, caches, and the
  WAL, attribute wall time and primitive ops to a per-stage tree, and
  feed a :class:`SlowQueryLog` and :class:`WorkloadAttribution`;
- :mod:`repro.obs.explain` — :func:`explain`, the EXPLAIN-style entry
  point returning an :class:`ExplainReport` (text or JSON).

Everything is pure-Python stdlib; enabling metrics on the sweep hot
path costs a bound-counter increment per event, and passing
``observe=None`` (the default) binds no-op instruments.
"""

from repro.obs.audit import AuditResult, ComplexityAudit, fit_envelope
from repro.obs.explain import ExplainReport, explain, render_report
from repro.obs.instrument import Instrumentation, as_instrumentation
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
)
from repro.obs.profile import (
    NULL_STAGE,
    ContextTracer,
    QueryProfile,
    QueryProfiler,
    SlowQueryLog,
    Stage,
    TraceContext,
    WorkloadAttribution,
)
from repro.obs.tracing import (
    NULL_TRACER,
    JsonlSink,
    NullTracer,
    RingBufferSink,
    Tracer,
)

__all__ = [
    "AuditResult",
    "ComplexityAudit",
    "ContextTracer",
    "Counter",
    "ExplainReport",
    "Gauge",
    "Histogram",
    "Instrumentation",
    "JsonlSink",
    "MetricError",
    "MetricsRegistry",
    "NULL_STAGE",
    "NULL_TRACER",
    "NullTracer",
    "QueryProfile",
    "QueryProfiler",
    "RingBufferSink",
    "SlowQueryLog",
    "Stage",
    "TraceContext",
    "Tracer",
    "WorkloadAttribution",
    "as_instrumentation",
    "explain",
    "fit_envelope",
    "render_report",
]
