"""Structured tracing: spans and events into pluggable sinks.

A :class:`Tracer` produces flat dict records — easy to JSON-serialize,
easy to assert on in tests:

- ``span`` records carry ``name``, ``span_id``, ``parent_id`` (nesting
  comes from entering spans as context managers), wall-clock ``start``,
  monotonic ``duration``, free-form ``attrs``, and a ``status`` of
  ``"ok"`` or ``"error"`` (exceptions are recorded *and propagated*);
- ``event`` records are instantaneous marks, parented to the innermost
  open span.

Two sinks cover the common cases: :class:`JsonlSink` appends one JSON
line per record (the durable choice — same spirit as the WAL), and
:class:`RingBufferSink` keeps the last ``capacity`` records in memory
(the live-debugging choice).  Any object with an ``emit(dict)`` method
works.

Disabled tracing must cost nothing: :data:`NULL_TRACER` (a
:class:`NullTracer`) hands out one shared no-op span, so instrumented
code can unconditionally write ``with tracer.span(...)`` on paths where
the enabled-path overhead is acceptable, and skip attribute building
entirely by checking :attr:`Tracer.enabled` where it is not.
"""

from __future__ import annotations

import json
import time
from collections import deque
from typing import Deque, Dict, List, Optional

__all__ = [
    "JsonlSink",
    "NULL_TRACER",
    "NullTracer",
    "RingBufferSink",
    "Span",
    "Tracer",
]


class RingBufferSink:
    """Keep the most recent ``capacity`` records in memory."""

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self._records: Deque[dict] = deque(maxlen=capacity)

    def emit(self, record: dict) -> None:
        """Store one record, evicting the oldest beyond capacity."""
        self._records.append(record)

    @property
    def records(self) -> List[dict]:
        """All retained records, oldest first."""
        return list(self._records)

    def spans(self, name: Optional[str] = None) -> List[dict]:
        """Retained span records, optionally filtered by name."""
        return [
            r
            for r in self._records
            if r["type"] == "span" and (name is None or r["name"] == name)
        ]

    def events(self, name: Optional[str] = None) -> List[dict]:
        """Retained event records, optionally filtered by name."""
        return [
            r
            for r in self._records
            if r["type"] == "event" and (name is None or r["name"] == name)
        ]

    def clear(self) -> None:
        """Drop all retained records."""
        self._records.clear()


class JsonlSink:
    """Append records as JSON lines to a file (one record per line).

    ``buffer`` sets how many records may sit in the userspace buffer
    before a flush: the default ``1`` flushes every record (the durable
    choice), larger values amortize the write syscalls for
    high-frequency tracing.  With ``buffer > 1`` the producer must
    :meth:`flush` (or :meth:`close`) at the end of a run or the tail of
    the buffer is lost — :class:`Tracer` forwards its own ``flush()``
    and ``close()`` here for exactly that reason.
    """

    def __init__(self, path: str, buffer: int = 1) -> None:
        if buffer < 1:
            raise ValueError("buffer must be positive")
        self._path = str(path)
        self._handle = open(self._path, "a", encoding="utf-8")
        self._buffer = buffer
        self._unflushed = 0
        self._closed = False

    @property
    def path(self) -> str:
        """The JSONL file path."""
        return self._path

    def emit(self, record: dict) -> None:
        """Write one record as a JSON line (flushed per ``buffer``)."""
        if self._closed:
            raise RuntimeError("sink is closed")
        self._handle.write(
            json.dumps(record, separators=(",", ":"), default=repr) + "\n"
        )
        self._unflushed += 1
        if self._unflushed >= self._buffer:
            self._handle.flush()
            self._unflushed = 0

    def flush(self) -> None:
        """Push buffered records to the OS (idempotent, no-op when
        closed)."""
        if not self._closed:
            self._handle.flush()
            self._unflushed = 0

    def close(self) -> None:
        """Flush and close the file handle (idempotent)."""
        if not self._closed:
            self._closed = True
            self._handle.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class Span:
    """An in-flight span; use as a context manager via
    :meth:`Tracer.span`."""

    __slots__ = (
        "_tracer",
        "name",
        "span_id",
        "parent_id",
        "attrs",
        "_start_wall",
        "_start_mono",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        span_id: int,
        parent_id: Optional[int],
        attrs: Dict[str, object],
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = attrs
        self._start_wall = 0.0
        self._start_mono = 0.0

    def set_attribute(self, key: str, value: object) -> None:
        """Attach one attribute to the span record."""
        self.attrs[key] = value

    def event(self, name: str, **attrs: object) -> None:
        """Emit an instantaneous event parented to this span."""
        self._tracer._emit_event(name, self.span_id, attrs)

    def __enter__(self) -> "Span":
        self._start_wall = time.time()
        self._start_mono = time.perf_counter()
        self._tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.perf_counter() - self._start_mono
        self._tracer._pop(self)
        record = {
            "type": "span",
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self._start_wall,
            "duration": duration,
            "attrs": self.attrs,
            "status": "ok" if exc_type is None else "error",
        }
        if exc_type is not None:
            record["error"] = repr(exc)
        self._tracer._sink.emit(record)
        return False  # never swallow


class _NullSpan:
    """The shared no-op span handed out by :class:`NullTracer`."""

    __slots__ = ()
    name = ""
    span_id = 0
    parent_id = None

    def set_attribute(self, key: str, value: object) -> None:
        """Discard the attribute."""

    def event(self, name: str, **attrs: object) -> None:
        """Discard the event."""

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Tracer:
    """Produce structured span/event records into a sink.

    Spans nest lexically: entering a span makes it the parent of spans
    and events opened inside it.  The tracer keeps one stack — it is a
    single-threaded instrument, like the sweep itself.
    """

    enabled = True

    def __init__(self, sink) -> None:
        self._sink = sink
        self._stack: List[Span] = []
        self._next_id = 1

    @property
    def sink(self):
        """The record sink."""
        return self._sink

    def span(self, name: str, **attrs: object) -> Span:
        """A new span, parented to the innermost open span.

        Use as a context manager; the record is emitted at exit with
        the measured duration.  Exceptions mark the span's status
        ``"error"`` and propagate.
        """
        span_id = self._next_id
        self._next_id += 1
        parent_id = self._stack[-1].span_id if self._stack else None
        return Span(self, name, span_id, parent_id, dict(attrs))

    def event(self, name: str, **attrs: object) -> None:
        """Emit an instantaneous event at the current nesting level."""
        parent = self._stack[-1].span_id if self._stack else None
        self._emit_event(name, parent, attrs)

    # -- lifecycle ----------------------------------------------------------
    def flush(self) -> None:
        """Forward a flush to the sink (no-op for sinks without one).

        A buffered :class:`JsonlSink` only persists its tail on flush;
        call this (or :meth:`close`) at the end of a run so JSONL
        traces are never truncated mid-buffer.
        """
        flush = getattr(self._sink, "flush", None)
        if flush is not None:
            flush()

    def close(self) -> None:
        """Flush and close the sink (idempotent for the stock sinks)."""
        self.flush()
        close = getattr(self._sink, "close", None)
        if close is not None:
            close()

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- internals ----------------------------------------------------------
    def _emit_event(
        self, name: str, parent_id: Optional[int], attrs: Dict[str, object]
    ) -> None:
        self._sink.emit(
            {
                "type": "event",
                "name": name,
                "parent_id": parent_id,
                "time": time.time(),
                "attrs": dict(attrs),
            }
        )

    def _push(self, span: Span) -> None:
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        # Tolerate out-of-order exits (a crashed span mid-stack) by
        # popping through the target; telemetry must never take the
        # engine down with it.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break


class NullTracer:
    """The disabled tracer: every operation is a no-op.

    ``span`` returns one shared, reusable null span, so the disabled
    path allocates nothing.
    """

    enabled = False

    def span(self, name: str, **attrs: object) -> _NullSpan:
        """A shared no-op span."""
        return _NULL_SPAN

    def event(self, name: str, **attrs: object) -> None:
        """Discard the event."""

    def flush(self) -> None:
        """Nothing to flush."""

    def close(self) -> None:
        """Nothing to close."""

    def __enter__(self) -> "NullTracer":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


NULL_TRACER = NullTracer()
