"""The ``observe=`` bundle accepted across the engine and resilience
layers.

Every instrumentable component — :class:`~repro.sweep.engine.SweepEngine`,
:class:`~repro.core.api.ContinuousQuerySession`,
:class:`~repro.resilience.ingest.IngestPipeline`,
:class:`~repro.resilience.wal.WriteAheadLog`,
:class:`~repro.resilience.supervisor.SupervisedQuerySession`,
:class:`~repro.workloads.faults.FaultInjector`,
:class:`~repro.mod.database.MovingObjectDatabase` — takes an optional
``observe=`` argument.  ``None`` (the default) disables telemetry
entirely: hot paths bind no-op instruments and pay one cheap call per
event.  Otherwise the argument is coerced by :func:`as_instrumentation`:

- an :class:`Instrumentation` is used as-is;
- a bare :class:`~repro.obs.metrics.MetricsRegistry` enables metrics
  with tracing off;
- a bare :class:`~repro.obs.tracing.Tracer` enables tracing with a
  private registry;
- any object exposing an :class:`Instrumentation` as its ``.observe``
  attribute (a :class:`~repro.obs.profile.QueryProfile`, say) is
  unwrapped — so ``evaluate_knn(..., observe=profile)`` reads
  naturally.

Sharing one :class:`Instrumentation` (or one registry) across several
components aggregates their counters into one namespace — by design:
a fault injector, an ingest pipeline, and a supervised session wired to
the same registry produce a single coherent metrics snapshot.

Profiling rides the same bundle: when a
:class:`~repro.obs.profile.QueryProfile` builds its instrumentation it
sets the optional :attr:`Instrumentation.profile` (stage attribution)
and :attr:`Instrumentation.context` (the query's
:class:`~repro.obs.profile.TraceContext`) slots, and every layer that
receives the bundle can attribute its work to the owning query without
new plumbing.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import NULL_TRACER, NullTracer, Tracer

__all__ = ["Instrumentation", "as_instrumentation"]


class Instrumentation:
    """A metrics registry and a tracer, bundled for ``observe=`` hooks.

    The optional ``profile`` / ``context`` slots are populated when the
    bundle belongs to one profiled query (see
    :mod:`repro.obs.profile`); they are ``None`` on plain telemetry
    bundles and every consumer must treat them as optional.
    """

    __slots__ = ("metrics", "tracer", "profile", "context")

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Union[Tracer, NullTracer]] = None,
        profile=None,
        context=None,
    ) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.profile = profile
        self.context = context

    def snapshot(self):
        """Convenience: the registry's flat snapshot."""
        return self.metrics.snapshot()

    def __repr__(self) -> str:
        tracing = "on" if getattr(self.tracer, "enabled", False) else "off"
        profiled = "" if self.profile is None else ", profiled"
        return (
            f"Instrumentation(metrics={len(self.metrics.families())} "
            f"families, tracing {tracing}{profiled})"
        )


def as_instrumentation(observe) -> Optional[Instrumentation]:
    """Coerce an ``observe=`` argument; ``None`` stays ``None``
    (telemetry disabled)."""
    if observe is None or isinstance(observe, Instrumentation):
        return observe
    if isinstance(observe, MetricsRegistry):
        return Instrumentation(metrics=observe)
    if isinstance(observe, (Tracer, NullTracer)):
        return Instrumentation(tracer=observe)
    inner = getattr(observe, "observe", None)
    if isinstance(inner, Instrumentation):
        return inner
    raise TypeError(
        "observe= expects an Instrumentation, MetricsRegistry, Tracer, "
        "an object with an Instrumentation `.observe` attribute, or "
        f"None; got {type(observe).__name__}"
    )
