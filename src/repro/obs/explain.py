"""EXPLAIN for moving-object queries: run, profile, and render.

:func:`explain` evaluates a query through the real
:func:`~repro.core.api.evaluate_knn` / ``evaluate_within`` /
``evaluate_multiknn`` path — same answers, same code — under a
:class:`~repro.obs.profile.QueryProfile`, and returns an
:class:`ExplainReport` pairing the answer with the per-stage cost
breakdown: wall time, primitive-op counts, cache hit/miss, and
per-shard skew.  The report renders as an ``EXPLAIN``-style text tree
(:meth:`ExplainReport.text`) or as JSON (:meth:`ExplainReport.to_json`).

The stages map onto the paper's cost terms (see
``docs/paper_mapping.md``):

========================  ====================================================
stage                     paper cost term
========================  ====================================================
``cache.probe``           answer reuse — avoids both Theorem 5 halves
``clip``                  Section 4 finite representation: exact restriction
``cache.extend``          Theorem 5 maintenance: ``O(m log N)`` continuation
``init`` / ``curves``     Theorem 5 initialization: ``O(N log N)``
``sweep``                 Theorem 4 event loop: ``O((m + N) log N)``
``shards.*`` / ``shard.*``  the same terms at shard size ``N/S``
``merge``                 second-level sweep over accumulated candidates
``cache.store``           deposit for later reuse
========================  ====================================================
"""

from __future__ import annotations

import json
from typing import Optional, Sequence

from repro.geometry.intervals import Interval
from repro.obs.profile import QueryProfile, QueryProfiler

__all__ = ["ExplainReport", "explain", "render_report"]


class ExplainReport:
    """The outcome of :func:`explain`: answer + profile, renderable."""

    def __init__(self, profile: QueryProfile, answer) -> None:
        self.profile = profile
        self.answer = answer

    @property
    def query_id(self) -> str:
        """The profiled query's id."""
        return self.profile.query_id

    @property
    def total_seconds(self) -> float:
        """End-to-end wall time of the evaluation."""
        return self.profile.total_seconds

    @property
    def coverage(self) -> float:
        """Fraction of wall time the top-level stages account for."""
        return self.profile.coverage

    def shard_skew(self) -> Optional[dict]:
        """Per-shard primitive-op skew (None for unsharded queries)."""
        return self.profile.shard_skew()

    def to_dict(self) -> dict:
        """The full JSON-ready report."""
        return self.profile.report()

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def text(self) -> str:
        """An EXPLAIN-style indented stage tree."""
        self.profile.finish()
        return render_report(self.to_dict())

    def __str__(self) -> str:
        return self.text()

    def __repr__(self) -> str:
        return (
            f"ExplainReport({self.query_id!r}, "
            f"{self.total_seconds * 1e3:.3f} ms)"
        )


def _ms(seconds: float) -> str:
    return f"{seconds * 1e3:.3f} ms"


def _meta_text(meta: dict) -> str:
    return " ".join(f"{k}={v}" for k, v in sorted(meta.items()))


def _render(stage: dict, lines, depth: int) -> None:
    label = stage["name"]
    if stage.get("shard") is not None:
        label += f"[shard {stage['shard']}]"
    bits = [f"{'  ' * depth}-> {label}: {_ms(stage['wall_seconds'])}"]
    if stage.get("count", 1) > 1:
        bits.append(f"x{stage['count']}")
    attrs = stage.get("attrs", {})
    for key in sorted(attrs):
        value = attrs[key]
        if isinstance(value, float) and value == int(value):
            value = int(value)
        bits.append(f"{key}={value}")
    lines.append("  ".join(bits))
    for child in stage.get("children", ()):
        _render(child, lines, depth + 1)


def render_report(report: dict) -> str:
    """Render a report *dict* (:meth:`ExplainReport.to_dict` output) as
    the EXPLAIN-style text tree.

    Operating on the JSON-ready dict rather than live
    :class:`~repro.obs.profile.Stage` objects means a report that
    crossed a process or network boundary — e.g. one returned by the
    :mod:`repro.net` frontend's ``explain`` verb — renders exactly like
    a local one.
    """
    lines = [
        f"EXPLAIN {report['kind']} [{report['query_id']}]"
        + (f"  {_meta_text(report['meta'])}" if report.get("meta") else ""),
        f"total: {_ms(report['total_seconds'])}  "
        f"(stage coverage {report['coverage'] * 100.0:.1f}%)",
    ]
    for stage in report.get("stages", ()):
        _render(stage, lines, depth=1)
    skew = report.get("shard_skew")
    if skew is not None:
        lines.append(
            f"shards: {skew['shards']}  max/mean ops "
            f"{skew['max_ops']:.0f}/{skew['mean_ops']:.0f}  "
            f"skew {skew['skew']:.2f}x"
        )
    return "\n".join(lines)


def explain(
    db,
    query,
    interval: Interval,
    kind: str = "knn",
    *,
    k: int = 1,
    distance: Optional[float] = None,
    ks: Optional[Sequence[int]] = None,
    shards: Optional[int] = None,
    backend="sequential",
    batch_size: int = 1,
    cache=None,
    profiler: Optional[QueryProfiler] = None,
    query_id: Optional[str] = None,
) -> ExplainReport:
    """Evaluate one query with full per-stage cost attribution.

    ``kind`` selects the query (``"knn"``, ``"within"``, or
    ``"multiknn"``); the remaining arguments mirror the corresponding
    ``evaluate_*`` function.  Pass an existing ``profiler`` to keep its
    id sequence, slow-query log, and workload attribution across many
    explains; otherwise a throwaway profiler is used.
    """
    from repro.core.api import (
        evaluate_knn,
        evaluate_multiknn,
        evaluate_within,
    )

    if kind == "within" and distance is None:
        raise ValueError("within queries need a distance")
    if kind == "multiknn" and not ks:
        raise ValueError("multiknn queries need ks")
    if kind not in ("knn", "within", "multiknn"):
        raise ValueError(f"unknown query kind {kind!r}")
    if profiler is None:
        profiler = QueryProfiler()
    meta = {
        "interval": [interval.lo, interval.hi],
        "shards": shards,
        "backend": backend if shards is not None else None,
        "cache": cache is not None,
    }
    if kind == "knn":
        meta["k"] = k
    elif kind == "within":
        meta["distance"] = distance
    else:
        meta["ks"] = list(ks)
    with profiler.profile(kind, query_id=query_id, **meta) as prof:
        common = dict(
            observe=prof.observe,
            shards=shards,
            backend=backend,
            batch_size=batch_size,
            cache=cache,
        )
        if kind == "knn":
            answer = evaluate_knn(db, query, interval, k=k, **common)
        elif kind == "within":
            answer = evaluate_within(
                db, query, interval, distance=distance, **common
            )
        else:
            answer = evaluate_multiknn(db, query, interval, ks=ks, **common)
        prof.record_answer(answer)
    return ExplainReport(prof, answer)
