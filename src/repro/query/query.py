"""FO(f) queries: the quadruple ``(y, t, I, phi)`` (Section 4).

:class:`Query` bundles the answer variable, the query interval, the
formula, and the polynomial time terms it references.  Constructors for
the paper's flagship queries — k-NN (Examples 6/10) and within-range
(Example 11) — are provided.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.geometry.intervals import Interval
from repro.geometry.poly import Polynomial
from repro.query.formula import (
    Compare,
    Const,
    Dist,
    ForAll,
    Formula,
    ObjEq,
    Or,
)


@dataclass(frozen=True)
class Query:
    """An FO(f) query ``(y, t, I, phi)``.

    ``time_terms[0]`` must be the identity polynomial ``t``; further
    entries are the extra polynomial time terms the formula may
    reference by index (the paper's factor-of-k extension).
    """

    var: str
    interval: Interval
    formula: Formula
    time_terms: Tuple[Polynomial, ...] = field(
        default_factory=lambda: (Polynomial.identity(),)
    )
    description: str = ""

    def __post_init__(self) -> None:
        free = self.formula.free_vars()
        if free != {self.var}:
            raise ValueError(
                f"formula must have exactly {{{self.var!r}}} free, got {set(free)}"
            )
        if not self.time_terms or self.time_terms[0] != Polynomial.identity():
            raise ValueError("time_terms[0] must be the identity term t")
        used = self.formula.time_term_indices()
        if used and max(used) >= len(self.time_terms):
            raise ValueError(
                f"formula references time term {max(used)} but only "
                f"{len(self.time_terms)} are declared"
            )

    @property
    def constants(self) -> List[float]:
        """Real constants in the formula (sentinel curves for the sweep)."""
        return sorted(self.formula.constants())

    def __repr__(self) -> str:
        name = self.description or "query"
        return f"Query[{name}]({self.var}, I={self.interval!r}, {self.formula!r})"


def knn_formula(k: int, var: str = "y") -> Formula:
    """The k-NN property as a pure FO(f) formula.

    For ``k = 1`` this is literally Example 10:
    ``forall z. d(y, t) <= d(z, t)``.  For larger ``k`` it states "every
    object is either no closer than ``y`` or one of ``k - 1``
    exceptions":

        exists z1 ... z_{k-1}. forall w.
            d(y,t) <= d(w,t)  or  w = z1  or ... or  w = z_{k-1}

    (Existential quantifiers are realized by the quantifier nesting of
    the naive evaluator; the sweep engine answers k-NN through its rank
    view instead, which is the whole point of Section 5.)
    """
    if k < 1:
        raise ValueError("k must be positive")
    if k == 1:
        return ForAll("z", Compare(Dist(var), "<=", Dist("z")))
    exception_vars = [f"z{i}" for i in range(1, k)]
    disjuncts: List[Formula] = [Compare(Dist(var), "<=", Dist("w"))]
    disjuncts.extend(ObjEq("w", z) for z in exception_vars)
    body: Formula = ForAll("w", Or(*disjuncts))
    from repro.query.formula import Exists

    for z in reversed(exception_vars):
        body = Exists(z, body)
    return body


def knn_query(interval: Interval, k: int = 1, var: str = "y") -> Query:
    """The k-NN query of Examples 6 and 10."""
    return Query(var, interval, knn_formula(k, var), description=f"knn:{k}")


def within_query(interval: Interval, threshold: float, var: str = "y") -> Query:
    """Example 11's range query: ``f(y, t) <= threshold``."""
    formula = Compare(Dist(var), "<=", Const(float(threshold)))
    return Query(var, interval, formula, description=f"within:{threshold:g}")
