"""Answer representations for FO(f) queries.

``Q^s(D)`` may be infinite as a set of pairs ``(o, t)`` but has a finite
representation when the g-distance is polynomial (Section 4): per
object, a finite union of closed intervals.  :class:`SnapshotAnswer`
is that representation; the accumulative and persevering answers are
derived views of it.

:class:`AnswerTimeline` is the mutable builder the sweep views write
into: they ``open`` an object's membership when it enters the answer
and ``close`` it when it leaves; ``finalize`` closes everything at the
sweep end.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

from repro.geometry.intervals import Interval, IntervalSet
from repro.geometry.tolerance import DEFAULT_ATOL
from repro.mod.updates import ObjectId


class SnapshotAnswer:
    """The finite representation of ``Q^s(D)``.

    Maps each object that is ever in the answer to the
    :class:`~repro.geometry.intervals.IntervalSet` of times at which it
    is.  Objects never in the answer are absent.
    """

    def __init__(self, memberships: Dict[ObjectId, IntervalSet], interval: Interval) -> None:
        self._memberships = {
            oid: ivs for oid, ivs in memberships.items() if not ivs.is_empty
        }
        self._interval = interval

    @property
    def interval(self) -> Interval:
        """The query interval ``I``."""
        return self._interval

    @property
    def objects(self) -> Set[ObjectId]:
        """Objects appearing in the answer at some time (``Q^E``)."""
        return set(self._memberships)

    def intervals_for(self, oid: ObjectId) -> IntervalSet:
        """Times at which ``oid`` is in the answer (empty set if never)."""
        return self._memberships.get(oid, IntervalSet())

    def holds_at(self, oid: ObjectId, t: float, atol: float = DEFAULT_ATOL) -> bool:
        """Whether ``(oid, t)`` is in the snapshot answer."""
        return self.intervals_for(oid).contains(t, atol=atol)

    def at(self, t: float, atol: float = DEFAULT_ATOL) -> Set[ObjectId]:
        """The answer set ``Q[D]_t`` at one instant."""
        return {
            oid
            for oid, ivs in self._memberships.items()
            if ivs.contains(t, atol=atol)
        }

    def accumulative(self) -> Set[ObjectId]:
        """``Q^E(D)``: objects in the answer at some time in ``I``."""
        return set(self._memberships)

    def persevering(self, atol: float = DEFAULT_ATOL) -> Set[ObjectId]:
        """``Q^A(D)``: objects in the answer at every time in ``I``."""
        return {
            oid
            for oid, ivs in self._memberships.items()
            if ivs.covers(self._interval, atol=atol)
        }

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SnapshotAnswer):
            return NotImplemented
        return (
            self._memberships == other._memberships
            and self._interval == other._interval
        )

    def approx_equals(self, other: "SnapshotAnswer", atol: float = 1e-6) -> bool:
        """Tolerant comparison: same objects, per-object interval sets
        equal up to ``atol`` (crossing times are computed numerically).

        Objects whose total membership does not exceed ``atol`` are
        ignored: single-instant memberships arise as representational
        noise at curve discontinuities (a removal/re-insertion pair at
        the same instant) and carry no measure.
        """
        mine = {
            oid
            for oid in self.objects
            if self.intervals_for(oid).total_length > atol
        }
        theirs = {
            oid
            for oid in other.objects
            if other.intervals_for(oid).total_length > atol
        }
        if mine != theirs:
            return False
        return all(
            self.intervals_for(oid).approx_equals(other.intervals_for(oid), atol=atol)
            for oid in mine
        )

    def __repr__(self) -> str:
        body = ", ".join(
            f"{oid!r}: {ivs!r}" for oid, ivs in sorted(
                self._memberships.items(), key=lambda kv: str(kv[0])
            )
        )
        return f"SnapshotAnswer({{{body}}}, I={self._interval!r})"


class AnswerTimeline:
    """Mutable builder of a :class:`SnapshotAnswer`.

    Membership intervals are closed: an object leaving at the same
    instant another enters yields overlapping endpoints, consistent
    with both being in the answer at the crossing instant (they are
    equivalent under the precedence relation there).
    """

    def __init__(self, interval: Interval) -> None:
        self._interval = interval
        self._open: Dict[ObjectId, float] = {}
        self._closed: Dict[ObjectId, List[Interval]] = {}
        self._finalized = False

    @property
    def open_objects(self) -> Set[ObjectId]:
        """Objects currently in the answer."""
        return set(self._open)

    def is_open(self, oid: ObjectId) -> bool:
        """Whether ``oid`` is currently in the answer."""
        return oid in self._open

    def open(self, oid: ObjectId, time: float) -> None:
        """Mark ``oid`` as entering the answer at ``time``."""
        if oid in self._open:
            raise ValueError(f"{oid!r} is already in the answer")
        self._open[oid] = max(time, self._interval.lo)

    def close(self, oid: ObjectId, time: float) -> None:
        """Mark ``oid`` as leaving the answer at ``time``."""
        start = self._open.pop(oid, None)
        if start is None:
            raise ValueError(f"{oid!r} is not in the answer")
        end = min(time, self._interval.hi)
        if end >= start:
            self._closed.setdefault(oid, []).append(Interval(start, end))

    def finalize(self, time: float) -> None:
        """Close all open memberships at the sweep end."""
        for oid in list(self._open):
            self.close(oid, time)
        self._finalized = True

    def result(self) -> SnapshotAnswer:
        """The immutable snapshot answer (requires :meth:`finalize`)."""
        if not self._finalized:
            raise RuntimeError("finalize() the timeline before reading it")
        return SnapshotAnswer(
            {oid: IntervalSet(ivs) for oid, ivs in self._closed.items()},
            self._interval,
        )

    def snapshot(self, time: float) -> SnapshotAnswer:
        """The answer accumulated so far, closed virtually at ``time``.

        Unlike :meth:`finalize` + :meth:`result` this does not mutate
        the timeline: open memberships stay open, so the sweep can keep
        extending the very same answer afterwards (the cache's
        Theorem 5-style continuation path).  The snapshot covers
        ``[interval.lo, min(time, interval.hi)]``.
        """
        end = min(time, self._interval.hi)
        memberships: Dict[ObjectId, List[Interval]] = {
            oid: list(ivs) for oid, ivs in self._closed.items()
        }
        for oid, start in self._open.items():
            if end >= start:
                memberships.setdefault(oid, []).append(Interval(start, end))
        return SnapshotAnswer(
            {oid: IntervalSet(ivs) for oid, ivs in memberships.items()},
            Interval(self._interval.lo, end),
        )


def snapshot_from_segments(
    segments: Iterable, interval: Interval
) -> SnapshotAnswer:
    """Build a snapshot answer from ``(oid, lo, hi)`` triples (baselines)."""
    per_object: Dict[ObjectId, List[Interval]] = {}
    for oid, lo, hi in segments:
        per_object.setdefault(oid, []).append(Interval(lo, hi))
    return SnapshotAnswer(
        {oid: IntervalSet(ivs) for oid, ivs in per_object.items()}, interval
    )
