"""The FO(f) formula language (Section 4).

Real terms are either instantiable g-distance applications
``f(y, timeterm)`` (:class:`Dist`) or real constants (:class:`Const`).
Atoms compare two real terms with an order predicate; formulas are
closed under the propositional connectives and quantification over
object variables.  There are deliberately *no* real-number variables —
all arithmetic is embedded in the g-distance, which is what makes the
language order-determined (Lemma 8) and sweepable.

Time terms are referenced by index into the owning query's time-term
list; index 0 is the plain variable ``t``.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Sequence, Set, Tuple

from repro.mod.updates import ObjectId

#: Order predicates allowed in atoms.
PREDICATES = ("<", "<=", "=", ">=", ">")

#: Tolerance for the equality predicate on curve values.
EQ_ATOL = 1e-9

ValueFn = Callable[[ObjectId, int], float]


# ---------------------------------------------------------------------------
# Real terms
# ---------------------------------------------------------------------------
class RealTerm(abc.ABC):
    """A real-valued term: ``f(y, timeterm)`` or a constant."""

    @abc.abstractmethod
    def free_vars(self) -> FrozenSet[str]:
        """Object variables occurring in the term."""

    @abc.abstractmethod
    def evaluate(self, env: Dict[str, ObjectId], values: ValueFn) -> float:
        """Value under an object-variable environment at a fixed time."""


@dataclass(frozen=True)
class Dist(RealTerm):
    """The g-distance of an object variable at a time term:
    ``f(var, timeterm[index])``."""

    var: str
    time_term_index: int = 0

    def free_vars(self) -> FrozenSet[str]:
        return frozenset({self.var})

    def evaluate(self, env: Dict[str, ObjectId], values: ValueFn) -> float:
        if self.var not in env:
            raise KeyError(f"unbound object variable {self.var!r}")
        return values(env[self.var], self.time_term_index)

    def __repr__(self) -> str:
        if self.time_term_index == 0:
            return f"f({self.var}, t)"
        return f"f({self.var}, tt{self.time_term_index})"


@dataclass(frozen=True)
class Const(RealTerm):
    """A real constant."""

    value: float

    def free_vars(self) -> FrozenSet[str]:
        return frozenset()

    def evaluate(self, env: Dict[str, ObjectId], values: ValueFn) -> float:
        return self.value

    def __repr__(self) -> str:
        return f"{self.value:g}"


# ---------------------------------------------------------------------------
# Formulas
# ---------------------------------------------------------------------------
class Formula(abc.ABC):
    """An FO(f) formula."""

    @abc.abstractmethod
    def free_vars(self) -> FrozenSet[str]:
        """Free object variables."""

    @abc.abstractmethod
    def constants(self) -> FrozenSet[float]:
        """Real constants appearing in atoms (they become sentinels)."""

    @abc.abstractmethod
    def time_term_indices(self) -> FrozenSet[int]:
        """Indices of time terms used."""

    @abc.abstractmethod
    def holds(
        self,
        env: Dict[str, ObjectId],
        oids: Sequence[ObjectId],
        values: ValueFn,
    ) -> bool:
        """Truth at a fixed time given curve values.

        ``oids`` is the quantification universe (the live object set at
        that time); ``values(oid, tt_index)`` yields instantiated real
        term values.
        """

    # -- sugar ------------------------------------------------------------
    def __and__(self, other: "Formula") -> "Formula":
        return And(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        return Or(self, other)

    def __invert__(self) -> "Formula":
        return Not(self)


@dataclass(frozen=True)
class Compare(Formula):
    """An atomic order comparison between two real terms."""

    lhs: RealTerm
    op: str
    rhs: RealTerm

    def __post_init__(self) -> None:
        if self.op not in PREDICATES:
            raise ValueError(f"unknown predicate {self.op!r}")

    def free_vars(self) -> FrozenSet[str]:
        return self.lhs.free_vars() | self.rhs.free_vars()

    def constants(self) -> FrozenSet[float]:
        out = set()
        for term in (self.lhs, self.rhs):
            if isinstance(term, Const):
                out.add(term.value)
        return frozenset(out)

    def time_term_indices(self) -> FrozenSet[int]:
        out = set()
        for term in (self.lhs, self.rhs):
            if isinstance(term, Dist):
                out.add(term.time_term_index)
        return frozenset(out)

    def holds(self, env, oids, values) -> bool:
        a = self.lhs.evaluate(env, values)
        b = self.rhs.evaluate(env, values)
        if self.op == "<":
            return a < b
        if self.op == "<=":
            return a <= b + EQ_ATOL
        if self.op == "=":
            return abs(a - b) <= EQ_ATOL
        if self.op == ">=":
            return a >= b - EQ_ATOL
        return a > b

    def __repr__(self) -> str:
        return f"({self.lhs!r} {self.op} {self.rhs!r})"


#: Alias matching the paper's terminology.
Atom = Compare


@dataclass(frozen=True)
class ObjEq(Formula):
    """Equality of two object variables.

    The paper's atomic formulas include equality over terms of the same
    sort; object terms are variables, so ``z = w`` is an atom.  It is
    what lets k-NN for ``k > 1`` be written in pure FO(f): "at most
    ``k-1`` objects are strictly closer than ``y``"."""

    left: str
    right: str

    def free_vars(self) -> FrozenSet[str]:
        return frozenset({self.left, self.right})

    def constants(self) -> FrozenSet[float]:
        return frozenset()

    def time_term_indices(self) -> FrozenSet[int]:
        return frozenset()

    def holds(self, env, oids, values) -> bool:
        try:
            return env[self.left] == env[self.right]
        except KeyError as exc:
            raise KeyError(f"unbound object variable in {self!r}") from exc

    def __repr__(self) -> str:
        return f"({self.left} == {self.right})"


@dataclass(frozen=True)
class Not(Formula):
    """Negation."""

    body: Formula

    def free_vars(self) -> FrozenSet[str]:
        return self.body.free_vars()

    def constants(self) -> FrozenSet[float]:
        return self.body.constants()

    def time_term_indices(self) -> FrozenSet[int]:
        return self.body.time_term_indices()

    def holds(self, env, oids, values) -> bool:
        return not self.body.holds(env, oids, values)

    def __repr__(self) -> str:
        return f"~{self.body!r}"


class _NAry(Formula):
    """Shared machinery for And/Or."""

    def __init__(self, *children: Formula) -> None:
        if not children:
            raise ValueError("connectives need at least one operand")
        self.children: Tuple[Formula, ...] = children

    def free_vars(self) -> FrozenSet[str]:
        out: Set[str] = set()
        for child in self.children:
            out |= child.free_vars()
        return frozenset(out)

    def constants(self) -> FrozenSet[float]:
        out: Set[float] = set()
        for child in self.children:
            out |= child.constants()
        return frozenset(out)

    def time_term_indices(self) -> FrozenSet[int]:
        out: Set[int] = set()
        for child in self.children:
            out |= child.time_term_indices()
        return frozenset(out)

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.children == other.children

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.children))


class And(_NAry):
    """Conjunction."""

    def holds(self, env, oids, values) -> bool:
        return all(child.holds(env, oids, values) for child in self.children)

    def __repr__(self) -> str:
        return "(" + " & ".join(repr(c) for c in self.children) + ")"


class Or(_NAry):
    """Disjunction."""

    def holds(self, env, oids, values) -> bool:
        return any(child.holds(env, oids, values) for child in self.children)

    def __repr__(self) -> str:
        return "(" + " | ".join(repr(c) for c in self.children) + ")"


class _Quantifier(Formula):
    """Shared machinery for quantifiers over object variables."""

    def __init__(self, var: str, body: Formula) -> None:
        self.var = var
        self.body = body

    def free_vars(self) -> FrozenSet[str]:
        return self.body.free_vars() - {self.var}

    def constants(self) -> FrozenSet[float]:
        return self.body.constants()

    def time_term_indices(self) -> FrozenSet[int]:
        return self.body.time_term_indices()

    def __eq__(self, other: object) -> bool:
        return (
            type(self) is type(other)
            and self.var == other.var
            and self.body == other.body
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.var, self.body))


class ForAll(_Quantifier):
    """Universal quantification over the live object set."""

    def holds(self, env, oids, values) -> bool:
        for oid in oids:
            child_env = dict(env)
            child_env[self.var] = oid
            if not self.body.holds(child_env, oids, values):
                return False
        return True

    def __repr__(self) -> str:
        return f"forall {self.var}. {self.body!r}"


class Exists(_Quantifier):
    """Existential quantification over the live object set."""

    def holds(self, env, oids, values) -> bool:
        for oid in oids:
            child_env = dict(env)
            child_env[self.var] = oid
            if self.body.holds(child_env, oids, values):
                return True
        return False

    def __repr__(self) -> str:
        return f"exists {self.var}. {self.body!r}"
