"""The FO(f) query language (Section 4).

A query is a quadruple ``(y, t, I, phi)``: an object variable, the time
variable, a time interval, and a formula with only ``y`` and ``t``
free.  Terms compare generalized distances ``f(y, timeterm)`` and real
constants; formulas combine atoms with propositional connectives and
quantifiers over object variables.

Three answer semantics are provided (Section 4):

- **snapshot** ``Q^s(D)`` — pairs ``(o, t)``, finitely represented as
  one interval set per object;
- **existential / accumulative** ``Q^E(D)`` — objects in the answer at
  *some* time of ``I``;
- **universal / persevering** ``Q^A(D)`` — objects in the answer at
  *every* time of ``I``.
"""

from repro.query.answers import AnswerTimeline, SnapshotAnswer
from repro.query.formula import (
    And,
    Atom,
    Compare,
    Const,
    Dist,
    Exists,
    ForAll,
    Formula,
    Not,
    ObjEq,
    Or,
    RealTerm,
)
from repro.query.query import Query, knn_formula, knn_query, within_query

__all__ = [
    "And",
    "AnswerTimeline",
    "Atom",
    "Compare",
    "Const",
    "Dist",
    "Exists",
    "ForAll",
    "Formula",
    "Not",
    "ObjEq",
    "Or",
    "Query",
    "RealTerm",
    "SnapshotAnswer",
    "knn_formula",
    "knn_query",
    "within_query",
]
