"""One-shot and continuous query evaluation over moving object databases.

These functions assemble the pieces — g-distance, sweep engine, view —
so a caller only states the query.  The one-shot functions run the
whole sweep immediately (appropriate when the trajectory history over
the interval is already known, i.e. *past* queries); the session class
subscribes to the database and maintains answers eagerly as updates
arrive (*future* and *continuing* queries).
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence, Set, Union

from repro.geometry.intervals import Interval
from repro.gdist.base import GDistance
from repro.gdist.euclidean import SquaredEuclideanDistance
from repro.mod.database import MovingObjectDatabase
from repro.mod.updates import ObjectId
from repro.obs.instrument import as_instrumentation
from repro.obs.profile import NULL_STAGE
from repro.query.answers import SnapshotAnswer
from repro.query.query import Query
from repro.sweep.engine import SweepEngine
from repro.sweep.evaluator import GenericFOEvaluator
from repro.sweep.knn import ContinuousKNN
from repro.sweep.multiknn import MultiKNN
from repro.sweep.within import ContinuousWithin
from repro.trajectory.trajectory import Trajectory

QueryLike = Union[Trajectory, Sequence[float], GDistance]


def _as_gdistance(query: QueryLike) -> GDistance:
    if isinstance(query, GDistance):
        return query
    return SquaredEuclideanDistance(query)


def _profile_of(observe):
    """The query profile riding an ``observe=`` bundle, or None."""
    return None if observe is None else observe.profile


def _stage(profile, name: str):
    """A profile stage, or the free null stage when unprofiled."""
    return NULL_STAGE if profile is None else profile.stage(name)


def _sharded_evaluator(
    mode: str,
    db: MovingObjectDatabase,
    query: QueryLike,
    interval: Interval,
    shards: int,
    backend,
    batch_size: int,
    observe,
    curve_store=None,
    **params,
):
    """Build a one-shot sharded evaluator over ``interval``.

    Imported lazily so ``repro.core`` has no hard dependency on
    ``repro.parallel`` (which itself imports this module).

    When the ``observe`` bundle carries a profile, the three phases
    land in top-level stages (``shards.init`` / ``shards.sweep`` /
    ``shards.finalize``) with the evaluator's per-shard and merge
    stages nested inside.
    """
    from repro.parallel.evaluator import ShardedSweepEvaluator

    profile = _profile_of(observe)
    factory = getattr(ShardedSweepEvaluator, mode)
    with _stage(profile, "shards.init"):
        evaluator = factory(
            db,
            query,
            until=interval.hi,
            start=interval.lo,
            shards=shards,
            backend=backend,
            batch_size=batch_size,
            observe=observe,
            curve_store=curve_store,
            **params,
        )
    with _stage(profile, "shards.sweep"):
        evaluator.advance_to(interval.hi)
    with _stage(profile, "shards.finalize") as st:
        evaluator.finalize()
        if profile is not None:
            st.annotate(ops=evaluator.primitive_ops())
    return evaluator


def _cached_sweep(
    cache,
    db: MovingObjectDatabase,
    gdistance: GDistance,
    interval: Interval,
    kind: str,
    view_factory,
    observe,
    constants: Sequence[float] = (),
    **params,
):
    """Evaluate one query on a *continuation* engine and cache it.

    The engine's horizon is left open (``[lo, +inf)``) so the very
    engine that answered this query stays extensible: a later query
    over a longer interval continues the sweep from ``interval.hi``
    (Theorem 5's per-update maintenance) instead of re-running the
    ``O(N log N)`` initialization.  The answer over ``interval`` is
    read off non-destructively with a timeline snapshot; it is
    identical to the finalized answer of a ``[lo, hi]`` engine (events
    beyond ``hi`` are scheduled but never processed).
    """
    profile = _profile_of(observe)
    with _stage(profile, "init") as st:
        engine = SweepEngine(
            db,
            gdistance,
            Interval.at_least(interval.lo),
            constants=constants,
            observe=observe,
            curve_store=cache.curves,
        )
        view = view_factory(engine)
        if profile is not None:
            st.annotate(ops=engine.primitive_ops())
    init_ops = engine.primitive_ops() if profile is not None else 0
    with _stage(profile, "sweep") as st:
        engine.advance_to(interval.hi)
        if profile is not None:
            st.annotate(ops=engine.primitive_ops() - init_ops)
    with _stage(profile, "answer"):
        if hasattr(view, "partial_answers"):
            payload = view.partial_answers(interval.hi)
        else:
            payload = view.partial_answer(interval.hi)
    with _stage(profile, "cache.store"):
        cache.store(
            kind,
            gdistance,
            interval,
            payload,
            engine=engine,
            view=view,
            **params,
        )
    return payload


def _single_sweep(
    db: MovingObjectDatabase,
    gdistance: GDistance,
    interval: Interval,
    view_factory,
    observe,
    constants: Sequence[float] = (),
):
    """One plain (uncached, unsharded) sweep with stage attribution."""
    profile = _profile_of(observe)
    with _stage(profile, "init") as st:
        engine = SweepEngine(
            db, gdistance, interval, constants=constants, observe=observe
        )
        view = view_factory(engine)
        if profile is not None:
            st.annotate(ops=engine.primitive_ops())
    init_ops = engine.primitive_ops() if profile is not None else 0
    with _stage(profile, "sweep") as st:
        engine.run_to_end()
        if profile is not None:
            st.annotate(ops=engine.primitive_ops() - init_ops)
    with _stage(profile, "answer"):
        if hasattr(view, "answers"):
            return view.answers()
        return view.answer()


def evaluate_knn(
    db: MovingObjectDatabase,
    query: QueryLike,
    interval: Interval,
    k: int = 1,
    observe=None,
    shards: Optional[int] = None,
    backend="sequential",
    batch_size: int = 1,
    cache=None,
) -> SnapshotAnswer:
    """The k nearest objects to ``query`` over ``interval``.

    ``query`` is a trajectory, a fixed point, or any polynomial
    g-distance (ranking is by g-distance value).  Returns the snapshot
    answer: per object, the exact time intervals during which it is
    among the k nearest.  ``observe`` optionally wires telemetry (see
    :func:`repro.obs.as_instrumentation`).

    Pass ``shards`` to evaluate over a hash-partitioned
    :class:`~repro.parallel.evaluator.ShardedSweepEvaluator` instead of
    a single engine — same exact answer, smaller per-shard sweeps;
    ``backend`` picks the execution backend (``"sequential"`` or
    ``"process"``).

    Pass ``cache`` (a :class:`~repro.cache.QueryCache`) to serve
    repeated or overlapping-interval queries from cached answers:
    sub-intervals by restriction, forward extensions by continuing the
    original sweep, cold queries by a cached-curve engine build.  The
    cache binds to ``db`` and invalidates itself on every update.
    """
    gdistance = _as_gdistance(query)
    observe = as_instrumentation(observe)
    profile = _profile_of(observe)
    if cache is not None and interval.is_bounded:
        cache.bind(db)
        with _stage(profile, "cache.probe") as st:
            hit = cache.lookup("knn", gdistance, interval, profile=profile, k=k)
            st.annotate(hit=hit is not None)
        if hit is not None:
            return hit
        if shards is None:
            return _cached_sweep(
                cache,
                db,
                gdistance,
                interval,
                "knn",
                lambda engine: ContinuousKNN(engine, k),
                observe,
                k=k,
            )
    if shards is not None:
        answer = _sharded_evaluator(
            "knn",
            db,
            query,
            interval,
            shards,
            backend,
            batch_size,
            observe,
            curve_store=None if cache is None else cache.curves,
            k=k,
        ).answer()
        if cache is not None and interval.is_bounded:
            with _stage(profile, "cache.store"):
                cache.store("knn", gdistance, interval, answer, k=k)
        return answer
    return _single_sweep(
        db,
        gdistance,
        interval,
        lambda engine: ContinuousKNN(engine, k),
        observe,
    )


def evaluate_within(
    db: MovingObjectDatabase,
    query: QueryLike,
    interval: Interval,
    distance: float,
    observe=None,
    shards: Optional[int] = None,
    backend="sequential",
    batch_size: int = 1,
    cache=None,
) -> SnapshotAnswer:
    """Objects within Euclidean ``distance`` of ``query`` over ``interval``.

    When ``query`` is a trajectory or point the threshold is squared
    internally (the g-distance is the squared Euclidean distance); a
    custom g-distance is compared against ``distance`` as-is.
    ``shards``/``backend`` select sharded evaluation as in
    :func:`evaluate_knn`; ``cache`` serves repeated and overlapping
    queries as in :func:`evaluate_knn`.
    """
    gdistance = _as_gdistance(query)
    threshold = (
        distance * distance if not isinstance(query, GDistance) else float(distance)
    )
    observe = as_instrumentation(observe)
    profile = _profile_of(observe)
    if cache is not None and interval.is_bounded:
        cache.bind(db)
        with _stage(profile, "cache.probe") as st:
            hit = cache.lookup(
                "within",
                gdistance,
                interval,
                profile=profile,
                threshold=threshold,
            )
            st.annotate(hit=hit is not None)
        if hit is not None:
            return hit
        if shards is None:
            return _cached_sweep(
                cache,
                db,
                gdistance,
                interval,
                "within",
                lambda engine: ContinuousWithin(engine, threshold),
                observe,
                constants=[threshold],
                threshold=threshold,
            )
    if shards is not None:
        answer = _sharded_evaluator(
            "within",
            db,
            query,
            interval,
            shards,
            backend,
            batch_size,
            observe,
            curve_store=None if cache is None else cache.curves,
            distance=distance,
        ).answer()
        if cache is not None and interval.is_bounded:
            with _stage(profile, "cache.store"):
                cache.store(
                    "within", gdistance, interval, answer, threshold=threshold
                )
        return answer
    return _single_sweep(
        db,
        gdistance,
        interval,
        lambda engine: ContinuousWithin(engine, threshold),
        observe,
        constants=[threshold],
    )


def evaluate_multiknn(
    db: MovingObjectDatabase,
    query: QueryLike,
    interval: Interval,
    ks: Sequence[int],
    observe=None,
    shards: Optional[int] = None,
    backend="sequential",
    batch_size: int = 1,
    cache=None,
) -> Dict[int, SnapshotAnswer]:
    """k-NN answers for several k values from one sweep.

    Returns a dict keyed by k.  One sweep at ``max(ks)`` serves every
    requested k (the smaller answers are prefixes of the precedence
    order).  ``shards``/``backend`` select sharded evaluation as in
    :func:`evaluate_knn`; ``cache`` serves repeated and overlapping
    queries as in :func:`evaluate_knn`.
    """
    gdistance = _as_gdistance(query)
    observe = as_instrumentation(observe)
    profile = _profile_of(observe)
    if cache is not None and interval.is_bounded:
        cache.bind(db)
        with _stage(profile, "cache.probe") as st:
            hit = cache.lookup(
                "multiknn", gdistance, interval, profile=profile, ks=ks
            )
            st.annotate(hit=hit is not None)
        if hit is not None:
            return hit
        if shards is None:
            return _cached_sweep(
                cache,
                db,
                gdistance,
                interval,
                "multiknn",
                lambda engine: MultiKNN(engine, ks),
                observe,
                ks=ks,
            )
    if shards is not None:
        answers = _sharded_evaluator(
            "multiknn",
            db,
            query,
            interval,
            shards,
            backend,
            batch_size,
            observe,
            curve_store=None if cache is None else cache.curves,
            ks=ks,
        ).answers()
        if cache is not None and interval.is_bounded:
            with _stage(profile, "cache.store"):
                cache.store("multiknn", gdistance, interval, answers, ks=ks)
        return answers
    return _single_sweep(
        db,
        gdistance,
        interval,
        lambda engine: MultiKNN(engine, ks),
        observe,
    )


def serve(
    db: MovingObjectDatabase,
    config=None,
    observe=None,
    cache=None,
):
    """A multi-tenant :class:`~repro.server.QueryServer` over ``db``.

    Register many concurrent continuous queries (knn / within /
    multiknn, mixed) and pay each update's Theorem 5 maintenance once
    per distinct engine group instead of once per session.  ``config``
    is a :class:`~repro.server.ServerConfig` (admission control, load
    shedding, batching, default shards); ``observe`` and ``cache`` are
    shared by every engine the server hosts.  Imported lazily so
    ``repro.core`` has no hard dependency on ``repro.server`` (which
    imports this module).
    """
    from repro.server import QueryServer

    return QueryServer(db, config=config, observe=observe, cache=cache)


def serve_tcp(
    db: MovingObjectDatabase,
    host: str = "127.0.0.1",
    port: int = 0,
    config=None,
    net_config=None,
    observe=None,
    cache=None,
):
    """Serve ``db`` to remote clients over TCP.

    Builds a :func:`serve` query server and wraps it in a
    :class:`~repro.net.QueryNetServer`: an asyncio frontend speaking
    the length-prefixed JSON protocol of :mod:`repro.net.protocol`,
    with idempotent request retries, per-connection push backpressure,
    and graceful drain.  ``port=0`` binds an ephemeral port — read the
    actual address from ``.address``.  ``config`` is the
    :class:`~repro.server.ServerConfig`; ``net_config`` the
    :class:`~repro.net.NetConfig` wire policy.

    Returns the started :class:`~repro.net.QueryNetServer` (a context
    manager; leaving the ``with`` block drains and closes)::

        net = serve_tcp(db)
        client = connect(*net.address)
        session = client.open_knn([0.0, 0.0], k=2)
    """
    from repro.net import QueryNetServer

    server = serve(db, config=config, observe=observe, cache=cache)
    return QueryNetServer(server, config=net_config).start(host, port)


def evaluate_query(
    db: MovingObjectDatabase,
    gdistance: GDistance,
    query: Query,
    observe=None,
) -> SnapshotAnswer:
    """Evaluate an arbitrary FO(f) query exactly.

    Uses the sweep to find every support change and the generic
    order-driven evaluator (Lemma 8) for the formula semantics.
    """
    engine = SweepEngine(
        db,
        gdistance,
        query.interval,
        constants=query.constants,
        time_terms=query.time_terms,
        observe=observe,
    )
    view = GenericFOEvaluator(engine, query)
    engine.run_to_end()
    return view.answer()


class ContinuousQuerySession:
    """Eager maintenance of a k-NN or within-range query on a live MOD.

    Construct with one of :meth:`knn` or :meth:`within`; the session
    subscribes to the database, processes each update as it arrives
    (Theorem 5's per-update maintenance), and exposes the *current*
    answer at all times.  Call :meth:`close` to detach and obtain the
    accumulated snapshot answer.
    """

    def __init__(
        self,
        db: MovingObjectDatabase,
        engine: SweepEngine,
        view,
        cache=None,
        cache_query=None,
    ) -> None:
        self._db = db
        self._engine = engine
        self._view = view
        self._closed = False
        # (kind, gdistance, params) for depositing the final answer
        # into the cache at close time.
        self._cache = cache
        self._cache_query = cache_query
        db.subscribe(engine.on_update)

    # -- constructors -----------------------------------------------------
    @classmethod
    def knn(
        cls,
        db: MovingObjectDatabase,
        query: QueryLike,
        k: int = 1,
        until: float = float("inf"),
        start: Optional[float] = None,
        observe=None,
        shards: Optional[int] = None,
        backend="sequential",
        batch_size: int = 1,
        cache=None,
    ) -> "ContinuousQuerySession":
        """A continuous k-NN session starting now (or at ``start``).

        ``observe`` optionally wires telemetry into the underlying
        engine; several sessions may share one registry, in which case
        their counters aggregate.  ``shards`` maintains the session
        over a :class:`~repro.parallel.evaluator.ShardedSweepEvaluator`
        instead of a single engine — identical answers, per-shard
        maintenance.  ``cache`` (a :class:`~repro.cache.QueryCache`)
        builds the engine over shared memoized curves and deposits the
        session's final answer at :meth:`close` for later reuse.
        """
        gdistance = _as_gdistance(query)
        if cache is not None:
            cache.bind(db)
        cache_query = ("knn", gdistance, {"k": k})
        if shards is not None:
            from repro.parallel.evaluator import ShardedSweepEvaluator

            evaluator = ShardedSweepEvaluator.knn(
                db,
                query,
                k=k,
                until=until,
                start=start,
                shards=shards,
                backend=backend,
                batch_size=batch_size,
                observe=observe,
                curve_store=None if cache is None else cache.curves,
            )
            return cls(db, evaluator, evaluator, cache, cache_query)
        lo = db.last_update_time if start is None else start
        engine = SweepEngine(
            db,
            gdistance,
            Interval(lo, until),
            observe=observe,
            curve_store=None if cache is None else cache.curves,
        )
        view = ContinuousKNN(engine, k)
        return cls(db, engine, view, cache, cache_query)

    @classmethod
    def within(
        cls,
        db: MovingObjectDatabase,
        query: QueryLike,
        distance: float,
        until: float = float("inf"),
        start: Optional[float] = None,
        observe=None,
        shards: Optional[int] = None,
        backend="sequential",
        batch_size: int = 1,
        cache=None,
    ) -> "ContinuousQuerySession":
        """A continuous within-range session starting now (or at
        ``start``).  ``observe`` optionally wires telemetry into the
        underlying engine; ``shards`` selects sharded maintenance and
        ``cache`` shared curve memoization as in :meth:`knn`."""
        gdistance = _as_gdistance(query)
        threshold = (
            distance * distance
            if not isinstance(query, GDistance)
            else float(distance)
        )
        if cache is not None:
            cache.bind(db)
        cache_query = ("within", gdistance, {"threshold": threshold})
        if shards is not None:
            from repro.parallel.evaluator import ShardedSweepEvaluator

            evaluator = ShardedSweepEvaluator.within(
                db,
                query,
                distance,
                until=until,
                start=start,
                shards=shards,
                backend=backend,
                batch_size=batch_size,
                observe=observe,
                curve_store=None if cache is None else cache.curves,
            )
            return cls(db, evaluator, evaluator, cache, cache_query)
        lo = db.last_update_time if start is None else start
        engine = SweepEngine(
            db,
            gdistance,
            Interval(lo, until),
            constants=[threshold],
            observe=observe,
            curve_store=None if cache is None else cache.curves,
        )
        view = ContinuousWithin(engine, threshold)
        return cls(db, engine, view, cache, cache_query)

    # -- live inspection ------------------------------------------------------
    @property
    def engine(self) -> SweepEngine:
        """The underlying sweep engine (stats, order, queue)."""
        return self._engine

    @property
    def observe(self):
        """The engine's :class:`~repro.obs.instrument.Instrumentation`
        (None when telemetry is disabled)."""
        return self._engine.observe

    @property
    def metrics(self):
        """The session's metrics registry, or None when telemetry is
        disabled."""
        observe = self._engine.observe
        return None if observe is None else observe.metrics

    @property
    def current_time(self) -> float:
        """The sweep's current position on the time line."""
        return self._engine.current_time

    @property
    def members(self) -> Set[ObjectId]:
        """The current answer set."""
        return self._view.members

    def advance_to(self, t: float) -> Set[ObjectId]:
        """Move the clock forward without an update (a MOD clock tick,
        the paper's cost-spreading device) and return the answer at
        ``t``."""
        self._engine.advance_to(t)
        return self.members

    def close(self, at: Optional[float] = None) -> SnapshotAnswer:
        """Detach from the database and return the snapshot answer
        accumulated from the session start to ``at`` (default: the
        current sweep time).

        The session is guaranteed to be detached from the database when
        this returns or raises — even when advancing the sweep or
        finalizing the engine fails — so a broken engine can never keep
        receiving (and re-raising on) future updates.
        """
        if self._closed:
            raise RuntimeError("session already closed")
        self._closed = True
        try:
            if at is not None:
                self._engine.advance_to(at)
            self._engine.finalize()
        finally:
            self._db.unsubscribe(self._engine.on_update)
        answer = self._view.answer()
        # The accumulated memberships only cover up to the sweep's end,
        # so the cached span is [start, current_time] even when the
        # session's nominal interval runs further.
        end = self._engine.current_time
        lo = answer.interval.lo
        if self._cache is not None and math.isfinite(lo) and math.isfinite(end):
            kind, gdistance, params = self._cache_query
            self._cache.store(
                kind, gdistance, Interval(lo, end), answer, **params
            )
        return answer
