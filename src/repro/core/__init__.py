"""The high-level public API: one-shot and continuous query evaluation.

This package is the front door a downstream user should reach for:

- :func:`evaluate_knn`, :func:`evaluate_within`,
  :func:`evaluate_query` — one-shot (past-query) evaluation over a
  time interval, Theorem 4's ``O((m+N) log N)`` path;
- :class:`ContinuousQuerySession` — eager (future/continuing-query)
  maintenance against a live database, Theorem 5's path: attach it to
  a :class:`~repro.mod.database.MovingObjectDatabase` and the answer is
  kept current as updates stream in.
"""

from repro.core.api import (
    ContinuousQuerySession,
    evaluate_knn,
    evaluate_query,
    evaluate_within,
)

__all__ = [
    "ContinuousQuerySession",
    "evaluate_knn",
    "evaluate_query",
    "evaluate_within",
]
