"""Shared-sweep evaluation of several k-NN queries at once.

A single precedence relation supports any number of rank-threshold
views simultaneously: the engine's events are processed once, and each
``k`` only needs its own boundary bookkeeping.  This amortizes the
dominant cost — intersection detection — across queries, a practical
extension the paper's architecture makes natural (all k-NN queries
share the same support).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set

from repro.mod.updates import ObjectId
from repro.query.answers import AnswerTimeline, SnapshotAnswer
from repro.sweep.curves import CurveEntry
from repro.sweep.engine import SweepEngine
from repro.sweep.knn import bind_support_counters


class MultiKNN:
    """Maintain k-NN answers for several values of k over one sweep.

    Requires an engine with no constant sentinels and a single time
    term (same contract as :class:`~repro.sweep.knn.ContinuousKNN`).
    """

    def __init__(self, engine: SweepEngine, ks: Sequence[int]) -> None:
        values = sorted(set(int(k) for k in ks))
        if not values:
            raise ValueError("need at least one k")
        if values[0] < 1:
            raise ValueError("every k must be positive")
        if any(e.is_constant for e in engine.order):
            raise ValueError(
                "MultiKNN requires an engine without constant sentinels"
            )
        self._engine = engine
        self._ks = values
        self._members: Dict[int, Set[ObjectId]] = {k: set() for k in values}
        self._timelines: Dict[int, AnswerTimeline] = {
            k: AnswerTimeline(engine.interval) for k in values
        }
        self._results: Dict[int, SnapshotAnswer] = {}
        self._c_enter, self._c_leave = bind_support_counters(
            engine, "multiknn"
        )
        engine.add_listener(self)
        self._bootstrap()

    def _bootstrap(self) -> None:
        t = self._engine.current_time
        for rank, entry in enumerate(self._engine.order):
            for k in self._ks:
                if rank < k:
                    self._enter(k, entry.oid, t)

    @property
    def ks(self) -> List[int]:
        """The maintained k values, ascending."""
        return list(self._ks)

    def members(self, k: int) -> Set[ObjectId]:
        """The current k-NN answer for one maintained k."""
        return set(self._members[k])

    # -- listener protocol --------------------------------------------------
    def on_swap(self, time: float, lower: CurveEntry, upper: CurveEntry) -> None:
        for k in self._ks:
            members = self._members[k]
            lower_in = lower.oid in members
            upper_in = upper.oid in members
            if lower_in == upper_in:
                continue
            if upper_in:
                self._leave(k, upper.oid, time)
                self._enter(k, lower.oid, time)

    def on_insert(self, time: float, entry: CurveEntry) -> None:
        rank = self._engine.rank_of(entry)
        size = len(self._engine.order)
        for k in self._ks:
            if rank >= k:
                continue
            if size > k:
                displaced = self._engine.order.at_rank(k)
                if displaced.oid in self._members[k]:
                    self._leave(k, displaced.oid, time)
            self._enter(k, entry.oid, time)

    def on_remove(self, time: float, entry: CurveEntry) -> None:
        size = len(self._engine.order)
        for k in self._ks:
            if entry.oid not in self._members[k]:
                continue
            self._leave(k, entry.oid, time)
            if size >= k:
                promoted = self._engine.order.at_rank(k - 1)
                self._enter(k, promoted.oid, time)

    def on_finalize(self, time: float) -> None:
        for k in self._ks:
            self._timelines[k].finalize(time)
            self._results[k] = self._timelines[k].result()

    # -- bookkeeping ------------------------------------------------------------
    def _enter(self, k: int, oid: ObjectId, time: float) -> None:
        self._members[k].add(oid)
        self._timelines[k].open(oid, time)
        self._c_enter.inc()

    def _leave(self, k: int, oid: ObjectId, time: float) -> None:
        self._members[k].discard(oid)
        self._timelines[k].close(oid, time)
        self._c_leave.inc()

    # -- results ------------------------------------------------------------------
    def answer(self, k: int) -> SnapshotAnswer:
        """The snapshot answer for one maintained k (after finalize)."""
        if k not in self._results:
            if k not in self._members:
                raise KeyError(f"k={k} was not maintained")
            raise RuntimeError(
                "the sweep has not been finalized; call engine.run_to_end()"
            )
        return self._results[k]

    def answers(self) -> Dict[int, SnapshotAnswer]:
        """All maintained answers keyed by k (after finalize)."""
        if len(self._results) != len(self._ks):
            raise RuntimeError(
                "the sweep has not been finalized; call engine.run_to_end()"
            )
        return dict(self._results)

    def partial_answers(self, time: float) -> Dict[int, SnapshotAnswer]:
        """Per-k answers accumulated up to ``time``, without finalizing
        (see :meth:`ContinuousKNN.partial_answer`)."""
        return {k: self._timelines[k].snapshot(time) for k in self._ks}
