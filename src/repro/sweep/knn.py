"""The continuous k-NN view (Example 6 / Example 12).

The answer to k-NN at any instant is the set of objects whose curves
are the ``k`` lowest — the first ``k`` entries of the precedence
relation.  Because every order change is an adjacent transposition,
membership changes only when the transposition straddles the rank-k
boundary, detectable in O(1) via the current membership set; inserts
and removals use one O(log N) ``at_rank`` probe to find the displaced
or promoted entry.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.mod.updates import ObjectId
from repro.obs.metrics import NULL_COUNTER
from repro.query.answers import AnswerTimeline, SnapshotAnswer
from repro.sweep.curves import CurveEntry
from repro.sweep.engine import SweepEngine


def bind_support_counters(engine: SweepEngine, view: str):
    """Bind (enter, leave) support-change counters for one view.

    Shared by every continuous view: when the engine carries an
    ``observe=`` instrumentation, each answer-set entry/exit increments
    ``view_support_changes_total{view=...,kind=enter|leave}``; otherwise
    both slots are the no-op counter.
    """
    if engine.observe is None:
        return NULL_COUNTER, NULL_COUNTER
    family = engine.observe.metrics.counter(
        "view_support_changes_total",
        "Answer-set support changes emitted by continuous views "
        "(Lemma 8: answers change only at support changes).",
        labels=("view", "kind"),
    )
    return (
        family.labels(view=view, kind="enter"),
        family.labels(view=view, kind="leave"),
    )


class ContinuousKNN:
    """Maintain the k nearest objects (by g-distance) over the sweep.

    Requires an engine with no constant sentinels and a single time
    term, so that full-order ranks coincide with object ranks.
    """

    def __init__(self, engine: SweepEngine, k: int) -> None:
        if k < 1:
            raise ValueError("k must be positive")
        if any(e.is_constant for e in engine.order):
            raise ValueError(
                "ContinuousKNN requires an engine without constant "
                "sentinels; use the generic evaluator for mixed queries"
            )
        self._engine = engine
        self._k = k
        self._members: Set[ObjectId] = set()
        self._timeline = AnswerTimeline(engine.interval)
        self._result: Optional[SnapshotAnswer] = None
        self._c_enter, self._c_leave = bind_support_counters(engine, "knn")
        engine.add_listener(self)
        self._bootstrap()

    def _bootstrap(self) -> None:
        t = self._engine.current_time
        for rank, entry in enumerate(self._engine.order):
            if rank >= self._k:
                break
            self._enter(entry.oid, t)

    # -- current answer ----------------------------------------------------
    @property
    def k(self) -> int:
        """The k in k-NN."""
        return self._k

    @property
    def members(self) -> Set[ObjectId]:
        """The current k-NN answer set."""
        return set(self._members)

    def members_in_order(self) -> List[ObjectId]:
        """The current answer, nearest first."""
        out: List[ObjectId] = []
        for entry in self._engine.order:
            if entry.oid in self._members:
                out.append(entry.oid)
            if len(out) == len(self._members):
                break
        return out

    # -- listener protocol -----------------------------------------------------
    def on_swap(self, time: float, lower: CurveEntry, upper: CurveEntry) -> None:
        # lower just moved below upper.  Membership changes only when
        # the pair straddles the k boundary, i.e. exactly one is a member.
        lower_in = lower.oid in self._members
        upper_in = upper.oid in self._members
        if lower_in == upper_in:
            return
        # The member of the pair was at rank k-1; they exchanged ranks.
        if upper_in:
            self._leave(upper.oid, time)
            self._enter(lower.oid, time)

    def on_insert(self, time: float, entry: CurveEntry) -> None:
        rank = self._engine.rank_of(entry)
        if rank >= self._k:
            return
        if len(self._engine.order) > self._k:
            displaced = self._engine.order.at_rank(self._k)
            if displaced.oid in self._members:
                self._leave(displaced.oid, time)
        self._enter(entry.oid, time)

    def on_remove(self, time: float, entry: CurveEntry) -> None:
        if entry.oid not in self._members:
            return
        self._leave(entry.oid, time)
        if len(self._engine.order) >= self._k:
            promoted = self._engine.order.at_rank(self._k - 1)
            self._enter(promoted.oid, time)

    def on_finalize(self, time: float) -> None:
        self._timeline.finalize(time)
        self._result = self._timeline.result()

    # -- membership bookkeeping ---------------------------------------------------
    def _enter(self, oid: ObjectId, time: float) -> None:
        self._members.add(oid)
        self._timeline.open(oid, time)
        self._c_enter.inc()

    def _leave(self, oid: ObjectId, time: float) -> None:
        self._members.discard(oid)
        self._timeline.close(oid, time)
        self._c_leave.inc()

    # -- results ---------------------------------------------------------------
    def answer(self) -> SnapshotAnswer:
        """The snapshot answer (after the engine has been finalized)."""
        if self._result is None:
            raise RuntimeError(
                "the sweep has not been finalized; call engine.run_to_end()"
                " or engine.finalize() first"
            )
        return self._result

    def partial_answer(self, time: float) -> SnapshotAnswer:
        """The answer accumulated up to ``time``, without finalizing.

        The engine must already have been advanced to ``time``.  Open
        memberships are closed virtually, so the sweep — and this view —
        can keep running; the answer cache uses this to snapshot a
        continuation engine it will extend later.
        """
        return self._timeline.snapshot(time)
